"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.awareness import deviation_magnitude
from repro.diagnosis import COEFFICIENTS, SpectraCollector, SpectraCounts
from repro.perception import FunctionProfile, SeverityModel, UserProfile
from repro.sim import Kernel, RandomStreams
from repro.statemachine import MachineBuilder
from repro.tv.software import SoftwareBuild

# ----------------------------------------------------------------------
# similarity coefficients
# ----------------------------------------------------------------------
counts_strategy = st.builds(
    SpectraCounts,
    a11=st.integers(0, 50),
    a10=st.integers(0, 50),
    a01=st.integers(0, 50),
    a00=st.integers(0, 50),
)


@given(counts=counts_strategy)
def test_all_coefficients_bounded(counts):
    for name, coefficient in COEFFICIENTS.items():
        value = coefficient(counts)
        assert 0.0 <= value <= 1.0, f"{name} out of bounds: {value}"
        assert not math.isnan(value)


@given(counts=counts_strategy)
def test_ochiai_zero_iff_no_error_hits(counts):
    from repro.diagnosis import ochiai

    value = ochiai(counts)
    if counts.a11 == 0:
        assert value == 0.0
    elif counts.a11 > 0:
        assert value > 0.0


@given(a11=st.integers(1, 50), a01=st.integers(0, 50), extra=st.integers(1, 50))
def test_ochiai_decreases_with_false_hits(a11, a01, extra):
    from repro.diagnosis import ochiai

    cleaner = SpectraCounts(a11=a11, a10=0, a01=a01, a00=10)
    dirtier = SpectraCounts(a11=a11, a10=extra, a01=a01, a00=10)
    assert ochiai(dirtier) < ochiai(cleaner)


# ----------------------------------------------------------------------
# spectra collector invariants
# ----------------------------------------------------------------------
@given(
    plan=st.lists(
        st.tuples(st.sets(st.integers(0, 30), max_size=8), st.booleans()),
        min_size=1,
        max_size=20,
    )
)
def test_spectra_counts_partition_steps(plan):
    collector = SpectraCollector()
    for blocks, error in plan:
        collector.begin_step()
        collector.record(blocks)
        collector.end_step(error)
    for block in collector.executed_blocks():
        counts = collector.counts_for(block)
        total = counts.a11 + counts.a10 + counts.a01 + counts.a00
        assert total == collector.step_count
        assert counts.a11 + counts.a10 == len(collector.hits_of(block))
        assert counts.a11 + counts.a01 == len(collector.error_steps)


# ----------------------------------------------------------------------
# deviation magnitude
# ----------------------------------------------------------------------
json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-1000, 1000),
        st.floats(-1e6, 1e6, allow_nan=False),
        st.text(max_size=8),
    ),
    lambda children: st.dictionaries(st.text(max_size=4), children, max_size=4),
    max_leaves=8,
)


@given(value=json_values)
def test_deviation_identity(value):
    assert deviation_magnitude(value, value) == 0.0


@given(a=json_values, b=json_values)
def test_deviation_symmetry_and_nonnegativity(a, b):
    forward = deviation_magnitude(a, b)
    backward = deviation_magnitude(b, a)
    assert forward >= 0.0
    assert forward == backward


@given(
    expected=st.dictionaries(st.text(max_size=4), st.integers(0, 5), max_size=6),
    actual=st.dictionaries(st.text(max_size=4), st.integers(0, 5), max_size=6),
)
def test_deviation_dict_bounded_by_key_union(expected, actual):
    magnitude = deviation_magnitude(expected, actual)
    assert magnitude <= len(set(expected) | set(actual))


# ----------------------------------------------------------------------
# random streams
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 2**31), name=st.text(min_size=1, max_size=12))
@settings(max_examples=30)
def test_random_stream_reproducibility(seed, name):
    first = RandomStreams(seed).stream(name).random()
    second = RandomStreams(seed).stream(name).random()
    assert first == second


# ----------------------------------------------------------------------
# kernel ordering
# ----------------------------------------------------------------------
@given(delays=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=50)
def test_kernel_dispatch_monotone_in_time(delays):
    kernel = Kernel()
    dispatched = []
    for delay in delays:
        kernel.schedule(delay, lambda: dispatched.append(kernel.now))
    kernel.run()
    assert dispatched == sorted(dispatched)
    assert len(dispatched) == len(delays)


# ----------------------------------------------------------------------
# state machine snapshot/restore
# ----------------------------------------------------------------------
def _toggle_counter():
    builder = MachineBuilder("pm")
    builder.state("off")
    builder.state("on")
    builder.initial("off")
    builder.transition(
        "off", "on", event="flip",
        action=lambda m, e: m.set("flips", m.get("flips", 0) + 1),
    )
    builder.transition(
        "on", "off", event="flip",
        action=lambda m, e: m.set("flips", m.get("flips", 0) + 1),
    )
    builder.transition("on", "off", after=7.0)
    return builder.build()


@given(
    script=st.lists(
        st.one_of(st.just("flip"), st.floats(0.1, 10.0, allow_nan=False)),
        max_size=20,
    )
)
@settings(max_examples=60)
def test_machine_snapshot_restore_equivalence(script):
    machine = _toggle_counter()
    for step in script:
        if step == "flip":
            machine.inject("flip")
        else:
            machine.advance(machine.time + step)
    snapshot = machine.snapshot()
    config_before = machine.configuration()
    flips_before = machine.get("flips", 0)
    # perturb, then restore
    machine.inject("flip")
    machine.advance(machine.time + 100.0)
    machine.restore(snapshot)
    assert machine.configuration() == config_before
    assert machine.get("flips", 0) == flips_before
    # restored machine behaves identically going forward
    machine.inject("flip")
    assert machine.get("flips", 0) == flips_before + 1


# ----------------------------------------------------------------------
# software build activation model
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 100), step=st.integers(0, 100))
@settings(max_examples=20)
def test_background_blocks_within_address_space(seed, step):
    build = SoftwareBuild(seed=seed)
    blocks = build.background_blocks(step)
    assert all(0 <= b < build.total_blocks for b in blocks)


@given(step=st.integers(0, 50))
@settings(max_examples=20)
def test_tag_blocks_stay_in_module(step):
    build = SoftwareBuild()
    module = build.module("ttx_logic")
    blocks = build.tag_blocks("ttx_logic", "some_tag", step)
    assert all(module.start <= b < module.end for b in blocks)


# ----------------------------------------------------------------------
# perception model
# ----------------------------------------------------------------------
profile_strategy = st.builds(
    FunctionProfile,
    name=st.just("f"),
    stated_importance=st.floats(0.0, 1.0, allow_nan=False),
    usage=st.floats(0.0, 1.0, allow_nan=False),
    failure_visibility=st.floats(0.0, 1.0, allow_nan=False),
    external_attribution_prior=st.floats(0.0, 1.0, allow_nan=False),
)
user_strategy = st.builds(
    UserProfile,
    name=st.just("u"),
    tolerance=st.floats(0.0, 1.0, allow_nan=False),
    savvy=st.floats(0.0, 1.0, allow_nan=False),
)


@given(user=user_strategy, function=profile_strategy)
def test_irritation_bounds_and_attribution_monotonicity(user, function):
    model = SeverityModel()
    internal = model.irritation(user, function, attributed_externally=False)
    external = model.irritation(user, function, attributed_externally=True)
    assert 0.0 <= external <= internal <= 1.0
    assert 0.0 <= model.severity_weight(function) <= 1.0
