"""Tests for state machine semantics: hierarchy, RTC, timers, snapshots."""

import pytest

from repro.statemachine import MachineBuilder, MachineError


def simple_tv():
    b = MachineBuilder("tv")
    b.state("off", on_entry=lambda m: m.emit("screen", "dark"))
    b.state("on", initial="viewing", on_entry=lambda m: m.emit("screen", "video"))
    b.state("viewing", parent="on")
    b.state("menu", parent="on", on_entry=lambda m: m.emit("screen", "menu"))
    b.initial("off")
    b.transition("off", "on", event="power")
    b.transition("on", "off", event="power")
    b.transition("viewing", "menu", event="menu")
    b.transition("menu", "viewing", event="back")
    b.transition("menu", "viewing", after=5.0)
    return b.build()


class TestBasicDispatch:
    def test_initial_configuration(self):
        machine = simple_tv()
        assert machine.configuration().endswith("off")

    def test_initial_entry_actions_fire(self):
        machine = simple_tv()
        assert machine.outputs[0].value == "dark"

    def test_event_moves_to_target(self):
        machine = simple_tv()
        assert machine.inject("power") is True
        assert machine.configuration() == "tv_root.on.viewing"

    def test_unknown_event_ignored(self):
        machine = simple_tv()
        assert machine.inject("nonsense") is False
        assert machine.configuration().endswith("off")

    def test_compound_state_descends_to_initial(self):
        machine = simple_tv()
        machine.inject("power")
        assert machine.configuration().endswith("viewing")

    def test_transition_on_ancestor_fires_from_nested_leaf(self):
        machine = simple_tv()
        machine.inject("power")
        machine.inject("menu")
        # "power" is declared on the compound "on"; active leaf is menu.
        machine.inject("power")
        assert machine.configuration().endswith("off")

    def test_events_in_past_rejected(self):
        machine = simple_tv()
        machine.advance(10.0)
        with pytest.raises(MachineError):
            machine.inject("power", time=5.0)


class TestTimers:
    def test_timeout_fires_after_delay(self):
        machine = simple_tv()
        machine.inject("power")
        machine.inject("menu")
        machine.advance(machine.time + 4.9)
        assert machine.configuration().endswith("menu")
        machine.advance(machine.time + 0.2)
        assert machine.configuration().endswith("viewing")

    def test_timer_disarmed_on_exit(self):
        machine = simple_tv()
        machine.inject("power")
        machine.inject("menu")
        machine.inject("back")  # leave menu before timeout
        fired = machine.advance(machine.time + 10.0)
        assert fired == 0

    def test_timer_rearmed_on_reentry(self):
        machine = simple_tv()
        machine.inject("power")
        machine.inject("menu")
        machine.advance(machine.time + 3.0)
        machine.inject("back")
        machine.inject("menu")  # re-enter: timer restarts from now
        machine.advance(machine.time + 3.0)
        assert machine.configuration().endswith("menu")
        machine.advance(machine.time + 2.5)
        assert machine.configuration().endswith("viewing")

    def test_next_timeout_reported(self):
        machine = simple_tv()
        machine.inject("power")
        assert machine.next_timeout() is None
        machine.inject("menu")
        assert machine.next_timeout() == pytest.approx(machine.time + 5.0)

    def test_advance_backwards_rejected(self):
        machine = simple_tv()
        machine.advance(5.0)
        with pytest.raises(MachineError):
            machine.advance(1.0)


class TestGuardsAndActions:
    def test_guard_blocks_transition(self):
        b = MachineBuilder("m")
        b.state("a")
        b.state("b")
        b.initial("a")
        b.transition("a", "b", event="go", guard=lambda m, e: m.get("armed"))
        machine = b.var("armed", False).build()
        machine.inject("go")
        assert machine.configuration().endswith("a")
        machine.set("armed", True)
        machine.inject("go")
        assert machine.configuration().endswith("b")

    def test_action_receives_event_params(self):
        b = MachineBuilder("m")
        b.state("a")
        b.initial("a")
        b.transition(
            "a",
            None,
            event="set",
            action=lambda m, e: m.set("value", e.param("value")),
            internal=True,
        )
        machine = b.build()
        machine.inject("set", value=7)
        assert machine.get("value") == 7

    def test_internal_transition_keeps_state_and_timers(self):
        b = MachineBuilder("m")
        b.state("a")
        b.state("b")
        b.initial("a")
        b.transition("a", "b", after=10.0)
        b.transition("a", None, event="poke", action=lambda m, e: None, internal=True)
        machine = b.build()
        machine.advance(6.0)
        machine.inject("poke")  # must NOT re-arm the 10s timer
        machine.advance(10.5)
        assert machine.configuration().endswith("b")

    def test_completion_transition_chains(self):
        b = MachineBuilder("m")
        b.state("a")
        b.state("b")
        b.state("c")
        b.initial("a")
        b.transition("a", "b", event="go")
        b.transition("b", "c", guard=lambda m, e: True)  # completion
        machine = b.build()
        machine.inject("go")
        assert machine.configuration().endswith("c")

    def test_completion_livelock_detected(self):
        b = MachineBuilder("m")
        b.state("a")
        b.state("b")
        b.initial("a")
        b.transition("a", "b", guard=lambda m, e: True)
        b.transition("b", "a", guard=lambda m, e: True)
        with pytest.raises(MachineError):
            b.build()  # initialize() runs completions

    def test_raise_event_processed_after_step(self):
        b = MachineBuilder("m")
        b.state("a")
        b.state("b")
        b.state("c")
        b.initial("a")
        b.transition("a", "b", event="go", action=lambda m, e: m.raise_event("chain"))
        b.transition("b", "c", event="chain")
        machine = b.build()
        machine.inject("go")
        assert machine.configuration().endswith("c")


class TestNondeterminism:
    def build_ambiguous(self, strict=False):
        b = MachineBuilder("m")
        b.state("a")
        b.state("b")
        b.state("c")
        b.initial("a")
        b.transition("a", "b", event="go")
        b.transition("a", "c", event="go")
        machine = b.build()
        machine.strict = strict
        return machine

    def test_nondeterminism_logged(self):
        machine = self.build_ambiguous()
        machine.inject("go")
        assert len(machine.nondeterminism_log) == 1
        state, event, names = machine.nondeterminism_log[0]
        assert event == "go"
        assert len(names) == 2

    def test_first_declared_wins_by_default(self):
        machine = self.build_ambiguous()
        machine.inject("go")
        assert machine.configuration().endswith("b")

    def test_strict_mode_raises(self):
        machine = self.build_ambiguous(strict=True)
        with pytest.raises(MachineError):
            machine.inject("go")


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self):
        machine = simple_tv()
        machine.inject("power")
        machine.inject("menu")
        snapshot = machine.snapshot()
        machine.inject("back")
        machine.restore(snapshot)
        assert machine.configuration().endswith("menu")

    def test_restored_timers_still_fire(self):
        machine = simple_tv()
        machine.inject("power")
        machine.inject("menu")
        snapshot = machine.snapshot()
        machine.inject("back")
        machine.restore(snapshot)
        machine.advance(machine.time + 5.5)
        assert machine.configuration().endswith("viewing")

    def test_vars_deep_copied(self):
        machine = simple_tv()
        machine.set("nested", {"a": 1})
        snapshot = machine.snapshot()
        machine.get("nested")["a"] = 2
        machine.restore(snapshot)
        assert machine.get("nested") == {"a": 1}


class TestOutputs:
    def test_emit_notifies_listeners(self):
        machine = simple_tv()
        seen = []
        machine.on_output(seen.append)
        machine.inject("power")
        assert [o.value for o in seen] == ["video"]

    def test_outputs_carry_time(self):
        machine = simple_tv()
        machine.advance(3.0)
        machine.inject("power")
        assert machine.outputs[-1].time == 3.0
