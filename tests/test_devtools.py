"""Tests for stress testing, warning prioritization, and architecture FMEA."""

import pytest

from repro.devtools import (
    ArchitectureFmea,
    BandwidthTakeaway,
    CpuEater,
    FailureMode,
    StressCampaign,
    StressScenario,
    WarningGenerator,
    WarningPrioritizer,
)
from repro.tv import TVSet
from repro.tv.software import SoftwareBuild


class TestCpuEater:
    def test_eater_consumes_target_share(self):
        tv = TVSet(seed=2)
        tv.press("power")
        tv.run(10.0)
        eater = CpuEater(tv.soc, "cpu1")
        eater.start(0.5)
        start = tv.kernel.now
        tv.run(100.0)
        utilization = tv.soc.processor("cpu1").utilization(since=start)
        assert 0.4 <= utilization <= 0.6

    def test_eater_causes_misses_on_loaded_core(self):
        tv = TVSet(seed=2)
        tv.press("power")
        tv.run(20.0)
        eater = CpuEater(tv.soc, "cpu0")
        eater.start(0.7)
        tv.run(150.0)
        tasks = tv.video.tasks
        assert sum(t.stats.misses for t in tasks) > 0

    def test_stop_removes_task(self):
        tv = TVSet(seed=2)
        eater = CpuEater(tv.soc, "cpu0")
        eater.start(0.3)
        assert eater.active
        eater.stop()
        assert not eater.active
        assert "cpu-eater" not in tv.soc.scheduler.tasks

    def test_invalid_load_rejected(self):
        tv = TVSet(seed=2)
        eater = CpuEater(tv.soc, "cpu0")
        with pytest.raises(ValueError):
            eater.start(1.5)


class TestBandwidthTakeaway:
    def test_take_and_restore(self):
        tv = TVSet(seed=2)
        takeaway = BandwidthTakeaway(tv.kernel, tv.soc.bus, tv.soc.arbiter)
        original = tv.soc.bus.bandwidth
        takeaway.take(0.5)
        assert tv.soc.bus.bandwidth == pytest.approx(original * 0.5)
        takeaway.restore()
        assert tv.soc.bus.bandwidth == original

    def test_auto_restore_after_duration(self):
        tv = TVSet(seed=2)
        takeaway = BandwidthTakeaway(tv.kernel, tv.soc.bus, tv.soc.arbiter)
        original = tv.soc.bus.bandwidth
        takeaway.take(0.5, duration=10.0)
        tv.run(11.0)
        assert tv.soc.bus.bandwidth == original

    def test_repeated_take_does_not_compound_baseline(self):
        tv = TVSet(seed=2)
        takeaway = BandwidthTakeaway(tv.kernel, tv.soc.bus, tv.soc.arbiter)
        original = tv.soc.bus.bandwidth
        takeaway.take(0.5)
        takeaway.take(0.8)
        takeaway.restore()
        assert tv.soc.bus.bandwidth == original


class TestStressCampaign:
    def test_stress_exposes_overload_behaviour(self):
        """The E7 shape: errors invisible under nominal load appear under
        resource takeaway."""
        campaign = StressCampaign(seed=2, measure=120.0)
        nominal = campaign.run_scenario(StressScenario("nominal"))
        stressed = campaign.run_scenario(StressScenario("eat70", cpu_load=0.7))
        assert nominal.miss_rate < 0.05
        assert stressed.miss_rate > nominal.miss_rate
        assert stressed.mean_frame_quality < nominal.mean_frame_quality

    def test_monotone_in_cpu_load(self):
        campaign = StressCampaign(seed=2, measure=120.0)
        outcomes = campaign.run(
            [
                StressScenario("e25", cpu_load=0.25),
                StressScenario("e70", cpu_load=0.70),
            ]
        )
        assert outcomes[1].mean_frame_quality <= outcomes[0].mean_frame_quality


class TestWarningPrioritization:
    def setup_method(self):
        self.build = SoftwareBuild()
        self.warnings = WarningGenerator(self.build, seed=3).generate()
        self.prioritizer = WarningPrioritizer(self.build, seed=3)

    def test_generation_deterministic(self):
        again = WarningGenerator(self.build, seed=3).generate()
        assert [w.block for w in again] == [w.block for w in self.warnings]

    def test_likelihood_beats_random(self):
        likelihood = self.prioritizer.evaluate(self.warnings, "likelihood")
        rand = self.prioritizer.evaluate(self.warnings, "random")
        assert likelihood.precision_at[50] > rand.precision_at[50]

    def test_likelihood_beats_file_order_deep(self):
        likelihood = self.prioritizer.evaluate(self.warnings, "likelihood")
        file_order = self.prioritizer.evaluate(self.warnings, "file_order")
        assert likelihood.precision_at[100] > file_order.precision_at[100]

    def test_relevance_requires_defect_and_execution(self):
        relevant = [w for w in self.warnings if self.prioritizer.is_relevant(w)]
        assert all(w.is_defect for w in relevant)
        assert all(w.module != "cold_features" for w in relevant)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            self.prioritizer.evaluate(self.warnings, "vibes")


class TestArchitectureFmea:
    def make_fmea(self):
        tv = TVSet(seed=2)
        severity = {
            "video": 0.9,
            "audio": 0.8,
            "teletext": 0.4,
            "control": 1.0,
        }
        return tv, ArchitectureFmea(tv.configuration, severity)

    def test_effects_propagate_against_dependencies(self):
        tv, fmea = self.make_fmea()
        # The control logic declares Koala dependencies on tuner, audio,
        # video, teletext, and features, so each of their failures reaches
        # the user through control.
        for component in ("tuner", "audio", "video", "teletext", "features"):
            assert fmea.affected_by(component) == ["control"]
        assert fmea.affected_by("control") == []

    def test_table_sorted_by_rpn(self):
        tv, fmea = self.make_fmea()
        modes = [
            FailureMode("teletext", "sync-loss", probability=0.2, local_severity=0.4),
            FailureMode("video", "frame-drop", probability=0.1, local_severity=0.9),
            FailureMode("audio", "mute-stuck", probability=0.05, local_severity=0.8,
                        detectability=0.9),
        ]
        table = fmea.analyze(modes)
        rpns = [entry.rpn for entry in table]
        assert rpns == sorted(rpns, reverse=True)

    def test_detectability_lowers_rpn(self):
        tv, fmea = self.make_fmea()
        loud = FailureMode("audio", "a", probability=0.5, local_severity=0.8,
                           detectability=0.0)
        caught = FailureMode("audio", "b", probability=0.5, local_severity=0.8,
                             detectability=0.9)
        table = fmea.analyze([loud, caught])
        assert table[0].failure_mode.name == "a"
        assert table[0].rpn > table[1].rpn

    def test_unknown_component_rejected(self):
        tv, fmea = self.make_fmea()
        with pytest.raises(KeyError):
            fmea.analyze([FailureMode("ghost", "x", 0.1, 0.5)])

    def test_improvement_targets_unique_components(self):
        tv, fmea = self.make_fmea()
        modes = [
            FailureMode("teletext", "m1", 0.9, 0.9),
            FailureMode("teletext", "m2", 0.8, 0.9),
            FailureMode("video", "m3", 0.5, 0.9),
        ]
        targets = fmea.improvement_targets(modes, top_n=2)
        assert targets == ["teletext", "video"]

    def test_user_severity_propagates_to_dependents(self):
        tv, fmea = self.make_fmea()
        # A video failure takes down the control path (severity 1.0), so
        # the user-level severity is the max over the affected set.
        assert fmea.user_severity_of("video") == 1.0
        # The control logic itself is the most severe user-facing loss.
        assert fmea.user_severity_of("control") == 1.0

    def test_user_severity_without_dependents(self):
        tv = TVSet(seed=2)
        fmea = ArchitectureFmea(tv.configuration, {"osd": 0.3})
        # osd has no declared dependents in the Koala graph
        assert fmea.user_severity_of("osd") == 0.3
