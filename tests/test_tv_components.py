"""Tests for the simple TV components: tuner, audio, OSD, features, dual."""

import pytest

from repro.sim import Kernel, RandomStreams
from repro.tv import Audio, DualScreen, Features, Osd, Tuner


class TestTuner:
    def test_tune_valid_channel(self):
        tuner = Tuner()
        assert tuner.op_tuner_tune(channel=5) is True
        assert tuner.op_tuner_get_channel() == 5
        assert tuner.op_tuner_is_locked() is True

    def test_tune_invalid_channel_drops_lock(self):
        tuner = Tuner(channel_count=99)
        assert tuner.op_tuner_tune(channel=500) is False
        assert tuner.op_tuner_is_locked() is False
        assert tuner.op_tuner_signal_quality() == 0.0

    def test_signal_quality_in_unit_interval(self):
        tuner = Tuner(streams=RandomStreams(3))
        for _ in range(100):
            assert 0.0 <= tuner.op_tuner_signal_quality() <= 1.0

    def test_degraded_channel_lowers_quality(self):
        tuner = Tuner(streams=RandomStreams(3))
        tuner.degrade_channel(1, 0.3)
        samples = [tuner.op_tuner_signal_quality() for _ in range(50)]
        assert sum(samples) / len(samples) < 0.5

    def test_restore_channel(self):
        tuner = Tuner(streams=RandomStreams(3))
        tuner.degrade_channel(1, 0.1)
        tuner.restore_channel(1)
        samples = [tuner.op_tuner_signal_quality() for _ in range(50)]
        assert sum(samples) / len(samples) > 0.8

    def test_degrade_validates_range(self):
        tuner = Tuner()
        with pytest.raises(ValueError):
            tuner.degrade_channel(1, 1.5)

    def test_lock_modes(self):
        tuner = Tuner()
        tuner.drop_lock()
        assert tuner.mode == "unlocked"
        tuner.regain_lock()
        assert tuner.mode == "locked"


class TestAudio:
    def test_volume_clamped(self):
        audio = Audio()
        assert audio.op_audio_set_volume(level=150) == 100
        assert audio.op_audio_set_volume(level=-5) == 0

    def test_mute_silences_output(self):
        audio = Audio()
        audio.op_audio_set_volume(level=40)
        audio.op_audio_set_mute(muted=True)
        assert audio.op_audio_effective_level() == 0
        assert audio.mode == "mute"
        audio.op_audio_set_mute(muted=False)
        assert audio.op_audio_effective_level() == 40

    def test_power_off_silences_output(self):
        audio = Audio()
        audio.op_audio_set_volume(level=40)
        audio.set_power(False)
        assert audio.op_audio_effective_level() == 0

    def test_level_listeners_notified(self):
        audio = Audio()
        levels = []
        audio.on_level_change.append(levels.append)
        audio.op_audio_set_volume(level=10)
        audio.op_audio_set_mute(muted=True)
        assert levels == [10, 0]


class TestOsd:
    def test_show_and_hide(self):
        osd = Osd()
        assert osd.op_osd_show_overlay(kind="menu") is True
        assert osd.op_osd_current_overlay() == "menu"
        osd.op_osd_hide_overlay()
        assert osd.op_osd_current_overlay() == "none"

    def test_priority_blocks_lower(self):
        osd = Osd()
        osd.op_osd_show_overlay(kind="menu")
        assert osd.op_osd_show_overlay(kind="volume_bar") is False
        assert osd.op_osd_current_overlay() == "menu"

    def test_alert_beats_everything(self):
        osd = Osd()
        osd.op_osd_show_overlay(kind="menu")
        assert osd.op_osd_show_overlay(kind="alert") is True
        assert osd.op_osd_show_overlay(kind="menu") is False

    def test_hide_specific_kind_only(self):
        osd = Osd()
        osd.op_osd_show_overlay(kind="menu")
        osd.op_osd_hide_overlay(kind="epg")  # wrong kind: no effect
        assert osd.op_osd_current_overlay() == "menu"

    def test_unknown_overlay_rejected(self):
        osd = Osd()
        with pytest.raises(ValueError):
            osd.op_osd_show_overlay(kind="hologram")

    def test_change_listeners(self):
        osd = Osd()
        changes = []
        osd.on_change.append(changes.append)
        osd.op_osd_show_overlay(kind="epg")
        osd.op_osd_hide_overlay()
        assert changes == ["epg", "none"]

    def test_mode_follows_overlay(self):
        osd = Osd()
        osd.op_osd_show_overlay(kind="ttx")
        assert osd.mode == "ttx"


class TestFeatures:
    def test_sleep_cycle_order(self):
        features = Features(Kernel())
        seen = [features.cycle_sleep() for _ in range(6)]
        assert seen == [15, 30, 60, 90, 0, 15]

    def test_sleep_expiry_fires_callback(self):
        kernel = Kernel()
        features = Features(kernel)
        fired = []
        features.on_sleep_expire.append(lambda: fired.append(kernel.now))
        features.op_features_set_sleep(minutes=1)
        kernel.run(until=features.time_per_minute + 1)
        assert len(fired) == 1
        assert features.op_features_get_sleep() == 0

    def test_sleep_rearm_cancels_previous(self):
        kernel = Kernel()
        features = Features(kernel)
        fired = []
        features.on_sleep_expire.append(lambda: fired.append(kernel.now))
        features.op_features_set_sleep(minutes=1)
        features.op_features_set_sleep(minutes=2)
        kernel.run(until=features.time_per_minute * 3)
        assert len(fired) == 1
        assert fired[0] == pytest.approx(2 * features.time_per_minute)

    def test_sleep_zero_disarms(self):
        kernel = Kernel()
        features = Features(kernel)
        fired = []
        features.on_sleep_expire.append(lambda: fired.append(1))
        features.op_features_set_sleep(minutes=1)
        features.op_features_set_sleep(minutes=0)
        kernel.run(until=500.0)
        assert fired == []

    def test_sleep_range_validated(self):
        features = Features(Kernel())
        with pytest.raises(ValueError):
            features.op_features_set_sleep(minutes=999)

    def test_child_lock_requires_enabled_and_listed(self):
        features = Features(Kernel())
        features.lock_channel(7)
        assert features.op_features_is_locked_channel(channel=7) is False
        features.op_features_toggle_lock()
        assert features.op_features_is_locked_channel(channel=7) is True
        assert features.op_features_is_locked_channel(channel=8) is False

    def test_unlock_channel(self):
        features = Features(Kernel())
        features.lock_channel(7)
        features.op_features_toggle_lock()
        features.unlock_channel(7)
        assert features.op_features_is_locked_channel(channel=7) is False

    def test_alert_lifecycle(self):
        features = Features(Kernel())
        assert features.op_features_alert_active() is False
        features.op_features_raise_alert()
        assert features.op_features_alert_active() is True
        features.op_features_clear_alert()
        assert features.op_features_alert_active() is False


class TestDualScreen:
    def test_enter_exit(self):
        dual = DualScreen()
        dual.enter(5)
        assert dual.active and dual.pip_channel == 5
        assert dual.mode == "dual"
        dual.exit()
        assert not dual.active and dual.pip_channel == 0

    def test_swap_exchanges_channels(self):
        dual = DualScreen()
        dual.enter(5)
        new_main = dual.swap(2)
        assert new_main == 5
        assert dual.pip_channel == 2

    def test_swap_inactive_is_noop(self):
        dual = DualScreen()
        assert dual.swap(2) == 2
