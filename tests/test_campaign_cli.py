"""Tests for ``python -m repro.campaign`` (run/resume/status/list/worker).

Mirrors the repro.obs / repro.fuzz CLI test conventions: drive
``main(argv)`` against a tmp_path SQLite store, assert on exit codes
and parsed ``--json`` output.
"""

import json

import pytest

from repro.campaign import run_cell
from repro.campaign.cli import build_parser, main
from repro.scenarios import get_scenario


def run_args(db, *extra):
    return [
        "run", "--db", db, "--scenario", "zapping-storm", "--seeds", "1",
        "--scale", "0.25", "--backend", "inline", "--shards", "2",
        "--campaign-id", "cli-demo", *extra,
    ]


def test_run_then_status_then_resume_then_list(tmp_path, capsys):
    db = str(tmp_path / "campaigns.sqlite")
    assert main(run_args(db)) == 0
    out = capsys.readouterr().out
    assert "zapping-storm" in out
    assert "cli-demo" in out

    assert main(["status", "cli-demo", "--db", db]) == 0
    out = capsys.readouterr().out
    assert "1/1 cells complete" in out
    assert "2/2 shards" in out

    # resume of a complete campaign merges purely from the store and
    # reports the identical digest
    assert main(["resume", "cli-demo", "--db", db, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    scaled = run_cell(get_scenario("zapping-storm").scaled(0.25), 1)
    assert payload[0]["telemetry_digest"] == scaled.telemetry_digest

    assert main(["list", "--db", db]) == 0
    out = capsys.readouterr().out
    assert "cli-demo" in out
    assert "1/1 cells" in out


def test_run_json_emits_parseable_reports(tmp_path, capsys):
    db = str(tmp_path / "campaigns.sqlite")
    assert main(run_args(db, "--json")) == 0
    out = capsys.readouterr().out
    reports = json.loads(out)
    assert len(reports) == 1
    assert reports[0]["scenario"] == "zapping-storm"
    assert reports[0]["telemetry_digest"]


def test_status_and_resume_of_unknown_campaign_exit_nonzero(tmp_path, capsys):
    db = str(tmp_path / "campaigns.sqlite")
    assert main(["status", "ghost", "--db", db]) == 1
    assert "no campaign 'ghost'" in capsys.readouterr().out
    assert main(["resume", "ghost", "--db", db]) == 1
    assert "no campaign 'ghost'" in capsys.readouterr().out


def test_ephemeral_run_writes_no_store(tmp_path, capsys):
    db = str(tmp_path / "campaigns.sqlite")
    assert main(run_args(db, "--ephemeral")) == 0
    capsys.readouterr()
    assert main(["list", "--db", db]) == 0
    assert "no campaigns recorded" in capsys.readouterr().out


def test_socket_backend_requires_worker_addresses(tmp_path):
    db = str(tmp_path / "campaigns.sqlite")
    argv = [
        "run", "--db", db, "--scenario", "zapping-storm",
        "--backend", "socket",
    ]
    with pytest.raises(SystemExit, match="--worker"):
        main(argv)


def test_worker_subcommand_binds_and_exits(capsys):
    assert main(["worker", "--port", "0", "--max-requests", "0"]) == 0
    out = capsys.readouterr().out
    assert "listening on 127.0.0.1:" in out
    assert "served 0 shard(s)" in out


def test_parser_covers_every_subcommand():
    parser = build_parser()
    for argv, expected in (
        (["run", "--scenario", "s"], "run"),
        (["resume", "c"], "resume"),
        (["status", "c"], "status"),
        (["list"], "list"),
        (["worker"], "worker"),
    ):
        assert parser.parse_args(argv).command == expected


def test_shards_argument_accepts_auto_and_rejects_zero():
    parser = build_parser()
    args = parser.parse_args(["run", "--scenario", "s", "--shards", "auto"])
    assert args.shards is None
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--scenario", "s", "--shards", "0"])
