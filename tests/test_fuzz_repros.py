"""Fuzzer-pinned repros: the latent-fault exposure gap and its fix.

The PR 8 fuzz campaigns found (and shrunk) a systematic detection gap:
every ``missed_detection`` verdict was a fault whose triggering
interaction never ran — volume faults with no volume presses, a jammed
feeder in a printer with no jobs.  Passive awareness is blind to a
latent interaction fault, and randomly sampled workloads can starve the
faulty path for a whole scenario horizon.

These tests pin both sides:

* the shrunk failing twins (embedded verbatim from the fuzz corpus)
  still classify as ``missed_detection`` — the gap is real and stays
  documented;
* the ``fuzz-*`` library scenarios — same fault, same horizon, workload
  replaced by the model-coverage exercise profile / a probe job cadence
  — classify ``ok`` with the faulty member detected: the fix closes the
  gap;
* the exercise script itself is deterministic, alphabet-legal, and
  covers every key-triggered spec transition that is structurally
  reachable (so a control-model change cannot silently shrink it).
"""

from repro.fuzz import classify, evaluate_candidate
from repro.scenarios import (
    EXERCISE_KEYS,
    ScenarioSpec,
    exercise_profile,
    get_scenario,
    tv_exercise_script,
    uncovered_by_exercise,
)
from repro.tv.remote import KEYS

# Shrunk by ``repro.fuzz.shrink`` from grammar-sampled candidates
# (campaign seed 0); spec hashes 2c248f67be04… and 8ade5f2b092a… in the
# fuzz corpus.  Embedded verbatim: these are the *failing* twins of the
# ``fuzz-latent-volume`` / ``fuzz-printer-silent-jam`` library entries.
LATENT_VOLUME = {
    "name": "fuzz-2-10-min",
    "description": "grammar-sampled scenario (repro.fuzz)",
    "duration": 16.6,
    "tvs": 1,
    "players": 0,
    "printers": 0,
    "profiles": [{"name": "default", "weight": 1.0, "mean_gap": 4.0}],
    "phases": [
        {"fault": "volume_overshoot", "at": 0.0, "kind": "tv", "fraction": 1.0}
    ],
    "stagger": 0.1,
    "printer_pages": [1, 5],
    "player_packets": 200,
    "corrupt_player_packets": [],
    "telemetry_window": 10.0,
    "telemetry_reservoir": 512,
    "record_spans": False,
}

LATENT_SILENT_JAM = {
    "name": "fuzz-5-25-min",
    "description": "grammar-sampled scenario (repro.fuzz)",
    "duration": 20.3,
    "tvs": 0,
    "players": 0,
    "printers": 1,
    "profiles": [{"name": "default", "weight": 1.0, "mean_gap": 4.0}],
    "phases": [
        {"fault": "silent_jam", "at": 1.0, "kind": "printer", "fraction": 1.0}
    ],
    "stagger": 0.1,
    "printer_pages": [1, 2],
    "player_packets": 200,
    "corrupt_player_packets": [],
    "telemetry_window": 10.0,
    "telemetry_reservoir": 512,
    "record_spans": False,
}


class TestLatentGapStillOpen:
    """The shrunk finders keep failing — the gap stays documented."""

    def test_latent_volume_overshoot_is_missed(self):
        spec = ScenarioSpec.from_json(LATENT_VOLUME)
        result = evaluate_candidate(spec, seed=0, check_divergence=False)
        assert result.verdict.kind == "missed_detection"
        assert result.verdict.fault_pairs == (("tv", "volume_overshoot"),)

    def test_idle_printer_silent_jam_is_missed(self):
        spec = ScenarioSpec.from_json(LATENT_SILENT_JAM)
        result = evaluate_candidate(spec, seed=0, check_divergence=False)
        assert result.verdict.kind == "missed_detection"
        assert result.verdict.fault_pairs == (("printer", "silent_jam"),)


class TestPinnedScenariosDetect:
    """Same faults, exercised workloads: detection closes the gap."""

    def test_fuzz_latent_volume_detects(self):
        spec = get_scenario("fuzz-latent-volume")
        result = evaluate_candidate(spec, seed=0, check_divergence=False)
        assert result.verdict.kind == "ok", result.verdict.describe()
        assert result.report is not None
        assert result.report.detected == ["tv-0"]
        assert result.report.false_alarms == []

    def test_fuzz_printer_silent_jam_detects(self):
        spec = get_scenario("fuzz-printer-silent-jam")
        result = evaluate_candidate(spec, seed=0, check_divergence=False)
        assert result.verdict.kind == "ok", result.verdict.describe()
        assert result.report is not None
        assert result.report.detected == ["printer-0"]
        assert result.report.false_alarms == []

    def test_detection_is_seed_robust(self):
        # The fix must not hinge on one lucky seed: the exercise script
        # is deterministic and the probe cadence is spec-driven, so any
        # campaign seed detects.
        for seed in (1, 7):
            for name in ("fuzz-latent-volume", "fuzz-printer-silent-jam"):
                result = evaluate_candidate(
                    get_scenario(name), seed=seed, check_divergence=False
                )
                assert result.verdict.kind == "ok", (
                    f"{name} seed {seed}: {result.verdict.describe()}"
                )


class TestExerciseScript:
    def test_deterministic(self):
        assert tv_exercise_script() == tv_exercise_script()

    def test_keys_are_legal_remote_keys(self):
        script = tv_exercise_script()
        assert script
        assert set(script) <= set(KEYS)
        assert set(EXERCISE_KEYS) <= set(KEYS)

    def test_covers_every_reachable_key_transition(self):
        # Residue must be structural only: transitions out of ``alert``
        # (entered by the broadcaster, not the remote) and the
        # ``*-locked`` guard variants (no locked channels by default).
        for name in uncovered_by_exercise():
            assert name.startswith("alert") or "-locked" in name, name

    def test_exercise_profile_is_a_valid_scripted_profile(self):
        profile = exercise_profile()
        assert profile.script == tv_exercise_script()
        assert profile.mean_gap > 0
        spec = ScenarioSpec(
            name="exercise-smoke", description="", duration=10.0, tvs=2,
            profiles=(profile,),
        )
        spec.validate()

    def test_classify_agrees_with_fresh_oracle(self):
        # classify() is re-exported for exactly this pinning flow; keep
        # the convenience import honest.
        from repro.campaign import run_cell_detailed

        spec = get_scenario("fuzz-latent-volume")
        cell = run_cell_detailed(spec, 0)
        report, compiled = cell.report, cell.compiled
        verdict = classify(spec, report, compiled)
        assert verdict.kind == "ok"
