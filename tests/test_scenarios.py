"""Tests for the scenario engine (repro.scenarios).

Covers the declarative layer (spec validation), the compiler (profile
assignment, phased fault schedules with repair, streaming-trace auto
mode), the library (≥10 named scenarios, each runnable), and the runner
(scenario × seed sweeps with byte-identical telemetry for a fixed seed).
"""

import json

import pytest

from repro.scenarios import (
    SCENARIOS,
    CompiledScenario,
    FaultPhase,
    ScenarioRunner,
    ScenarioSpec,
    UserProfile,
    format_table,
    get_scenario,
    register_scenario,
    scenario_names,
)

SMALL = ScenarioSpec(
    name="small",
    description="test fixture",
    duration=40.0,
    tvs=4,
    profiles=(UserProfile("p", mean_gap=2.0, keys=("power", "vol_up", "mute")),),
)


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
def test_spec_rejects_empty_mix_and_bad_values():
    with pytest.raises(ValueError, match="empty device mix"):
        ScenarioSpec("x", "d", duration=10.0).validate()
    with pytest.raises(ValueError, match="duration"):
        ScenarioSpec("x", "d", duration=0.0, tvs=1).validate()
    with pytest.raises(ValueError, match="mean_gap"):
        ScenarioSpec(
            "x", "d", duration=10.0, tvs=1, profiles=(UserProfile("p", mean_gap=0),)
        ).validate()
    with pytest.raises(ValueError, match="duplicate profile"):
        ScenarioSpec(
            "x", "d", duration=10.0, tvs=1,
            profiles=(UserProfile("p"), UserProfile("p")),
        ).validate()


def test_spec_rejects_bad_phases():
    with pytest.raises(ValueError, match="unknown fault"):
        FaultPhase("warp_core_breach", at=1.0).validate()
    with pytest.raises(ValueError, match="fraction"):
        FaultPhase("mute_noop", at=1.0, fraction=0.0).validate()
    with pytest.raises(ValueError, match="pulse_every needs"):
        FaultPhase("alert_broadcast", at=1.0, pulse_every=2.0).validate()
    with pytest.raises(ValueError, match="after the scenario ends"):
        ScenarioSpec(
            "x", "d", duration=10.0, tvs=1,
            phases=(FaultPhase("mute_noop", at=20.0),),
        ).validate()


def test_spec_scaling_preserves_shape():
    spec = ScenarioSpec("x", "d", duration=10.0, tvs=10, players=4)
    big = spec.scaled(2.5)
    assert (big.tvs, big.players, big.printers) == (25, 10, 0)
    small = spec.scaled(0.01)
    assert (small.tvs, small.players) == (1, 1)  # present kinds keep >= 1
    with pytest.raises(ValueError):
        spec.scaled(0)


def test_auto_trace_mode_streams_large_fleets():
    assert SMALL.resolve_retain_trace() is True
    big = SMALL.scaled(100)  # 400 TVs
    assert big.resolve_retain_trace() is False
    pinned = ScenarioSpec("x", "d", duration=5.0, tvs=500, retain_trace=True)
    assert pinned.resolve_retain_trace() is True


# ----------------------------------------------------------------------
# compiler
# ----------------------------------------------------------------------
def test_profile_assignment_is_deterministic_and_exhaustive():
    spec = ScenarioSpec(
        "mix", "d", duration=10.0, tvs=20,
        profiles=(UserProfile("a", weight=3.0), UserProfile("b", weight=1.0)),
    )
    first = CompiledScenario(spec, seed=5)
    second = CompiledScenario(spec, seed=5)
    def mix_of(c):
        return {name: len(g) for name, g in c.profile_groups.items()}

    assert mix_of(first) == mix_of(second)
    assert sum(mix_of(first).values()) == 20
    assert mix_of(first)["a"] > mix_of(first)["b"]  # weights respected


def test_fault_phase_applies_and_repairs():
    spec = ScenarioSpec(
        "drill", "d", duration=30.0, tvs=6,
        profiles=(UserProfile("p", mean_gap=3.0, keys=("vol_up", "vol_down")),),
        phases=(FaultPhase("volume_overshoot", at=5.0, fraction=1.0, duration=10.0),),
    )
    compiled = CompiledScenario(spec, seed=1)
    fleet = compiled.fleet
    # drive to mid-phase: the flag must be set on every member
    compiled._started = True
    fleet.power_on_tvs(stagger=spec.stagger)
    compiled._start_users()
    compiled._schedule_phases()
    fleet.run(10.0)
    flags = [m.suo.control.fault_flags.get("volume_overshoot") for m in fleet.members.values()]
    assert all(flags)
    assert len(compiled.faulty) == 6
    # past at + duration the repair must have cleared it everywhere
    fleet.run(10.0)
    flags = [m.suo.control.fault_flags.get("volume_overshoot") for m in fleet.members.values()]
    assert not any(flags)


def test_load_faults_do_not_mark_members_faulty():
    spec = ScenarioSpec(
        "flood", "d", duration=20.0, tvs=4,
        profiles=(UserProfile("p", mean_gap=4.0),),
        phases=(FaultPhase("alert_broadcast", at=5.0, fraction=1.0,
                           duration=10.0, pulse_every=2.0),),
    )
    compiled = CompiledScenario(spec, seed=2)
    report = compiled.run()
    assert report.faulty == []
    assert report.detection_rate == 1.0  # vacuous: nothing injected


def test_compiled_scenario_run_extends_instead_of_restarting():
    compiled = CompiledScenario(SMALL, seed=3)
    first = compiled.run()
    powered_after_first = sum(
        1 for m in compiled.fleet.members.values() if m.suo.powered
    )
    second = compiled.run()
    # drivers not re-attached, TVs not re-power-cycled wholesale
    drivers = [m.driver for m in compiled.fleet.members.values() if m.driver]
    assert len(drivers) == len(set(id(d) for d in drivers))  # no double-attach
    # reports are cumulative: the second covers both segments
    assert second.duration == pytest.approx(2 * first.duration)
    assert compiled.fleet.kernel.now == pytest.approx(second.duration)
    assert second.dispatched >= first.dispatched > 0
    assert powered_after_first >= 1


# ----------------------------------------------------------------------
# library
# ----------------------------------------------------------------------
def test_library_has_at_least_ten_valid_scenarios():
    assert len(SCENARIOS) >= 10
    for name in scenario_names():
        spec = get_scenario(name)
        spec.validate()
        assert spec.members > 0


def test_unknown_scenario_name_is_a_helpful_error():
    with pytest.raises(KeyError, match="zapping-storm"):
        get_scenario("nope")


def test_register_scenario_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_scenario(get_scenario("zapping-storm"))


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_library_scenario_runs_and_is_deterministic(name):
    """Acceptance: each named scenario runs via ScenarioRunner with a
    byte-identical telemetry summary for a fixed seed."""
    runner = ScenarioRunner(scale=0.5)  # half-size fleets keep this fast
    first = runner.run(name, seed=11)
    second = runner.run(name, seed=11)
    assert first.fleet.dispatched == second.fleet.dispatched
    assert first.fleet.trace_digest == second.fleet.trace_digest
    first_bytes = json.dumps(first.telemetry, sort_keys=True)
    second_bytes = json.dumps(second.telemetry, sort_keys=True)
    assert first_bytes == second_bytes
    assert first.telemetry_digest == second.telemetry_digest
    assert first.fleet.members > 0
    assert first.fleet.dispatched > 0


# ----------------------------------------------------------------------
# runner / sweep
# ----------------------------------------------------------------------
def test_sweep_covers_the_full_grid_row_major():
    runner = ScenarioRunner()
    reports = runner.sweep([SMALL], seeds=[1, 2])
    assert [(r.scenario, r.seed) for r in reports] == [("small", 1), ("small", 2)]
    assert reports[0].telemetry_digest != reports[1].telemetry_digest


def test_sweep_accepts_names_and_specs_mixed():
    runner = ScenarioRunner(scale=0.25)
    reports = runner.sweep(["zapping-storm", SMALL], seeds=[4])
    assert [r.scenario for r in reports] == ["zapping-storm", "small"]


def test_format_table_renders_all_rows():
    runner = ScenarioRunner()
    reports = runner.sweep([SMALL], seeds=[1, 2])
    table = format_table(reports)
    assert "scenario" in table and "telemetry digest" in table
    assert table.count("small") == 2


def test_spec_rejects_phase_targeting_missing_kind():
    with pytest.raises(ValueError, match="no such devices"):
        ScenarioSpec(
            "x", "d", duration=10.0, tvs=2,
            phases=(FaultPhase("silent_jam", at=1.0, kind="printer"),),
        ).validate()


def test_monitored_printers_enter_detection_accounting():
    """Printers carry awareness monitors since PR 4 (queue-depth and
    page-rate observables), so injected printer faults count as faulty
    and the silent jam is actually detected — the scenario is no longer
    a structural-zero cell."""
    report = ScenarioRunner().run("printer-burst", seed=3)
    assert report.fleet.faulty, "silent_jam targets must be marked faulty"
    assert all(suo.startswith("printer") for suo in report.fleet.faulty)
    assert report.detection_rate > 0.0
    assert report.false_alarm_rate == 0.0
    compiled = ScenarioRunner().compile("printer-burst", seed=3)
    compiled.run()
    jammed = [m for m in compiled.fleet.members.values()
              if m.kind == "printer" and m.suo.feeder.silently_jammed]
    assert jammed, "silent_jam phase must still afflict printers"
    for member in jammed:
        assert member.monitor is not None
        assert member.faulty
