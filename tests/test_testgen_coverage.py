"""The TestGenerator's public coverage oracle (PR 8 satellite).

``coverage_keys`` / ``transition_names`` / ``uncovered_report`` expose
the transition-coverage universe the generator's greedy walk already
computes — the fuzzer (and these tests) measure against it instead of
re-deriving their own.
"""

from repro.statemachine import CoverageReport, Event, MachineBuilder
from repro.statemachine import TestGenerator as Generator


def toggle_machine():
    b = MachineBuilder("toggle")
    b.state("off")
    b.state("on")
    b.initial("off")
    b.transition("off", "on", event="flip", name="t_on")
    b.transition("on", "off", event="flip", name="t_off")
    return b.build()


def branchy_machine():
    b = MachineBuilder("branchy")
    for name in ("a", "b", "c"):
        b.state(name)
    b.initial("a")
    b.transition("a", "b", event="go", name="a_to_b")
    b.transition("b", "c", event="go", name="b_to_c")
    b.transition("c", "a", event="reset", name="c_to_a")
    # unreachable by the alphabet below
    b.transition("a", "c", event="skip", name="a_to_c")
    return b.build()


class TestCoverageKeys:
    def test_keys_match_generated_scenario_covers(self):
        generator = Generator(toggle_machine(), [Event("flip")])
        keys = generator.coverage_keys()
        scenarios = generator.generate()
        covered = set()
        for scenario in scenarios:
            covered |= scenario.covers
        assert covered == set(keys)
        assert len(keys) == 2

    def test_alphabet_limits_the_universe(self):
        generator = Generator(branchy_machine(), [Event("go"), Event("reset")])
        keys = generator.coverage_keys()
        assert len(keys) == 3  # a_to_c needs "skip", absent from alphabet
        assert all(event in ("go", "reset") for _, _, event in keys)


class TestTransitionNames:
    def test_names_reflect_exploration(self):
        generator = Generator(toggle_machine(), [Event("flip")])
        assert generator.transition_names() == {"t_on", "t_off"}

    def test_unreachable_transition_excluded(self):
        generator = Generator(
            branchy_machine(), [Event("go"), Event("reset")]
        )
        names = generator.transition_names()
        assert "a_to_c" not in names
        assert names == {"a_to_b", "b_to_c", "c_to_a"}


class TestUncoveredReport:
    def test_name_universe_autodetected(self):
        generator = Generator(toggle_machine(), [Event("flip")])
        report = generator.uncovered_report({"t_on"})
        assert isinstance(report, CoverageReport)
        assert report.covered == {"t_on"}
        assert report.uncovered == {"t_off"}
        assert report.total == 2
        assert report.ratio == 0.5

    def test_edge_universe_autodetected(self):
        generator = Generator(toggle_machine(), [Event("flip")])
        keys = set(generator.coverage_keys())
        some = {next(iter(keys))}
        report = generator.uncovered_report(some)
        assert report.covered == some
        assert report.uncovered == keys - some

    def test_foreign_keys_do_not_count(self):
        generator = Generator(toggle_machine(), [Event("flip")])
        report = generator.uncovered_report({"no_such_transition"})
        assert report.covered == frozenset()
        assert report.uncovered == {"t_on", "t_off"}

    def test_full_coverage_report(self):
        generator = Generator(toggle_machine(), [Event("flip")])
        report = generator.uncovered_report(generator.transition_names())
        assert report.ratio == 1.0
        data = report.as_dict()
        assert data["uncovered_keys"] == []
        assert data["covered"] == 2
