"""Behavioural tests for the assembled TV: keys, overlays, interactions."""

import pytest

from repro.tv import TVSet


@pytest.fixture
def tv():
    tv = TVSet(seed=4)
    tv.press("power")
    tv.run(1.0)
    return tv


class TestPower:
    def test_starts_in_standby(self):
        cold = TVSet(seed=4)
        assert cold.screen_descriptor() == {
            "power": False,
            "content": "dark",
            "overlay": "none",
        }
        assert cold.sound_level() == 0

    def test_power_on(self, tv):
        descriptor = tv.screen_descriptor()
        assert descriptor["power"] is True
        assert descriptor["content"] == "video"
        assert tv.sound_level() == 30

    def test_keys_ignored_in_standby(self):
        cold = TVSet(seed=4)
        cold.press("vol_up")
        cold.press("ttx")
        assert cold.screen_descriptor()["content"] == "dark"

    def test_power_off_resets_overlays_and_dual(self, tv):
        tv.press("dual")
        tv.press("power")
        tv.press("power")  # back on
        descriptor = tv.screen_descriptor()
        assert descriptor["content"] == "video"
        assert descriptor["overlay"] == "none"


class TestChannels:
    def test_ch_up_down(self, tv):
        tv.press("ch_up")
        assert tv.screen_descriptor()["channel"] == 2
        tv.press("ch_down")
        assert tv.screen_descriptor()["channel"] == 1

    def test_wraparound(self, tv):
        tv.press("ch_down")
        assert tv.screen_descriptor()["channel"] == tv.tuner.channel_count

    def test_digit_keys(self, tv):
        tv.press("digit7")
        assert tv.screen_descriptor()["channel"] == 7
        tv.press("digit0")
        assert tv.screen_descriptor()["channel"] == 10

    def test_channel_change_blocked_in_menu(self, tv):
        tv.press("menu")
        tv.press("ch_up")
        assert tv.screen_descriptor()["channel"] == 1
        assert tv.screen_descriptor()["overlay"] == "menu"

    def test_child_lock_blocks_locked_channel(self, tv):
        tv.features.lock_channel(3)
        tv.press("lock")  # enable lock
        tv.run(3.0)       # let the info banner dismiss
        tv.press("digit3")
        descriptor = tv.screen_descriptor()
        assert descriptor["channel"] == 1
        assert descriptor["overlay"] == "info_banner"

    def test_channel_change_closes_ttx(self, tv):
        tv.press("ttx")
        tv.press("ch_up")
        assert tv.screen_descriptor()["overlay"] == "none"
        assert tv.teletext.mode == "off"


class TestVolume:
    def test_vol_up_steps_and_shows_bar(self, tv):
        tv.press("vol_up")
        assert tv.sound_level() == 35
        assert tv.screen_descriptor()["overlay"] == "volume_bar"

    def test_volume_bar_times_out(self, tv):
        tv.press("vol_up")
        tv.run(2.5)
        assert tv.screen_descriptor()["overlay"] == "none"

    def test_repeated_presses_rearm_bar(self, tv):
        tv.press("vol_up")
        tv.run(1.5)
        tv.press("vol_up")
        tv.run(1.5)  # only 1.5 since re-arm: still visible
        assert tv.screen_descriptor()["overlay"] == "volume_bar"

    def test_mute_toggle(self, tv):
        tv.press("mute")
        assert tv.sound_level() == 0
        tv.press("mute")
        assert tv.sound_level() == 30

    def test_volume_in_menu_blocked(self, tv):
        tv.press("menu")
        tv.press("vol_up")
        assert tv.sound_level() == 30

    def test_volume_in_ttx_changes_without_bar(self, tv):
        tv.press("ttx")
        tv.press("vol_up")
        assert tv.sound_level() == 35
        assert tv.screen_descriptor()["overlay"] == "ttx"


class TestOverlayInteractions:
    def test_ttx_toggle(self, tv):
        tv.press("ttx")
        assert tv.screen_descriptor()["overlay"] == "ttx"
        tv.press("ttx")
        assert tv.screen_descriptor()["overlay"] == "none"

    def test_menu_suppresses_ttx(self, tv):
        tv.press("ttx")
        tv.press("menu")
        descriptor = tv.screen_descriptor()
        assert descriptor["overlay"] == "menu"
        assert tv.teletext.mode == "off"

    def test_ttx_forces_single_screen(self, tv):
        tv.press("dual")
        assert tv.screen_descriptor()["content"] == "dual"
        tv.press("ttx")
        descriptor = tv.screen_descriptor()
        assert descriptor["content"] == "video"
        assert descriptor["overlay"] == "ttx"

    def test_epg_toggle_and_suppression(self, tv):
        tv.press("epg")
        assert tv.screen_descriptor()["overlay"] == "epg"
        tv.press("menu")
        assert tv.screen_descriptor()["overlay"] == "menu"
        tv.press("epg")  # suppressed by menu
        assert tv.screen_descriptor()["overlay"] == "menu"

    def test_back_closes_overlay(self, tv):
        tv.press("menu")
        tv.press("back")
        assert tv.screen_descriptor()["overlay"] == "none"

    def test_ttx_page_defaults_to_100(self, tv):
        tv.press("ttx")
        assert tv.screen_descriptor()["ttx_page"] == 100

    def test_ttx_status_becomes_shown(self, tv):
        tv.press("ttx")
        tv.run(3.0)
        assert tv.screen_descriptor()["ttx_status"] == "shown"


class TestDualScreen:
    def test_dual_toggle(self, tv):
        tv.press("dual")
        descriptor = tv.screen_descriptor()
        assert descriptor["content"] == "dual"
        assert descriptor["pip_channel"] == 2
        tv.press("dual")
        assert tv.screen_descriptor()["content"] == "video"

    def test_swap(self, tv):
        tv.press("dual")
        tv.press("swap")
        descriptor = tv.screen_descriptor()
        assert descriptor["channel"] == 2
        assert descriptor["pip_channel"] == 1

    def test_swap_outside_dual_is_noop(self, tv):
        tv.press("swap")
        assert tv.screen_descriptor()["channel"] == 1

    def test_dual_blocked_by_menu(self, tv):
        tv.press("menu")
        tv.press("dual")
        assert tv.screen_descriptor()["content"] == "video"


class TestAlertsAndSleep:
    def test_broadcast_alert_takes_over(self, tv):
        tv.broadcast_alert()
        assert tv.screen_descriptor()["overlay"] == "alert"

    def test_alert_blocks_ttx_and_menu(self, tv):
        tv.broadcast_alert()
        tv.press("ttx")
        tv.press("menu")
        assert tv.screen_descriptor()["overlay"] == "alert"

    def test_ok_clears_alert(self, tv):
        tv.broadcast_alert()
        tv.press("ok")
        assert tv.screen_descriptor()["overlay"] == "none"

    def test_alert_ignored_in_standby(self):
        cold = TVSet(seed=4)
        cold.broadcast_alert()
        assert cold.screen_descriptor()["content"] == "dark"

    def test_sleep_timer_powers_off(self, tv):
        tv.press("sleep")  # 15 minutes
        tv.run(15 * tv.features.time_per_minute + 5)
        assert tv.screen_descriptor()["power"] is False

    def test_sleep_key_shows_banner(self, tv):
        tv.press("sleep")
        assert tv.screen_descriptor()["overlay"] == "info_banner"


class TestOutputs:
    def test_output_events_deduplicated(self, tv):
        count = len(tv.output_events)
        tv.publish_outputs()
        tv.publish_outputs()
        assert len(tv.output_events) == count

    def test_output_hooks_receive_changes(self, tv):
        seen = []
        tv.output_hooks.append(seen.append)
        tv.press("mute")
        assert any(e.name == "sound" and e.value == 0 for e in seen)
