"""Tests for distributed execution, shard checkpointing, and resume.

The PR 9 acceptance bar: a campaign interrupted by worker loss and
resumed from its shard checkpoint produces a ``telemetry_digest`` AND
``span_digest`` byte-identical to an uninterrupted serial run — with
the interruption injected deterministically (``WorkerFaultInjector``),
detected for real (pipe EOF from an ``os._exit``-killed process, a
dropped socket), and retried within a bound.
"""

import json
from dataclasses import replace

import pytest

from repro.campaign import (
    CampaignCheckpoint,
    DistributedBackend,
    InlineExecutor,
    ProcessShardBackend,
    ProcessWorkerExecutor,
    ShardExhaustedError,
    ShardResult,
    ShardWorkerServer,
    SocketWorkerExecutor,
    WorkerFaultInjector,
    WorkerLostError,
    execute_plan,
    resolve_shards,
    resume_campaign,
    run_cell,
)
from repro.scenarios import build_plan, get_scenario, partition_plan
from repro.scenarios.plan import ScenarioPlan


def small_spec(record_spans=False):
    spec = get_scenario("zapping-storm").scaled(0.25)
    return replace(spec, record_spans=record_spans) if record_spans else spec


# ----------------------------------------------------------------------
# the fault injector is a pure function
# ----------------------------------------------------------------------
def test_fault_injector_is_deterministic_and_bounded():
    injector = WorkerFaultInjector(kill_shards=(1, 3), kills=2)
    assert injector.should_kill(1, 0)
    assert injector.should_kill(1, 1)
    assert not injector.should_kill(1, 2)  # retries eventually succeed
    assert injector.should_kill(3, 0)
    assert not injector.should_kill(0, 0)
    assert not injector.should_kill(2, 5)


# ----------------------------------------------------------------------
# retry and exhaustion
# ----------------------------------------------------------------------
def test_inline_kill_retries_and_records_attempt_provenance():
    backend = DistributedBackend(
        InlineExecutor(WorkerFaultInjector(kill_shards=(0,), kills=2)),
        shards=1, max_attempts=3,
    )
    plan = build_plan(small_spec(), 5)
    result = backend.submit(plan)
    assert result.attempt == 2  # two losses, third attempt landed it
    assert result.payload["shard_id"] == 0


def test_exhausted_shard_raises_instead_of_merging_partial():
    backend = DistributedBackend(
        InlineExecutor(WorkerFaultInjector(kill_shards=(0,), kills=99)),
        shards=2, max_attempts=2,
    )
    with pytest.raises(ShardExhaustedError, match="shard 0"):
        run_cell(small_spec(), 5, backend=backend)


def test_distributed_inline_matches_serial_digest():
    serial = run_cell(small_spec(), 5)
    backend = DistributedBackend(
        InlineExecutor(WorkerFaultInjector(kill_shards=(1,))), shards=3,
    )
    report = run_cell(small_spec(), 5, backend=backend)
    assert report.telemetry_digest == serial.telemetry_digest
    assert report.shards == 3


# ----------------------------------------------------------------------
# real worker processes: heartbeat, EOF detection, os._exit kills
# ----------------------------------------------------------------------
def test_process_worker_survives_a_real_kill():
    serial = run_cell(small_spec(), 5)
    backend = DistributedBackend(
        ProcessWorkerExecutor(WorkerFaultInjector(kill_shards=(0,))),
        shards=2,
    )
    report = run_cell(small_spec(), 5, backend=backend)
    assert report.telemetry_digest == serial.telemetry_digest


def test_process_worker_loss_is_a_worker_lost_error():
    executor = ProcessWorkerExecutor(
        WorkerFaultInjector(kill_shards=(0,), kills=99)
    )
    plan = build_plan(small_spec(), 5)
    with pytest.raises(WorkerLostError, match="died"):
        executor.run_attempt(plan, 0)


def test_heartbeat_timeout_must_exceed_interval():
    with pytest.raises(ValueError, match="exceed"):
        ProcessWorkerExecutor(heartbeat_interval=1.0, heartbeat_timeout=0.5)


# ----------------------------------------------------------------------
# wire forms round-trip exactly
# ----------------------------------------------------------------------
def test_shard_plan_json_round_trip_including_partitions():
    spec = replace(get_scenario("recovery-ladder-drill"), record_spans=True)
    plan = build_plan(spec, 7)
    assert ScenarioPlan.from_json(plan.to_json()) == plan
    for shard in partition_plan(plan, 3):
        restored = ScenarioPlan.from_json(
            json.loads(json.dumps(shard.to_json()))
        )
        assert restored == shard
        # the restored plan executes byte-identically
        assert execute_plan(restored)["trace_digest"] == \
            execute_plan(shard)["trace_digest"]


def test_shard_result_json_round_trip():
    plan = partition_plan(build_plan(small_spec(), 5), 2)[1]
    result = ShardResult(
        shard_id=1, payload=execute_plan(plan), attempt=2, worker="w-9",
    )
    restored = ShardResult.from_json(json.loads(
        json.dumps(result.to_json(), sort_keys=True)
    ))
    assert restored.shard_id == 1
    assert restored.attempt == 2
    assert restored.worker == "w-9"
    assert restored.payload == result.payload


# ----------------------------------------------------------------------
# socket workers
# ----------------------------------------------------------------------
def test_socket_workers_match_serial_and_survive_a_dropped_connection():
    serial = run_cell(small_spec(), 5)
    # worker 0 drops shard 0's first attempt on the floor; the retry
    # rotates to the healthy worker (shard reassignment).
    flaky = ShardWorkerServer(
        fault_injector=WorkerFaultInjector(kill_shards=(0,))
    )
    healthy = ShardWorkerServer()
    flaky.serve_in_background()
    healthy.serve_in_background()
    try:
        backend = DistributedBackend(
            SocketWorkerExecutor([flaky.address, healthy.address]),
            shards=2,
        )
        report = run_cell(small_spec(), 5, backend=backend)
    finally:
        flaky.close()
        healthy.close()
    assert report.telemetry_digest == serial.telemetry_digest


def test_unreachable_socket_worker_is_a_worker_lost_error():
    # bind-then-close guarantees a dead port
    server = ShardWorkerServer()
    address = server.address
    server.close()
    executor = SocketWorkerExecutor([address], timeout=2.0)
    plan = build_plan(small_spec(), 5)
    with pytest.raises(WorkerLostError, match="unreachable"):
        executor.run_attempt(plan, 0)


# ----------------------------------------------------------------------
# checkpointing and resume: the tentpole guarantee
# ----------------------------------------------------------------------
class CountingExecutor(InlineExecutor):
    """InlineExecutor that counts which shards actually executed."""

    def __init__(self, fault_injector=None):
        super().__init__(fault_injector)
        self.executed = []

    def run_attempt(self, plan, attempt):
        result = super().run_attempt(plan, attempt)
        self.executed.append(plan.shard_id)
        return result


@pytest.mark.parametrize(
    "name", ["recovery-ladder-drill", "targeted-rebind-storm"]
)
def test_interrupt_then_resume_is_digest_identical_to_serial(name, tmp_path):
    """Kill one shard's worker mid-campaign, resume from the shard
    checkpoint, and both determinism witnesses — telemetry digest and
    span-forest digest — must equal an uninterrupted serial run's."""
    spec = replace(get_scenario(name), record_spans=True)
    serial = run_cell(spec, 7)
    db = str(tmp_path / "checkpoint.sqlite")
    shards = 3

    # Sitting 1: shard 1's worker dies with no retry allowed; the cell
    # raises, but every other shard is already durable.
    broken = DistributedBackend(
        InlineExecutor(WorkerFaultInjector(kill_shards=(1,))),
        shards=shards, max_attempts=1,
    )
    with CampaignCheckpoint(db) as checkpoint:
        with pytest.raises(ShardExhaustedError):
            run_cell(
                spec, 7, backend=broken,
                checkpoint=checkpoint, campaign_id="drill",
            )
        durable = checkpoint.status("drill")["cells"][0]["completed_shards"]
    assert durable == shards - 1

    # Sitting 2: resume re-executes ONLY the lost shard.
    counting = CountingExecutor()
    healthy = DistributedBackend(counting, shards=shards)
    with CampaignCheckpoint(db) as checkpoint:
        reports = resume_campaign("drill", checkpoint, backend=healthy)
    assert counting.executed == [1]
    assert len(reports) == 1
    resumed = reports[0]
    assert resumed.telemetry_digest == serial.telemetry_digest
    assert resumed.span_digest == serial.span_digest
    assert resumed.shards == shards

    # A third sitting merges purely from the store — still identical.
    with CampaignCheckpoint(db) as checkpoint:
        again = resume_campaign("drill", checkpoint)
        status = checkpoint.status("drill")
    assert again[0].telemetry_digest == serial.telemetry_digest
    assert again[0].span_digest == serial.span_digest
    assert status["complete"]
    assert status["cells"][0]["telemetry_digest"] == serial.telemetry_digest


def test_resume_reuses_recorded_shard_resolution(tmp_path):
    """The partition recorded at begin_cell wins on resume: a resuming
    backend with a different shard policy must not re-partition."""
    db = str(tmp_path / "checkpoint.sqlite")
    spec = small_spec()
    with CampaignCheckpoint(db) as checkpoint:
        with pytest.raises(ShardExhaustedError):
            run_cell(
                spec, 5,
                backend=DistributedBackend(
                    InlineExecutor(WorkerFaultInjector(kill_shards=(2,))),
                    shards=3, max_attempts=1,
                ),
                checkpoint=checkpoint, campaign_id="c",
            )
    # resume with a backend that would resolve to 5 shards
    with CampaignCheckpoint(db) as checkpoint:
        reports = resume_campaign(
            "c", checkpoint,
            backend=DistributedBackend(InlineExecutor(), shards=5),
        )
        cell = checkpoint.status("c")["cells"][0]
    assert reports[0].shards == 3
    assert cell["resolved_shards"] == 3
    assert reports[0].telemetry_digest == run_cell(spec, 5).telemetry_digest


def test_autotune_decision_is_recorded_in_the_checkpoint_row(tmp_path):
    spec = get_scenario("zapping-storm")  # 120 members at full scale
    db = str(tmp_path / "checkpoint.sqlite")
    backend = ProcessShardBackend(shards=None, inline=True)
    with CampaignCheckpoint(db) as checkpoint:
        run_cell(
            spec, 5, backend=backend,
            checkpoint=checkpoint, campaign_id="auto",
        )
        cell = checkpoint.status("auto")["cells"][0]
    assert cell["requested_shards"] == "auto"
    assert cell["resolved_shards"] == resolve_shards(spec.members)
    assert cell["completed_shards"] == cell["resolved_shards"]


def test_retried_shard_appends_attempts_never_overwrites(tmp_path):
    db = str(tmp_path / "checkpoint.sqlite")
    backend = DistributedBackend(
        InlineExecutor(WorkerFaultInjector(kill_shards=(0,), kills=1)),
        shards=2, max_attempts=2,
    )
    with CampaignCheckpoint(db) as checkpoint:
        run_cell(
            small_spec(), 5, backend=backend,
            checkpoint=checkpoint, campaign_id="c",
        )
        cell = checkpoint.cells("c")[0]
        rows = checkpoint.history.campaign_shard_rows(cell["id"])
    by_shard = {row["shard_id"]: row for row in rows}
    assert by_shard[0]["attempt"] == 1  # the retry, not the kill
    assert by_shard[1]["attempt"] == 0


def test_checkpointed_rerun_skips_every_durable_shard(tmp_path):
    """Re-running a completed campaign cell executes nothing."""
    db = str(tmp_path / "checkpoint.sqlite")
    first = CountingExecutor()
    with CampaignCheckpoint(db) as checkpoint:
        run_cell(
            small_spec(), 5, backend=DistributedBackend(first, shards=2),
            checkpoint=checkpoint, campaign_id="c",
        )
    assert sorted(first.executed) == [0, 1]
    second = CountingExecutor()
    with CampaignCheckpoint(db) as checkpoint:
        report = run_cell(
            small_spec(), 5, backend=DistributedBackend(second, shards=2),
            checkpoint=checkpoint, campaign_id="c",
        )
    assert second.executed == []
    assert report.telemetry_digest == run_cell(small_spec(), 5).telemetry_digest


def test_resume_unknown_campaign_raises_key_error(tmp_path):
    db = str(tmp_path / "checkpoint.sqlite")
    with CampaignCheckpoint(db) as checkpoint:
        with pytest.raises(KeyError, match="nope"):
            resume_campaign("nope", checkpoint)
