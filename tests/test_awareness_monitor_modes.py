"""Tests for the assembled awareness monitor and mode-consistency checking."""


from repro.awareness import (
    ModeConsistencyChecker,
    default_tv_config,
    make_player_monitor,
    make_tv_monitor,
    modes_equal_rule,
    ttx_sync_rule,
)
from repro.sim import Kernel
from repro.tv import FaultInjector, MediaPlayer, MediaSource, TVSet


def drive(tv, keys, gap=4.0, settle=6.0):
    for key in keys:
        tv.press(key)
        tv.run(gap)
    tv.run(settle)


class TestTvMonitorEndToEnd:
    def test_no_false_positives_fault_free(self):
        tv = TVSet(seed=31)
        monitor = make_tv_monitor(tv)
        drive(tv, [
            "power", "vol_up", "ch_up", "ttx", "ch_down", "menu", "back",
            "mute", "mute", "dual", "swap", "dual", "epg", "epg", "power",
        ])
        assert monitor.errors == []
        assert monitor.comparator.stats.comparisons > 50

    def test_transients_occur_but_are_suppressed(self):
        tv = TVSet(seed=31)
        monitor = make_tv_monitor(tv)
        drive(tv, ["power", "ttx", "ch_up", "ttx", "menu", "power"])
        assert monitor.errors == []
        # IPC delay + model/system race: deviations happen, then clear.
        assert monitor.comparator.stats.deviations > 0

    def test_detects_mute_fault(self):
        tv = TVSet(seed=32)
        monitor = make_tv_monitor(tv)
        FaultInjector(tv).inject("mute_noop")
        drive(tv, ["power", "mute"])
        assert any(e.observable == "sound" for e in monitor.errors)

    def test_detects_volume_overshoot(self):
        tv = TVSet(seed=32)
        monitor = make_tv_monitor(tv)
        FaultInjector(tv).inject("volume_overshoot")
        drive(tv, ["power", "vol_up"])
        errors = [e for e in monitor.errors if e.observable == "sound"]
        assert errors and errors[0].actual == 100

    def test_detects_menu_opens_epg(self):
        tv = TVSet(seed=32)
        monitor = make_tv_monitor(tv)
        FaultInjector(tv).inject("menu_opens_epg")
        drive(tv, ["power", "menu"])
        errors = [e for e in monitor.errors if e.observable == "screen"]
        assert errors
        assert errors[0].actual["overlay"] == "epg"

    def test_detects_stale_teletext(self):
        tv = TVSet(seed=32)
        monitor = make_tv_monitor(tv)
        FaultInjector(tv).inject("ttx_stale_render")
        drive(tv, ["power", "ttx"], settle=10.0)
        errors = [e for e in monitor.errors if e.observable == "screen"]
        assert errors
        assert errors[0].actual["ttx_status"] == "searching"
        assert errors[0].expected["ttx_status"] == "shown"

    def test_detection_latency_recorded(self):
        tv = TVSet(seed=32)
        monitor = make_tv_monitor(tv)
        FaultInjector(tv).inject("mute_noop")
        drive(tv, ["power", "mute"])
        report = monitor.errors[0]
        assert report.context["first_deviation_at"] <= report.time

    def test_monitor_stop_freezes_detection(self):
        tv = TVSet(seed=32)
        monitor = make_tv_monitor(tv)
        monitor.stop()
        FaultInjector(tv).inject("mute_noop")
        drive(tv, ["power", "mute"])
        assert monitor.errors == []

    def test_alert_stimulus_observed(self):
        tv = TVSet(seed=33)
        monitor = make_tv_monitor(tv)
        drive(tv, ["power"])
        tv.broadcast_alert()
        tv.run(6.0)
        assert monitor.errors == []  # spec tracks the alert too

    def test_strict_config_false_positives(self):
        """Zero tolerance (max_consecutive=1, fast sampling) turns IPC
        transients into false errors — the Sect. 4.3 trade-off."""
        tv = TVSet(seed=31)
        config = default_tv_config(max_consecutive=1, period=0.2)
        monitor = make_tv_monitor(tv, config=config, channel_delay=0.3, channel_jitter=0.2)
        drive(tv, ["power", "ttx", "ch_up", "ttx", "menu", "back", "power"])
        assert len(monitor.errors) > 0  # false alarms: no fault injected


class TestPlayerMonitor:
    def test_player_monitor_fault_free(self):
        kernel = Kernel()
        player = MediaPlayer(kernel, MediaSource(packet_count=200))
        monitor = make_player_monitor(player)
        for command, at in [("play", 1.0), ("pause", 8.0), ("play", 12.0)]:
            kernel.run(until=at)
            player.command(command)
        kernel.run(until=30.0)
        assert monitor.errors == []

    def test_player_monitor_detects_command_loss(self):
        kernel = Kernel()
        player = MediaPlayer(kernel, MediaSource(packet_count=200))
        monitor = make_player_monitor(player)
        kernel.run(until=1.0)
        player.command("play")
        kernel.run(until=5.0)
        # Fault: the pause handler is dead — state stays 'playing'.
        player._cmd_pause = lambda: None
        player.command("pause")
        kernel.run(until=15.0)
        errors = [e for e in monitor.errors if e.observable == "state"]
        assert errors
        assert errors[0].expected == "paused"
        assert errors[0].actual == "playing"


class TestModeConsistency:
    def test_ttx_sync_rule_violation_detected(self):
        tv = TVSet(seed=34)
        checker = ModeConsistencyChecker(
            tv.kernel,
            lambda: {
                tv.teletext.acquirer.name: tv.teletext.acquirer.mode,
                tv.teletext.renderer.name: tv.teletext.renderer.mode,
            },
            interval=1.0,
        )
        checker.add_rule(
            ttx_sync_rule(tv.teletext.acquirer.name, tv.teletext.renderer.name)
        )
        checker.start()
        FaultInjector(tv).inject("drop_ttx_notify")
        drive(tv, ["power", "ttx", "ch_up", "ttx"], settle=10.0)
        assert len(checker.reports) == 1
        assert "expected acquiring:ch2" in checker.reports[0].actual

    def test_no_violation_without_fault(self):
        tv = TVSet(seed=34)
        checker = ModeConsistencyChecker(
            tv.kernel,
            lambda: {
                tv.teletext.acquirer.name: tv.teletext.acquirer.mode,
                tv.teletext.renderer.name: tv.teletext.renderer.mode,
            },
            interval=1.0,
        )
        checker.add_rule(
            ttx_sync_rule(tv.teletext.acquirer.name, tv.teletext.renderer.name)
        )
        checker.start()
        drive(tv, ["power", "ttx", "ch_up", "ttx", "ttx", "power"])
        assert checker.reports == []
        assert checker.samples > 10

    def test_modes_equal_rule(self):
        modes = {"a": "x", "b": "x"}
        rule = modes_equal_rule("ab-equal", "a", "b")
        assert rule.check(modes) is None
        modes["b"] = "y"
        assert rule.check(modes) is not None

    def test_consecutive_tolerance_suppresses_blips(self):
        kernel = Kernel()
        modes = {"a": "same", "b": "same"}
        checker = ModeConsistencyChecker(kernel, lambda: dict(modes), interval=1.0)
        checker.add_rule(modes_equal_rule("eq", "a", "b", max_consecutive=3))
        checker.start()
        # blip for two samples, then re-sync: below tolerance
        kernel.schedule(1.5, lambda: modes.update(b="other"))
        kernel.schedule(3.5, lambda: modes.update(b="same"))
        kernel.run(until=10.0)
        assert checker.reports == []

    def test_reset_clears_reported_state(self):
        kernel = Kernel()
        modes = {"a": "x", "b": "y"}
        checker = ModeConsistencyChecker(kernel, lambda: dict(modes), interval=1.0)
        checker.add_rule(modes_equal_rule("eq", "a", "b", max_consecutive=1))
        checker.start()
        kernel.run(until=5.0)
        assert len(checker.reports) == 1
        checker.reset()
        kernel.run(until=10.0)
        assert len(checker.reports) == 2
