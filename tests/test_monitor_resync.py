"""Tests for the monitor restart re-sync handshake (ROADMAP item).

A monitor stopped mid-session misses inputs; before PR 3 a restarted
monitor replayed expectations from its stale model and false-alarmed on
the first post-restart interaction (monitor-churn showed 30-45%% false
alarm rates).  The handshake re-seeds the model executor — and the
output observer's last-seen values — from the SUO's current observable
state, and flushes in-flight channel datagrams so missed inputs are
neither replayed nor double-applied.
"""

import pytest

from repro.awareness.monitor import make_tv_monitor
from repro.campaign import Campaign
from repro.sim.kernel import Kernel
from repro.tv.control_model import build_tv_model
from repro.tv.tvset import TVSet


def _churned_tv(resync: bool):
    """One TV whose monitor misses inputs during a stop window."""
    kernel = Kernel()
    tv = TVSet(kernel=kernel, seed=5, suo_id="tv-0")
    monitor = make_tv_monitor(tv, name="tv-0.awareness")
    tv.press("power"); tv.run(3.0)
    tv.press("ch_up"); tv.run(2.0)
    monitor.stop()
    if not resync:
        monitor._resync = None  # simulate the pre-PR 3 restart
    # inputs the stopped monitor never sees
    tv.press("vol_up"); tv.run(1.0)
    tv.press("vol_up"); tv.run(1.0)
    tv.press("ch_up"); tv.run(1.0)
    monitor.start()
    # post-restart activity: a stale model diverges here
    tv.press("vol_up"); tv.run(3.0)
    tv.press("ch_up"); tv.run(3.0)
    tv.run(4.0)
    return tv, monitor


def test_restarted_monitor_does_not_false_alarm_on_missed_inputs():
    tv, monitor = _churned_tv(resync=True)
    assert monitor.resyncs == 1
    assert monitor.errors == []
    # the re-seeded model tracks the TV's true state
    machine = monitor.executor.machine
    assert machine.get("channel") == tv.channel
    assert machine.get("volume") == tv.audio.op_audio_get_volume()


def test_without_resync_the_stale_model_false_alarms():
    """The guard the handshake exists for: restarting without re-seeding
    reports errors on a perfectly healthy TV."""
    _tv, monitor = _churned_tv(resync=False)
    assert monitor.resyncs == 0
    assert len(monitor.errors) > 0


def test_monitor_churn_scenario_has_zero_false_alarms():
    """End to end: the monitor-churn library scenario (stop/restart
    waves over a live fleet) must no longer false-alarm."""
    for seed in (1, 2):
        report = Campaign("monitor-churn").run_cell("monitor-churn", seed=seed)
        assert report.false_alarms == [], f"seed {seed}"
        assert report.false_alarm_rate == 0.0


def test_resync_flushes_in_flight_messages():
    kernel = Kernel()
    tv = TVSet(kernel=kernel, seed=5, suo_id="tv-0")
    monitor = make_tv_monitor(tv, name="tv-0.awareness")
    tv.press("power"); tv.run(3.0)
    monitor.stop()
    tv.press("vol_up")  # datagram enters the channel, never delivered
    assert monitor.input_channel.pending() > 0
    monitor.start()
    assert monitor.input_channel.pending() == 0
    assert monitor.input_channel.flushed > 0
    tv.run(5.0)
    assert monitor.errors == []


def test_stop_start_without_intervening_stop_is_a_plain_start():
    kernel = Kernel()
    tv = TVSet(kernel=kernel, seed=5, suo_id="tv-0")
    monitor = make_tv_monitor(tv, name="tv-0.awareness")
    monitor.start()  # already started by the factory: no-op, no resync
    assert monitor.resyncs == 0


# ----------------------------------------------------------------------
# Machine.reseed (the mechanism under the handshake)
# ----------------------------------------------------------------------
def test_machine_reseed_adopts_state_vars_and_timers():
    machine = build_tv_model()
    machine.initialize()
    machine.inject("power")
    machine.reseed("volbar", 12.0, vars={"volume": 55, "channel": 7})
    assert machine.configuration().endswith("on.volbar")
    assert machine.time == 12.0
    assert machine.get("volume") == 55
    # the volbar after-timer re-armed at the default offset
    assert machine.next_timeout() == pytest.approx(14.0)
    machine.advance(15.0)
    assert machine.configuration().endswith("on.viewing")


def test_machine_reseed_honors_explicit_timer_deadlines():
    machine = build_tv_model()
    machine.initialize()
    machine.inject("power")
    machine.reseed("volbar", 12.0, timer_deadlines={"volbar": 12.4})
    assert machine.next_timeout() == pytest.approx(12.4)


def test_machine_reseed_rejects_time_travel_and_unknown_states():
    machine = build_tv_model()
    machine.initialize()
    machine.advance(5.0)
    from repro.statemachine.machine import MachineError

    with pytest.raises(MachineError):
        machine.reseed("viewing", 1.0, vars={"volume": 99})
    # the failed reseed must not have half-applied its vars
    assert machine.get("volume") != 99
    with pytest.raises(MachineError):
        machine.reseed("warp-core", 6.0)
