"""Tests for teletext synchronization and the video pipeline."""


from repro.sim import Kernel
from repro.tv import TVSet, Teletext


class TestTeletext:
    def make(self):
        kernel = Kernel()
        return kernel, Teletext(kernel)

    def test_show_starts_acquisition(self):
        kernel, ttx = self.make()
        ttx.op_ttx_show(page=100)
        assert ttx.acquirer.mode == "acquiring:ch1"
        assert ttx.renderer.mode == "visible:ch1"

    def test_page_shown_after_acquisition_cycle(self):
        kernel, ttx = self.make()
        ttx.op_ttx_show(page=100)
        assert ttx.op_ttx_rendered_page()["status"] == "searching"
        kernel.run(until=2.0)
        assert ttx.op_ttx_rendered_page()["status"] == "shown"

    def test_hide_stops_acquisition(self):
        kernel, ttx = self.make()
        ttx.op_ttx_show(page=100)
        ttx.op_ttx_hide()
        assert ttx.acquirer.mode == "idle"
        assert ttx.renderer.mode == "hidden"
        assert ttx.op_ttx_rendered_page() == {"visible": False}

    def test_channel_change_flushes_cache(self):
        kernel, ttx = self.make()
        ttx.op_ttx_show(page=100)
        kernel.run(until=5.0)
        assert len(ttx.acquirer.cache) > 0
        ttx.notify_channel(7)
        assert all(channel == 7 for channel, _ in ttx.acquirer.cache)

    def test_sync_loss_keeps_acquirer_on_old_channel(self):
        kernel, ttx = self.make()
        ttx.op_ttx_show(page=100)
        ttx.inject_sync_loss()
        ttx.notify_channel(9)
        assert ttx.acquirer.believed_channel == 1
        assert ttx.acquirer.missed_updates == 1
        assert ttx.renderer.mode == "visible:ch9"

    def test_sync_loss_causes_endless_searching(self):
        kernel, ttx = self.make()
        ttx.op_ttx_show(page=100)
        ttx.inject_sync_loss()
        ttx.notify_channel(9)
        kernel.run(until=30.0)
        assert ttx.op_ttx_rendered_page()["status"] == "searching"

    def test_repair_restores_sync(self):
        kernel, ttx = self.make()
        ttx.op_ttx_show(page=100)
        ttx.inject_sync_loss()
        ttx.notify_channel(9)
        ttx.repair_sync()
        assert ttx.acquirer.believed_channel == 9
        kernel.run(until=kernel.now + 3.0)
        assert ttx.op_ttx_rendered_page()["status"] == "shown"


class TestVideoPipeline:
    def test_pipeline_produces_frames_when_unblanked(self):
        tv = TVSet(seed=1)
        tv.press("power")
        tv.run(20.0)
        assert len(tv.video.frames) > 0

    def test_no_frames_while_blanked(self):
        tv = TVSet(seed=1)
        tv.run(20.0)  # never powered on
        assert tv.video.frames == []

    def test_good_signal_good_quality(self):
        tv = TVSet(seed=1)
        tv.press("power")
        tv.run(60.0)
        assert tv.video.mean_quality(since=20.0) > 0.8
        assert tv.video.degraded_fraction(since=20.0) < 0.1

    def test_bad_signal_degrades_quality(self):
        tv = TVSet(seed=1)
        tv.press("power")
        tv.run(20.0)
        tv.tuner.degrade_channel(1, 0.4)
        tv.run(150.0)
        assert tv.video.mean_quality(since=100.0) < 0.5

    def test_errcorr_work_scales_with_signal(self):
        tv = TVSet(seed=1)
        tv.press("power")
        tv.run(5.0)
        nominal = tv.video._errcorr_work()
        tv.tuner.degrade_channel(1, 0.2)
        degraded = tv.video._errcorr_work()
        assert degraded > nominal

    def test_frame_listener_called(self):
        tv = TVSet(seed=1)
        frames = []
        tv.video.on_frame.append(frames.append)
        tv.press("power")
        tv.run(20.0)
        assert frames and all(0.0 <= f.quality <= 1.0 for f in frames)

    def test_stop_pipeline_removes_tasks(self):
        tv = TVSet(seed=1)
        tv.press("power")
        tv.run(5.0)
        assert len(tv.video.tasks) == 3
        tv.video.stop_pipeline()
        assert tv.video.tasks == []
        assert "video.decode" not in tv.soc.scheduler.tasks
