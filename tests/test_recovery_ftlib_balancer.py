"""Tests for the FT library, load balancer, and adaptive memory arbiter."""

import pytest

from repro.platform import MemoryArbiter
from repro.recovery import (
    AdaptiveArbiterController,
    CheckpointStore,
    Heartbeat,
    LoadBalancer,
    Watchdog,
    with_retries,
)
from repro.sim import Delay, Kernel, Process
from repro.tv import TVSet


class TestCheckpointStore:
    def test_save_and_latest(self):
        store = CheckpointStore()
        store.save(1.0, {"x": 1})
        store.save(2.0, {"x": 2})
        assert store.latest() == {"x": 2}

    def test_rollback_at_or_before(self):
        store = CheckpointStore()
        store.save(1.0, {"x": 1})
        store.save(5.0, {"x": 5})
        assert store.at_or_before(3.0) == {"x": 1}
        assert store.at_or_before(0.5) is None

    def test_snapshots_are_deep_copies(self):
        store = CheckpointStore()
        state = {"nested": [1, 2]}
        store.save(1.0, state)
        state["nested"].append(3)
        assert store.latest() == {"nested": [1, 2]}

    def test_capacity_evicts_oldest(self):
        store = CheckpointStore(capacity=2)
        for i in range(4):
            store.save(float(i), {"v": i})
        assert len(store) == 2
        assert store.at_or_before(0.5) is None  # oldest evicted

    def test_empty_latest(self):
        assert CheckpointStore().latest() is None


class TestWatchdog:
    def test_fires_without_kick(self):
        kernel = Kernel()
        fired = []
        watchdog = Watchdog(kernel, deadline=2.0, on_timeout=lambda: fired.append(kernel.now))
        watchdog.start()
        kernel.run(until=5.0)
        assert fired == [2.0, 4.0]

    def test_kicks_defer_timeout(self):
        kernel = Kernel()
        fired = []
        watchdog = Watchdog(kernel, deadline=2.0, on_timeout=lambda: fired.append(1))

        def kicker():
            for _ in range(5):
                yield Delay(1.0)
                watchdog.kick()

        watchdog.start()
        Process(kernel, kicker())
        kernel.run(until=5.0)
        assert fired == []
        assert watchdog.kicks == 5

    def test_stop_disarms(self):
        kernel = Kernel()
        fired = []
        watchdog = Watchdog(kernel, deadline=1.0, on_timeout=lambda: fired.append(1))
        watchdog.start()
        watchdog.stop()
        kernel.run(until=5.0)
        assert fired == []

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            Watchdog(Kernel(), deadline=0.0, on_timeout=lambda: None)


class TestHeartbeatAndRetries:
    def test_heartbeat_beats_periodically(self):
        kernel = Kernel()
        beats = []
        heartbeat = Heartbeat(kernel, period=1.0, emit=lambda: beats.append(kernel.now))
        heartbeat.start()
        kernel.run(until=4.5)
        assert beats == [1.0, 2.0, 3.0, 4.0]
        heartbeat.stop()
        kernel.run(until=10.0)
        assert len(beats) == 4

    def test_heartbeat_kicks_watchdog(self):
        kernel = Kernel()
        fired = []
        watchdog = Watchdog(kernel, deadline=3.0, on_timeout=lambda: fired.append(1))
        heartbeat = Heartbeat(kernel, period=1.0, emit=watchdog.kick)
        watchdog.start()
        heartbeat.start()
        kernel.run(until=10.0)
        assert fired == []

    def test_with_retries_succeeds_after_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise IOError("transient")
            return "ok"

        assert with_retries(flaky, attempts=5) == "ok"
        assert len(attempts) == 3

    def test_with_retries_exhausts(self):
        def always_fails():
            raise IOError("permanent")

        retries = []
        with pytest.raises(IOError):
            with_retries(
                always_fails, attempts=3, on_retry=lambda n, e: retries.append(n)
            )
        assert retries == [1, 2, 3]


class TestLoadBalancer:
    def overloaded_tv(self, migrate):
        tv = TVSet(seed=9)
        tv.press("power")
        tv.run(20.0)
        tv.tuner.degrade_channel(1, 0.45)  # error correction inflates load
        balancer = None
        if migrate:
            balancer = LoadBalancer(
                tv.kernel,
                tv.soc.scheduler,
                movable_tasks=["video.enhance"],
                miss_rate_threshold=0.2,
                interval=4.0,
            )
            balancer.start()
        start = tv.kernel.now
        tv.run(300.0)
        return tv, balancer, start

    def test_overload_degrades_quality_without_migration(self):
        tv, _, start = self.overloaded_tv(migrate=False)
        assert tv.video.mean_quality(since=start + 60) < 0.2

    def test_migration_improves_quality(self):
        tv_static, _, start_s = self.overloaded_tv(migrate=False)
        tv_balanced, balancer, start_b = self.overloaded_tv(migrate=True)
        static_quality = tv_static.video.mean_quality(since=start_s + 60)
        balanced_quality = tv_balanced.video.mean_quality(since=start_b + 60)
        assert balancer.decisions, "balancer never migrated"
        assert balanced_quality > 2 * static_quality

    def test_migration_decision_recorded(self):
        _, balancer, _ = self.overloaded_tv(migrate=True)
        decision = balancer.decisions[0]
        assert decision.task == "video.enhance"
        assert decision.source != decision.target
        assert decision.miss_rate >= 0.2

    def test_no_migration_when_healthy(self):
        tv = TVSet(seed=9)
        tv.press("power")
        balancer = LoadBalancer(
            tv.kernel, tv.soc.scheduler, movable_tasks=["video.enhance"], interval=4.0
        )
        balancer.start()
        tv.run(200.0)
        assert balancer.decisions == []

    def test_cooldown_limits_migration_rate(self):
        tv = TVSet(seed=9)
        tv.press("power")
        tv.run(10.0)
        tv.tuner.degrade_channel(1, 0.2)  # hopeless overload anywhere
        balancer = LoadBalancer(
            tv.kernel,
            tv.soc.scheduler,
            movable_tasks=["video.enhance", "video.errcorr"],
            miss_rate_threshold=0.1,
            interval=2.0,
            cooldown=50.0,
        )
        balancer.start()
        tv.run(100.0)
        assert len(balancer.decisions) <= 2


class TestAdaptiveArbiter:
    def contended_arbiter(self, adapt):
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=100.0)
        controller = None
        if adapt:
            controller = AdaptiveArbiterController(
                kernel, arbiter, latency_bounds={"video": 3.0}, interval=10.0
            )
            controller.start()

        def client(name, words, count):
            def body():
                for _ in range(count):
                    yield from arbiter.access(name, words)

            Process(kernel, body())

        client("video", 50, 150)
        client("hog1", 400, 50)
        client("hog2", 400, 50)
        kernel.run(until=600.0)
        return arbiter, controller

    def test_unmanaged_latency_violates_bound(self):
        arbiter, _ = self.contended_arbiter(adapt=False)
        assert arbiter.client_stats("video").mean_latency() > 3.0

    def test_adaptation_reduces_video_latency(self):
        static, _ = self.contended_arbiter(adapt=False)
        adaptive, controller = self.contended_arbiter(adapt=True)
        assert controller.events, "controller never adapted"
        assert (
            adaptive.client_stats("video").mean_latency()
            < static.client_stats("video").mean_latency()
        )
        assert adaptive.policy == "weighted"

    def test_weights_decay_when_quiet(self):
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=100.0, policy="weighted")
        arbiter.set_weight("video", 8.0)
        controller = AdaptiveArbiterController(
            kernel, arbiter, latency_bounds={"video": 100.0}, interval=5.0
        )
        controller.start()

        def trickle():
            for _ in range(20):
                yield from arbiter.access("video", 1)
                yield Delay(5.0)

        Process(kernel, trickle())
        kernel.run(until=120.0)
        assert arbiter.weights["video"] < 8.0
