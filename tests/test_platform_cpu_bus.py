"""Tests for processors, pools, and the shared bus."""

import pytest

from repro.platform import Bus, Processor, ProcessorPool
from repro.sim import Delay, Kernel, Process


class TestProcessor:
    def test_execution_time_scales_with_speed(self):
        kernel = Kernel()
        slow = Processor(kernel, "slow", speed=1.0)
        fast = Processor(kernel, "fast", speed=4.0)
        assert slow.execution_time(8.0) == 8.0
        assert fast.execution_time(8.0) == 2.0

    def test_zero_speed_rejected(self):
        with pytest.raises(ValueError):
            Processor(Kernel(), "bad", speed=0.0)

    def test_utilization_accounting(self):
        kernel = Kernel()
        cpu = Processor(kernel, "cpu0")

        def worker():
            yield cpu.core.acquire()
            cpu.note_start()
            yield Delay(4.0)
            cpu.note_stop()
            cpu.core.release()

        Process(kernel, worker())
        kernel.run(until=10.0)
        assert cpu.utilization() == pytest.approx(0.4)
        assert cpu.jobs_executed == 1

    def test_utilization_counts_in_progress_work(self):
        kernel = Kernel()
        cpu = Processor(kernel, "cpu0")

        def worker():
            yield cpu.core.acquire()
            cpu.note_start()
            yield Delay(100.0)
            cpu.note_stop()
            cpu.core.release()

        Process(kernel, worker())
        kernel.run(until=10.0)
        assert cpu.utilization() == pytest.approx(1.0)


class TestProcessorPool:
    def test_lookup_by_name(self):
        kernel = Kernel()
        pool = ProcessorPool([Processor(kernel, "a"), Processor(kernel, "b")])
        assert pool.get("b").name == "b"
        assert len(pool) == 2

    def test_duplicate_names_rejected(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            ProcessorPool([Processor(kernel, "x"), Processor(kernel, "x")])

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            ProcessorPool([])

    def test_least_loaded_prefers_idle(self):
        kernel = Kernel()
        busy = Processor(kernel, "busy")
        idle = Processor(kernel, "idle")
        pool = ProcessorPool([busy, idle])
        busy.core.try_acquire()
        assert pool.least_loaded() is idle

    def test_least_loaded_excludes(self):
        kernel = Kernel()
        a = Processor(kernel, "a")
        b = Processor(kernel, "b")
        pool = ProcessorPool([a, b])
        assert pool.least_loaded(exclude=a) is b


class TestBus:
    def test_transfer_time_follows_bandwidth(self):
        kernel = Kernel()
        bus = Bus(kernel, bandwidth=100.0)
        assert bus.transfer_time(50.0) == pytest.approx(0.5)

    def test_transfer_records_stats(self):
        kernel = Kernel()
        bus = Bus(kernel, bandwidth=100.0)

        def master():
            latency = yield from bus.transfer("video", 200.0)
            assert latency == pytest.approx(2.0)

        Process(kernel, master())
        kernel.run()
        stats = bus.master_stats("video")
        assert stats.transfers == 1
        assert stats.bytes_moved == 200.0
        assert stats.mean_latency() == pytest.approx(2.0)

    def test_contention_serializes_transfers(self):
        kernel = Kernel()
        bus = Bus(kernel, bandwidth=100.0, channels=1)
        done = []

        def master(name):
            def body():
                yield from bus.transfer(name, 100.0)
                done.append((name, kernel.now))

            return body

        Process(kernel, master("a")())
        Process(kernel, master("b")())
        kernel.run()
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_bandwidth_takeaway_slows_transfers(self):
        kernel = Kernel()
        bus = Bus(kernel, bandwidth=100.0)
        latencies = []

        def master():
            latencies.append((yield from bus.transfer("m", 100.0)))
            bus.set_bandwidth(50.0)
            latencies.append((yield from bus.transfer("m", 100.0)))

        Process(kernel, master())
        kernel.run()
        assert latencies[0] == pytest.approx(1.0)
        assert latencies[1] == pytest.approx(2.0)

    def test_invalid_bandwidth_rejected(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            Bus(kernel, bandwidth=0.0)
        bus = Bus(kernel, bandwidth=10.0)
        with pytest.raises(ValueError):
            bus.set_bandwidth(-1.0)
