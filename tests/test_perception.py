"""Tests for user-perceived severity, attribution, and the controlled study."""

import random

import pytest

from repro.perception import (
    AttributionModel,
    ControlledStudy,
    FailureContext,
    FunctionProfile,
    PAPER_FUNCTIONS,
    SeverityModel,
    UserProfile,
    generate_population,
)


def make_user(tolerance=0.5, savvy=0.5):
    return UserProfile(name="u", tolerance=tolerance, savvy=savvy)


class TestSeverityModel:
    def test_irritation_in_unit_interval(self):
        model = SeverityModel()
        for function in PAPER_FUNCTIONS.values():
            for attributed in (True, False):
                value = model.irritation(make_user(), function, attributed)
                assert 0.0 <= value <= 1.0

    def test_external_attribution_discounts(self):
        model = SeverityModel(external_discount=0.8)
        function = PAPER_FUNCTIONS["image_quality"]
        internal = model.irritation(make_user(), function, attributed_externally=False)
        external = model.irritation(make_user(), function, attributed_externally=True)
        assert external == pytest.approx(internal * 0.2)

    def test_tolerant_users_less_irritated(self):
        model = SeverityModel()
        function = PAPER_FUNCTIONS["swivel"]
        saint = model.irritation(make_user(tolerance=1.0), function, False)
        grump = model.irritation(make_user(tolerance=0.0), function, False)
        assert saint < grump

    def test_severity_weight_penalizes_external_priors(self):
        model = SeverityModel()
        # same profile except attribution prior
        internal_fn = FunctionProfile("a", 0.8, 0.8, 0.8, external_attribution_prior=0.0)
        external_fn = FunctionProfile("b", 0.8, 0.8, 0.8, external_attribution_prior=0.9)
        assert model.severity_weight(internal_fn) > model.severity_weight(external_fn)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            FunctionProfile("x", 1.5, 0.5, 0.5, 0.5)
        with pytest.raises(ValueError):
            UserProfile("u", tolerance=2.0, savvy=0.5)
        with pytest.raises(ValueError):
            SeverityModel(external_discount=1.5)


class TestAttributionModel:
    def test_probability_bounds(self):
        model = AttributionModel()
        for function in PAPER_FUNCTIONS.values():
            probability = model.external_probability(
                make_user(), function, FailureContext()
            )
            assert 0.0 <= probability <= 1.0

    def test_savvy_users_follow_truth(self):
        model = AttributionModel()
        function = PAPER_FUNCTIONS["image_quality"]  # high external prior
        expert = make_user(savvy=1.0)
        # truly internal fault: the expert blames the product
        internal_ctx = FailureContext(truly_external=False)
        assert model.external_probability(expert, function, internal_ctx) == 0.0
        external_ctx = FailureContext(truly_external=True)
        assert model.external_probability(expert, function, external_ctx) == 1.0

    def test_cues_raise_external_probability(self):
        model = AttributionModel()
        user = make_user(savvy=0.0)
        function = PAPER_FUNCTIONS["teletext"]
        quiet = model.external_probability(user, function, FailureContext())
        stormy = model.external_probability(
            user, function, FailureContext(external_cue=1.0)
        )
        assert stormy > quiet

    def test_attribute_is_deterministic_under_seed(self):
        function = PAPER_FUNCTIONS["teletext"]
        context = FailureContext(external_cue=0.5)
        a = AttributionModel(random.Random(5))
        b = AttributionModel(random.Random(5))
        samples_a = [a.attribute(make_user(), function, context) for _ in range(20)]
        samples_b = [b.attribute(make_user(), function, context) for _ in range(20)]
        assert samples_a == samples_b


class TestControlledStudy:
    def run_study(self, seed=42, size=300):
        study = ControlledStudy(PAPER_FUNCTIONS, seed=seed)
        return study.run(generate_population(size, seed=seed))

    def test_population_generation(self):
        population = generate_population(50, seed=1)
        assert len(population) == 50
        assert all(0.0 <= u.tolerance <= 1.0 for u in population)
        assert generate_population(50, seed=1)[10].savvy == population[10].savvy

    def test_paper_headline_attribution_effect(self):
        """Image quality and swivel rank comparably when *asked*, but the
        swivel irritates far more when it *fails* (Sect. 4.6)."""
        result = self.run_study()
        image = result.outcomes["image_quality"]
        swivel = result.outcomes["swivel"]
        # stated importance comparable (both rank "important")
        assert abs(image.stated_importance_mean - swivel.stated_importance_mean) < 0.1
        # observed irritation flips the order decisively
        assert swivel.observed_irritation_mean > 1.5 * image.observed_irritation_mean

    def test_attribution_rates_match_design(self):
        result = self.run_study()
        assert result.outcomes["image_quality"].external_attribution_rate > 0.6
        assert result.outcomes["swivel"].external_attribution_rate < 0.2

    def test_rankings_disagree(self):
        result = self.run_study()
        stated = result.importance_ranking()
        observed = result.irritation_ranking()
        assert stated != observed
        assert stated.index("image_quality") < stated.index("teletext")
        assert observed.index("swivel") < observed.index("image_quality")

    def test_study_deterministic(self):
        a = self.run_study(seed=9, size=100)
        b = self.run_study(seed=9, size=100)
        for name in PAPER_FUNCTIONS:
            assert (
                a.outcomes[name].observed_irritation_mean
                == b.outcomes[name].observed_irritation_mean
            )

    def test_sample_counts(self):
        study = ControlledStudy(PAPER_FUNCTIONS, seed=1, exposures_per_user=3)
        result = study.run(generate_population(10, seed=1))
        assert all(o.samples == 30 for o in result.outcomes.values())
