"""Tests for telemetry summary merging (the sharded-campaign seam).

``merge_summaries`` is the pure companion to ``FleetTelemetry.summary``:
counters and tallies sum exactly, windowed rates add because their
buckets align on simulated time, and reservoir quantiles come from a
deterministic re-sample of the concatenated shard samples.  The
``merge_digest`` over the shard-invariant projection is the witness a
sharded campaign and its serial twin must agree on.
"""

import pytest

from repro.runtime.telemetry import (
    merge_digest,
    merge_summaries,
    mergeable_summary,
    summary_digest,
)
from repro.scenarios import build_plan, partition_plan
from repro.campaign import execute_plan
from repro.scenarios import FaultPhase, ScenarioSpec, UserProfile

SPEC = ScenarioSpec(
    name="merge-fixture",
    description="test fixture",
    duration=25.0,
    tvs=6,
    profiles=(UserProfile("p", mean_gap=1.5, keys=("power", "vol_up", "mute")),),
    phases=(FaultPhase("volume_overshoot", at=8.0, fraction=0.5),),
)


def _serial_summary(seed=3):
    return execute_plan(build_plan(SPEC, seed))["summary"]


def _shard_summaries(shards, seed=3):
    plans = partition_plan(build_plan(SPEC, seed), shards)
    return [execute_plan(plan)["summary"] for plan in plans]


# ----------------------------------------------------------------------
# counters / tallies: exact equality with the serial run
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [2, 3, 4])
def test_merge_over_n_shards_equals_serial_counters_and_tallies(shards):
    """Acceptance: merge_summaries over 2-4 shard summaries equals the
    serial summary for counters and tallies."""
    serial = _serial_summary()
    merged = merge_summaries(_shard_summaries(shards))
    for key in ("time", "suos", "events_total", "events_by_kind",
                "errors_total", "errors_by_suo", "per_suo"):
        assert merged[key] == serial[key], key
    assert merged["latency"]["count"] == serial["latency"]["count"]
    assert merged["latency"]["min"] == serial["latency"]["min"]
    assert merged["latency"]["max"] == serial["latency"]["max"]
    assert merge_digest(merged) == merge_digest(serial)


def test_merge_digest_is_stable_across_reruns():
    first = merge_digest(merge_summaries(_shard_summaries(2)))
    second = merge_digest(merge_summaries(_shard_summaries(2)))
    assert first == second
    # ... and differs for a different seed (it is not a constant)
    other = merge_digest(merge_summaries(_shard_summaries(2, seed=4)))
    assert other != first


def test_merge_of_one_is_identity_on_the_invariant_core():
    serial = _serial_summary()
    merged = merge_summaries([serial])
    assert mergeable_summary(merged) == mergeable_summary(serial)
    # quantiles survive a single-input merge too: the resample of one
    # reservoir's samples is the reservoir itself
    for q in ("p50", "p90", "p99"):
        assert merged["latency"][q] == serial["latency"][q]


def test_window_rate_is_additive_across_shards():
    serial = _serial_summary()
    merged = merge_summaries(_shard_summaries(3))
    assert merged["window_rate"] == pytest.approx(
        serial["window_rate"], abs=1e-6
    )


# ----------------------------------------------------------------------
# reservoir re-sampling
# ----------------------------------------------------------------------
def _synthetic(count, samples, mean=1.0):
    return {
        "time": 10.0, "suos": 1, "events_total": count,
        "events_by_kind": {"output": count}, "window_rate": 1.0,
        "errors_total": 0, "errors_by_suo": {},
        "latency": {
            "count": count, "mean": mean, "min": min(samples),
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": max(samples),
            "retained": len(samples), "samples": list(samples),
        },
    }


def test_merged_reservoir_is_bounded_and_deterministic():
    a = _synthetic(600, [float(i) for i in range(400)])
    b = _synthetic(500, [float(i) for i in range(400, 800)])
    first = merge_summaries([a, b], reservoir=256)
    second = merge_summaries([a, b], reservoir=256)
    assert first["latency"]["retained"] == 256
    assert first["latency"]["samples"] == second["latency"]["samples"]
    assert first["latency"]["count"] == 1100
    assert first["latency"]["min"] == 0.0
    assert first["latency"]["max"] == 799.0
    # quantiles come from the re-sample, ordered
    assert first["latency"]["p50"] <= first["latency"]["p90"] <= \
        first["latency"]["p99"]


def test_merge_without_samples_falls_back_to_weighted_quantiles():
    a = _synthetic(100, [1.0]); del a["latency"]["samples"]
    a["latency"].update({"p50": 1.0, "p90": 1.0, "p99": 1.0})
    b = _synthetic(300, [3.0]); del b["latency"]["samples"]
    b["latency"].update({"p50": 3.0, "p90": 3.0, "p99": 3.0})
    merged = merge_summaries([a, b])
    assert merged["latency"]["p50"] == pytest.approx(2.5)
    assert "samples" not in merged["latency"]


def test_merge_rejects_empty_input():
    with pytest.raises(ValueError):
        merge_summaries([])


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------
def test_mergeable_summary_excludes_backend_dependent_fields():
    serial = _serial_summary()
    core = mergeable_summary(serial)
    assert "window_rate" not in core
    assert "p50" not in core["latency"]
    assert "samples" not in core["latency"]
    assert core["events_by_kind"] == serial["events_by_kind"]
    assert core["per_suo"] == serial["per_suo"]


def test_summary_digest_matches_fleet_telemetry_digest():
    """FleetTelemetry.digest() and the standalone summary_digest agree,
    so post-hoc digesting of shipped summaries is sound."""
    from repro.scenarios import CompiledScenario

    compiled = CompiledScenario(SPEC, seed=3)
    compiled.run()
    assert compiled.fleet.telemetry.digest() == summary_digest(
        compiled.fleet.telemetry.summary(per_suo=True)
    )
