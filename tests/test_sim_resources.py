"""Tests for contended resources and stores."""

import pytest

from repro.sim import Delay, Kernel, Process, Resource, SimulationError, Store


def _holder(kernel, resource, held, hold_time=2.0, priority=0):
    def body():
        yield resource.acquire(priority)
        held.append(kernel.now)
        yield Delay(hold_time)
        resource.release()

    return Process(kernel, body())


def test_resource_grants_up_to_capacity():
    kernel = Kernel()
    resource = Resource(kernel, capacity=2)
    grants = []
    for _ in range(3):
        _holder(kernel, resource, grants)
    kernel.run()
    # two start immediately at t=0, third waits for a release at t=2
    assert grants == [0.0, 0.0, 2.0]


def test_fifo_order_within_priority():
    kernel = Kernel()
    resource = Resource(kernel, capacity=1)
    order = []

    def requester(name):
        def body():
            yield resource.acquire()
            order.append(name)
            yield Delay(1.0)
            resource.release()

        return body

    Process(kernel, requester("first")())
    Process(kernel, requester("second")())
    Process(kernel, requester("third")())
    kernel.run()
    assert order == ["first", "second", "third"]


def test_priority_preempts_queue_order():
    kernel = Kernel()
    resource = Resource(kernel, capacity=1)
    order = []

    def requester(name, priority, start):
        def body():
            yield Delay(start)
            yield resource.acquire(priority)
            order.append(name)
            yield Delay(5.0)
            resource.release()

        return Process(kernel, body())

    requester("holder", 0, 0.0)
    requester("low", 5, 1.0)
    requester("high", -5, 2.0)
    kernel.run()
    assert order == ["holder", "high", "low"]


def test_release_without_hold_raises():
    kernel = Kernel()
    resource = Resource(kernel, capacity=1)
    with pytest.raises(SimulationError):
        resource.release()


def test_try_acquire_nonblocking():
    kernel = Kernel()
    resource = Resource(kernel, capacity=1)
    assert resource.try_acquire() is True
    assert resource.try_acquire() is False
    assert resource.stats.rejected == 1
    resource.release()
    assert resource.try_acquire() is True


def test_capacity_increase_unblocks_waiters():
    kernel = Kernel()
    resource = Resource(kernel, capacity=0)
    grants = []
    _holder(kernel, resource, grants)
    kernel.run(until=3.0)
    assert grants == []
    resource.set_capacity(1)
    kernel.run()
    assert grants == [3.0]


def test_capacity_reduction_not_preemptive():
    kernel = Kernel()
    resource = Resource(kernel, capacity=2)
    grants = []
    _holder(kernel, resource, grants, hold_time=4.0)
    _holder(kernel, resource, grants, hold_time=4.0)
    kernel.run(until=1.0)
    resource.set_capacity(1)
    assert resource.in_use == 2  # holders keep their units
    kernel.run()
    assert resource.in_use == 0


def test_wait_statistics():
    kernel = Kernel()
    resource = Resource(kernel, capacity=1)
    grants = []
    _holder(kernel, resource, grants, hold_time=3.0)
    _holder(kernel, resource, grants, hold_time=3.0)
    kernel.run()
    assert resource.stats.acquisitions == 2
    assert resource.stats.max_wait == 3.0
    assert resource.stats.mean_wait() == pytest.approx(1.5)


def test_utilization_metric():
    kernel = Kernel()
    resource = Resource(kernel, capacity=4)
    resource.try_acquire()
    resource.try_acquire()
    assert resource.utilization() == pytest.approx(0.5)


def test_store_put_get_fifo():
    kernel = Kernel()
    store = Store(kernel)
    received = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    Process(kernel, consumer())
    kernel.schedule(1.0, lambda: store.put("a"))
    kernel.schedule(2.0, lambda: store.put("b"))
    kernel.schedule(3.0, lambda: store.put("c"))
    kernel.run()
    assert received == ["a", "b", "c"]


def test_store_bounded_drops_when_full():
    kernel = Kernel()
    store = Store(kernel, capacity=2)
    assert store.put(1) is True
    assert store.put(2) is True
    assert store.put(3) is False
    assert store.drop_count == 1
    assert len(store) == 2


def test_store_try_get():
    kernel = Kernel()
    store = Store(kernel)
    assert store.try_get() is None
    store.put("x")
    assert store.try_get() == "x"


def test_store_clear_returns_discarded_count():
    kernel = Kernel()
    store = Store(kernel)
    store.put(1)
    store.put(2)
    assert store.clear() == 2
    assert len(store) == 0


def test_dead_waiter_skipped_on_grant():
    kernel = Kernel()
    resource = Resource(kernel, capacity=1)
    grants = []
    blocker = _holder(kernel, resource, grants, hold_time=5.0)

    def doomed():
        yield resource.acquire()
        grants.append("doomed")
        resource.release()

    doomed_process = Process(kernel, doomed())
    kernel.run(until=1.0)
    doomed_process.kill("cancelled")
    _holder(kernel, resource, grants, hold_time=1.0)
    kernel.run()
    assert "doomed" not in grants
    assert len(grants) == 2  # blocker grant + second holder grant
