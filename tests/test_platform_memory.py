"""Tests for the memory arbiter policies and shared memory."""

import pytest

from repro.platform import MemoryArbiter, SharedMemory
from repro.sim import Delay, Kernel, Process


def _client(kernel, arbiter, name, words, count, results, gap=0.0):
    def body():
        for _ in range(count):
            latency = yield from arbiter.access(name, words)
            results.append((name, kernel.now, latency))
            if gap:
                yield Delay(gap)

    return Process(kernel, body())


class TestArbiterBasics:
    def test_single_request_latency_is_service_time(self):
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=100.0)
        results = []
        _client(kernel, arbiter, "a", 50, 1, results)
        kernel.run()
        assert results[0][2] == pytest.approx(0.5)

    def test_requests_serialize(self):
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=100.0)
        results = []
        _client(kernel, arbiter, "a", 100, 1, results)
        _client(kernel, arbiter, "b", 100, 1, results)
        kernel.run()
        finish_times = [r[1] for r in results]
        assert finish_times == [1.0, 2.0]

    def test_stats_accumulate(self):
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=100.0)
        results = []
        _client(kernel, arbiter, "a", 100, 3, results)
        kernel.run()
        stats = arbiter.client_stats("a")
        assert stats.requests == 3
        assert stats.words == 300

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            MemoryArbiter(Kernel(), policy="magic")
        arbiter = MemoryArbiter(Kernel())
        with pytest.raises(ValueError):
            arbiter.set_policy("nope")


class TestRoundRobin:
    def test_alternates_between_clients(self):
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=100.0, policy="round_robin")
        results = []
        _client(kernel, arbiter, "a", 100, 3, results)
        _client(kernel, arbiter, "b", 100, 3, results)
        kernel.run()
        order = [r[0] for r in results]
        assert order == ["a", "b", "a", "b", "a", "b"]


class TestPriority:
    def test_high_priority_client_served_first(self):
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=100.0, policy="priority")
        arbiter.set_priority("video", 0)
        arbiter.set_priority("background", 10)
        results = []
        # first request (background) grabs the port; afterwards video's
        # queued requests must win every arbitration round.
        _client(kernel, arbiter, "background", 100, 3, results)
        _client(kernel, arbiter, "video", 100, 3, results)
        kernel.run()
        order = [r[0] for r in results]
        assert order[1:4] == ["video", "video", "video"]


class TestWeighted:
    def test_weighted_shares_favor_heavy_client(self):
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=100.0, policy="weighted")
        arbiter.set_weight("fav", 300.0)
        arbiter.set_weight("other", 1.0)
        results = []
        _client(kernel, arbiter, "other", 100, 5, results)
        _client(kernel, arbiter, "fav", 100, 5, results)
        kernel.run()
        first_five = [r[0] for r in results][:5]
        assert first_five.count("fav") >= 3

    def test_weight_must_be_positive(self):
        arbiter = MemoryArbiter(Kernel())
        with pytest.raises(ValueError):
            arbiter.set_weight("c", 0.0)


class TestSharedMemory:
    def test_write_then_read_roundtrip(self):
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=100.0)
        memory = SharedMemory(kernel, arbiter)
        got = []

        def body():
            yield from memory.write("cpu", "addr1", 99)
            value, _latency = yield from memory.read("cpu", "addr1")
            got.append(value)

        Process(kernel, body())
        kernel.run()
        assert got == [99]

    def test_poke_peek_bypass_arbitration(self):
        kernel = Kernel()
        memory = SharedMemory(kernel, MemoryArbiter(kernel))
        memory.poke("x", "corrupted")
        assert memory.peek("x") == "corrupted"
        assert memory.peek("missing") is None

    def test_pending_counts(self):
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=1.0)
        results = []
        _client(kernel, arbiter, "a", 10, 2, results)
        _client(kernel, arbiter, "b", 10, 1, results)
        kernel.run(max_events=2)
        assert arbiter.pending() >= 1
