"""Run-history store and trend rules.

The store is append-only SQLite; the trend rules are pure over report
dicts.  The negative tests here are the PR 7 acceptance criteria: an
injected 2x slowdown and an injected detection-rate drop must both be
flagged against a healthy prior window, while a fresh store (no
history) must stay silent.
"""

from dataclasses import replace


from repro.campaign import run_cell
from repro.obs.history import RunHistory, current_git_rev
from repro.obs.trend import (
    compare_bench_runs,
    evaluate_trends,
    perf_skip_reason,
)
from repro.scenarios import get_scenario


def bench_report(fleet_eps=150_000, scenarios_eps=140_000, ladder_rate=1.0,
                 mode="full", cpu_count=4):
    return {
        "mode": mode,
        "kernel_events_per_sec": 1_000_000,
        "fleet": {"events_per_sec": fleet_eps},
        "scenarios": {"events_per_sec": scenarios_eps},
        "sharded": {"cpu_count": cpu_count, "shards": 2,
                    "digests_match": True},
        "detection": {
            "recovery-ladder-drill": {"detection_rate": ladder_rate},
            "printer-burst": {"detection_rate": 1.0},
        },
        "diagnosis": {
            "player-decoder-drill": {
                "localization_accuracy": 1.0,
                "ttr": {"targeted": {"count": 3, "min": 20.0, "max": 30.0}},
            },
        },
    }


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
def test_run_round_trip(tmp_path):
    path = str(tmp_path / "history.sqlite")
    with RunHistory(path) as history:
        first = history.record_run(bench_report(), label="ci-1",
                                   git_rev="abc123")
        second = history.record_run(bench_report(fleet_eps=160_000))
        assert second == first + 1
        runs = history.runs()
        assert [run["id"] for run in runs] == [second, first]
        assert runs[1]["label"] == "ci-1"
        assert runs[1]["git_rev"] == "abc123"
        assert history.run_report(first)["fleet"]["events_per_sec"] == 150_000
        # newest-first window, and before_id excludes the run itself
        reports = history.run_reports(limit=5)
        assert [r["fleet"]["events_per_sec"] for r in reports] == [
            160_000, 150_000,
        ]
        priors = history.run_reports(limit=5, before_id=second)
        assert [r["fleet"]["events_per_sec"] for r in priors] == [150_000]
        assert history.counts() == {
            "runs": 2, "campaigns": 0, "episodes": 0, "fuzz_corpus": 0,
        }
    # reopening sees the same rows (it is a file, not a session)
    with RunHistory(path) as history:
        assert history.counts()["runs"] == 2


def test_record_campaign_stores_headline_columns_and_episode_rows(tmp_path):
    spec = replace(get_scenario("player-decoder-drill"), record_spans=True)
    report = run_cell(spec, 7)
    with RunHistory(str(tmp_path / "history.sqlite")) as history:
        campaign_id = history.record_campaign(report, git_rev="abc123")
        rows = history.campaigns(scenario="player-decoder-drill")
        assert len(rows) == 1
        row = rows[0]
        assert row["id"] == campaign_id
        assert row["seed"] == 7
        assert row["telemetry_digest"] == report.telemetry_digest
        assert row["span_digest"] == report.span_digest
        assert row["detection_rate"] == report.detection_rate
        assert row["recovered"] == (
            report.telemetry_summary["recovery"]["recovered"]
        )
        # one episode row per span sample, fully attributed
        episodes = history.episodes(campaign_id)
        assert len(episodes) == len(report.spans["samples"])
        for row in episodes:
            assert row["fault"]
            assert row["ttr"] > 0
            assert row["mode"] in ("targeted", "full")
            assert row["suspect"]
            assert row["digest"]
        # the full report round-trips
        stored = history.campaign_report(campaign_id)
        assert stored["telemetry_digest"] == report.telemetry_digest
        # campaigns with no spans still record (empty span block)
        plain = run_cell(get_scenario("player-decoder-drill"), 7)
        plain_id = history.record_campaign(plain)
        assert history.episodes(plain_id) == []


def test_current_git_rev_in_this_checkout():
    rev = current_git_rev()
    assert rev is None or (len(rev) == 40 and all(
        c in "0123456789abcdef" for c in rev
    ))
    assert current_git_rev(cwd="/nonexistent-dir") is None


# ----------------------------------------------------------------------
# trend rules (the PR 7 negative tests)
# ----------------------------------------------------------------------
def healthy_priors(n=3):
    return [bench_report() for _ in range(n)]


def test_healthy_run_raises_no_trend_flags():
    assert evaluate_trends(bench_report(), healthy_priors()) == []


def test_injected_2x_slowdown_is_flagged():
    current = bench_report(fleet_eps=75_000)  # half the prior median
    failures = evaluate_trends(current, healthy_priors())
    assert any("fleet" in f and "trend perf floor" in f for f in failures)

    current = bench_report(scenarios_eps=60_000)
    failures = evaluate_trends(current, healthy_priors())
    assert any("scenarios" in f and "trend perf floor" in f for f in failures)


def test_injected_detection_drop_is_flagged():
    current = bench_report(ladder_rate=0.5)  # 1.0 -> 0.5 > 0.25 drift
    failures = evaluate_trends(current, healthy_priors())
    assert any(
        "recovery-ladder-drill" in f and "detection drift" in f
        for f in failures
    )
    # drift within the bound passes
    assert evaluate_trends(bench_report(ladder_rate=0.8),
                           healthy_priors()) == []


def test_no_history_means_no_flags():
    assert evaluate_trends(bench_report(fleet_eps=10), []) == []


def test_median_resists_one_noisy_prior():
    priors = healthy_priors(4) + [bench_report(fleet_eps=1_000_000)]
    assert evaluate_trends(bench_report(), priors) == []


def test_window_limits_how_far_back_the_rules_look():
    # ancient fast runs beyond the window must not fail today's run
    priors = healthy_priors(2) + [bench_report(fleet_eps=10_000_000)] * 5
    assert evaluate_trends(bench_report(), priors, window=2) == []


def test_quick_mode_on_one_cpu_skips_perf_but_not_drift():
    current = bench_report(fleet_eps=10_000, ladder_rate=0.5,
                           mode="quick", cpu_count=1)
    assert perf_skip_reason(current) is not None
    failures = evaluate_trends(current, healthy_priors())
    assert not any("trend perf floor" in f for f in failures)
    assert any("detection drift" in f for f in failures)
    # and skipped priors are excluded from the rolling median
    priors = [bench_report(fleet_eps=10_000, mode="quick", cpu_count=1)] * 3
    assert evaluate_trends(bench_report(), priors) == []


def test_perf_skip_reason_rules():
    assert perf_skip_reason(bench_report()) is None
    assert perf_skip_reason(bench_report(mode="quick", cpu_count=4)) is None
    assert perf_skip_reason(bench_report(mode="full", cpu_count=1)) is None
    assert perf_skip_reason(
        bench_report(mode="quick", cpu_count=1)
    ) is not None


# ----------------------------------------------------------------------
# run comparison
# ----------------------------------------------------------------------
def test_compare_bench_runs_reports_deltas():
    old = bench_report()
    new = bench_report(fleet_eps=300_000, ladder_rate=0.9)
    lines = compare_bench_runs(old, new)
    text = "\n".join(lines)
    assert "+100.0%" in text
    assert "recovery-ladder-drill" in text
    assert "1.0000 ->  0.9000" in text
    assert "targeted 20.0-30.0s" in text
