"""Tests for the recovery policy, the closed loop, and monitor hierarchy."""

import pytest

from repro.core import (
    AwarenessLoop,
    Diagnosis,
    ErrorReport,
    LadderStep,
    MonitorHierarchy,
    RecoveryPolicy,
)
from repro.recovery import RecoveryManager
from repro.sim import Kernel


def report(observable="screen", time=0.0, detector="cmp"):
    return ErrorReport(
        time=time,
        detector=detector,
        observable=observable,
        expected="good",
        actual="bad",
        consecutive=3,
    )


class TestRecoveryPolicy:
    def make_policy(self):
        policy = RecoveryPolicy(quiet_period=30.0)
        policy.add_ladder(
            "screen",
            [
                LadderStep("restart_unit", "teletext", user_impact=0.3),
                LadderStep("repair", "resync", user_impact=0.0),
                LadderStep("restart_all", "*", user_impact=1.0),
            ],
        )
        return policy

    def test_least_impact_first(self):
        policy = self.make_policy()
        action = policy.decide(report(time=0.0))
        assert action.kind == "repair"  # impact 0.0 sorted first
        assert action.user_impact == 0.0

    def test_escalation_on_recurrence(self):
        policy = self.make_policy()
        kinds = [policy.decide(report(time=float(i))).kind for i in range(4)]
        assert kinds == ["repair", "restart_unit", "restart_all", "restart_all"]

    def test_quiet_period_resets_ladder(self):
        policy = self.make_policy()
        policy.decide(report(time=0.0))
        policy.decide(report(time=1.0))
        action = policy.decide(report(time=100.0))  # long quiet gap
        assert action.kind == "repair"

    def test_notify_recovered_resets(self):
        policy = self.make_policy()
        policy.decide(report(time=0.0))
        policy.notify_recovered("screen")
        action = policy.decide(report(time=1.0))
        assert action.kind == "repair"

    def test_wildcard_ladder(self):
        policy = RecoveryPolicy()
        policy.add_ladder("*", [LadderStep("repair", "generic", 0.0)])
        assert policy.decide(report(observable="anything")).kind == "repair"

    def test_prefix_ladder(self):
        policy = RecoveryPolicy()
        policy.add_ladder("ttx-*", [LadderStep("repair", "ttx-fix", 0.0)])
        action = policy.decide(report(observable="ttx-sync(a,b)"))
        assert action.target == "ttx-fix"

    def test_no_ladder_returns_none(self):
        policy = RecoveryPolicy()
        assert policy.decide(report()) is None

    def test_diagnosis_suspect_forwarded(self):
        policy = self.make_policy()
        diagnosis = Diagnosis(
            time=0.0, technique="sfl", ranking=(("block:42", 1.0),), errors_explained=1
        )
        action = policy.decide(report(), diagnosis)
        assert action.params["suspect"] == "block:42"


class TestAwarenessLoop:
    def make_loop(self, settle=5.0):
        kernel = Kernel()
        manager = RecoveryManager(kernel)
        repaired = []
        manager.register_repair("resync", lambda: repaired.append(kernel.now))
        policy = RecoveryPolicy()
        policy.add_ladder("*", [LadderStep("repair", "resync", 0.0)])
        loop = AwarenessLoop(kernel, policy, manager, settle_time=settle)
        return kernel, loop, repaired

    def test_error_triggers_action(self):
        kernel, loop, repaired = self.make_loop()
        loop.on_error(report(time=0.0))
        assert repaired == [0.0]
        assert loop.incidents[0].action.kind == "repair"

    def test_verification_marks_recovered(self):
        kernel, loop, repaired = self.make_loop(settle=5.0)
        loop.on_error(report(time=0.0))
        kernel.run(until=10.0)
        assert loop.incidents[0].recovered is True
        assert loop.recovered_count() == 1

    def test_recurrence_marks_not_recovered(self):
        kernel, loop, repaired = self.make_loop(settle=5.0)
        loop.on_error(report(time=0.0))
        kernel.schedule(2.0, lambda: loop.on_error(report(time=2.0)))
        kernel.run(until=20.0)
        assert loop.incidents[0].recovered is False

    def test_disabled_loop_ignores_errors(self):
        kernel, loop, repaired = self.make_loop()
        loop.enabled = False
        loop.on_error(report())
        assert loop.incidents == []
        assert repaired == []

    def test_diagnoser_invoked(self):
        kernel, loop, _ = self.make_loop()
        diagnosis = Diagnosis(0.0, "sfl", (("block:1", 0.9),), 1)
        loop.diagnoser = lambda rep: diagnosis
        loop.on_error(report())
        assert loop.incidents[0].diagnosis is diagnosis

    def test_post_recovery_hooks_called(self):
        kernel, loop, _ = self.make_loop()
        hooked = []
        loop.post_recovery_hooks.append(lambda incident: hooked.append(incident))
        loop.on_error(report())
        assert len(hooked) == 1

    def test_summary_aggregates(self):
        kernel, loop, _ = self.make_loop()
        loop.on_error(report(time=0.0))
        kernel.run(until=20.0)
        summary = loop.summary()
        assert len(summary.errors) == 1
        assert len(summary.actions) == 1
        assert summary.recovered is True

    def test_error_without_ladder_unrecovered(self):
        kernel = Kernel()
        loop = AwarenessLoop(kernel, RecoveryPolicy(), RecoveryManager(kernel))
        loop.on_error(report())
        assert loop.incidents[0].recovered is False
        assert loop.incidents[0].action is None


class TestMonitorHierarchy:
    class FakeSource:
        def __init__(self):
            self.listeners = []

        def subscribe_errors(self, listener):
            self.listeners.append(listener)

        def fire(self, rep):
            for listener in self.listeners:
                listener(rep)

    def test_scoped_errors_tagged_and_aggregated(self):
        hierarchy = MonitorHierarchy()
        ttx = self.FakeSource()
        audio = self.FakeSource()
        hierarchy.add_scope("teletext", ttx)
        hierarchy.add_scope("audio", audio)
        ttx.fire(report(observable="screen"))
        ttx.fire(report(observable="screen"))
        audio.fire(report(observable="sound"))
        assert hierarchy.scope_summary() == {"teletext": 2, "audio": 1}
        assert len(hierarchy.errors) == 3
        assert hierarchy.errors[0].context["scope"] == "teletext"

    def test_local_handler_receives_scope_errors(self):
        hierarchy = MonitorHierarchy()
        source = self.FakeSource()
        local = []
        hierarchy.add_scope("ttx", source, local_handler=local.append)
        source.fire(report())
        assert len(local) == 1

    def test_hierarchy_composes_upward(self):
        parent = MonitorHierarchy("parent")
        child = MonitorHierarchy("child")
        source = self.FakeSource()
        child.add_scope("leaf", source)
        parent.add_scope("subtree", child)
        source.fire(report())
        assert len(parent.errors) == 1
        assert parent.errors[0].context["scope"] == "subtree"
        assert child.errors[0].context["scope"] == "leaf"

    def test_duplicate_scope_rejected(self):
        hierarchy = MonitorHierarchy()
        source = self.FakeSource()
        hierarchy.add_scope("x", source)
        with pytest.raises(ValueError):
            hierarchy.add_scope("x", source)

    def test_errors_in_scope_query(self):
        hierarchy = MonitorHierarchy()
        source = self.FakeSource()
        hierarchy.add_scope("s", source)
        source.fire(report())
        assert len(hierarchy.errors_in("s")) == 1


class TestPerceptionWeightedLadder:
    def test_weights_scale_with_perceived_severity(self):
        from repro.core.policy import perception_weighted_ladder
        from repro.perception import PAPER_FUNCTIONS, SeverityModel

        model = SeverityModel()
        steps = [
            LadderStep("repair", "fix", user_impact=0.2),
            LadderStep("restart_unit", "unit", user_impact=0.6),
        ]
        swivel = perception_weighted_ladder(steps, PAPER_FUNCTIONS["swivel"], model)
        image = perception_weighted_ladder(
            steps, PAPER_FUNCTIONS["image_quality"], model
        )
        # disturbing the swivel function is perceived as worse than
        # disturbing image quality (external attribution discounts it)
        assert swivel[0].user_impact > image[0].user_impact
        assert swivel[1].user_impact > image[1].user_impact
        # relative ordering within the ladder is preserved
        assert swivel[0].user_impact < swivel[1].user_impact

    def test_weighted_ladder_drives_policy_ordering(self):
        from repro.core.policy import perception_weighted_ladder
        from repro.perception import PAPER_FUNCTIONS, SeverityModel

        model = SeverityModel()
        steps = [
            LadderStep("restart_all", "*", user_impact=1.0),
            LadderStep("repair", "fix", user_impact=0.1),
        ]
        policy = RecoveryPolicy()
        policy.add_ladder(
            "teletext",
            list(perception_weighted_ladder(
                steps, PAPER_FUNCTIONS["teletext"], model
            )),
        )
        action = policy.decide(report(observable="teletext"))
        assert action.kind == "repair"  # least weighted impact still first
