"""Tests for the software block map and the fault injector."""

import pytest

from repro.tv import FaultInjector, SoftwareBuild, TVSet


class TestSoftwareBuild:
    def test_total_block_budget(self):
        build = SoftwareBuild()
        assert build.total_blocks == 60000
        covered = sum(m.size for m in build.modules.values())
        assert covered == 60000

    def test_modules_are_disjoint(self):
        build = SoftwareBuild()
        modules = sorted(build.modules.values(), key=lambda m: m.start)
        for first, second in zip(modules, modules[1:]):
            assert first.end == second.start

    def test_module_of_block(self):
        build = SoftwareBuild()
        core = build.module("kernel_core")
        assert build.module_of_block(core.start).name == "kernel_core"
        assert build.module_of_block(core.end - 1).name == "kernel_core"
        assert build.module_of_block(10**9) is None

    def test_background_includes_all_kernel_core(self):
        build = SoftwareBuild()
        background = build.background_blocks(step=0)
        core = build.module("kernel_core")
        assert set(range(core.start, core.end)) <= background

    def test_background_varies_by_step(self):
        build = SoftwareBuild()
        assert build.background_blocks(0) != build.background_blocks(1)

    def test_background_deterministic(self):
        assert SoftwareBuild(seed=5).background_blocks(3) == SoftwareBuild(
            seed=5
        ).background_blocks(3)

    def test_tag_blocks_stable_base(self):
        build = SoftwareBuild()
        step_a = build.tag_blocks("channel_logic", "ch_up", 0)
        step_b = build.tag_blocks("channel_logic", "ch_up", 1)
        # the 60% base is shared, only the 10% variation differs
        overlap = len(step_a & step_b) / max(1, len(step_a | step_b))
        assert overlap > 0.5

    def test_different_tags_differ(self):
        build = SoftwareBuild()
        up = build.tag_blocks("channel_logic", "ch_up", 0)
        down = build.tag_blocks("channel_logic", "ch_down", 0)
        assert up != down

    def test_unknown_module_empty(self):
        build = SoftwareBuild()
        assert build.tag_blocks("no_such_module", "x", 0) == set()

    def test_fault_blocks_are_ground_truth_modules(self):
        build = SoftwareBuild()
        blocks = build.fault_blocks("ttx_stale_render")
        assert len(blocks) == SoftwareBuild.FAULT_MODULE_SIZE
        module = build.module_of_block(min(blocks))
        assert module.name == "fault_ttx_stale_render"

    def test_fault_tag_maps_to_fault_blocks(self):
        build = SoftwareBuild()
        blocks = build.blocks_for_handler(
            "ttx_render", ["render", "FAULT_ttx_stale_render"], None, 0
        )
        assert build.fault_blocks("ttx_stale_render") <= blocks


class TestFaultInjector:
    def test_unknown_fault_rejected(self):
        tv = TVSet(seed=1)
        with pytest.raises(ValueError):
            FaultInjector(tv).inject("cosmic_ray")

    def test_immediate_activation(self):
        tv = TVSet(seed=1)
        injector = FaultInjector(tv)
        spec = injector.inject("mute_noop")
        assert spec.active
        assert injector.active_faults() == ["mute_noop"]

    def test_deferred_activation_by_press_count(self):
        tv = TVSet(seed=1)
        injector = FaultInjector(tv)
        spec = injector.inject("mute_noop", activate_after_presses=3)
        assert not spec.active
        tv.press("power")
        tv.press("vol_up")
        assert not spec.active
        tv.press("vol_up")
        assert spec.active

    def test_mute_noop_behaviour(self):
        tv = TVSet(seed=1)
        FaultInjector(tv).inject("mute_noop")
        tv.press("power")
        tv.press("mute")
        assert tv.sound_level() == 30  # mute silently ignored

    def test_volume_overshoot_behaviour(self):
        tv = TVSet(seed=1)
        FaultInjector(tv).inject("volume_overshoot")
        tv.press("power")
        tv.press("vol_up")
        assert tv.sound_level() == 100

    def test_menu_opens_epg_behaviour(self):
        tv = TVSet(seed=1)
        FaultInjector(tv).inject("menu_opens_epg")
        tv.press("power")
        tv.press("menu")
        assert tv.screen_descriptor()["overlay"] == "epg"

    def test_ttx_stale_render_behaviour(self):
        tv = TVSet(seed=1)
        FaultInjector(tv).inject("ttx_stale_render")
        tv.press("power")
        tv.press("ttx")
        tv.run(5.0)
        assert tv.screen_descriptor()["ttx_status"] == "searching"

    def test_clear_restores_behaviour(self):
        tv = TVSet(seed=1)
        injector = FaultInjector(tv)
        injector.inject("mute_noop")
        injector.clear("mute_noop")
        tv.press("power")
        tv.press("mute")
        assert tv.sound_level() == 0
        assert injector.active_faults() == []

    def test_clear_ttx_stale_render(self):
        tv = TVSet(seed=1)
        injector = FaultInjector(tv)
        injector.inject("ttx_stale_render")
        injector.clear("ttx_stale_render")
        tv.press("power")
        tv.press("ttx")
        tv.run(5.0)
        assert tv.screen_descriptor()["ttx_status"] == "shown"

    def test_drop_ttx_notify_behaviour(self):
        tv = TVSet(seed=1)
        FaultInjector(tv).inject("drop_ttx_notify")
        tv.press("power")
        tv.press("ttx")
        tv.run(3.0)
        tv.press("ch_up")
        tv.press("ttx")
        tv.run(10.0)
        assert tv.screen_descriptor()["ttx_status"] == "searching"
        assert tv.teletext.acquirer.missed_updates > 0
