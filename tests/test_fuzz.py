"""The ``repro.fuzz`` subsystem: grammar, oracle, corpus, shrinker,
engine, persistence, and CLI.

The load-bearing test is :class:`TestDeterminismGate`: a bounded fuzz
run (fixed seed, fixed candidate budget) must be *fully deterministic*
across two invocations — same candidates, same verdicts, same coverage,
same shrunk repros.  Everything the fuzzer reports is replayable from
``(seed, candidates)`` alone; wall-clock shows up nowhere in the
witness.
"""

import json
import os

import pytest

from repro.fuzz import (
    Corpus,
    CoverageMap,
    FuzzConfig,
    Fuzzer,
    OP_VOCABULARY,
    ScenarioGrammar,
    Verdict,
    classify,
    evaluate_candidate,
    markov_walk,
    shrink,
)
from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.engine import MUTATE_EVERY
from repro.obs.history import RunHistory
from repro.scenarios import ScenarioSpec, get_scenario, spec_hash
from repro.tv.remote import KEYS


# ----------------------------------------------------------------------
# grammar
# ----------------------------------------------------------------------
class TestGrammar:
    def test_samples_are_valid_and_deterministic(self):
        g1, g2 = ScenarioGrammar(seed=11), ScenarioGrammar(seed=11)
        for index in range(25):
            spec = g1.sample(index)
            spec.validate()  # grammar output must always validate
            assert spec == g2.sample(index)

    def test_sample_is_index_addressed(self):
        # Candidate N is the same spec no matter what was sampled before
        # it — the property that lets mutation interleave with sampling
        # without perturbing later candidates.
        grammar = ScenarioGrammar(seed=4)
        eighth = grammar.sample(8)
        fresh = ScenarioGrammar(seed=4)
        assert fresh.sample(8) == eighth

    def test_different_seeds_differ(self):
        a = [ScenarioGrammar(seed=0).sample(i) for i in range(6)]
        b = [ScenarioGrammar(seed=1).sample(i) for i in range(6)]
        assert a != b

    def test_mutations_are_valid_and_deterministic(self):
        grammar = ScenarioGrammar(seed=7)
        base = grammar.sample(3)
        for index in range(10):
            mutant = grammar.mutate(base, index)
            mutant.validate()
            assert mutant == ScenarioGrammar(seed=7).mutate(base, index)

    def test_markov_walk_ops_are_legal_keys(self):
        import random

        ops = markov_walk(random.Random(5), 40, OP_VOCABULARY)
        assert len(ops) == 40
        assert set(ops) <= set(OP_VOCABULARY) <= set(KEYS)


# ----------------------------------------------------------------------
# oracle
# ----------------------------------------------------------------------
class TestOracle:
    def test_healthy_scenario_is_ok(self):
        spec = ScenarioSpec(
            name="healthy", description="", duration=12.0, printers=1,
            printer_job_gap=4.0, profiles=(),
        )
        result = evaluate_candidate(spec, seed=0, check_divergence=False)
        assert result.verdict.kind == "ok"
        assert not result.failing
        assert result.coverage  # ok candidates still contribute coverage

    def test_digest_divergence_outranks_everything(self):
        spec = get_scenario("fuzz-printer-silent-jam")
        from repro.campaign import run_cell_detailed

        cell = run_cell_detailed(spec, 0)
        report, compiled = cell.report, cell.compiled
        verdict = classify(spec, report, compiled, shard_digest="deadbeef")
        assert verdict.kind == "digest_divergence"
        assert "deadbeef"[:12] in verdict.detail

    def test_signature_is_kind_plus_fault_pairs(self):
        verdict = Verdict(
            kind="missed_detection",
            fault_pairs=(("printer", "silent_jam"), ("tv", "mute_noop")),
        )
        assert verdict.signature == (
            "missed_detection", "printer:silent_jam", "tv:mute_noop",
        )
        assert verdict.failing

    def test_crash_verdict_captures_exception(self):
        # A spec that validates but explodes in compile: unknown faults
        # are caught by validate, so force a crash through a bad field.
        spec = ScenarioSpec(
            name="boom", description="", duration=10.0, tvs=1,
            profiles=(), phases=(),
        )
        # tvs without profiles fails validation inside the campaign run
        result = evaluate_candidate(spec, seed=0, check_divergence=False)
        assert result.verdict.kind == "crash"
        assert "profiles" in result.verdict.detail


# ----------------------------------------------------------------------
# coverage + corpus
# ----------------------------------------------------------------------
class TestCorpus:
    def test_coverage_map_admits_only_novel(self):
        cmap = CoverageMap(["model:tv:a"])
        assert cmap.novel(["model:tv:a", "fault:tv:mute_noop"]) == {
            "fault:tv:mute_noop"
        }
        admitted = cmap.admit(["model:tv:a", "fault:tv:mute_noop"])
        assert admitted == {"fault:tv:mute_noop"}
        assert cmap.novel(["fault:tv:mute_noop"]) == frozenset()
        assert cmap.by_layer() == {"fault": 1, "model": 1}

    def test_consider_admits_novelty_then_dedupes(self):
        corpus = Corpus()
        spec = ScenarioSpec(
            name="c", description="", duration=10.0, printers=1, profiles=(),
        )
        from repro.fuzz.oracle import CandidateResult

        result = CandidateResult(
            spec=spec, seed=0, verdict=Verdict(kind="ok"),
            coverage=frozenset({"component:feeder"}),
        )
        first = corpus.consider(result, origin="sample")
        assert first is not None and first.novel_keys == {"component:feeder"}
        # same spec again: no new coverage, no new signature -> rejected
        assert corpus.consider(result, origin="sample") is None

    def test_new_failure_signature_admits_without_new_coverage(self):
        corpus = Corpus()
        spec_a = ScenarioSpec(
            name="a", description="", duration=10.0, printers=1, profiles=(),
        )
        spec_b = ScenarioSpec(
            name="b", description="", duration=11.0, printers=1, profiles=(),
        )
        from repro.fuzz.oracle import CandidateResult

        keys = frozenset({"component:feeder"})
        corpus.consider(
            CandidateResult(spec=spec_a, seed=0, verdict=Verdict(kind="ok"),
                            coverage=keys),
            origin="sample",
        )
        failing = CandidateResult(
            spec=spec_b, seed=0,
            verdict=Verdict(kind="missed_detection",
                            fault_pairs=(("printer", "silent_jam"),)),
            coverage=keys,
        )
        entry = corpus.consider(failing, origin="sample")
        assert entry is not None and entry.verdict == "missed_detection"

    def test_persist_and_load_round_trip(self, tmp_path):
        db = str(tmp_path / "hist.sqlite")
        report = Fuzzer(
            FuzzConfig(seed=2, candidates=3, check_divergence=False,
                       shrink_attempts=10),
            history=RunHistory(db),
        ).run()
        assert report.admitted
        loaded = Corpus.load(RunHistory(db))
        assert {e.hash for e in loaded.entries} == {
            e.hash for e in report.admitted
        }
        assert loaded.coverage.keys >= frozenset().union(
            *(e.coverage for e in report.admitted)
        )
        # re-persisting the same entries is a no-op (INSERT OR IGNORE)
        assert loaded.persist(RunHistory(db), loaded.entries) == 0


# ----------------------------------------------------------------------
# shrinker
# ----------------------------------------------------------------------
class TestShrink:
    def test_shrinks_to_minimal_reproducer(self):
        base = get_scenario("fuzz-printer-silent-jam")
        # Fatten the repro back up: extra devices and a pointless phase
        # the shrinker must strip while preserving the signature.
        from dataclasses import replace

        fat = replace(
            base, name="fat", printers=3, tvs=2, duration=40.0,
            printer_job_gap=None,
            profiles=(get_scenario("zapping-storm").profiles[0],),
        )
        fat.validate()
        result = evaluate_candidate(fat, seed=0, check_divergence=False)
        assert result.verdict.kind == "missed_detection"
        outcome = shrink(result, max_attempts=60)
        assert outcome.spec.members < fat.members
        assert outcome.result.verdict.signature == result.verdict.signature
        final = evaluate_candidate(
            outcome.spec, seed=0, check_divergence=False
        )
        assert final.verdict.signature == result.verdict.signature

    def test_ok_candidate_refuses_to_shrink(self):
        spec = ScenarioSpec(
            name="fine", description="", duration=10.0, printers=1,
            printer_job_gap=4.0, profiles=(),
        )
        result = evaluate_candidate(spec, seed=0, check_divergence=False)
        with pytest.raises(ValueError, match="failing"):
            shrink(result, max_attempts=10)


# ----------------------------------------------------------------------
# engine: the determinism gate (ISSUE 8 acceptance criterion)
# ----------------------------------------------------------------------
class TestDeterminismGate:
    def test_bounded_run_is_fully_deterministic(self):
        config = FuzzConfig(seed=3, candidates=8, shrink_attempts=25)
        first = Fuzzer(config).run()
        second = Fuzzer(config).run()
        assert first.determinism_witness() == second.determinism_witness()
        # the witness is the run's whole deterministic core
        assert first.evaluated == 8
        assert first.stopped_by == "candidates"
        assert first.coverage_keys > 0

    def test_mutation_stage_engages(self):
        report = Fuzzer(
            FuzzConfig(seed=3, candidates=8, shrink_attempts=25)
        ).run()
        origins = {entry.origin for entry in report.admitted}
        assert "sample" in origins
        # with a non-empty frontier every MUTATE_EVERY-th candidate is a
        # mutation; seed 3 admits early so mutants must appear
        assert "mutate" in origins, origins
        assert MUTATE_EVERY == 3

    def test_wall_budget_stops_early(self):
        report = Fuzzer(
            FuzzConfig(seed=0, candidates=500, budget_seconds=0.0,
                       check_divergence=False)
        ).run()
        assert report.stopped_by == "budget"
        assert report.evaluated == 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_run_writes_report(self, tmp_path):
        out = tmp_path / "report.json"
        code = fuzz_main([
            "run", "--seed", "1", "--candidates", "2", "--no-db",
            "--no-divergence-check", "--shrink-attempts", "5",
            "--out", str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["evaluated"] == 2
        assert data["seed"] == 1
        assert "coverage_by_layer" in data

    def test_corpus_and_export_round_trip(self, tmp_path):
        db = str(tmp_path / "hist.sqlite")
        code = fuzz_main([
            "run", "--seed", "2", "--candidates", "3", "--db", db,
            "--no-divergence-check", "--shrink-attempts", "5",
        ])
        assert code == 0
        entries = RunHistory(db).fuzz_entries()
        assert entries
        assert fuzz_main(["corpus", "--db", db]) == 0
        target = entries[0]["spec_hash"]
        out = tmp_path / "exported.json"
        code = fuzz_main([
            "export-scenario", "--db", db, "--hash", target[:10],
            "--out", str(out),
        ])
        assert code == 0
        exported = ScenarioSpec.from_json(json.loads(out.read_text()))
        assert spec_hash(exported) == target

    def test_export_unknown_hash_fails(self, tmp_path):
        db = str(tmp_path / "hist.sqlite")
        RunHistory(db)  # create empty store
        assert fuzz_main([
            "export-scenario", "--db", db, "--hash", "ffffffff",
        ]) != 0

    def test_ci_mode_passes_on_clean_run(self, tmp_path):
        # seed 1 / 2 candidates found nothing on the curated corpus
        # above; --ci must exit 0 when there are no findings.
        code = fuzz_main([
            "run", "--seed", "1", "--candidates", "2", "--no-db",
            "--no-divergence-check", "--shrink-attempts", "5", "--ci",
        ])
        assert code == 0

    def test_known_seeding_and_soft_findings_keep_ci_green(self, capsys):
        # The checked-in pins (benchmarks/fuzz_known) seed their failure
        # signatures, and the remaining reproducible detection-gap
        # findings report without failing the lane: --ci is a runtime
        # gate, not a research-completeness gate.
        known = os.path.join(
            os.path.dirname(__file__), os.pardir, "benchmarks", "fuzz_known"
        )
        code = fuzz_main([
            "run", "--seed", "7", "--candidates", "8", "--no-db",
            "--known", known, "--no-divergence-check",
            "--shrink-attempts", "5", "--ci",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "known: latent_volume.json" in out
        assert "known: latent_silent_jam.json" in out
        # the pinned signatures were seeded, so they are not findings
        findings = [line for line in out.splitlines() if "FINDING" in line]
        assert findings
        assert not any("tv:volume_overshoot" in line for line in findings)
        assert not any("printer:silent_jam" in line for line in findings)
        # ... but the novel-signature findings still surface, soft
        assert "detection-gap finding(s)" in out


# ----------------------------------------------------------------------
# history schema
# ----------------------------------------------------------------------
class TestHistoryFuzzTable:
    def test_record_is_idempotent_by_spec_hash(self, tmp_path):
        history = RunHistory(str(tmp_path / "h.sqlite"))
        kwargs = dict(
            spec_hash="abc123", spec_json="{}", name="x", seed=0,
            origin="sample", verdict="ok", signature="",
            novel_keys=["model:tv:t"], coverage=["model:tv:t"],
        )
        assert history.record_fuzz_entry(**kwargs) is not None
        assert history.record_fuzz_entry(**kwargs) is None
        assert history.counts()["fuzz_corpus"] == 1
        assert history.fuzz_coverage() == ["model:tv:t"]

    def test_fuzz_entries_filter_by_verdict(self, tmp_path):
        history = RunHistory(str(tmp_path / "h.sqlite"))
        for i, verdict in enumerate(("ok", "missed_detection")):
            history.record_fuzz_entry(
                spec_hash=f"hash{i}", spec_json="{}", name=f"s{i}", seed=0,
                origin="sample", verdict=verdict,
                signature="missed_detection|tv:mute_noop" if i else "",
                novel_keys=[], coverage=[],
            )
        failing = history.fuzz_entries(verdict="missed_detection")
        assert [row["name"] for row in failing] == ["s1"]
