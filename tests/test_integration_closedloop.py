"""End-to-end integration: the complete Fig. 1 loop on the simulated TV.

These tests exercise every package together: fault injection → awareness
monitor (Fig. 2) + mode checker detect → policy decides → recovery manager
repairs → loop verifies — the paper's model-to-model validation (Sect. 5)
plus actual recovery.
"""


from repro.awareness import (
    ModeConsistencyChecker,
    make_tv_monitor,
    ttx_sync_rule,
)
from repro.core import AwarenessLoop, LadderStep, MonitorHierarchy, RecoveryPolicy
from repro.recovery import RecoveryManager
from repro.tv import FaultInjector, TVSet


def build_stack(seed=21, settle=8.0):
    """TV + monitor + mode checker + loop, with a teletext repair ladder."""
    tv = TVSet(seed=seed)
    monitor = make_tv_monitor(tv)
    checker = ModeConsistencyChecker(
        tv.kernel,
        lambda: {
            tv.teletext.acquirer.name: tv.teletext.acquirer.mode,
            tv.teletext.renderer.name: tv.teletext.renderer.mode,
        },
        interval=1.0,
    )
    checker.add_rule(
        ttx_sync_rule(tv.teletext.acquirer.name, tv.teletext.renderer.name)
    )
    checker.start()

    injector = FaultInjector(tv)
    manager = RecoveryManager(tv.kernel)
    manager.register_repair(
        "ttx_resync", lambda: injector.clear("drop_ttx_notify")
    )
    manager.register_repair(
        "render_fix", lambda: injector.clear("ttx_stale_render")
    )
    policy = RecoveryPolicy()
    policy.add_ladder("ttx-*", [LadderStep("repair", "ttx_resync", 0.0)])
    policy.add_ladder("screen", [
        LadderStep("repair", "render_fix", 0.0),
        LadderStep("repair", "ttx_resync", 0.0),
    ])
    policy.add_ladder("sound", [LadderStep("repair", "ttx_resync", 0.0)])

    loop = AwarenessLoop(tv.kernel, policy, manager, settle_time=settle)
    loop.attach(monitor.controller)
    loop.attach(checker)
    loop.post_recovery_hooks.append(
        lambda incident: (monitor.comparator.reset(), checker.reset())
    )
    return tv, monitor, checker, injector, loop


def drive(tv, keys, gap=5.0):
    for key in keys:
        tv.press(key)
        tv.run(gap)


class TestClosedLoop:
    def test_sync_loss_detected_and_repaired(self):
        tv, monitor, checker, injector, loop = build_stack()
        injector.inject("drop_ttx_notify", activate_after_presses=3)
        drive(tv, ["power", "ttx", "ttx", "ch_up", "ttx"])
        tv.run(30.0)
        assert loop.incidents, "nothing detected"
        assert loop.recovered_count() == len(loop.incidents)
        # user-visible effect repaired: teletext shows pages again
        assert tv.screen_descriptor()["ttx_status"] == "shown"

    def test_detection_before_recovery_ordering(self):
        tv, monitor, checker, injector, loop = build_stack()
        injector.inject("drop_ttx_notify", activate_after_presses=3)
        drive(tv, ["power", "ttx", "ttx", "ch_up", "ttx"])
        tv.run(30.0)
        for incident in loop.incidents:
            assert incident.action is not None
            assert incident.verified_at > incident.report.time

    def test_stale_render_repaired_via_escalation(self):
        tv, monitor, checker, injector, loop = build_stack()
        injector.inject("ttx_stale_render", activate_after_presses=2)
        drive(tv, ["power", "ttx"])
        tv.run(40.0)
        screen_incidents = [
            i for i in loop.incidents if i.report.observable == "screen"
        ]
        assert screen_incidents
        assert tv.screen_descriptor()["ttx_status"] == "shown"

    def test_no_faults_no_actions(self):
        tv, monitor, checker, injector, loop = build_stack()
        drive(tv, ["power", "ttx", "ch_up", "ttx", "menu", "back", "power"])
        tv.run(20.0)
        assert loop.incidents == []

    def test_loop_summary_detection_latency(self):
        tv, monitor, checker, injector, loop = build_stack()
        injector.inject("ttx_stale_render", activate_after_presses=2)
        drive(tv, ["power", "ttx"])
        tv.run(40.0)
        summary = loop.summary()
        assert summary.detection_latency is not None
        assert summary.detection_latency >= 0.0


class TestHierarchicalMonitors:
    def test_scoped_view_of_one_incident(self):
        tv, monitor, checker, injector, loop = build_stack()
        hierarchy = MonitorHierarchy("tv")
        hierarchy.add_scope("user-observables", monitor.controller)
        hierarchy.add_scope("mode-consistency", checker)
        injector.inject("drop_ttx_notify", activate_after_presses=3)
        drive(tv, ["power", "ttx", "ttx", "ch_up", "ttx"])
        tv.run(30.0)
        summary = hierarchy.scope_summary()
        assert sum(summary.values()) == len(hierarchy.errors)
        assert summary["mode-consistency"] >= 1

    def test_partial_recovery_keeps_other_features_alive(self):
        """While teletext recovery is pending, volume keys still work —
        the independence property partial recovery buys (Sect. 4.5)."""
        tv, monitor, checker, injector, loop = build_stack(settle=5.0)
        injector.inject("drop_ttx_notify", activate_after_presses=3)
        drive(tv, ["power", "ttx", "ttx", "ch_up", "ttx"])
        tv.press("vol_up")
        assert tv.sound_level() == 35
        tv.run(20.0)
        tv.press("vol_up")
        assert tv.sound_level() == 40
