"""Tests for the MonitorFleet / ExperimentRunner layer.

The fleet engine multiplexes many monitored SUOs on one kernel and one
bus; the properties that matter are isolation (per-SUO topic namespaces),
determinism (same seed → byte-identical fleet trace), and that the
campaign machinery actually detects injected faults without false alarms.
"""

import pytest

from repro.runtime import ExperimentRunner, MonitorFleet
from repro.runtime.fleet import derive_member_seed


def test_members_share_one_kernel_and_bus():
    fleet = MonitorFleet(seed=1)
    a = fleet.add_tv()
    b = fleet.add_tv()
    p = fleet.add_player()
    assert a.suo.kernel is fleet.kernel
    assert b.suo.kernel is fleet.kernel
    assert p.suo.kernel is fleet.kernel
    assert a.suo.bus is fleet.bus
    assert len(fleet) == 3


def test_member_seeds_are_stable_and_distinct():
    assert derive_member_seed(5, "tv-0") == derive_member_seed(5, "tv-0")
    assert derive_member_seed(5, "tv-0") != derive_member_seed(5, "tv-1")
    assert derive_member_seed(5, "tv-0") != derive_member_seed(6, "tv-0")


def test_duplicate_suo_id_rejected():
    fleet = MonitorFleet(seed=1)
    fleet.add_tv(suo_id="x")
    try:
        fleet.add_tv(suo_id="x")
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("duplicate suo_id accepted")


def test_topic_isolation_between_members():
    """Pressing a key on one TV reaches only that TV's monitor."""
    fleet = MonitorFleet(seed=3)
    a = fleet.add_tv()
    b = fleet.add_tv()
    a.suo.press("power")
    fleet.run(10.0)
    assert a.suo.powered
    assert not b.suo.powered
    # the monitor executors saw different input streams
    assert a.monitor.executor.steps != b.monitor.executor.steps
    # and the fleet recorder attributed traffic to the right member
    assert a.inputs == 1
    assert b.inputs == 0


def test_fleet_trace_is_deterministic_across_runs():
    """Same seed → byte-identical merged fleet trace (two fresh runs)."""

    def digest():
        fleet = MonitorFleet(seed=11)
        fleet.add_tvs(5)
        fleet.add_player()
        runner = ExperimentRunner(fleet, duration=40.0, fault_fraction=0.4)
        report = runner.run()
        return report.trace_digest, report.dispatched

    first, second = digest(), digest()
    assert first == second
    assert first[1] > 0


def test_different_seed_changes_the_trace():
    def digest(seed):
        fleet = MonitorFleet(seed=seed)
        fleet.add_tvs(3)
        ExperimentRunner(fleet, duration=30.0).run()
        return fleet.trace_digest()

    assert digest(1) != digest(2)


def test_campaign_detects_injected_faults_without_false_alarms():
    fleet = MonitorFleet(seed=42)
    fleet.add_tvs(12)
    runner = ExperimentRunner(
        fleet,
        duration=120.0,
        fault_fraction=0.5,
        fault="volume_overshoot",
        # volume-heavy sessions make the overshoot fault observable
        keys=["power", "vol_up", "vol_down", "ch_up", "mute", "menu", "back"],
    )
    report = runner.run()
    assert report.members == 12
    assert report.faulty, "campaign should afflict someone at 50%"
    assert report.detected, "at least one injected fault must be caught"
    assert report.false_alarms == []
    assert 0.0 < report.detection_rate <= 1.0
    assert report.events_per_sec > 0


def test_fleet_scales_to_one_hundred_suos():
    """The acceptance workload: 100 SUOs, one kernel, deterministic."""
    fleet = MonitorFleet(seed=9)
    fleet.add_tvs(100)
    report = ExperimentRunner(fleet, duration=20.0).run()
    assert report.members == 100
    assert report.dispatched > 10_000
    powered = sum(1 for m in fleet.members.values() if m.suo.powered)
    assert powered > 50  # random users zap some off; most stay on


# ----------------------------------------------------------------------
# report-ratio guards (zero-fault / zero-member campaigns)
# ----------------------------------------------------------------------
def _report(members=0, faulty=(), detected=(), false_alarms=()):
    from repro.runtime import FleetReport

    return FleetReport(
        members=members,
        duration=1.0,
        dispatched=0,
        wall_seconds=0.0,
        events_per_sec=0.0,
        errors_by_suo={},
        faulty=list(faulty),
        detected=list(detected),
        false_alarms=list(false_alarms),
        trace_digest="",
        trace_records=0,
    )


def test_detection_rate_guards_zero_fault_campaigns():
    assert _report(members=5).detection_rate == 1.0
    assert _report(members=5, faulty=["a", "b"], detected=["a"]).detection_rate == 0.5


def test_false_alarm_rate_guards_degenerate_fleets():
    # empty fleet and all-faulty fleet: nobody *could* false-alarm
    assert _report(members=0).false_alarm_rate == 0.0
    assert _report(members=2, faulty=["a", "b"]).false_alarm_rate == 0.0
    assert _report(
        members=4, faulty=["a", "b"], false_alarms=["c"]
    ).false_alarm_rate == 0.5


def test_wall_clock_zero_does_not_divide():
    assert _report(members=1).events_per_sec == 0.0


# ----------------------------------------------------------------------
# ExperimentRunner edge cases
# ----------------------------------------------------------------------
def test_runner_on_an_empty_fleet():
    fleet = MonitorFleet(seed=1)
    report = ExperimentRunner(fleet, duration=10.0, fault_fraction=0.5).run()
    assert report.members == 0
    assert report.dispatched == 0
    assert report.faulty == []
    assert report.detection_rate == 1.0
    assert report.false_alarm_rate == 0.0
    assert report.telemetry_summary["events_total"] == 0


def test_runner_faults_into_every_member():
    fleet = MonitorFleet(seed=8)
    fleet.add_tvs(6)
    report = ExperimentRunner(
        fleet,
        duration=120.0,
        fault_fraction=1.0,
        keys=["power", "vol_up", "vol_down", "mute", "ch_up"],
    ).run()
    assert len(report.faulty) == 6  # fraction 1.0 afflicts everyone
    assert report.false_alarms == []
    assert report.false_alarm_rate == 0.0  # no clean member exists
    assert report.detected, "an all-faulty campaign must detect someone"


def test_repeated_run_extends_the_campaign_instead_of_restarting():
    fleet = MonitorFleet(seed=21)
    fleet.add_tvs(8)
    runner = ExperimentRunner(fleet, duration=30.0, mean_gap=5.0)
    first = runner.run()
    powered = sum(1 for m in fleet.members.values() if m.suo.powered)
    assert powered > 0
    second = runner.run()
    # setup ran once: every TV has exactly one driver and the clock moved on
    assert all(m.driver is not None for m in fleet.members.values() if m.kind == "tv")
    assert fleet.kernel.now == pytest.approx(60.0)
    # reports are cumulative: the second covers both segments
    assert second.duration == pytest.approx(60.0)
    assert second.trace_records >= first.trace_records
    assert second.dispatched >= first.dispatched > 0


def test_streaming_mode_matches_retained_digest_with_no_records():
    def campaign(retain):
        fleet = MonitorFleet(seed=13, retain_trace=retain)
        fleet.add_tvs(4)
        report = ExperimentRunner(fleet, duration=30.0).run()
        return fleet, report

    retained_fleet, retained = campaign(True)
    streaming_fleet, streaming = campaign(False)
    assert retained.trace_digest == streaming.trace_digest
    assert retained.trace_records == streaming.trace_records
    assert len(retained_fleet.trace.records) == retained.trace_records
    assert streaming_fleet.trace.records == []  # bounded memory
    assert streaming.retained_trace is False
    assert retained.telemetry_digest == streaming.telemetry_digest


def test_false_alarm_denominator_counts_monitored_clean_members():
    """Unmonitored members can be fault-injected too; the false-alarm
    pool is the monitored AND fault-free population, not monitored minus
    total faulty."""
    fleet = MonitorFleet(seed=30)
    fleet.add_tvs(3, monitor=True)
    fleet.add_tvs(2, monitor=False)
    # mark both unmonitored TVs faulty by hand
    for member in fleet.members.values():
        if member.monitor is None:
            member.faulty = True
    faulty = [m for m in fleet.members.values() if m.faulty]
    from repro.runtime import build_fleet_report

    report = build_fleet_report(fleet, 1.0, 0, 0.0, faulty)
    assert report.monitored_clean == 3  # the three monitored, clean TVs
    assert report.false_alarm_rate == 0.0
