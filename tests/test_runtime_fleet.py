"""Tests for the MonitorFleet / ExperimentRunner layer.

The fleet engine multiplexes many monitored SUOs on one kernel and one
bus; the properties that matter are isolation (per-SUO topic namespaces),
determinism (same seed → byte-identical fleet trace), and that the
campaign machinery actually detects injected faults without false alarms.
"""

from repro.runtime import ExperimentRunner, MonitorFleet
from repro.runtime.fleet import derive_member_seed


def test_members_share_one_kernel_and_bus():
    fleet = MonitorFleet(seed=1)
    a = fleet.add_tv()
    b = fleet.add_tv()
    p = fleet.add_player()
    assert a.suo.kernel is fleet.kernel
    assert b.suo.kernel is fleet.kernel
    assert p.suo.kernel is fleet.kernel
    assert a.suo.bus is fleet.bus
    assert len(fleet) == 3


def test_member_seeds_are_stable_and_distinct():
    assert derive_member_seed(5, "tv-0") == derive_member_seed(5, "tv-0")
    assert derive_member_seed(5, "tv-0") != derive_member_seed(5, "tv-1")
    assert derive_member_seed(5, "tv-0") != derive_member_seed(6, "tv-0")


def test_duplicate_suo_id_rejected():
    fleet = MonitorFleet(seed=1)
    fleet.add_tv(suo_id="x")
    try:
        fleet.add_tv(suo_id="x")
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("duplicate suo_id accepted")


def test_topic_isolation_between_members():
    """Pressing a key on one TV reaches only that TV's monitor."""
    fleet = MonitorFleet(seed=3)
    a = fleet.add_tv()
    b = fleet.add_tv()
    a.suo.press("power")
    fleet.run(10.0)
    assert a.suo.powered
    assert not b.suo.powered
    # the monitor executors saw different input streams
    assert a.monitor.executor.steps != b.monitor.executor.steps
    # and the fleet recorder attributed traffic to the right member
    assert a.inputs == 1
    assert b.inputs == 0


def test_fleet_trace_is_deterministic_across_runs():
    """Same seed → byte-identical merged fleet trace (two fresh runs)."""

    def digest():
        fleet = MonitorFleet(seed=11)
        fleet.add_tvs(5)
        fleet.add_player()
        runner = ExperimentRunner(fleet, duration=40.0, fault_fraction=0.4)
        report = runner.run()
        return report.trace_digest, report.dispatched

    first, second = digest(), digest()
    assert first == second
    assert first[1] > 0


def test_different_seed_changes_the_trace():
    def digest(seed):
        fleet = MonitorFleet(seed=seed)
        fleet.add_tvs(3)
        ExperimentRunner(fleet, duration=30.0).run()
        return fleet.trace_digest()

    assert digest(1) != digest(2)


def test_campaign_detects_injected_faults_without_false_alarms():
    fleet = MonitorFleet(seed=42)
    fleet.add_tvs(12)
    runner = ExperimentRunner(
        fleet,
        duration=120.0,
        fault_fraction=0.5,
        fault="volume_overshoot",
        # volume-heavy sessions make the overshoot fault observable
        keys=["power", "vol_up", "vol_down", "ch_up", "mute", "menu", "back"],
    )
    report = runner.run()
    assert report.members == 12
    assert report.faulty, "campaign should afflict someone at 50%"
    assert report.detected, "at least one injected fault must be caught"
    assert report.false_alarms == []
    assert 0.0 < report.detection_rate <= 1.0
    assert report.events_per_sec > 0


def test_fleet_scales_to_one_hundred_suos():
    """The acceptance workload: 100 SUOs, one kernel, deterministic."""
    fleet = MonitorFleet(seed=9)
    fleet.add_tvs(100)
    report = ExperimentRunner(fleet, duration=20.0).run()
    assert report.members == 100
    assert report.dispatched > 10_000
    powered = sum(1 for m in fleet.members.values() if m.suo.powered)
    assert powered > 50  # random users zap some off; most stay on
