"""Tests for interface types, operations, and range contracts."""


from repro.koala import InterfaceType, Operation


class TestOperation:
    def test_check_args_within_range(self):
        op = Operation("set_volume", ranges={"level": (0, 100)})
        assert op.check_args({"level": 50}) is None

    def test_check_args_boundary_inclusive(self):
        op = Operation("set_volume", ranges={"level": (0, 100)})
        assert op.check_args({"level": 0}) is None
        assert op.check_args({"level": 100}) is None

    def test_check_args_out_of_range(self):
        op = Operation("set_volume", ranges={"level": (0, 100)})
        problem = op.check_args({"level": 150})
        assert problem is not None
        assert "150" in problem

    def test_check_args_non_numeric(self):
        op = Operation("set_volume", ranges={"level": (0, 100)})
        assert op.check_args({"level": "loud"}) is not None

    def test_check_args_missing_arg_ignored(self):
        op = Operation("set_volume", ranges={"level": (0, 100)})
        assert op.check_args({}) is None

    def test_check_result(self):
        op = Operation("get_volume", result_range=(0, 100))
        assert op.check_result(30) is None
        assert op.check_result(-1) is not None

    def test_check_result_without_range(self):
        op = Operation("anything")
        assert op.check_result("whatever") is None

    def test_check_result_non_numeric(self):
        op = Operation("get_volume", result_range=(0, 100))
        assert op.check_result(None) is not None


class TestInterfaceType:
    def test_fluent_operation_declaration(self):
        itype = (
            InterfaceType("IAudio")
            .operation("set_volume", ranges={"level": (0, 100)})
            .operation("get_volume", result_range=(0, 100))
        )
        assert itype.has_operation("set_volume")
        assert itype.has_operation("get_volume")
        assert not itype.has_operation("explode")

    def test_repr_lists_operations(self):
        itype = InterfaceType("IX").operation("a").operation("b")
        assert "IX" in repr(itype)
        assert "a" in repr(itype)
