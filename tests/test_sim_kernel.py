"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import Kernel, SimulationError


def test_initial_time_is_zero():
    kernel = Kernel()
    assert kernel.now == 0.0


def test_schedule_and_run_advances_clock():
    kernel = Kernel()
    fired = []
    kernel.schedule(5.0, lambda: fired.append(kernel.now))
    kernel.run()
    assert fired == [5.0]
    assert kernel.now == 5.0


def test_events_dispatch_in_time_order():
    kernel = Kernel()
    order = []
    kernel.schedule(3.0, lambda: order.append("c"))
    kernel.schedule(1.0, lambda: order.append("a"))
    kernel.schedule(2.0, lambda: order.append("b"))
    kernel.run()
    assert order == ["a", "b", "c"]


def test_equal_time_ties_broken_by_priority_then_insertion():
    kernel = Kernel()
    order = []
    kernel.schedule(1.0, lambda: order.append("low"), priority=5)
    kernel.schedule(1.0, lambda: order.append("high"), priority=-5)
    kernel.schedule(1.0, lambda: order.append("mid_first"), priority=0)
    kernel.schedule(1.0, lambda: order.append("mid_second"), priority=0)
    kernel.run()
    assert order == ["high", "mid_first", "mid_second", "low"]


def test_negative_delay_rejected():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        kernel.schedule(-1.0, lambda: None)


def test_run_until_stops_before_later_events():
    kernel = Kernel()
    fired = []
    kernel.schedule(1.0, lambda: fired.append(1))
    kernel.schedule(10.0, lambda: fired.append(10))
    kernel.run(until=5.0)
    assert fired == [1]
    assert kernel.now == 5.0  # clock advanced to the until bound
    kernel.run()
    assert fired == [1, 10]


def test_run_until_is_inclusive_of_events_at_bound():
    kernel = Kernel()
    fired = []
    kernel.schedule(5.0, lambda: fired.append("at"))
    kernel.run(until=5.0)
    assert fired == ["at"]


def test_cancelled_event_does_not_fire():
    kernel = Kernel()
    fired = []
    event = kernel.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    kernel.run()
    assert fired == []


def test_schedule_at_absolute_time():
    kernel = Kernel()
    fired = []
    kernel.schedule(2.0, lambda: kernel.schedule_at(7.0, lambda: fired.append(kernel.now)))
    kernel.run()
    assert fired == [7.0]


def test_events_scheduled_during_dispatch_run_same_pass():
    kernel = Kernel()
    order = []

    def first():
        order.append("first")
        kernel.schedule(0.0, lambda: order.append("nested"))

    kernel.schedule(1.0, first)
    kernel.run()
    assert order == ["first", "nested"]


def test_max_events_bound():
    kernel = Kernel()
    for i in range(10):
        kernel.schedule(float(i + 1), lambda: None)
    dispatched = kernel.run(max_events=4)
    assert dispatched == 4
    assert kernel.pending_count() == 6


def test_step_returns_false_on_empty_queue():
    kernel = Kernel()
    assert kernel.step() is False


def test_peek_time_skips_cancelled():
    kernel = Kernel()
    event = kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    event.cancel()
    assert kernel.peek_time() == 2.0


def test_dispatch_hook_sees_every_event():
    kernel = Kernel()
    seen = []
    kernel.add_dispatch_hook(lambda event: seen.append(event.time))
    kernel.schedule(1.0, lambda: None, name="a")
    kernel.schedule(2.0, lambda: None, name="b")
    kernel.run()
    assert seen == [1.0, 2.0]


def test_dispatched_count_accumulates():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    kernel.run()
    assert kernel.dispatched_count == 2


def test_zero_delay_event_fires_at_current_time():
    kernel = Kernel()
    times = []
    kernel.schedule(5.0, lambda: kernel.schedule(0.0, lambda: times.append(kernel.now)))
    kernel.run()
    assert times == [5.0]


# ----------------------------------------------------------------------
# lazy-deletion debt and heap compaction (fleet-scale memory bound)
# ----------------------------------------------------------------------
def test_cancelled_events_do_not_accumulate_in_the_heap():
    """Regression: the seed kernel never removed cancelled events, so a
    long campaign that schedules-and-cancels (transient overlay timers,
    watchdogs) grew the queue without bound.  Compaction must keep the
    raw heap size within a constant factor of the live event count."""
    kernel = Kernel()
    kernel.schedule(1e9, lambda: None)  # one live far-future event
    max_queue = 0
    for round_ in range(200):
        events = [kernel.schedule(1e6 + round_, lambda: None) for _ in range(100)]
        for event in events:
            event.cancel()
        max_queue = max(max_queue, kernel.queue_size())
    # 20k cancellations happened; the heap must stay small and exact
    assert max_queue < 1000
    assert kernel.pending_count() == 1
    assert kernel.compactions > 0
    kernel.run(until=2e9)
    assert kernel.dispatched_count == 1


def test_compaction_preserves_dispatch_order():
    kernel = Kernel()
    order = []
    keep = []
    for i in range(50):
        keep.append(kernel.schedule(float(i + 1), lambda i=i: order.append(i)))
    doomed = [kernel.schedule(0.5, lambda: order.append("doomed")) for _ in range(500)]
    for event in doomed:
        event.cancel()  # crosses the debt threshold -> compacts
    assert kernel.compactions > 0
    kernel.run()
    assert order == list(range(50))


def test_pending_count_is_exact_under_cancellation():
    kernel = Kernel()
    events = [kernel.schedule(float(i + 1), lambda: None) for i in range(10)]
    events[3].cancel()
    events[7].cancel()
    events[7].cancel()  # double-cancel must not double-count
    assert kernel.pending_count() == 8
    assert kernel.cancelled_debt == 2
    kernel.run()
    assert kernel.dispatched_count == 8
    assert kernel.pending_count() == 0


def test_cancel_after_dispatch_is_harmless():
    kernel = Kernel()
    fired = []
    event = kernel.schedule(1.0, lambda: fired.append(1))
    kernel.run()
    event.cancel()  # already dispatched; must not corrupt the debt
    assert fired == [1]
    assert kernel.pending_count() == 0
    assert kernel.cancelled_debt == 0


def test_peek_time_is_exact_with_cancelled_head():
    kernel = Kernel()
    first = kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    first.cancel()
    assert kernel.peek_time() == 2.0
    assert kernel.pending_count() == 1


def test_batched_dispatch_keeps_same_timestamp_order_with_nesting():
    """Events scheduled *during* a same-timestamp batch merge into it in
    (priority, seq) order, exactly as one-at-a-time stepping would."""
    kernel = Kernel()
    order = []

    def first():
        order.append("first")
        kernel.schedule(0.0, lambda: order.append("nested-late"), priority=5)
        kernel.schedule(0.0, lambda: order.append("nested-soon"), priority=-5)

    kernel.schedule(1.0, first)
    kernel.schedule(1.0, lambda: order.append("second"))
    kernel.run()
    assert order == ["first", "nested-soon", "second", "nested-late"]


def test_callback_may_cancel_later_event_in_same_batch():
    kernel = Kernel()
    order = []
    victim = kernel.schedule(1.0, lambda: order.append("victim"), priority=1)
    kernel.schedule(1.0, lambda: victim.cancel(), priority=0)
    kernel.run()
    assert order == []
    assert kernel.pending_count() == 0


def test_run_with_max_events_zero_dispatches_nothing():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    assert kernel.run(max_events=0) == 0
    assert kernel.pending_count() == 1


def test_schedule_at_fires_at_exact_absolute_time():
    """schedule_at must not round-trip through now + (t - now): after the
    clock has advanced, that sum can land an ulp *before* t and reorder
    callers that rely on monotone absolute deadlines (regression for the
    MessageChannel FIFO fuzz failure)."""
    kernel = Kernel()
    deadline = 1.8  # not exactly representable relative to now=0.4
    fired_at = []
    kernel.schedule(0.4, lambda: None)
    kernel.run()
    assert kernel.now == 0.4
    event = kernel.schedule_at(deadline, lambda: fired_at.append(kernel.now))
    assert event.time == deadline
    kernel.run()
    assert fired_at == [deadline]


def test_schedule_at_rejects_the_past():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.schedule_at(0.5, lambda: None)


# ----------------------------------------------------------------------
# transient events and the freelist (the dispatch hot-path overhaul)
# ----------------------------------------------------------------------
def test_transient_event_is_recycled_and_reused():
    kernel = Kernel()
    fired = []
    first = kernel.schedule(1.0, lambda: fired.append("a"), transient=True)
    kernel.run()
    assert fired == ["a"]
    assert first in kernel._free
    # The next transient schedule must reuse the recycled object.
    second = kernel.schedule(1.0, lambda: fired.append("b"), transient=True)
    assert second is first
    kernel.run()
    assert fired == ["a", "b"]


def test_non_transient_events_are_never_recycled():
    kernel = Kernel()
    event = kernel.schedule(1.0, lambda: None)
    kernel.run()
    assert event not in kernel._free
    assert kernel._free == []


def test_cancelled_transient_event_is_recycled_without_firing():
    kernel = Kernel()
    fired = []
    event = kernel.schedule(1.0, lambda: fired.append("x"), transient=True)
    kernel.schedule(2.0, lambda: fired.append("y"))
    event.cancel()
    kernel.run()
    assert fired == ["y"]
    assert event in kernel._free


def test_recycled_event_drops_its_callback_closure():
    kernel = Kernel()
    payload = []
    event = kernel.schedule(1.0, lambda: payload.append(1), transient=True)
    original = event.callback
    kernel.run()
    assert event.callback is not original  # closure released for the GC


def test_freelist_is_bounded_by_the_cap():
    from repro.sim.kernel import FREELIST_CAP

    kernel = Kernel()
    for i in range(FREELIST_CAP + 50):
        kernel.schedule(float(i) * 0.001, lambda: None, transient=True)
    kernel.run()
    assert len(kernel._free) <= FREELIST_CAP


def test_transient_recycling_is_disabled_while_dispatch_hooks_attached():
    """Dispatch hooks (trace recorders) receive the Event object itself,
    so a hooked kernel must not reuse it out from under them."""
    from repro.sim import DISPATCH_TOPIC

    kernel = Kernel()
    seen = []
    kernel.bus.subscribe(DISPATCH_TOPIC, lambda _t, e: seen.append(e))
    event = kernel.schedule(1.0, lambda: None, transient=True)
    kernel.run()
    assert seen and seen[0] is event
    assert event not in kernel._free


def test_transient_and_normal_events_keep_dispatch_order():
    kernel = Kernel()
    order = []
    kernel.schedule(2.0, lambda: order.append("late"), transient=True)
    kernel.schedule(1.0, lambda: order.append("early"))
    kernel.schedule(1.0, lambda: order.append("early2"), transient=True)
    kernel.run()
    assert order == ["early", "early2", "late"]


def test_transient_reschedule_from_its_own_callback():
    """The self-rescheduling periodic pattern: the callback schedules the
    next tick while its (recycled) event is being dispatched."""
    kernel = Kernel()
    ticks = []

    def tick():
        ticks.append(kernel.now)
        if len(ticks) < 4:
            kernel.schedule(1.0, tick, name="tick", transient=True)

    kernel.schedule(1.0, tick, name="tick", transient=True)
    kernel.run()
    assert ticks == [1.0, 2.0, 3.0, 4.0]
    # Steady state reuses one Event object rather than allocating four.
    assert len(kernel._free) == 1
