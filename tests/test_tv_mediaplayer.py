"""Tests for the media-player SUO (the MPlayer analogue)."""

import pytest

from repro.sim import Kernel
from repro.tv import (
    MediaPlayer,
    MediaSource,
    build_player_model,
    expected_player_state,
)


def make_player(**source_kwargs):
    kernel = Kernel()
    source = MediaSource(**source_kwargs)
    return kernel, MediaPlayer(kernel, source)


class TestCommands:
    def test_initial_state_stopped(self):
        _, player = make_player()
        assert player.state == "stopped"
        assert player.position == 0.0

    def test_play_starts_rendering(self):
        kernel, player = make_player(packet_count=50)
        player.command("play")
        kernel.run(until=10.0)
        assert player.state == "playing"
        assert player.frames_rendered > 0
        assert player.position > 0.0

    def test_pause_freezes_position(self):
        kernel, player = make_player(packet_count=200)
        player.command("play")
        kernel.run(until=10.0)
        player.command("pause")
        paused_at = player.position
        kernel.run(until=20.0)
        assert player.position == pytest.approx(paused_at, abs=0.5)

    def test_stop_resets(self):
        kernel, player = make_player(packet_count=50)
        player.command("play")
        kernel.run(until=5.0)
        player.command("stop")
        assert player.state == "stopped"
        assert player.position == 0.0

    def test_seek_moves_position(self):
        kernel, player = make_player(packet_count=200)
        player.command("play")
        kernel.run(until=5.0)
        player.command("seek", position=30.0)
        assert player.position == pytest.approx(30.0)

    def test_unknown_command_rejected(self):
        _, player = make_player()
        with pytest.raises(ValueError):
            player.command("rewind_time_itself")

    def test_output_hooks_fire(self):
        kernel, player = make_player(packet_count=50)
        events = []
        player.output_hooks.append(lambda name, value: events.append(name))
        player.command("play")
        kernel.run(until=5.0)
        assert "state" in events
        assert "position" in events


class TestFaults:
    def test_corrupt_packet_concealed_by_default(self):
        kernel, player = make_player(packet_count=60, corrupt_indices=[10])
        player.command("play")
        kernel.run(until=60.0)
        assert not player.stalled
        assert player.frames_rendered >= 50  # one packet concealed

    def test_stall_on_corrupt_wedges_decoder(self):
        kernel, player = make_player(packet_count=60, corrupt_indices=[10])
        player.stall_on_corrupt = True
        player.command("play")
        kernel.run(until=60.0)
        assert player.stalled
        assert player.frames_rendered <= 11

    def test_decode_slowdown_reduces_throughput(self):
        kernel_fast, fast = make_player(packet_count=300)
        fast.command("play")
        kernel_fast.run(until=40.0)

        kernel_slow, slow = make_player(packet_count=300)
        slow.decode_slowdown = 4.0
        slow.command("play")
        kernel_slow.run(until=40.0)
        assert slow.frames_rendered < fast.frames_rendered


class TestPlayerModel:
    def test_model_follows_command_cycle(self):
        spec = build_player_model()
        assert expected_player_state(spec) == "stopped"
        spec.inject("play")
        assert expected_player_state(spec) == "playing"
        spec.inject("pause")
        assert expected_player_state(spec) == "paused"
        spec.inject("play")
        assert expected_player_state(spec) == "playing"
        spec.inject("stop")
        assert expected_player_state(spec) == "stopped"

    def test_model_ignores_invalid_transitions(self):
        spec = build_player_model()
        spec.inject("pause")  # pause while stopped: no transition
        assert expected_player_state(spec) == "stopped"

    def test_model_and_player_agree_without_faults(self):
        kernel, player = make_player(packet_count=500)
        spec = build_player_model()
        commands = ["play", "pause", "play", "seek", "pause", "play", "stop"]
        time = 0.0
        for command in commands:
            time += 3.0
            kernel.run(until=time)
            if command == "seek":
                player.command("seek", position=10.0)
            else:
                player.command(command)
            spec.advance(time)
            spec.inject(command)
            assert expected_player_state(spec) == player.state
