"""Integration tests for the instrumented-scenario diagnosis pipeline (E1)."""


from repro.diagnosis import (
    TELETEXT_SCENARIO_27,
    ScenarioRunner,
    SpectrumDiagnoser,
    evaluate_ranking,
)
from repro.tv import FaultInjector, TVSet


def run_faulty_scenario(fault="ttx_stale_render", activate_after=10, seed=11):
    tv = TVSet(seed=seed)
    FaultInjector(tv).inject(fault, activate_after_presses=activate_after)
    runner = ScenarioRunner(tv)
    result = runner.run(TELETEXT_SCENARIO_27)
    return runner, result


class TestScenarioRunner:
    def test_fault_free_run_has_no_errors(self):
        tv = TVSet(seed=11)
        runner = ScenarioRunner(tv)
        result = runner.run(TELETEXT_SCENARIO_27)
        assert result.error_steps == 0
        assert len(result.error_vector) == 27

    def test_scenario_has_27_key_presses(self):
        assert len(TELETEXT_SCENARIO_27) == 27

    def test_executed_blocks_in_paper_ballpark(self):
        _, result = run_faulty_scenario()
        # Paper: 13 796 of 60 000 blocks executed. Same order of magnitude.
        assert 10000 <= result.executed_blocks <= 20000
        assert result.total_blocks == 60000

    def test_fault_produces_error_steps(self):
        _, result = run_faulty_scenario()
        assert result.error_steps >= 3

    def test_error_steps_only_after_activation(self):
        _, result = run_faulty_scenario(activate_after=10)
        assert not any(result.error_vector[:9])


class TestDiagnosisEndToEnd:
    def test_stale_render_fault_ranked_first(self):
        runner, result = run_faulty_scenario("ttx_stale_render")
        ranking = SpectrumDiagnoser("ochiai").ranking(result.collector)
        quality = evaluate_ranking(
            ranking, runner.build.fault_blocks("ttx_stale_render")
        )
        assert quality.best_rank == 1
        assert quality.wasted_effort < 0.01

    def test_sync_loss_fault_localized(self):
        """The latent sync fault errs steps *after* its activation sites,
        which caps similarity below 1 — still localized within a few
        percent of the executed code (normal SFL behaviour for latent
        faults)."""
        runner, result = run_faulty_scenario("drop_ttx_notify", activate_after=7)
        assert result.error_steps > 0
        ranking = SpectrumDiagnoser("ochiai").ranking(result.collector)
        quality = evaluate_ranking(
            ranking, runner.build.fault_blocks("drop_ttx_notify")
        )
        assert quality.wasted_effort < 0.05

    def test_better_than_random_baseline(self):
        runner, result = run_faulty_scenario()
        ranking = SpectrumDiagnoser("ochiai").ranking(result.collector)
        quality = evaluate_ranking(
            ranking, runner.build.fault_blocks("ttx_stale_render")
        )
        assert quality.wasted_effort < 0.5  # random inspection expectation

    def test_multiple_coefficients_localize(self):
        runner, result = run_faulty_scenario()
        faulty = runner.build.fault_blocks("ttx_stale_render")
        for name in ("ochiai", "jaccard", "tarantula"):
            ranking = SpectrumDiagnoser(name).ranking(result.collector)
            quality = evaluate_ranking(ranking, faulty)
            assert quality.in_top_5, name

    def test_determinism_same_seed(self):
        _, result_a = run_faulty_scenario(seed=11)
        _, result_b = run_faulty_scenario(seed=11)
        assert result_a.error_vector == result_b.error_vector
        assert result_a.executed_blocks == result_b.executed_blocks
