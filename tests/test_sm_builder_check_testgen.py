"""Tests for the machine builder, model checker, and test generator."""

import pytest

from repro.statemachine import (
    Event,
    MachineBuilder,
    ModelChecker,
    TestGenerator,
)


def toggle_machine():
    b = MachineBuilder("toggle")
    b.state("off")
    b.state("on")
    b.initial("off")
    b.transition("off", "on", event="flip")
    b.transition("on", "off", event="flip")
    return b.build()


class TestBuilder:
    def test_duplicate_state_rejected(self):
        b = MachineBuilder("m")
        b.state("a")
        with pytest.raises(ValueError):
            b.state("a")

    def test_unknown_parent_rejected(self):
        b = MachineBuilder("m")
        with pytest.raises(ValueError):
            b.state("child", parent="ghost")

    def test_unknown_transition_endpoint_rejected(self):
        b = MachineBuilder("m")
        b.state("a")
        b.initial("a")
        with pytest.raises(ValueError):
            b.transition("a", "ghost", event="go")

    def test_compound_without_initial_rejected(self):
        b = MachineBuilder("m")
        b.state("parent")
        b.state("child", parent="parent")
        b.initial("parent")
        with pytest.raises(ValueError):
            b.build()

    def test_build_twice_rejected(self):
        b = MachineBuilder("m")
        b.state("a")
        b.initial("a")
        b.build()
        with pytest.raises(RuntimeError):
            b.build()

    def test_var_initialization(self):
        b = MachineBuilder("m")
        b.state("a")
        b.initial("a")
        machine = b.var("x", 42).build()
        assert machine.get("x") == 42


class TestModelChecker:
    def test_explores_reachable_states(self):
        machine = toggle_machine()
        report = ModelChecker(machine, [Event("flip")]).run()
        assert report.states_explored == 2
        assert report.deadlocks == []
        assert report.unreached_states == []

    def test_finds_unreachable_state(self):
        b = MachineBuilder("m")
        b.state("a")
        b.state("island")
        b.initial("a")
        b.transition("a", "a", event="loop")
        machine = b.build()
        report = ModelChecker(machine, [Event("loop")]).run()
        assert any("island" in name for name in report.unreached_states)

    def test_finds_deadlock(self):
        b = MachineBuilder("m")
        b.state("a")
        b.state("trap")
        b.initial("a")
        b.transition("a", "trap", event="go")
        machine = b.build()
        report = ModelChecker(machine, [Event("go")]).run()
        assert any("trap" in d for d in report.deadlocks)

    def test_invariant_violation_reported_with_trace(self):
        b = MachineBuilder("m")
        b.state("a")
        b.state("bad")
        b.initial("a")
        b.transition("a", "bad", event="go")
        b.transition("bad", "a", event="back")
        machine = b.build()
        report = ModelChecker(
            machine,
            [Event("go"), Event("back")],
            invariants=[("never-bad", lambda m: not m.configuration().endswith("bad"))],
        ).run()
        assert len(report.violations) == 1
        assert report.violations[0].trace == ["go"]
        assert not report.ok()

    def test_detects_nondeterminism(self):
        b = MachineBuilder("m")
        b.state("a")
        b.state("b")
        b.state("c")
        b.initial("a")
        b.transition("a", "b", event="go")
        b.transition("a", "c", event="go")
        machine = b.build()
        report = ModelChecker(machine, [Event("go")]).run()
        assert report.nondeterminism

    def test_timeouts_explored_via_tick(self):
        b = MachineBuilder("m")
        b.state("a")
        b.state("timed_out")
        b.initial("a")
        b.transition("a", "timed_out", after=5.0)
        machine = b.build()
        report = ModelChecker(machine, []).run()
        assert report.states_explored == 2

    def test_machine_state_restored_after_run(self):
        machine = toggle_machine()
        machine.inject("flip")
        before = machine.configuration()
        ModelChecker(machine, [Event("flip")]).run()
        assert machine.configuration() == before

    def test_truncation_flag(self):
        b = MachineBuilder("m")
        b.state("a")
        b.initial("a")
        b.transition(
            "a",
            None,
            event="inc",
            action=lambda m, e: m.set("n", m.get("n", 0) + 1),
            internal=True,
        )
        machine = b.build()
        report = ModelChecker(machine, [Event("inc")], max_states=10).run()
        assert report.truncated


class TestTestGenerator:
    def test_covers_all_transitions(self):
        machine = toggle_machine()
        generator = TestGenerator(machine, [Event("flip")])
        scenarios = generator.generate()
        covered = set()
        for scenario in scenarios:
            covered |= scenario.covers
        graph = generator._graph
        all_edges = {(u, v, d["event"]) for u, v, d in graph.edges(data=True)}
        assert covered == all_edges

    def test_replay_returns_configurations(self):
        machine = toggle_machine()
        generator = TestGenerator(machine, [Event("flip")])
        scenarios = generator.generate()
        configs = generator.replay(scenarios[0])
        assert configs[0].endswith("off")
        assert len(configs) == len(scenarios[0].events) + 1

    def test_replay_restores_machine(self):
        machine = toggle_machine()
        generator = TestGenerator(machine, [Event("flip")])
        scenarios = generator.generate()
        generator.replay(scenarios[0])
        assert machine.configuration().endswith("off")

    def test_scenarios_against_richer_model(self):
        b = MachineBuilder("m")
        b.state("off")
        b.state("on", initial="plain")
        b.state("plain", parent="on")
        b.state("menu", parent="on")
        b.initial("off")
        b.transition("off", "on", event="power")
        b.transition("on", "off", event="power")
        b.transition("plain", "menu", event="menu")
        b.transition("menu", "plain", event="back")
        machine = b.build()
        alphabet = [Event("power"), Event("menu"), Event("back")]
        scenarios = TestGenerator(machine, alphabet).generate()
        total_events = sum(len(s) for s in scenarios)
        assert total_events >= 4  # at least every edge once
