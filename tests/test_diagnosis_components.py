"""Unit tests for component-level online spectra (PR 5).

:class:`~repro.diagnosis.components.ComponentSpectra` folds a member's
bus traffic into per-component activity/error spectra in O(components)
memory and ranks components by spectrum similarity with single-fault
exoneration.  These tests drive it with a hand-controlled clock and bus
— no fleet required — and pin the determinism and tie conventions the
recovery ladder and the telemetry gates rely on.
"""

import pytest

from repro.core.contract import ErrorReport
from repro.diagnosis.components import (
    COMPONENTS,
    FAULT_COMPONENTS,
    ComponentSpectra,
    classify_player_event,
    classify_printer_event,
    classify_tv_event,
)
from repro.runtime.bus import EventBus
from repro.scenarios.spec import KNOWN_FAULTS, LOAD_FAULTS
from repro.tv.remote import KeyPress


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------
def test_tv_key_classification():
    assert classify_tv_event("input", KeyPress(0.0, "vol_up", 0)) == ("audio",)
    assert classify_tv_event("input", KeyPress(0.0, "mute", 0)) == ("audio",)
    assert classify_tv_event("input", KeyPress(0.0, "ch_up", 0)) == ("tuner",)
    assert classify_tv_event("input", KeyPress(0.0, "digit7", 0)) == ("tuner",)
    assert classify_tv_event("input", KeyPress(0.0, "ttx", 0)) == ("teletext",)
    assert classify_tv_event("input", KeyPress(0.0, "dual", 0)) == ("dualscreen",)
    assert classify_tv_event("stimulus", "alert_broadcast") == ("osd",)
    # defensive: unknown shapes classify to nothing
    assert classify_tv_event("input", "not-a-press") == ()
    assert classify_tv_event("recovery", {"action": "rebind"}) == ()


def test_player_and_printer_classification():
    assert classify_player_event("input", ("seek", {"position": 3.0})) == ("control",)
    assert classify_player_event("output", ("frame", 1.0)) == ("decoder", "renderer")
    assert classify_player_event("output", ("buffer", 4)) == ("demux",)
    assert classify_printer_event("input", "submit") == ("controller",)
    assert classify_printer_event("output", ("pages_done", 3)) == ("feeder", "engine")
    assert classify_printer_event("output", ("page_quality", 0.2)) == ("engine",)


def test_every_recoverable_fault_has_a_component_in_vocabulary():
    for (kind, fault), component in FAULT_COMPONENTS.items():
        assert component in COMPONENTS[kind], (kind, fault)
    # every non-load scenario fault is localizable
    for kind, fault in KNOWN_FAULTS - LOAD_FAULTS:
        assert (kind, fault) in FAULT_COMPONENTS, (kind, fault)


# ----------------------------------------------------------------------
# window folding
# ----------------------------------------------------------------------
class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def error(observable):
    return ErrorReport(
        time=0.0, detector="t", observable=observable,
        expected=None, actual=None, consecutive=3,
    )


def test_windows_fold_activity_and_errors():
    bus = EventBus()
    clock = ManualClock()
    spectra = ComponentSpectra("tv", "tv-1", bus, clock, window=1.0)
    publish = {
        kind: bus.publisher(f"suo.tv-1.{kind}")
        for kind in ("input", "error")
    }
    # window 0: clean audio activity
    clock.now = 0.2
    publish["input"](KeyPress(clock.now, "vol_up", 0))
    # window 2: audio press plus a sound error (window 1 stays empty)
    clock.now = 2.1
    publish["input"](KeyPress(clock.now, "vol_up", 1))
    clock.now = 2.5
    publish["error"](error("sound"))
    # window 3: clean tuner activity
    clock.now = 3.4
    publish["input"](KeyPress(clock.now, "ch_up", 2))
    clock.now = 4.5  # close window 3

    counts = spectra.counts()
    audio = counts["audio"]
    assert (audio.a11, audio.a10, audio.a01) == (1, 1, 0)
    tuner = counts["tuner"]
    assert (tuner.a11, tuner.a10, tuner.a01) == (0, 1, 1)
    # the empty window 1 still counts as a clean, inactive step
    assert audio.a11 + audio.a10 + audio.a01 + audio.a00 >= 4

    ranking = spectra.ranking()
    assert ranking[0].component == "audio"
    assert ranking[0].rank == 1
    assert spectra.top_suspect()[0] == "audio"
    assert spectra.rank_of("audio") == 1


def test_no_errors_means_no_ranking():
    bus = EventBus()
    clock = ManualClock()
    spectra = ComponentSpectra("tv", "tv-1", bus, clock, window=1.0)
    publish = bus.publisher("suo.tv-1.input")
    clock.now = 0.5
    publish(KeyPress(clock.now, "vol_up", 0))
    clock.now = 5.0
    assert spectra.ranking() == []
    assert spectra.top_suspect() == (None, 0.0)


def test_single_fault_exoneration_beats_small_sample_precision():
    """A component missing from a failing window cannot be the standing
    fault, however perfect its precision looks on a tiny sample."""
    bus = EventBus()
    clock = ManualClock()
    spectra = ComponentSpectra("tv", "tv-1", bus, clock, window=1.0)
    key = bus.publisher("suo.tv-1.input")
    err = bus.publisher("suo.tv-1.error")
    # two failing windows, audio attributed in both (sound manifests);
    # tuner present in only one of them but NEVER in a clean window
    clock.now = 0.1
    key(KeyPress(clock.now, "vol_up", 0))
    clock.now = 0.2
    err(error("sound"))
    clock.now = 1.1
    key(KeyPress(clock.now, "ch_up", 1))
    clock.now = 1.2
    err(error("sound"))
    # many clean audio windows dilute audio's similarity score
    for window in range(2, 8):
        clock.now = window + 0.1
        key(KeyPress(clock.now, "vol_down", window))
    clock.now = 9.0
    ranking = spectra.ranking()
    assert ranking[0].component == "audio"
    assert ranking[0].covers_failures
    tuner = next(e for e in ranking if e.component == "tuner")
    assert not tuner.covers_failures
    assert tuner.rank > ranking[0].rank
    # structural separation: confidence is the full top score
    assert spectra.confidence(ranking) == pytest.approx(ranking[0].score)


def test_tied_top_rank_yields_zero_confidence():
    bus = EventBus()
    clock = ManualClock()
    spectra = ComponentSpectra("tv", "tv-1", bus, clock, window=1.0)
    key = bus.publisher("suo.tv-1.input")
    err = bus.publisher("suo.tv-1.error")
    # audio and tuner perfectly co-occur: indistinguishable evidence
    clock.now = 0.1
    key(KeyPress(clock.now, "vol_up", 0))
    key(KeyPress(clock.now, "ch_up", 1))
    clock.now = 0.2
    err(error("screen"))  # screen is deliberately unattributed
    clock.now = 2.0
    ranking = spectra.ranking()
    assert ranking[0].rank == ranking[1].rank == 1
    assert spectra.confidence(ranking) == 0.0


def test_spectra_are_deterministic_for_identical_event_streams():
    def run():
        bus = EventBus()
        clock = ManualClock()
        spectra = ComponentSpectra("player", "p-1", bus, clock, window=1.0)
        inp = bus.publisher("suo.p-1.input")
        out = bus.publisher("suo.p-1.output")
        err = bus.publisher("suo.p-1.error")
        for window in range(12):
            clock.now = window + 0.1
            if window % 3 == 0:
                inp(("seek", {"position": float(window)}))
            if window < 6:
                out(("frame", float(window)))
                out(("buffer", 3))
            else:
                err(error("progressing"))
        clock.now = 20.0
        return [(e.component, e.score, e.rank) for e in spectra.ranking()]

    first, second = run(), run()
    assert first == second
    assert first[0][0] == "decoder"


def test_unknown_kind_and_bad_window_rejected():
    bus = EventBus()
    with pytest.raises(ValueError, match="vocabulary"):
        ComponentSpectra("toaster", "t-1", bus, lambda: 0.0)
    with pytest.raises(ValueError, match="window"):
        ComponentSpectra("tv", "t-1", bus, lambda: 0.0, window=0.0)


def test_detach_stops_ingestion():
    bus = EventBus()
    clock = ManualClock()
    spectra = ComponentSpectra("tv", "tv-1", bus, clock, window=1.0)
    key = bus.publisher("suo.tv-1.input")
    clock.now = 0.1
    key(KeyPress(clock.now, "vol_up", 0))
    spectra.detach()
    clock.now = 5.1
    key(KeyPress(clock.now, "vol_up", 1))
    clock.now = 9.0
    counts = spectra.counts()
    assert counts["audio"].a10 + counts["audio"].a11 == 1
