"""Edge-case coverage: ports, event queues, interfaces, SoC composition."""

import pytest

from repro.koala import Component, InterfaceType, Port
from repro.platform import make_tv_soc
from repro.sim import Kernel
from repro.statemachine import Event, EventQueue
from repro.tv import TVSet
from repro.tv.interfaces import IAudio, IOsd, ITeletext, ITuner, IVideo


class TestPorts:
    def test_full_name_and_repr(self):
        itype = InterfaceType("IX").operation("op")

        class Comp(Component):
            def configure(self):
                self.provide("p", itype)

        component = Comp("mycomp")
        port = component.provides["p"]
        assert port.full_name() == "mycomp.p"
        assert "mycomp.p" in repr(port)
        assert not port.bound

    def test_invalid_direction_rejected(self):
        itype = InterfaceType("IX")
        with pytest.raises(ValueError):
            Port(None, "p", itype, "sideways")


class TestEventQueue:
    def test_fifo_order(self):
        queue = EventQueue()
        queue.push(Event("a"))
        queue.push(Event("b"))
        assert queue.pop().name == "a"
        assert queue.pop().name == "b"
        assert queue.pop() is None

    def test_len_and_clear(self):
        queue = EventQueue()
        queue.push(Event("a"))
        queue.push(Event("b"))
        assert len(queue) == 2
        queue.clear()
        assert len(queue) == 0

    def test_event_helpers(self):
        event = Event("key", {"n": 4}, time=2.0)
        assert event.param("n") == 4
        assert event.param("missing", "dflt") == "dflt"
        later = event.with_time(9.0)
        assert later.time == 9.0 and later.name == "key"
        assert "key" in repr(event)


class TestInterfaceCatalogue:
    @pytest.mark.parametrize(
        "itype,operation",
        [
            (ITuner, "tune"),
            (IAudio, "set_volume"),
            (IVideo, "set_source"),
            (ITeletext, "show"),
            (IOsd, "show_overlay"),
        ],
    )
    def test_expected_operations_declared(self, itype, operation):
        assert itype.has_operation(operation)

    def test_volume_contract_bounds(self):
        operation = IAudio.operations["set_volume"]
        assert operation.check_args({"level": 50}) is None
        assert operation.check_args({"level": 101}) is not None


class TestSocComposition:
    def test_make_tv_soc_shape(self):
        soc = make_tv_soc(Kernel(), cores=3, accelerator_speed=8.0)
        names = [p.name for p in soc.pool]
        assert names == ["cpu0", "cpu1", "cpu2", "vpu"]
        assert soc.processor("vpu").accelerator
        assert soc.processor("vpu").speed == 8.0

    def test_soc_and_tv_share_kernel(self):
        tv = TVSet(seed=1)
        assert tv.soc.kernel is tv.kernel

    def test_mismatched_kernel_rejected(self):
        foreign_soc = make_tv_soc(Kernel())
        with pytest.raises(ValueError):
            TVSet(kernel=Kernel(), soc=foreign_soc)


class TestTvConfigurationWiring:
    def test_all_control_dependencies_bound(self):
        tv = TVSet(seed=1)
        assert tv.configuration.validate() == []

    def test_dependency_graph_covers_paper_components(self):
        tv = TVSet(seed=1)
        graph = tv.configuration.dependency_graph()
        for target in ("tuner", "audio", "video", "teletext", "features"):
            assert graph.has_edge("control", target)

    def test_component_repr_readable(self):
        tv = TVSet(seed=1)
        assert "audio" in repr(tv.audio)
        assert "mode=" in repr(tv.audio)


class TestTeletextPageSelection:
    def test_select_page_changes_lookup(self):
        tv = TVSet(seed=1)
        tv.press("power")
        tv.press("ttx")
        tv.run(10.0)  # acquire a few carousel pages
        tv.teletext.handle("ttx", "select_page", page=101)
        rendered = tv.teletext.handle("ttx", "rendered_page")
        assert rendered["page"] == 101

    def test_acquired_page_count_grows(self):
        tv = TVSet(seed=1)
        tv.press("power")
        tv.press("ttx")
        tv.run(2.0)
        early = tv.teletext.handle("ttx", "acquired_page")
        tv.run(10.0)
        late = tv.teletext.handle("ttx", "acquired_page")
        assert late > early


class TestSleepInteraction:
    def test_sleep_cycles_through_banner_values(self):
        tv = TVSet(seed=1)
        tv.press("power")
        values = []
        for _ in range(3):
            tv.press("sleep")
            values.append(tv.features.op_features_get_sleep())
            tv.run(3.0)
        assert values == [15, 30, 60]

    def test_sleep_expiry_publishes_dark_screen(self):
        tv = TVSet(seed=1)
        tv.press("power")
        tv.press("sleep")  # 15 simulated minutes
        tv.run(15 * tv.features.time_per_minute + 10)
        assert tv.output_events[-1].name in ("screen", "sound")
        assert tv.screen_descriptor()["power"] is False
