"""Tests for the runtime EventBus and ServiceRegistry.

The bus is the one publish/subscribe plane under the whole stack, so its
contract matters: topic isolation, deterministic order, safe mutation
during dispatch, wildcard namespaces, and a genuinely cheap silent path.
"""

import pytest

from repro.runtime import EventBus, ServiceRegistry, TOPIC_PROVIDE
from repro.sim import DISPATCH_TOPIC, Kernel


# ----------------------------------------------------------------------
# basic delivery and topic isolation
# ----------------------------------------------------------------------
def test_publish_reaches_only_matching_topic():
    bus = EventBus()
    seen_a, seen_b = [], []
    bus.subscribe("a", lambda t, e: seen_a.append(e))
    bus.subscribe("b", lambda t, e: seen_b.append(e))
    bus.publish("a", 1)
    bus.publish("b", 2)
    bus.publish("c", 3)  # nobody listening
    assert seen_a == [1]
    assert seen_b == [2]


def test_publish_returns_delivery_count():
    bus = EventBus()
    bus.subscribe("t", lambda t, e: None)
    bus.subscribe("t", lambda t, e: None)
    assert bus.publish("t", None) == 2
    assert bus.publish("silent", None) == 0


def test_subscribers_run_in_subscription_order():
    bus = EventBus()
    order = []
    bus.subscribe("t", lambda t, e: order.append("first"))
    bus.subscribe("t", lambda t, e: order.append("second"))
    bus.subscribe("t", lambda t, e: order.append("third"))
    bus.publish("t", None)
    assert order == ["first", "second", "third"]


def test_unsubscribe_removes_only_one_registration():
    bus = EventBus()
    seen = []
    handler = lambda t, e: seen.append(e)  # noqa: E731
    bus.subscribe("t", handler)
    bus.subscribe("t", handler)
    bus.publish("t", 1)
    assert bus.unsubscribe("t", handler)
    bus.publish("t", 2)
    assert seen == [1, 1, 2]
    assert not bus.unsubscribe("t", lambda t, e: None)  # unknown handler


def test_subscription_cancel_is_idempotent():
    bus = EventBus()
    seen = []
    sub = bus.subscribe("t", lambda t, e: seen.append(e))
    sub.cancel()
    sub.cancel()
    bus.publish("t", 1)
    assert seen == []
    assert not bus.has_subscribers("t")


# ----------------------------------------------------------------------
# mutation during dispatch
# ----------------------------------------------------------------------
def test_subscribe_during_dispatch_does_not_affect_inflight_publish():
    bus = EventBus()
    seen = []

    def first(topic, event):
        seen.append("first")
        bus.subscribe("t", lambda t, e: seen.append("late"))

    bus.subscribe("t", first)
    bus.publish("t", None)
    assert seen == ["first"]  # late subscriber missed the in-flight event
    bus.publish("t", None)
    assert seen == ["first", "first", "late"]


def test_unsubscribe_self_during_dispatch():
    bus = EventBus()
    seen = []

    def once(topic, event):
        seen.append(event)
        sub.cancel()

    sub = bus.subscribe("t", once)
    bus.subscribe("t", lambda t, e: seen.append(("other", e)))
    bus.publish("t", 1)
    bus.publish("t", 2)
    # `once` saw only the first event; the other subscriber saw both,
    # and the in-flight dispatch was not disturbed by the removal.
    assert seen == [1, ("other", 1), ("other", 2)]


def test_unsubscribe_later_handler_during_dispatch_still_delivers_snapshot():
    bus = EventBus()
    seen = []

    def killer(topic, event):
        seen.append("killer")
        bus.unsubscribe("t", victim)

    def victim(topic, event):
        seen.append("victim")

    bus.subscribe("t", killer)
    bus.subscribe("t", victim)
    bus.publish("t", None)
    # copy-on-write: the snapshot taken at publish time still includes
    # the victim; it is gone from the next publish.
    assert seen == ["killer", "victim"]
    bus.publish("t", None)
    assert seen == ["killer", "victim", "killer"]


# ----------------------------------------------------------------------
# wildcards
# ----------------------------------------------------------------------
def test_wildcard_receives_whole_namespace():
    bus = EventBus()
    seen = []
    bus.subscribe("suo.*", lambda t, e: seen.append((t, e)))
    bus.publish("suo.tv-1.output", "x")
    bus.publish("suo.tv-2.input", "y")
    bus.publish("other.topic", "z")
    assert seen == [("suo.tv-1.output", "x"), ("suo.tv-2.input", "y")]


def test_wildcard_runs_after_exact_and_counts():
    bus = EventBus()
    order = []
    bus.subscribe("a.b", lambda t, e: order.append("exact"))
    bus.subscribe("a.*", lambda t, e: order.append("wild"))
    assert bus.publish("a.b", None) == 2
    assert order == ["exact", "wild"]
    assert bus.subscriber_count("a.b") == 2
    assert bus.has_subscribers("a.anything")


def test_publisher_handle_tracks_subscription_changes():
    bus = EventBus()
    emit = bus.publisher("hot.topic")
    assert emit("nobody") == 0
    seen = []
    sub = bus.subscribe("hot.topic", lambda t, e: seen.append(e))
    assert emit("one") == 1
    sub.cancel()
    assert emit("zero") == 0
    assert seen == ["one"]


# ----------------------------------------------------------------------
# kernel integration
# ----------------------------------------------------------------------
def test_kernel_dispatch_topic_carries_events():
    kernel = Kernel()
    seen = []
    kernel.bus.subscribe(DISPATCH_TOPIC, lambda t, e: seen.append(e.name))
    kernel.schedule(1.0, lambda: None, name="a")
    kernel.schedule(2.0, lambda: None, name="b")
    kernel.run()
    assert seen == ["a", "b"]


def test_kernel_dispatch_hook_shim_still_works():
    kernel = Kernel()
    seen = []
    kernel.add_dispatch_hook(lambda event: seen.append(event.time))
    kernel.schedule(1.5, lambda: None)
    kernel.run()
    assert seen == [1.5]


# ----------------------------------------------------------------------
# service registry
# ----------------------------------------------------------------------
def test_registry_mapping_compatibility_and_typed_resolve():
    kernel = Kernel()
    registry = kernel.registry
    registry["trace"] = "not-really-a-trace"
    assert registry["trace"] == "not-really-a-trace"
    assert "trace" in registry
    assert registry.resolve("trace", str) == "not-really-a-trace"
    with pytest.raises(TypeError):
        registry.resolve("trace", int)
    assert registry.resolve("missing", default=42) == 42


def test_registry_announces_on_bus():
    bus = EventBus()
    registry = ServiceRegistry(bus)
    announced = []
    bus.subscribe(TOPIC_PROVIDE, lambda t, e: announced.append(e))
    registry.provide("svc", 123)
    assert announced == [("svc", 123)]


# ----------------------------------------------------------------------
# review regressions
# ----------------------------------------------------------------------
def test_kernel_dispatch_reaches_wildcard_subscribers():
    """Regression: the dispatch fast path must honor `kernel.*` wildcard
    subscriptions, via both run() and step()."""
    kernel = Kernel()
    seen = []
    kernel.bus.subscribe("kernel.*", lambda t, e: seen.append(e.name))
    kernel.schedule(1.0, lambda: None, name="a")
    kernel.schedule(2.0, lambda: None, name="b")
    kernel.run()
    kernel.schedule(1.0, lambda: None, name="c")
    kernel.step()
    assert seen == ["a", "b", "c"]


def test_dispatch_hook_added_mid_run_takes_effect():
    kernel = Kernel()
    seen = []

    def attach():
        kernel.bus.subscribe(DISPATCH_TOPIC, lambda t, e: seen.append(e.name))

    kernel.schedule(1.0, attach, name="attach")
    kernel.schedule(2.0, lambda: None, name="later")
    kernel.run()
    assert seen == ["later"]


def test_bus_snapshot_folds_exact_and_wildcard():
    bus = EventBus()
    exact = lambda t, e: None  # noqa: E731
    wild = lambda t, e: None  # noqa: E731
    bus.subscribe("a.b", exact)
    bus.subscribe("a.*", wild)
    assert bus.snapshot("a.b") == (exact, wild)
    assert bus.snapshot("a.c") == (wild,)
    assert bus.snapshot("z") == ()


def test_trace_same_callback_on_two_kinds_detaches_independently():
    """Regression: per-kind subscriptions of one callback were keyed only
    by id(callback), so the second overwrote the first and the first
    could never be unsubscribed."""
    from repro.sim import Trace

    bus = EventBus()
    trace = Trace(bus=bus)
    seen = []
    cb = lambda record: seen.append(record.kind)  # noqa: E731
    trace.subscribe(cb, kind="mode")
    trace.subscribe(cb, kind="block")
    trace.emit("s", "mode")
    trace.emit("s", "block")
    trace.unsubscribe(cb, kind="mode")
    trace.emit("s", "mode")
    trace.emit("s", "block")
    trace.unsubscribe(cb, kind="block")
    trace.emit("s", "mode")
    trace.emit("s", "block")
    assert seen == ["mode", "block", "block"]


def test_unsubscribing_another_wildcard_namespace_mid_publish_is_safe():
    """Regression: the wildcard dispatch path read self._wild live, so a
    handler cancelling a *different* namespace mid-publish raised
    KeyError and killed the simulation."""
    bus = EventBus()
    seen = []

    def outer(topic, event):
        seen.append("outer")
        inner_sub.cancel()

    bus.subscribe("a.*", outer)
    inner_sub = bus.subscribe("a.b.*", lambda t, e: seen.append("inner"))
    bus.publish("a.b.x", None)
    # the in-flight publish keeps its snapshot: both handlers fired
    assert seen == ["outer", "inner"]
    bus.publish("a.b.x", None)
    assert seen == ["outer", "inner", "outer"]


def test_trace_double_subscribe_of_same_callback_fully_detaches():
    """Regression: a second identical (callback, kind) registration
    orphaned the first bus subscription, leaking deliveries forever."""
    from repro.sim import Trace

    bus = EventBus()
    trace = Trace(bus=bus)
    seen = []
    cb = lambda record: seen.append(record.kind)  # noqa: E731
    trace.subscribe(cb)
    trace.subscribe(cb)
    trace.emit("s", "k")
    assert seen == ["k", "k"]
    trace.unsubscribe(cb)
    trace.emit("s", "k")
    assert seen == ["k", "k", "k"]
    trace.unsubscribe(cb)
    trace.emit("s", "k")
    assert seen == ["k", "k", "k"]
    trace.unsubscribe(cb)  # extra unsubscribe is a no-op


# ----------------------------------------------------------------------
# compiled dispatch tables under mutation (the hot-path overhaul)
# ----------------------------------------------------------------------
def test_wildcard_added_after_publisher_handle_is_cached():
    """A publisher() handle caches the compiled tuple against the bus
    version; a wildcard subscribed afterwards must still reach it."""
    bus = EventBus()
    seen = []
    emit = bus.publisher("suo.7.fault")
    bus.subscribe("suo.7.fault", lambda t, e: seen.append(("exact", e)))
    assert emit(1) == 1  # handle now holds a compiled table
    bus.subscribe("suo.*", lambda t, e: seen.append(("wild", e)))
    assert emit(2) == 2
    assert seen == [("exact", 1), ("exact", 2), ("wild", 2)]


def test_publisher_handle_sees_cancel_between_emits():
    bus = EventBus()
    seen = []
    sub = bus.subscribe("a", lambda t, e: seen.append(e))
    emit = bus.publisher("a")
    assert emit(1) == 1
    sub.cancel()
    assert emit(2) == 0
    assert seen == [1]
    assert not bus.has_subscribers("a")


def test_cancel_other_subscription_mid_publish_recompiles_table():
    bus = EventBus()
    seen = []
    holder = {}

    def first(topic, event):
        seen.append(("first", event))
        holder["sub"].cancel()

    holder["sub"] = bus.subscribe("a", lambda t, e: seen.append(("second", e)))
    bus.subscribe("a", first)
    # In-flight publish still delivers to the snapshot taken at entry...
    assert bus.publish("a", 1) == 2
    # ...but the recompiled table drops the cancelled handler after.
    assert bus.publish("a", 2) == 1
    assert seen == [("second", 1), ("first", 1), ("first", 2)]
    assert bus.subscriber_count("a") == 1


def test_subscribe_mid_publish_keeps_counts_consistent():
    bus = EventBus()
    seen = []

    def grower(topic, event):
        seen.append(event)
        if event == 1:
            bus.subscribe("g", lambda t, e: seen.append(("late", e)))

    bus.subscribe("g", grower)
    assert bus.publish("g", 1) == 1       # late subscriber not in-flight
    assert bus.subscriber_count("g") == 2
    assert bus.publish("g", 2) == 2
    assert seen == [1, ("late", 2), 2] or seen == [1, 2, ("late", 2)]


def test_resubscribe_same_handler_after_cancel_delivers_again():
    bus = EventBus()
    seen = []

    def handler(topic, event):
        seen.append(event)

    sub = bus.subscribe("r", handler)
    bus.publish("r", 1)
    sub.cancel()
    bus.publish("r", 2)  # silent: compiled table is empty
    assert not bus.has_subscribers("r")
    bus.subscribe("r", handler)  # same function object again
    assert bus.has_subscribers("r")
    assert bus.publish("r", 3) == 1
    assert seen == [1, 3]


def test_unsubscribe_mid_publish_via_wildcard_keeps_o1_views_exact():
    bus = EventBus()
    seen = []
    wild = bus.subscribe("ns.*", lambda t, e: seen.append(("wild", t)))

    def exact(topic, event):
        seen.append(("exact", topic))
        wild.cancel()

    bus.subscribe("ns.x", exact)
    assert bus.publish("ns.x", None) == 2  # snapshot at entry
    assert bus.subscriber_count("ns.x") == 1
    assert bus.has_subscribers("ns.x")
    assert bus.publish("ns.x", None) == 1
    assert seen == [("exact", "ns.x"), ("wild", "ns.x"), ("exact", "ns.x")]
