"""Tests for seeded random streams and the trace recorder."""

from repro.sim import Kernel, RandomStreams, Trace


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(42).stream("tuner")
        b = RandomStreams(42).stream("tuner")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_are_independent(self):
        streams = RandomStreams(42)
        first = [streams.stream("alpha").random() for _ in range(5)]
        second = [streams.stream("beta").random() for _ in range(5)]
        assert first != second

    def test_adding_stream_does_not_shift_existing(self):
        streams_a = RandomStreams(7)
        values_before = [streams_a.stream("x").random() for _ in range(3)]

        streams_b = RandomStreams(7)
        streams_b.stream("brand-new")  # extra stream created first
        values_after = [streams_b.stream("x").random() for _ in range(3)]
        assert values_before == values_after

    def test_different_master_seeds_differ(self):
        a = RandomStreams(1).stream("s").random()
        b = RandomStreams(2).stream("s").random()
        assert a != b

    def test_reset_rederives_streams(self):
        streams = RandomStreams(5)
        first = streams.stream("s").random()
        streams.reset()
        assert streams.stream("s").random() == first

    def test_stream_instance_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("same") is streams.stream("same")


class TestTrace:
    def test_emit_records_with_clock(self):
        kernel = Kernel()
        trace = Trace(clock=lambda: kernel.now)
        kernel.schedule(3.0, lambda: trace.emit("src", "kind", 1))
        kernel.run()
        assert trace.records[0].time == 3.0
        assert trace.records[0].value == 1

    def test_of_kind_filters(self):
        trace = Trace()
        trace.emit("a", "x", 1)
        trace.emit("a", "y", 2)
        trace.emit("b", "x", 3)
        assert [r.value for r in trace.of_kind("x")] == [1, 3]

    def test_last_of_kind(self):
        trace = Trace()
        assert trace.last("missing") is None
        trace.emit("s", "k", "first")
        trace.emit("s", "k", "second")
        assert trace.last("k").value == "second"

    def test_count(self):
        trace = Trace()
        trace.emit("s", "a")
        trace.emit("s", "a")
        trace.emit("s", "b")
        assert trace.count() == 3
        assert trace.count("a") == 2
        assert trace.count("missing") == 0

    def test_between_half_open_interval(self):
        kernel = Kernel()
        trace = Trace(clock=lambda: kernel.now)
        for t in (1.0, 2.0, 3.0):
            kernel.schedule(t, lambda: trace.emit("s", "tick"))
        kernel.run()
        values = list(trace.between(1.0, 3.0))
        assert [r.time for r in values] == [1.0, 2.0]

    def test_subscribe_and_unsubscribe(self):
        trace = Trace()
        seen = []
        callback = seen.append
        trace.subscribe(callback)
        trace.emit("s", "k", 1)
        trace.unsubscribe(callback)
        trace.emit("s", "k", 2)
        assert len(seen) == 1

    def test_clear_resets_index(self):
        trace = Trace()
        trace.emit("s", "k")
        trace.clear()
        assert trace.count() == 0
        assert trace.last("k") is None
        trace.emit("s", "k")
        assert trace.count("k") == 1
