"""Plan-layer edge cases surfaced by the PR 8 fuzz grammar.

The grammar samples device mixes and fault schedules at the borders of
the spec contract — empty mixes, single-member fleets partitioned into
more shards than members, faults at ``t=0`` and at/after the horizon.
These tests pin what the plan layer promises at each border, so a
grammar change that starts emitting an illegal shape fails loudly here
instead of inside a campaign worker.
"""

import pytest

from repro.campaign import run_cell
from repro.scenarios import (
    FaultPhase,
    ScenarioSpec,
    UserProfile,
    build_plan,
    partition_plan,
)


def tv_spec(**overrides):
    base = dict(
        name="edge", description="", duration=10.0, tvs=1,
        profiles=(UserProfile("default"),),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestEmptyMixes:
    def test_empty_device_mix_rejected(self):
        spec = ScenarioSpec(name="empty", description="", duration=10.0)
        with pytest.raises(ValueError, match="empty device mix"):
            spec.validate()

    def test_build_plan_validates_first(self):
        # The plan layer must not happily plan zero members and let the
        # compiler discover the problem later.
        spec = ScenarioSpec(name="empty", description="", duration=10.0)
        with pytest.raises(ValueError, match="empty device mix"):
            build_plan(spec, seed=0)

    def test_tvs_without_profiles_rejected(self):
        spec = ScenarioSpec(
            name="mute-fleet", description="", duration=10.0, tvs=2,
            profiles=(),
        )
        with pytest.raises(ValueError, match="TVs need user profiles"):
            spec.validate()

    def test_profiles_without_tvs_are_legal_and_unassigned(self):
        # A printer-only mix may carry profiles (e.g. a template spec);
        # nobody gets one.
        spec = ScenarioSpec(
            name="printers", description="", duration=10.0, printers=2,
            profiles=(UserProfile("default"),),
        )
        plan = build_plan(spec, seed=0)
        assert all(member.profile is None for member in plan.members)


class TestSingleMemberFleets:
    def test_more_shards_than_members_drops_empty_shards(self):
        plan = build_plan(tv_spec(), seed=0)
        shards = partition_plan(plan, shards=4)
        assert len(shards) == 1
        (shard,) = shards
        assert shard.shards == 4
        assert [member.suo_id for member in shard.members] == ["tv-0"]
        assert shard.spec.tvs == 1 and shard.spec.members == 1

    def test_global_identity_survives_partitioning(self):
        spec = tv_spec(
            tvs=1, printers=1,
            phases=(FaultPhase("silent_jam", at=1.0, kind="printer",
                               fraction=1.0),),
        )
        plan = build_plan(spec, seed=3)
        shards = partition_plan(plan, shards=3)
        # Round-robin per kind: both members land in shard 0 — one shard
        # plan carrying both global suo_ids and the full phase target.
        assert len(shards) == 1
        (shard,) = shards
        assert {m.suo_id for m in shard.members} == {"tv-0", "printer-1"}
        assert shard.phase_targets == (("printer-1",),)
        by_id = {m.suo_id: m for m in shard.members}
        assert by_id["printer-1"].kind_index == 0

    def test_shard_plans_cannot_be_repartitioned(self):
        plan = build_plan(tv_spec(), seed=0)
        (shard,) = partition_plan(plan, shards=2)
        with pytest.raises(ValueError, match="re-partition"):
            partition_plan(shard, shards=2)

    def test_single_shard_is_identity(self):
        plan = build_plan(tv_spec(), seed=0)
        assert partition_plan(plan, shards=1) == [plan]


class TestPhaseTimingBorders:
    def test_phase_at_zero_is_legal(self):
        spec = tv_spec(
            phases=(FaultPhase("volume_overshoot", at=0.0, kind="tv",
                               fraction=1.0),),
        )
        spec.validate()
        plan = build_plan(spec, seed=0)
        assert plan.phase_targets == (("tv-0",),)

    def test_phase_at_zero_runs(self):
        # A fault armed before the first dispatched event must not trip
        # the compiler or the kernel — the fuzz grammar emits these.
        spec = tv_spec(
            name="t0-run", duration=6.0,
            phases=(FaultPhase("volume_overshoot", at=0.0, kind="tv",
                               fraction=1.0),),
        )
        report = run_cell(spec, 0)
        assert report.members == 1

    def test_phase_at_horizon_rejected(self):
        spec = tv_spec(
            phases=(FaultPhase("volume_overshoot", at=10.0, kind="tv",
                               fraction=1.0),),
        )
        with pytest.raises(ValueError, match="starts after the scenario ends"):
            spec.validate()

    def test_phase_after_horizon_rejected(self):
        spec = tv_spec(
            phases=(FaultPhase("volume_overshoot", at=99.0, kind="tv",
                               fraction=1.0),),
        )
        with pytest.raises(ValueError, match="starts after the scenario ends"):
            spec.validate()

    def test_phase_targeting_absent_kind_rejected(self):
        spec = tv_spec(
            phases=(FaultPhase("silent_jam", at=1.0, kind="printer",
                               fraction=1.0),),
        )
        with pytest.raises(ValueError, match="no such devices"):
            spec.validate()


class TestPlanDeterminism:
    def test_plan_is_pure_in_spec_and_seed(self):
        spec = tv_spec(
            tvs=3, printers=2,
            profiles=(UserProfile("a", weight=1.0), UserProfile("b", weight=2.0)),
            phases=(FaultPhase("volume_overshoot", at=2.0, kind="tv",
                               fraction=0.5),),
        )
        assert build_plan(spec, seed=11) == build_plan(spec, seed=11)
        assert build_plan(spec, seed=11) != build_plan(spec, seed=12)

    def test_partition_preserves_member_set(self):
        spec = tv_spec(tvs=5, players=3, printers=2)
        plan = build_plan(spec, seed=2)
        shards = partition_plan(plan, shards=4)
        scattered = [m for shard in shards for m in shard.members]
        assert sorted(m.suo_id for m in scattered) == sorted(
            m.suo_id for m in plan.members
        )
        assert sum(shard.spec.members for shard in shards) == plan.spec.members
