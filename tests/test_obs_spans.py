"""Causal-span recording: completeness, determinism, bounds, exporters.

The SpanRecorder's contract (PR 7):

* every recovery wave in the diagnosis drills reconstructs as a
  complete span tree — inject, detect, SFL rank, each rung, repair —
  with TTRs matching the telemetry hub's recovery stats;
* with ``record_spans`` off (the default), every pre-existing
  determinism witness is byte-identical — markers publish into silence;
* memory is bounded (ring + seeded reservoir) however many episodes a
  campaign completes;
* the forest digest and the sample list survive sharding unchanged
  (the serial-vs-shard invariant lives in ``test_run_all_gate.py``).
"""

from dataclasses import replace

import pytest

from repro.campaign import run_cell, run_cell_detailed
from repro.obs.spans import (
    DEFAULT_RESERVOIR,
    SpanRecorder,
    chrome_trace,
    episode_digest,
    merge_span_blocks,
    span_forest_digest,
    text_timeline,
)
from repro.runtime.bus import EventBus
from repro.scenarios import get_scenario

DRILLS = (
    "player-decoder-drill", "printer-jam-drill", "recovery-ladder-drill",
)


@pytest.fixture(scope="module")
def drill_runs():
    """Each diagnosis drill once with spans on (module-scoped: the runs
    are deterministic and several tests read the same facts)."""
    runs = {}
    for name in DRILLS:
        spec = replace(get_scenario(name), record_spans=True)
        cell = run_cell_detailed(spec, 7)
        report, compiled = cell.report, cell.compiled
        runs[name] = (report, compiled.span_recorder)
    return runs


# ----------------------------------------------------------------------
# completeness over the diagnosis drills
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", DRILLS)
def test_every_recovered_wave_is_a_complete_span_tree(drill_runs, name):
    report, recorder = drill_runs[name]
    recovered = report.telemetry_summary["recovery"]["recovered"]
    assert recorder.completed == recovered
    assert recorder.orphan_errors == 0
    assert recorder.orphan_markers == {}
    for record in recorder.episodes:
        assert record["fault"]
        assert record["component"]
        assert record["detected_at"] is not None
        assert record["first_deviation_at"] is not None
        assert record["detections"] >= 1
        assert record["rungs"], "every episode climbs at least one rung"
        assert record["rungs"][-1]["action"] == "rebind"
        assert record["ranks"], "the rebind rung consults the SFL ranking"
        assert record["repair_mode"] in ("targeted", "full")
        assert record["ttr"] is not None and record["ttr"] > 0
        # causal order: inject <= first deviation <= detect <= repair
        assert record["injected_at"] <= record["first_deviation_at"]
        assert record["first_deviation_at"] <= record["detected_at"]
        assert record["detected_at"] <= record["repaired_at"]


@pytest.mark.parametrize("name", DRILLS)
def test_span_ttrs_match_the_telemetry_recovery_stats(drill_runs, name):
    """The span trees and the telemetry hub measure the same episodes:
    per-wave TTR count/min/max must agree exactly."""
    report, recorder = drill_runs[name]
    waves = report.telemetry_summary["recovery"]["waves"]
    by_wave = {}
    for record in recorder.episodes:
        by_wave.setdefault(str(record["wave"]), []).append(record["ttr"])
    assert set(by_wave) == set(waves)
    for wave, ttrs in by_wave.items():
        assert waves[wave]["count"] == len(ttrs)
        assert waves[wave]["min"] == pytest.approx(min(ttrs), abs=1e-9)
        assert waves[wave]["max"] == pytest.approx(max(ttrs), abs=1e-9)


def test_report_spans_block_matches_the_recorder(drill_runs):
    report, recorder = drill_runs["player-decoder-drill"]
    assert report.spans["completed"] == recorder.completed
    assert report.spans["forest_digest"] == recorder.forest_digest()
    assert report.span_digest == recorder.forest_digest()
    assert report.spans["samples"] == recorder.sample_episodes()


# ----------------------------------------------------------------------
# disabled by default: no cost, no digest perturbation
# ----------------------------------------------------------------------
def test_disabled_runs_leave_every_digest_byte_identical():
    spec = get_scenario("player-decoder-drill")
    plain = run_cell(spec, 7)
    recorded = run_cell(replace(spec, record_spans=True), 7)
    assert plain.spans == {}
    assert plain.span_digest == ""
    assert recorded.telemetry_digest == plain.telemetry_digest
    assert recorded.shard_trace_digests == plain.shard_trace_digests
    assert recorded.telemetry_summary == plain.telemetry_summary
    assert recorded.spans["completed"] > 0


# ----------------------------------------------------------------------
# synthetic markers on a bare bus: matching, bounds, merge
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_recorder(**kwargs):
    bus = EventBus()
    clock = FakeClock()
    recorder = SpanRecorder(bus, clock, **kwargs)
    return bus, clock, recorder


def run_episode(bus, clock, suo="tv-1", wave=0, ttr=5.0):
    span = bus.publisher(f"obs.{suo}.span")
    span({"ev": "inject", "wave": wave, "fault": "f", "component": "c"})
    clock.now += 1.0
    span({"ev": "rung", "action": "local_reset", "wave": wave,
          "downtime": 0.0})
    clock.now += ttr - 1.0
    span({"ev": "repair", "wave": wave, "ttr": ttr, "mode": "full"})


def test_stacked_episodes_close_oldest_first_by_wave():
    bus, clock, recorder = make_recorder()
    span = bus.publisher("obs.tv-1.span")
    span({"ev": "inject", "wave": 0, "fault": "a", "component": "x"})
    clock.now = 2.0
    span({"ev": "inject", "wave": 1, "fault": "b", "component": "y"})
    assert recorder.open_episodes == 2
    # the wave key routes the repair even out of order
    clock.now = 3.0
    span({"ev": "repair", "wave": 1, "ttr": 1.0, "mode": "full"})
    clock.now = 4.0
    span({"ev": "repair", "wave": 0, "ttr": 4.0, "mode": "targeted"})
    assert recorder.open_episodes == 0
    records = list(recorder.episodes)
    assert [r["wave"] for r in records] == [1, 0]
    assert [r["fault"] for r in records] == ["b", "a"]
    assert records[0]["ttr"] == 1.0 and records[1]["ttr"] == 4.0


def test_orphan_markers_and_errors_are_counted_not_dropped():
    bus, clock, recorder = make_recorder()
    span = bus.publisher("obs.tv-1.span")
    recorder.attach_member("tv-1")
    span({"ev": "repair", "wave": 0, "ttr": 1.0})
    span({"ev": "rung", "action": "local_reset"})
    bus.publish("suo.tv-1.error", object())
    assert recorder.completed == 0
    assert recorder.orphan_markers == {"repair": 1, "rung": 1}
    assert recorder.orphan_errors == 1


def test_ring_and_reservoir_stay_bounded():
    bus, clock, recorder = make_recorder(ring=8, reservoir=4, seed=3)
    for wave in range(50):
        run_episode(bus, clock, wave=wave)
    assert recorder.completed == 50
    assert len(recorder.episodes) == 8  # ring keeps the newest
    assert [r["wave"] for r in recorder.episodes] == list(range(42, 50))
    assert len(recorder.sample_episodes()) == 4  # reservoir is bounded
    assert len(recorder.digests) == 50  # digests keep the full witness
    with pytest.raises(ValueError):
        make_recorder(ring=0)


def test_reservoir_sample_is_seeded_and_reproducible():
    def sample(seed):
        bus, clock, recorder = make_recorder(reservoir=4, seed=seed)
        for wave in range(40):
            run_episode(bus, clock, wave=wave)
        return [r["wave"] for r in recorder.sample_episodes()]

    assert sample(1) == sample(1)
    assert sample(1) != sample(2)


def test_detach_stops_ingestion():
    bus, clock, recorder = make_recorder()
    run_episode(bus, clock, wave=0)
    recorder.detach()
    run_episode(bus, clock, wave=1)
    assert recorder.completed == 1


def test_forest_digest_is_order_invariant():
    triples = [["a", "0", "d1"], ["b", "1", "d2"], ["a", "1", "d3"]]
    assert span_forest_digest(triples) == span_forest_digest(triples[::-1])
    assert span_forest_digest(triples) != span_forest_digest(triples[:2])


def test_merge_span_blocks_equals_one_recorder_over_the_union():
    bus_a, clock_a, rec_a = make_recorder()
    bus_b, clock_b, rec_b = make_recorder()
    bus_u, clock_u, rec_u = make_recorder()
    run_episode(bus_a, clock_a, suo="tv-1")
    run_episode(bus_b, clock_b, suo="tv-2", ttr=7.0)
    run_episode(bus_u, clock_u, suo="tv-1")
    run_episode(bus_u, clock_u, suo="tv-2", ttr=7.0)
    # union recorder injects tv-2 at a later clock; normalise by running
    # it on a fresh clock per episode — instead compare digests of the
    # shard pair against themselves merged in either order.
    merged = merge_span_blocks([rec_a.mergeable(), rec_b.mergeable()])
    swapped = merge_span_blocks([rec_b.mergeable(), rec_a.mergeable()])
    assert merged == swapped
    assert merged["completed"] == 2
    assert merged["forest_digest"] == span_forest_digest(merged["digests"])
    assert [r["suo"] for r in merged["samples"]] == ["tv-1", "tv-2"]
    with pytest.raises(ValueError):
        merge_span_blocks([])


def test_merged_samples_truncate_at_the_reservoir():
    bus_a, clock_a, rec_a = make_recorder()
    for wave in range(DEFAULT_RESERVOIR):
        run_episode(bus_a, clock_a, suo="tv-1", wave=wave)
    bus_b, clock_b, rec_b = make_recorder()
    for wave in range(DEFAULT_RESERVOIR):
        run_episode(bus_b, clock_b, suo="tv-2", wave=wave)
    merged = merge_span_blocks([rec_a.mergeable(), rec_b.mergeable()])
    assert merged["completed"] == 2 * DEFAULT_RESERVOIR
    assert len(merged["samples"]) == DEFAULT_RESERVOIR
    assert len(merged["digests"]) == 2 * DEFAULT_RESERVOIR


def test_episode_digest_is_canonical():
    record = {"suo": "a", "wave": 0, "ttr": 1.0}
    assert episode_digest(record) == episode_digest(dict(reversed(
        list(record.items())
    )))
    assert episode_digest(record) != episode_digest({**record, "ttr": 2.0})


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def test_chrome_trace_layout(drill_runs):
    _report, recorder = drill_runs["player-decoder-drill"]
    trace = chrome_trace(list(recorder.episodes))
    events = trace["traceEvents"]
    roots = [e for e in events if e.get("cat") == "episode"]
    assert len(roots) == recorder.completed
    for root in roots:
        assert root["ph"] == "X"
        assert root["dur"] > 0
    # one thread lane (with a name) per SUO
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert names == {r["suo"] for r in recorder.episodes}
    # children are complete or instant, never negative
    for event in events:
        if event.get("cat") == "span" and event["ph"] == "X":
            assert event["dur"] >= 0


def test_text_timeline_orders_events_and_reports_ttr(drill_runs):
    _report, recorder = drill_runs["player-decoder-drill"]
    text = text_timeline(list(recorder.episodes))
    lines = text.splitlines()
    assert any("TTR=" in line for line in lines)
    assert any("rung:rebind" in line for line in lines)
    assert any("sfl-rank" in line for line in lines)
    # events inside one episode are time-sorted
    times = []
    for line in lines[1:]:
        if not line.startswith("  t="):
            break
        times.append(float(line.split("=", 1)[1].split()[0]))
    assert times == sorted(times)


def test_text_timeline_marks_open_episodes():
    bus, clock, recorder = make_recorder()
    span = bus.publisher("obs.tv-1.span")
    span({"ev": "inject", "wave": 0, "fault": "f", "component": "c"})
    open_records = [
        episode.as_dict() for episode in recorder._open["tv-1"]
    ]
    assert "(open)" in text_timeline(open_records)
