"""Tests for recoverable units, communication manager, and recovery manager."""

import pytest

from repro.core import RecoveryAction
from repro.recovery import (
    FAILED,
    RESTARTING,
    RUNNING,
    STOPPED,
    CommunicationManager,
    RecoverableUnit,
    RecoveryManager,
)
from repro.sim import Delay, Interrupted, Kernel


def looping_unit(kernel, name, log, restart_time=1.0):
    def factory():
        def body():
            try:
                while True:
                    yield Delay(1.0)
                    log.append((name, kernel.now))
            except Interrupted:
                return

        return body()

    return RecoverableUnit(kernel, name, factory=factory, restart_time=restart_time)


class TestRecoverableUnit:
    def test_start_runs_process(self):
        kernel = Kernel()
        log = []
        unit = looping_unit(kernel, "u", log)
        unit.start()
        kernel.run(until=3.5)
        assert unit.status == RUNNING
        assert len(log) == 3

    def test_kill_stops_activity(self):
        kernel = Kernel()
        log = []
        unit = looping_unit(kernel, "u", log)
        unit.start()
        kernel.run(until=2.5)
        unit.kill("test")
        kernel.run(until=10.0)
        assert unit.status == STOPPED
        assert len(log) == 2

    def test_restart_incurs_downtime_then_resumes(self):
        kernel = Kernel()
        log = []
        unit = looping_unit(kernel, "u", log, restart_time=3.0)
        unit.start()
        kernel.run(until=2.5)
        downtime = unit.restart("fault")
        assert downtime == 3.0
        assert unit.status == RESTARTING
        kernel.run(until=4.0)
        assert unit.status == RESTARTING  # restart completes at t=5.5
        kernel.run(until=6.0)
        assert unit.status == RUNNING
        kernel.run(until=10.0)
        # gap in activity while down: kill at 2.5, first new tick at 6.5
        times = [t for _, t in log]
        assert not any(2.5 < t < 6.4 for t in times)
        assert any(t > 6.4 for t in times)

    def test_repair_hook_runs_on_restart(self):
        kernel = Kernel()
        repaired = []
        unit = RecoverableUnit(
            kernel, "u", factory=None, restart_time=1.0,
            on_repair=lambda: repaired.append(kernel.now),
        )
        unit.start()
        unit.restart()
        kernel.run(until=5.0)
        assert repaired == [1.0]

    def test_crash_marks_failed(self):
        kernel = Kernel()

        def factory():
            def body():
                yield Delay(1.0)
                raise RuntimeError("boom")

            return body()

        unit = RecoverableUnit(kernel, "u", factory=factory)
        unit.start()
        kernel.run()
        assert unit.status == FAILED

    def test_status_listeners(self):
        kernel = Kernel()
        changes = []
        unit = looping_unit(kernel, "u", [])
        unit.watch_status(lambda old, new: changes.append((old, new)))
        unit.start()
        unit.restart()
        kernel.run(until=3.0)
        assert (STOPPED, RUNNING) in changes or changes[0][1] == RUNNING
        assert any(new == RESTARTING for _, new in changes)
        assert changes[-1][1] == RUNNING

    def test_total_downtime_accumulates(self):
        kernel = Kernel()
        unit = looping_unit(kernel, "u", [], restart_time=2.0)
        unit.start()
        unit.restart()
        kernel.run(until=5.0)
        unit.restart()
        kernel.run(until=10.0)
        assert unit.total_downtime() == 4.0
        assert len(unit.restarts) == 2

    def test_checkpoint_roundtrip(self):
        unit = RecoverableUnit(Kernel(), "u")
        unit.save_checkpoint({"page": 120, "channel": 4})
        state = unit.load_checkpoint()
        assert state == {"page": 120, "channel": 4}
        state["page"] = 999
        assert unit.load_checkpoint()["page"] == 120


class TestCommunicationManager:
    def make_pair(self):
        kernel = Kernel()
        manager = CommunicationManager(kernel)
        inbox = []
        unit = looping_unit(kernel, "dest", [])
        manager.register(unit, lambda message: inbox.append(message.payload))
        unit.start()
        kernel.run(until=0.1)
        return kernel, manager, unit, inbox

    def test_direct_delivery_when_running(self):
        kernel, manager, unit, inbox = self.make_pair()
        assert manager.send("src", "dest", "hello") is True
        assert inbox == ["hello"]
        assert manager.delivered == 1

    def test_unknown_destination_dropped(self):
        kernel, manager, unit, inbox = self.make_pair()
        assert manager.send("src", "ghost", "x") is False
        assert manager.dropped == 1

    def test_buffering_during_recovery(self):
        kernel, manager, unit, inbox = self.make_pair()
        unit.restart()
        assert manager.send("src", "dest", "while-down-1") is True
        assert manager.send("src", "dest", "while-down-2") is True
        assert inbox == []
        assert manager.pending_for("dest") == 2
        kernel.run(until=kernel.now + 2.0)  # restart completes
        assert inbox == ["while-down-1", "while-down-2"]
        assert manager.pending_for("dest") == 0

    def test_buffer_overflow_drops(self):
        kernel = Kernel()
        manager = CommunicationManager(kernel, buffer_limit=2)
        unit = looping_unit(kernel, "dest", [])
        manager.register(unit, lambda m: None)
        unit.start()
        kernel.run(until=0.1)
        unit.restart()
        assert manager.send("s", "dest", 1)
        assert manager.send("s", "dest", 2)
        assert manager.send("s", "dest", 3) is False
        assert manager.dropped == 1


class TestRecoveryManager:
    def test_restart_unit_action(self):
        kernel = Kernel()
        manager = RecoveryManager(kernel)
        unit = looping_unit(kernel, "ttx", [], restart_time=2.0)
        unit.start()
        manager.manage(unit)
        downtime = manager.execute(
            RecoveryAction(time=0.0, kind="restart_unit", target="ttx")
        )
        assert downtime == 2.0
        assert len(manager.log) == 1

    def test_restart_all_costs_more_than_any_unit(self):
        kernel = Kernel()
        manager = RecoveryManager(kernel)
        for name, restart_time in (("a", 1.0), ("b", 2.0)):
            unit = looping_unit(kernel, name, [], restart_time=restart_time)
            unit.start()
            manager.manage(unit)
        downtime = manager.execute(
            RecoveryAction(time=0.0, kind="restart_all", target="*")
        )
        assert downtime == RecoveryManager.FULL_RESTART_OVERHEAD + 2.0

    def test_repair_action_zero_downtime(self):
        kernel = Kernel()
        manager = RecoveryManager(kernel)
        fixed = []
        manager.register_repair("resync", lambda: fixed.append(1))
        downtime = manager.execute(
            RecoveryAction(time=0.0, kind="repair", target="resync")
        )
        assert downtime == 0.0
        assert fixed == [1]

    def test_unknown_action_kind_rejected(self):
        manager = RecoveryManager(Kernel())
        with pytest.raises(ValueError):
            manager.execute(RecoveryAction(time=0.0, kind="pray", target="x"))

    def test_unknown_unit_rejected(self):
        manager = RecoveryManager(Kernel())
        with pytest.raises(KeyError):
            manager.execute(
                RecoveryAction(time=0.0, kind="restart_unit", target="ghost")
            )

    def test_total_downtime_sums_log(self):
        kernel = Kernel()
        manager = RecoveryManager(kernel)
        unit = looping_unit(kernel, "u", [], restart_time=1.5)
        unit.start()
        manager.manage(unit)
        manager.execute(RecoveryAction(time=0.0, kind="restart_unit", target="u"))
        kernel.run(until=5.0)
        manager.execute(RecoveryAction(time=0.0, kind="restart_unit", target="u"))
        assert manager.total_downtime() == 3.0
