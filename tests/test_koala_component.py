"""Tests for component lifecycle, modes, dispatch, and interceptors."""

import pytest

from repro.koala import Component, ComponentError, InterfaceType

ICounter = (
    InterfaceType("ICounter")
    .operation("increment", ranges={"by": (1, 10)})
    .operation("value")
)


class Counter(Component):
    def configure(self):
        self.provide("counter", ICounter)
        self.count = 0

    def op_counter_increment(self, by=1):
        self.count += by
        return self.count

    def op_counter_value(self):
        return self.count


class Consumer(Component):
    def configure(self):
        self.require("counter", ICounter)


def wired_pair():
    counter = Counter("counter")
    consumer = Consumer("consumer")
    consumer.requires["counter"].peer = counter.provides["counter"]
    return counter, consumer


class TestLifecycle:
    def test_initial_state(self):
        counter = Counter("c")
        assert counter.lifecycle == Component.INIT

    def test_start_stop(self):
        counter = Counter("c")
        counter.start()
        assert counter.lifecycle == Component.STARTED
        counter.stop()
        assert counter.lifecycle == Component.STOPPED

    def test_start_idempotent(self):
        events = []

        class Tracker(Counter):
            def on_start(self):
                events.append("start")

        tracker = Tracker("t")
        tracker.start()
        tracker.start()
        assert events == ["start"]

    def test_fail_marks_component(self):
        counter = Counter("c")
        counter.fail("blew up")
        assert counter.lifecycle == Component.FAILED


class TestModes:
    def test_set_mode_notifies_listeners(self):
        counter = Counter("c")
        changes = []
        counter.watch_mode(lambda comp, old, new: changes.append((old, new)))
        counter.set_mode("busy")
        assert changes == [("idle", "busy")]

    def test_same_mode_no_notification(self):
        counter = Counter("c")
        changes = []
        counter.watch_mode(lambda comp, old, new: changes.append(new))
        counter.set_mode("idle")
        assert changes == []


class TestDispatch:
    def test_call_through_bound_port(self):
        counter, consumer = wired_pair()
        assert consumer.call("counter", "increment", by=3) == 3
        assert consumer.call("counter", "value") == 3

    def test_call_unbound_port_raises(self):
        consumer = Consumer("c")
        with pytest.raises(ComponentError):
            consumer.call("counter", "value")

    def test_call_unknown_port_raises(self):
        _, consumer = wired_pair()
        with pytest.raises(ComponentError):
            consumer.call("nonexistent", "value")

    def test_call_unknown_operation_raises(self):
        _, consumer = wired_pair()
        with pytest.raises(ComponentError):
            consumer.call("counter", "reset")

    def test_handle_missing_method_raises(self):
        class Incomplete(Component):
            def configure(self):
                self.provide("counter", ICounter)

        broken = Incomplete("broken")
        with pytest.raises(ComponentError):
            broken.handle("counter", "increment", by=1)

    def test_call_count_increments(self):
        counter, consumer = wired_pair()
        consumer.call("counter", "value")
        consumer.call("counter", "value")
        assert counter.call_count == 2

    def test_duplicate_port_rejected(self):
        class Doubled(Component):
            def configure(self):
                self.provide("p", ICounter)
                self.require("p", ICounter)

        with pytest.raises(ComponentError):
            Doubled("d")


class TestInterceptors:
    def test_interceptor_wraps_call(self):
        counter, consumer = wired_pair()
        log = []

        def interceptor(component, port, operation, kwargs, proceed):
            log.append(("before", operation))
            result = proceed()
            log.append(("after", operation, result))
            return result

        counter.add_interceptor(interceptor)
        consumer.call("counter", "increment", by=2)
        assert log == [("before", "increment"), ("after", "increment", 2)]

    def test_interceptor_can_modify_result(self):
        counter, consumer = wired_pair()
        counter.add_interceptor(
            lambda comp, port, op, kwargs, proceed: proceed() * 10
        )
        assert consumer.call("counter", "increment", by=1) == 10

    def test_interceptors_nest_in_order(self):
        counter, consumer = wired_pair()
        order = []

        def make(name):
            def interceptor(comp, port, op, kwargs, proceed):
                order.append(f"{name}-in")
                result = proceed()
                order.append(f"{name}-out")
                return result

            return interceptor

        counter.add_interceptor(make("outer"))
        counter.add_interceptor(make("inner"))
        consumer.call("counter", "value")
        assert order == ["outer-in", "inner-in", "inner-out", "outer-out"]

    def test_remove_interceptor(self):
        counter, consumer = wired_pair()
        calls = []
        def interceptor(c, p, o, k, proceed):
            calls.append(o)
            return proceed()

        counter.add_interceptor(interceptor)
        consumer.call("counter", "value")
        counter.remove_interceptor(interceptor)
        consumer.call("counter", "value")
        assert len(calls) == 1
