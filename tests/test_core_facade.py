"""Tests for the integrated TraderTV facade."""


from repro.core import TraderTV


class TestTraderTV:
    def test_healthy_session_clean_report(self):
        system = TraderTV(seed=3)
        system.press_sequence(["power", "ch_up", "vol_up", "ttx", "ttx", "power"])
        system.run(10.0)
        report = system.health_report()
        assert report["incidents"] == 0
        assert report["active_faults"] == []
        assert report["comparisons"] > 20

    def test_sync_fault_detected_and_recovered(self):
        system = TraderTV(seed=7)
        system.inject("drop_ttx_notify", activate_after_presses=3)
        system.press_sequence(["power", "ttx", "ttx", "ch_up", "ttx"])
        system.run(30.0)
        report = system.health_report()
        assert report["incidents"] >= 1
        assert report["recovered"] == report["incidents"]
        assert report["active_faults"] == []
        assert report["screen"]["ttx_status"] == "shown"

    def test_mute_fault_recovered_via_sound_ladder(self):
        system = TraderTV(seed=8)
        system.inject("mute_noop")
        system.press_sequence(["power", "mute"])
        system.run(30.0)
        assert system.injector.active_faults() == []
        # after repair the mute key works again
        system.tv.press("mute")
        assert system.tv.sound_level() == 0

    def test_escalation_reaches_clear_all(self):
        """A fault the first ladder steps do not fix escalates to the
        catch-all repair."""
        system = TraderTV(seed=9)
        system.inject("menu_opens_epg")
        system.press_sequence(["power", "menu"])
        system.run(20.0)
        # menu_opens_epg has no dedicated screen-ladder step; escalation
        # clears it via clear_all
        system.press_sequence(["menu", "menu"])
        system.run(40.0)
        assert system.injector.active_faults() == []

    def test_errors_tagged_by_scope(self):
        system = TraderTV(seed=7)
        system.inject("drop_ttx_notify", activate_after_presses=3)
        system.press_sequence(["power", "ttx", "ttx", "ch_up", "ttx"])
        system.run(30.0)
        by_scope = system.health_report()["errors_by_scope"]
        assert by_scope["mode-consistency"] >= 1

    def test_deterministic_given_seed(self):
        def run():
            system = TraderTV(seed=11)
            system.inject("ttx_stale_render", activate_after_presses=2)
            system.press_sequence(["power", "ttx"])
            system.run(40.0)
            report = system.health_report()
            report.pop("screen")
            return report

        assert run() == run()
