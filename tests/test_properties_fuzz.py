"""Fuzz-style conformance and ordering properties.

The heaviest fidelity property in the suite: *any* random key sequence on
a fault-free TV stays in lock-step with the specification model, and the
attached awareness monitor never raises a false error.  This is the
model-to-model validation of Sect. 5 driven by generated inputs.
"""

from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.awareness import MessageChannel, make_tv_monitor
from repro.core import ErrorReport, LadderStep, RecoveryPolicy
from repro.sim import Kernel, RandomStreams
from repro.tv import (
    TVSet,
    build_tv_model,
    expected_screen,
    expected_sound,
    key_to_event_name,
)

FUZZ_KEYS = st.lists(
    st.sampled_from(
        [
            "power", "ch_up", "ch_down", "vol_up", "vol_down", "mute",
            "ttx", "menu", "back", "dual", "swap", "epg", "ok",
            "digit1", "digit5", "digit9",
        ]
    ),
    min_size=1,
    max_size=25,
)


@given(keys=FUZZ_KEYS)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
# Regression: the seed spec model lacked the epg→ttx transition the
# implementation has, so this sequence diverged (impl showed teletext,
# spec stayed in the programme guide).
@example(keys=["power", "epg", "ttx"]).via("discovered failure")
def test_fuzz_lockstep_conformance(keys):
    """Implementation == specification after every key, for any sequence."""
    tv = TVSet(seed=99)
    spec = build_tv_model(channel_count=tv.tuner.channel_count)
    time = 0.0
    for key in keys:
        time += 5.0
        tv.kernel.run(until=time)
        tv.press(key)
        name, params = key_to_event_name(key)
        spec.advance(time)
        spec.inject(name, **params)
        assert expected_screen(spec) == tv.screen_descriptor(), key
        assert expected_sound(spec) == tv.sound_level(), key


@given(keys=FUZZ_KEYS)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_fuzz_no_false_errors(keys):
    """The monitor stays silent on any fault-free session."""
    tv = TVSet(seed=123)
    monitor = make_tv_monitor(tv)
    for key in keys:
        tv.press(key)
        tv.run(4.0)
    tv.run(6.0)
    assert monitor.errors == []


@given(
    send_times=st.lists(
        st.floats(0.0, 50.0, allow_nan=False), min_size=1, max_size=30
    ),
    delay=st.floats(0.0, 1.0, allow_nan=False),
    jitter=st.floats(0.0, 1.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_channel_preserves_fifo_under_any_jitter(send_times, delay, jitter):
    """Messages always arrive in send order, whatever the jitter."""
    kernel = Kernel()
    channel = MessageChannel(
        kernel, "c", delay=delay, jitter=jitter, streams=RandomStreams(1)
    )
    received = []
    channel.connect(lambda message: received.append(message.payload))
    for index, at in enumerate(sorted(send_times)):
        kernel.schedule_at(at, lambda index=index: channel.send("k", index))
    kernel.run()
    assert received == sorted(received)
    assert len(received) == len(send_times)


@given(
    error_times=st.lists(
        st.floats(0.0, 1000.0, allow_nan=False), min_size=1, max_size=20
    ),
    quiet_period=st.floats(1.0, 100.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_policy_escalation_is_bounded_and_resets(error_times, quiet_period):
    """Escalation never runs off the ladder and resets after quiet gaps."""
    policy = RecoveryPolicy(quiet_period=quiet_period)
    ladder = [
        LadderStep("repair", "a", 0.0),
        LadderStep("restart_unit", "b", 0.5),
        LadderStep("restart_all", "*", 1.0),
    ]
    policy.add_ladder("*", ladder)
    previous_time = None
    for time in sorted(error_times):
        action = policy.decide(
            ErrorReport(
                time=time, detector="d", observable="x",
                expected=0, actual=1, consecutive=1,
            )
        )
        assert action is not None
        assert action.kind in {step.kind for step in ladder}
        if previous_time is not None and time - previous_time > quiet_period:
            # a long quiet gap must restart at the gentlest step
            assert action.kind == "repair"
        previous_time = time


@given(seed=st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_tv_simulation_is_deterministic(seed):
    """Same seed + same inputs -> identical observable history."""

    def run():
        tv = TVSet(seed=seed)
        for key in ["power", "ttx", "ch_up", "vol_up", "dual", "power"]:
            tv.press(key)
            tv.run(3.0)
        return [(e.time, e.name, str(e.value)) for e in tv.output_events]

    assert run() == run()
