"""The ``python -m repro.obs`` CLI, driven in-process through main().

Each subcommand runs against a tmp-path history file; stdout is the
contract a CI step greps, so the tests pin the load-bearing phrases
(exit codes, "FAILED:", "insufficient history").
"""

import json

import pytest

from repro.obs.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def seed_two_runs(tmp_path, second=None):
    """Record two synthetic bench reports; returns the db path."""
    db = str(tmp_path / "history.sqlite")
    first = {
        "mode": "full",
        "kernel_events_per_sec": 1_000_000,
        "fleet": {"events_per_sec": 150_000},
        "scenarios": {"events_per_sec": 140_000},
        "sharded": {"cpu_count": 4, "shards": 2},
        "detection": {"printer-burst": {"detection_rate": 1.0}},
        "diagnosis": {},
    }
    for report in (first, second if second is not None else first):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report))
        assert main(["record", "--db", db, "--bench-report", str(path),
                     "--git-rev", "cafe1234"]) == 0
    return db


def test_record_and_query_campaign(tmp_path, capsys):
    db = str(tmp_path / "history.sqlite")
    code, out = run_cli(
        capsys, "record", "--db", db,
        "--scenario", "player-decoder-drill", "--seed", "7",
    )
    assert code == 0
    assert "recorded campaign 1: player-decoder-drill" in out
    assert "3 episodes" in out
    code, out = run_cli(capsys, "query", "--db", db)
    assert code == 0
    assert "0 runs, 1 campaigns, 3 episodes" in out
    assert "player-decoder-drill" in out
    # scenario filter that matches nothing prints only the counts
    code, out = run_cli(
        capsys, "query", "--db", db, "--scenario", "no-such-drill"
    )
    assert code == 0
    assert "campaigns (newest first)" not in out


def test_trend_passes_on_steady_history(tmp_path, capsys):
    db = seed_two_runs(tmp_path)
    code, out = run_cli(capsys, "trend", "--db", db)
    assert code == 0
    assert "ok — no perf or detection drift" in out


def test_trend_flags_injected_slowdown_and_exits_nonzero(tmp_path, capsys):
    slow = {
        "mode": "full",
        "kernel_events_per_sec": 1_000_000,
        "fleet": {"events_per_sec": 60_000},  # 2.5x below the prior
        "scenarios": {"events_per_sec": 140_000},
        "sharded": {"cpu_count": 4, "shards": 2},
        "detection": {"printer-burst": {"detection_rate": 0.5}},
        "diagnosis": {},
    }
    db = seed_two_runs(tmp_path, second=slow)
    code, out = run_cli(capsys, "trend", "--db", db)
    assert code == 1
    assert "FAILED:" in out
    assert "trend perf floor" in out
    assert "detection drift" in out


def test_trend_with_insufficient_history_is_a_notice_not_a_failure(
    tmp_path, capsys
):
    db = str(tmp_path / "empty.sqlite")
    code, out = run_cli(capsys, "trend", "--db", db)
    assert code == 0
    assert "insufficient history" in out


def test_compare_latest_two_runs(tmp_path, capsys):
    db = seed_two_runs(tmp_path)
    code, out = run_cli(capsys, "compare", "--db", db)
    assert code == 0
    assert "comparing run #1 -> run #2" in out
    assert "throughput (events/sec):" in out
    # explicit run ids and missing ids
    code, out = run_cli(capsys, "compare", "--db", db, "--runs", "1", "2")
    assert code == 0
    with pytest.raises(SystemExit, match="run #9 not found"):
        run_cli(capsys, "compare", "--db", db, "--runs", "1", "9")


def test_compare_report_files_bypass_the_store(tmp_path, capsys):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps({"kernel_events_per_sec": 100}))
    new.write_text(json.dumps({"kernel_events_per_sec": 200}))
    code, out = run_cli(
        capsys, "compare", "--reports", str(old), str(new),
    )
    assert code == 0
    assert "+100.0%" in out


def test_compare_insufficient_history(tmp_path, capsys):
    db = str(tmp_path / "empty.sqlite")
    code, out = run_cli(capsys, "compare", "--db", db)
    assert code == 0
    assert "insufficient history" in out


def test_export_trace_writes_chrome_json_and_timeline(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    code, out = run_cli(
        capsys, "export-trace", "--scenario", "player-decoder-drill",
        "--seed", "7", "--out", str(out_path),
    )
    assert code == 0
    assert "3 episodes" in out
    assert "TTR=" in out  # the timeline printed by default
    trace = json.loads(out_path.read_text())
    assert trace["traceEvents"]
    assert any(e.get("cat") == "episode" for e in trace["traceEvents"])

    code, out = run_cli(
        capsys, "export-trace", "--scenario", "player-decoder-drill",
        "--out", str(out_path), "--no-timeline",
    )
    assert code == 0
    assert "TTR=" not in out
