"""Tests for the PR 4 detection-depth observables.

The player's position/buffer/pace observables and the printer's
queue-depth/page-rate observables exist so the faults that were invisible
to the coarse state observable (a wedged decoder, a silently jammed
feeder) move something a monitor can compare against the spec model.
Each fault class gets three checks: the engine observable moves, the
comparator flags the divergence, and the restart re-sync covers the new
state so a churned monitor does not false-alarm.
"""

import pytest

from repro.awareness import make_player_monitor
from repro.printer import Printer, make_printer_monitor
from repro.sim import Kernel
from repro.tv import MediaPlayer, MediaSource


def make_player(**source_kwargs):
    kernel = Kernel()
    player = MediaPlayer(kernel, MediaSource(**source_kwargs), suo_id="p0")
    return kernel, player


# ----------------------------------------------------------------------
# player: the observables move
# ----------------------------------------------------------------------
class TestPlayerObservables:
    def test_position_and_buffer_published(self):
        kernel, player = make_player(packet_count=60)
        events = []
        player.output_hooks.append(lambda name, value: events.append((name, value)))
        player.command("play")
        kernel.run(until=10.0)
        names = {name for name, _value in events}
        assert {"state", "position", "buffer"} <= names
        levels = [value for name, value in events if name == "buffer"]
        assert all(0 <= level <= player.BUFFER_CAPACITY for level in levels)

    def test_stall_pegs_buffer_and_freezes_position(self):
        kernel, player = make_player(packet_count=60, corrupt_indices=[10])
        player.stall_on_corrupt = True
        player.command("play")
        kernel.run(until=30.0)
        assert player.stalled
        frozen = player.position
        assert player.buffer_level() == player.BUFFER_CAPACITY  # demux filled it
        kernel.run(until=40.0)
        assert player.position == frozen

    def test_seek_discards_inflight_frames(self):
        """No frame from before a seek may be presented after it — one
        stale pts would teach the monitor a pre-seek position."""
        kernel, player = make_player(packet_count=500)
        player.command("play")
        kernel.run(until=10.0)
        positions = []
        player.output_hooks.append(
            lambda name, value: positions.append(value) if name == "position" else None
        )
        player.command("seek", position=100.0)
        kernel.run(until=14.0)
        assert positions, "playback must resume after the seek"
        assert all(pos >= 99.9 for pos in positions)

    def test_seek_revives_a_finished_demuxer(self):
        """Seeking past the end and back must not starve the pipeline."""
        kernel, player = make_player(packet_count=100)  # media ends at 40.0
        player.command("play")
        kernel.run(until=5.0)
        player.command("seek", position=39.0)  # demux runs off the end
        kernel.run(until=10.0)
        player.command("seek", position=10.0)  # back into the media
        rendered_before = player.frames_rendered
        kernel.run(until=20.0)
        assert player.frames_rendered > rendered_before
        assert player.position > 10.0


# ----------------------------------------------------------------------
# player: the monitor flags the divergence
# ----------------------------------------------------------------------
class TestPlayerMonitorDepth:
    def test_stall_detected_via_progressing(self):
        kernel, player = make_player(packet_count=200, corrupt_indices=[30])
        monitor = make_player_monitor(player, name="p0.awareness")
        player.stall_on_corrupt = True
        player.command("play")
        kernel.run(until=40.0)
        assert player.stalled
        observables = {e.observable for e in monitor.errors}
        assert "progressing" in observables

    def test_slowdown_detected_via_pace(self):
        kernel, player = make_player(packet_count=300)
        monitor = make_player_monitor(player, name="p0.awareness")
        player.decode_slowdown = 3.0
        player.command("play")
        kernel.run(until=30.0)
        observables = {e.observable for e in monitor.errors}
        assert "pace" in observables

    def test_healthy_seek_stress_no_false_alarm(self):
        import random

        kernel, player = make_player(packet_count=500, corrupt_indices=[40, 41])
        monitor = make_player_monitor(player, name="p0.awareness")
        rng = random.Random(9)
        player.command("play")

        def seek_loop():
            if player.state != "stopped":
                player.command("seek", position=rng.uniform(0.0, 180.0))
            kernel.schedule(3.0, seek_loop)

        kernel.schedule(3.0, seek_loop)
        kernel.run(until=60.0)
        assert monitor.errors == []

    def test_end_of_media_is_not_a_stall(self):
        kernel, player = make_player(packet_count=50)  # media ends at 20.0
        monitor = make_player_monitor(player, name="p0.awareness")
        player.command("play")
        kernel.run(until=60.0)
        assert player.state == "playing"  # nobody pressed stop
        assert monitor.errors == []

    def test_resync_covers_position_and_pace_state(self):
        """A monitor restarted after missing a seek must adopt the
        player's current position and re-arm progress/pace — not replay
        expectations from the pre-stop state."""
        kernel, player = make_player(packet_count=500)
        monitor = make_player_monitor(player, name="p0.awareness")
        player.command("play")
        kernel.run(until=10.0)
        monitor.stop()
        kernel.run(until=12.0)
        player.command("seek", position=120.0)  # missed by the monitor
        kernel.run(until=15.0)
        monitor.start()
        machine = monitor.executor.machine
        assert monitor.resyncs == 1
        assert machine.get("position") == pytest.approx(player.position)
        assert machine.get("last_progress") == pytest.approx(15.0)
        kernel.run(until=40.0)
        assert monitor.errors == []


# ----------------------------------------------------------------------
# printer: the observables move and the monitor sees the jam
# ----------------------------------------------------------------------
class TestPrinterDepth:
    def test_page_rate_tracks_throughput(self):
        printer = Printer(suo_id="pr0")
        rates = []
        printer.output_hooks.append(
            lambda name, value: rates.append((printer.kernel.now, value))
            if name == "page_rate" else None
        )
        printer.submit(pages=12)
        printer.kernel.run(until=20.0)
        assert rates, "the periodic publisher must sample while printing"
        assert max(rate for _t, rate in rates) > 0.5  # steady path near nominal

    def test_jam_decays_page_rate_to_zero(self):
        printer = Printer(suo_id="pr0")
        printer.submit(pages=30)
        printer.kernel.run(until=10.0)
        assert printer.page_rate() > 0.5
        printer.inject_silent_jam()
        printer.kernel.run(until=25.0)
        assert printer.page_rate() == 0.0
        assert printer.status == "printing"  # the lie the monitor catches

    def test_job_done_published_per_job(self):
        printer = Printer(suo_id="pr0")
        done = []
        printer.output_hooks.append(
            lambda name, value: done.append(value) if name == "job_done" else None
        )
        printer.submit(pages=2)
        printer.submit(pages=1)
        printer.kernel.run(until=30.0)
        assert done == [1, 2]

    def test_jam_detected_via_throughput_floor(self):
        printer = Printer(suo_id="pr0")
        monitor = make_printer_monitor(printer, name="pr0.awareness")
        printer.submit(pages=30)
        printer.kernel.run(until=10.0)
        printer.inject_silent_jam()
        printer.kernel.run(until=40.0)
        observables = {e.observable for e in monitor.errors}
        assert "page_rate" in observables
        assert "progressing" in observables

    def test_queue_depth_consistency_no_false_alarm_under_bursts(self):
        printer = Printer(suo_id="pr0")
        monitor = make_printer_monitor(printer, name="pr0.awareness")
        for at in (5.0, 15.0, 25.0):
            printer.kernel.schedule_at(
                at, lambda: [printer.submit(pages=n) for n in (2, 4, 3, 2)]
            )
        printer.kernel.run(until=90.0)
        assert monitor.errors == []
        assert printer.status == "idle"

    def test_resync_covers_queue_and_rate_state(self):
        """A monitor restarted mid-job adopts the printer's queue depth
        and re-arms the progress/throughput expectations."""
        printer = Printer(suo_id="pr0")
        monitor = make_printer_monitor(printer, name="pr0.awareness")
        printer.submit(pages=20)
        printer.kernel.run(until=8.0)
        monitor.stop()
        printer.submit(pages=3)  # missed by the monitor
        printer.kernel.run(until=14.0)
        monitor.start()
        machine = monitor.executor.machine
        assert monitor.resyncs == 1
        assert machine.get("jobs") == len(printer.queue)
        assert machine.get("printing_since") == pytest.approx(14.0)
        printer.kernel.run(until=60.0)
        assert monitor.errors == []

    def test_buffer_probe_gauge_survives_pipeline_rebuild(self):
        """The observation layer sees the player's buffer through a
        gauge callable, so seeks/restarts that rebuild the stores do
        not leave the probe sampling a dead buffer."""
        from repro.observation import BufferProbe
        from repro.sim.trace import Trace

        kernel, player = make_player(packet_count=200)
        trace = Trace(clock=lambda: kernel.now)
        probe = BufferProbe(trace, kernel, interval=1.0)
        probe.watch_gauge("player.packets", player.buffer_level)
        probe.start()
        player.command("play")
        kernel.run(until=5.0)
        player.command("seek", position=30.0)  # stores rebuilt
        kernel.run(until=10.0)
        fills = [r.value["fill"] for r in trace.records if r.kind == "buffer"]
        assert len(fills) >= 9
        assert any(fill > 0 for fill in fills[-3:])  # still live post-seek

    def test_restarted_monitor_redetects_a_standing_jam(self):
        """Re-sync must not mask a fault: after restart the re-armed
        progress window elapses with no pages and the jam is re-found."""
        printer = Printer(suo_id="pr0")
        monitor = make_printer_monitor(printer, name="pr0.awareness")
        printer.submit(pages=30)
        printer.kernel.run(until=10.0)
        printer.inject_silent_jam()
        printer.kernel.run(until=30.0)
        assert monitor.errors, "jam detected before the restart"
        monitor.stop()
        printer.kernel.run(until=32.0)
        monitor.start()
        before = len(monitor.errors)
        printer.kernel.run(until=60.0)
        assert len(monitor.errors) > before
