"""Tests for the TV specification model, including impl-vs-spec lockstep."""

import pytest

from repro.statemachine import Event, ModelChecker
from repro.tv import (
    TVSet,
    build_tv_model,
    expected_screen,
    expected_sound,
    key_to_event_name,
)


class TestSpecModelAlone:
    def test_initial_standby(self):
        spec = build_tv_model()
        assert expected_screen(spec)["content"] == "dark"
        assert expected_sound(spec) == 0

    def test_power_on_defaults(self):
        spec = build_tv_model()
        spec.inject("power")
        screen = expected_screen(spec)
        assert screen == {
            "power": True,
            "content": "video",
            "overlay": "none",
            "channel": 1,
        }
        assert expected_sound(spec) == 30

    def test_volume_clamping(self):
        spec = build_tv_model(initial_volume=95)
        spec.inject("power")
        spec.inject("vol_up")
        spec.inject("vol_up")
        assert expected_sound(spec) == 100

    def test_volume_bar_timeout(self):
        spec = build_tv_model()
        spec.inject("power")
        spec.inject("vol_up")
        assert expected_screen(spec)["overlay"] == "volume_bar"
        spec.advance(spec.time + 2.5)
        assert expected_screen(spec)["overlay"] == "none"

    def test_ttx_searching_then_shown(self):
        spec = build_tv_model()
        spec.inject("power")
        spec.inject("ttx")
        assert expected_screen(spec)["ttx_status"] == "searching"
        spec.advance(spec.time + 2.0)
        assert expected_screen(spec)["ttx_status"] == "shown"

    def test_child_lock_shows_banner(self):
        spec = build_tv_model(locked_channels=frozenset({3}))
        spec.inject("power")
        spec.inject("lock")  # enables lock, shows banner
        spec.advance(spec.time + 3.0)
        spec.inject("digit", n=3)
        screen = expected_screen(spec)
        assert screen["channel"] == 1
        assert screen["overlay"] == "info_banner"

    def test_alert_and_ok(self):
        spec = build_tv_model()
        spec.inject("power")
        spec.inject("alert_broadcast")
        assert expected_screen(spec)["overlay"] == "alert"
        spec.inject("ok")
        assert expected_screen(spec)["overlay"] == "none"

    def test_dual_and_swap(self):
        spec = build_tv_model()
        spec.inject("power")
        spec.inject("dual")
        screen = expected_screen(spec)
        assert screen["content"] == "dual"
        assert screen["pip_channel"] == 2
        spec.inject("swap")
        screen = expected_screen(spec)
        assert screen["channel"] == 2
        assert screen["pip_channel"] == 1

    def test_key_to_event_name_digits(self):
        assert key_to_event_name("digit5") == ("digit", {"n": 5})
        assert key_to_event_name("mute") == ("mute", {})


class TestLockstepConformance:
    """The central fidelity property: with no faults injected, the
    implementation and the specification model agree on every observable
    after every key press.  This is the model-to-model validation of
    Sect. 5."""

    SCENARIOS = {
        "zapping": ["power", "ch_up", "ch_up", "digit5", "ch_down", "power"],
        "volume": ["power", "vol_up", "vol_up", "mute", "vol_down", "mute", "power"],
        "overlays": [
            "power", "menu", "back", "epg", "epg", "ttx", "menu", "menu",
            "ttx", "ttx", "power",
        ],
        "dual": ["power", "dual", "swap", "swap", "dual", "dual", "ttx", "power"],
        "features": ["power", "sleep", "sleep", "lock", "lock", "ok", "power"],
        "mixed": [
            "power", "ttx", "vol_up", "ch_up", "dual", "menu", "ch_up",
            "back", "epg", "digit9", "mute", "swap", "mute", "power",
        ],
    }

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_lockstep_agreement(self, name):
        keys = self.SCENARIOS[name]
        tv = TVSet(seed=13)
        spec = build_tv_model(channel_count=tv.tuner.channel_count)
        time = 0.0
        for key in keys:
            time += 5.0
            tv.kernel.run(until=time)
            tv.press(key)
            event, params = key_to_event_name(key)
            spec.advance(time)
            spec.inject(event, **params)
            assert expected_screen(spec) == tv.screen_descriptor(), (
                f"screen mismatch after {key!r} in scenario {name}"
            )
            assert expected_sound(spec) == tv.sound_level(), (
                f"sound mismatch after {key!r} in scenario {name}"
            )

    def test_lockstep_with_settling_time(self):
        """Agreement also holds mid-interval once transients settle."""
        tv = TVSet(seed=13)
        spec = build_tv_model(channel_count=tv.tuner.channel_count)
        time = 0.0
        for key in ["power", "ttx", "vol_up", "ch_up"]:
            time += 5.0
            tv.kernel.run(until=time)
            tv.press(key)
            event, params = key_to_event_name(key)
            spec.advance(time)
            spec.inject(event, **params)
            # settle 3s (covers volume-bar timeout and ttx acquisition)
            tv.kernel.run(until=time + 3.0)
            spec.advance(time + 3.0)
            assert expected_screen(spec) == tv.screen_descriptor()


class TestSpecModelChecking:
    def test_spec_model_is_deterministic_and_live(self):
        spec = build_tv_model(channel_count=3)
        alphabet = [
            Event(name)
            for name in (
                "power", "ch_up", "vol_up", "mute", "ttx", "menu", "back",
                "dual", "swap", "epg", "ok",
            )
        ] + [Event("digit", {"n": 2})]
        report = ModelChecker(spec, alphabet, max_states=4000).run()
        assert report.nondeterminism == []
        assert report.deadlocks == []
        assert report.violations == []

    def test_overlay_exclusion_invariant(self):
        """Dual screen and teletext are never active simultaneously —
        the Sect. 4.2 feature-interaction rule, machine-checked."""
        spec = build_tv_model(channel_count=3)
        alphabet = [
            Event(name)
            for name in ("power", "ttx", "dual", "menu", "back", "epg")
        ]

        def no_dual_ttx(machine):
            in_ttx = "ttx" in machine.configuration()
            return not (machine.get("dual") and in_ttx)

        report = ModelChecker(
            spec, alphabet, invariants=[("no-dual-ttx", no_dual_ttx)], max_states=4000
        ).run()
        assert report.violations == []
