"""Tests for configurations, bindings, and the aspect weaver."""

import pytest

from repro.koala import (
    Aspect,
    Component,
    ComponentError,
    Configuration,
    InterfaceType,
    JoinPoint,
    Weaver,
)

IPing = InterfaceType("IPing").operation("ping")
IPong = InterfaceType("IPong").operation("pong")


class Server(Component):
    def configure(self):
        self.provide("ping", IPing)

    def op_ping_ping(self):
        return "pong"


class Client(Component):
    def configure(self):
        self.require("ping", IPing)


def make_config():
    config = Configuration("net")
    config.add(Server("server"))
    config.add(Client("client"))
    config.bind("client", "ping", "server", "ping")
    return config


class TestConfiguration:
    def test_bind_and_call(self):
        config = make_config()
        assert config.get("client").call("ping", "ping") == "pong"

    def test_duplicate_component_rejected(self):
        config = Configuration("c")
        config.add(Server("s"))
        with pytest.raises(ComponentError):
            config.add(Server("s"))

    def test_interface_mismatch_rejected(self):
        config = Configuration("c")

        class WrongServer(Component):
            def configure(self):
                self.provide("pong", IPong)

            def op_pong_pong(self):
                return None

        config.add(WrongServer("server"))
        config.add(Client("client"))
        with pytest.raises(ComponentError):
            config.bind("client", "ping", "server", "pong")

    def test_double_bind_rejected(self):
        config = make_config()
        config.add(Server("server2"))
        with pytest.raises(ComponentError):
            config.bind("client", "ping", "server2", "ping")

    def test_unbind_then_rebind(self):
        config = make_config()
        config.add(Server("server2"))
        config.unbind("client", "ping")
        config.bind("client", "ping", "server2", "ping")
        assert config.get("client").call("ping", "ping") == "pong"

    def test_validate_reports_unbound(self):
        config = Configuration("c")
        config.add(Client("client"))
        problems = config.validate()
        assert len(problems) == 1
        assert "client.ping" in problems[0]

    def test_validate_clean_config(self):
        assert make_config().validate() == []

    def test_start_stop_all(self):
        config = make_config()
        config.start_all()
        assert all(c.lifecycle == Component.STARTED for c in config)
        config.stop_all()
        assert all(c.lifecycle == Component.STOPPED for c in config)

    def test_dependency_graph_edges(self):
        config = make_config()
        graph = config.dependency_graph()
        assert graph.has_edge("client", "server")

    def test_dependents_of(self):
        config = make_config()
        assert config.dependents_of("server") == ["client"]
        assert config.dependents_of("client") == []


class TestWeaver:
    def test_before_and_after_advice(self):
        config = make_config()
        weaver = Weaver(config)
        log = []
        aspect = Aspect(
            "trace",
            JoinPoint(component="server"),
            before=lambda ctx: log.append(("before", ctx.operation)),
            after=lambda ctx: log.append(("after", ctx.result)),
        )
        weaver.weave(aspect)
        config.get("client").call("ping", "ping")
        assert log == [("before", "ping"), ("after", "pong")]
        assert aspect.activations == 1

    def test_around_advice_controls_result(self):
        config = make_config()
        weaver = Weaver(config)
        aspect = Aspect(
            "cap",
            JoinPoint(operation="ping"),
            around=lambda ctx, proceed: proceed().upper(),
        )
        weaver.weave(aspect)
        assert config.get("client").call("ping", "ping") == "PONG"

    def test_joinpoint_wildcards(self):
        jp = JoinPoint(component="ttx*", operation="render*")
        assert jp.matches("ttx_rend", "p", "rendered_page")
        assert not jp.matches("audio", "p", "rendered_page")
        assert not jp.matches("ttx_rend", "p", "hide")

    def test_nonmatching_calls_untouched(self):
        config = make_config()
        weaver = Weaver(config)
        count = []
        weaver.weave(
            Aspect(
                "selective",
                JoinPoint(operation="not_ping"),
                before=lambda ctx: count.append(1),
            )
        )
        config.get("client").call("ping", "ping")
        assert count == []

    def test_unweave_removes_advice(self):
        config = make_config()
        weaver = Weaver(config)
        count = []
        weaver.weave(
            Aspect("c", JoinPoint(), before=lambda ctx: count.append(1))
        )
        config.get("client").call("ping", "ping")
        removed = weaver.unweave("c")
        assert removed >= 1
        config.get("client").call("ping", "ping")
        assert len(count) == 1

    def test_after_advice_sees_errors(self):
        config = Configuration("err")

        class Crasher(Component):
            def configure(self):
                self.provide("ping", IPing)

            def op_ping_ping(self):
                raise RuntimeError("boom")

        config.add(Crasher("server"))
        config.add(Client("client"))
        config.bind("client", "ping", "server", "ping")
        weaver = Weaver(config)
        seen = []
        weaver.weave(
            Aspect("watch", JoinPoint(), after=lambda ctx: seen.append(ctx.error))
        )
        with pytest.raises(RuntimeError):
            config.get("client").call("ping", "ping")
        assert isinstance(seen[0], RuntimeError)
