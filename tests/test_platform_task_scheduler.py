"""Tests for periodic tasks, deadlines, migration, and the scheduler."""

import pytest

from repro.platform import make_tv_soc
from repro.sim import Kernel


def make_soc():
    return make_tv_soc(Kernel(), cores=2)


class TestPeriodicTask:
    def test_jobs_released_each_period(self):
        soc = make_soc()
        task = soc.scheduler.add_task("t", "cpu0", period=10.0, work=2.0)
        soc.kernel.run(until=100.0)
        assert task.stats.jobs == 10

    def test_no_misses_when_underloaded(self):
        soc = make_soc()
        task = soc.scheduler.add_task("t", "cpu0", period=10.0, work=2.0)
        soc.kernel.run(until=100.0)
        assert task.stats.misses == 0

    def test_misses_when_work_exceeds_deadline(self):
        soc = make_soc()
        task = soc.scheduler.add_task("t", "cpu0", period=10.0, work=15.0)
        soc.kernel.run(until=100.0)
        assert task.stats.miss_rate() == 1.0

    def test_contention_causes_misses(self):
        soc = make_soc()
        a = soc.scheduler.add_task("a", "cpu0", period=10.0, work=7.0)
        b = soc.scheduler.add_task("b", "cpu0", period=10.0, work=7.0)
        soc.kernel.run(until=200.0)
        assert a.stats.misses + b.stats.misses > 0

    def test_work_fn_overrides_static_work(self):
        soc = make_soc()
        calls = []

        def work_fn():
            calls.append(1)
            return 1.0

        task = soc.scheduler.add_task("t", "cpu0", period=5.0, work=99.0, work_fn=work_fn)
        soc.kernel.run(until=50.0)
        # work_fn is called at each release; the final release may still be
        # in flight when the clock stops.
        assert task.stats.jobs <= len(calls) <= task.stats.jobs + 1
        assert task.stats.misses == 0  # actual work 1.0, not 99.0

    def test_response_time_statistics(self):
        soc = make_soc()
        task = soc.scheduler.add_task("t", "cpu0", period=10.0, work=4.0)
        soc.kernel.run(until=100.0)
        assert task.stats.mean_response() == pytest.approx(4.0)
        assert task.stats.max_response == pytest.approx(4.0)

    def test_recent_miss_rate_window(self):
        soc = make_soc()
        task = soc.scheduler.add_task("t", "cpu0", period=10.0, work=2.0)
        soc.kernel.run(until=100.0)
        assert task.recent_miss_rate(window=5) == 0.0

    def test_stop_halts_job_stream(self):
        soc = make_soc()
        task = soc.scheduler.add_task("t", "cpu0", period=10.0, work=1.0)
        soc.kernel.run(until=35.0)
        jobs_before = task.stats.jobs
        task.stop()
        soc.kernel.run(until=100.0)
        assert task.stats.jobs == jobs_before

    def test_on_job_observer_called(self):
        soc = make_soc()
        records = []
        task = soc.scheduler.add_task("t", "cpu0", period=10.0, work=1.0)
        task.on_job.append(records.append)
        soc.kernel.run(until=30.0)
        assert len(records) == task.stats.jobs
        assert all(r.processor == "cpu0" for r in records)

    def test_invalid_parameters_rejected(self):
        soc = make_soc()
        with pytest.raises(ValueError):
            soc.scheduler.add_task("bad", "cpu0", period=0.0, work=1.0)


class TestMigration:
    def test_migration_takes_effect_next_job(self):
        soc = make_soc()
        task = soc.scheduler.add_task("t", "cpu0", period=10.0, work=1.0)
        soc.kernel.run(until=5.0)
        soc.scheduler.migrate("t", "cpu1")
        soc.kernel.run(until=50.0)
        processors = {r.processor for r in task.records}
        assert "cpu0" in processors and "cpu1" in processors
        assert task.records[-1].processor == "cpu1"

    def test_migration_cost_applied_once(self):
        soc = make_soc()
        task = soc.scheduler.add_task(
            "t", "cpu0", period=10.0, work=1.0, migration_cost=3.0
        )
        soc.kernel.run(until=15.0)
        soc.scheduler.migrate("t", "cpu1")
        soc.kernel.run(until=60.0)
        migrated = [r for r in task.records if r.processor == "cpu1"]
        assert migrated[0].work == pytest.approx(4.0)  # 1.0 + 3.0
        assert migrated[1].work == pytest.approx(1.0)

    def test_migration_log(self):
        soc = make_soc()
        soc.scheduler.add_task("t", "cpu0", period=10.0, work=1.0)
        soc.scheduler.migrate("t", "cpu1")
        assert soc.scheduler.migration_log[0]["task"] == "t"
        assert soc.scheduler.migration_log[0]["to"] == "cpu1"


class TestScheduler:
    def test_duplicate_task_name_rejected(self):
        soc = make_soc()
        soc.scheduler.add_task("t", "cpu0", period=10.0, work=1.0)
        with pytest.raises(ValueError):
            soc.scheduler.add_task("t", "cpu1", period=10.0, work=1.0)

    def test_placement_map(self):
        soc = make_soc()
        soc.scheduler.add_task("a", "cpu0", period=10.0, work=1.0)
        soc.scheduler.add_task("b", "cpu1", period=10.0, work=1.0)
        assert soc.scheduler.placement() == {"a": "cpu0", "b": "cpu1"}

    def test_processor_utilization_estimate(self):
        soc = make_soc()
        soc.scheduler.add_task("a", "cpu0", period=10.0, work=5.0)
        load = soc.scheduler.processor_utilization()
        assert load["cpu0"] == pytest.approx(0.5)
        assert load["cpu1"] == 0.0

    def test_remove_task(self):
        soc = make_soc()
        soc.scheduler.add_task("a", "cpu0", period=10.0, work=1.0)
        soc.scheduler.remove_task("a")
        assert "a" not in soc.scheduler.tasks

    def test_snapshot_contains_expected_keys(self):
        soc = make_soc()
        soc.scheduler.add_task("a", "cpu0", period=10.0, work=1.0)
        soc.kernel.run(until=20.0)
        snap = soc.snapshot()
        assert set(snap) >= {"time", "cpu_utilization", "cpu_queue", "placement"}
        assert "cpu0" in snap["cpu_utilization"]
