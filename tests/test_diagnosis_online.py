"""Tests for run-time (online) diagnosis feeding the Fig. 1 loop."""


from repro.awareness import make_tv_monitor
from repro.core import TraderTV
from repro.diagnosis import OnlineDiagnoser
from repro.tv import FaultInjector, TVSet

SESSION = ["power", "ch_up", "ttx", "ttx", "ttx", "vol_up", "ttx", "ch_up", "ttx"]


def run_session(fault=None, activate_after=4):
    tv = TVSet(seed=11)
    monitor = make_tv_monitor(tv)
    diagnoser = OnlineDiagnoser(tv, monitor=monitor)
    if fault is not None:
        FaultInjector(tv).inject(fault, activate_after_presses=activate_after)
    for key in SESSION:
        tv.press(key)
        tv.run(5.0)
    tv.run(10.0)
    return tv, monitor, diagnoser


class TestOnlineDiagnoser:
    def test_steps_track_key_presses(self):
        tv, monitor, diagnoser = run_session()
        diagnoser._close_step()
        assert diagnoser.steps_recorded() == len(SESSION)

    def test_no_errors_no_diagnosis(self):
        tv, monitor, diagnoser = run_session()
        assert diagnoser.diagnose() is None

    def test_stale_render_localized_to_render_code(self):
        tv, monitor, diagnoser = run_session(fault="ttx_stale_render")
        diagnosis = diagnoser.diagnose()
        assert diagnosis is not None
        module = diagnoser.suspect_module(diagnosis)
        # The top suspects are the rendering path and/or the fault's own
        # ground-truth blocks — both are the right place to look.
        assert module in ("ttx_render", "fault_ttx_stale_render")

    def test_errors_flag_multiple_steps_via_deviation_state(self):
        tv, monitor, diagnoser = run_session(fault="ttx_stale_render")
        diagnoser._close_step()
        # the erroneous state persists across several presses even though
        # the comparator reported only once
        assert len(diagnoser.collector.error_steps) >= 2
        assert monitor.comparator.stats.errors_reported <= len(
            diagnoser.collector.error_steps
        )

    def test_diagnosis_carries_evidence_counts(self):
        tv, monitor, diagnoser = run_session(fault="ttx_stale_render")
        diagnosis = diagnoser.diagnose()
        assert diagnosis.errors_explained >= 2
        assert diagnosis.technique == "sfl:ochiai"


class TestLoopIntegration:
    def test_facade_incidents_include_diagnosis(self):
        system = TraderTV(seed=11)
        system.inject("ttx_stale_render", activate_after_presses=2)
        system.press_sequence(["power", "ttx"])
        system.run(40.0)
        assert system.loop.incidents
        incident = system.loop.incidents[0]
        assert incident.diagnosis is not None
        assert incident.diagnosis.best() is not None
        # the diagnosis suspect is forwarded into the recovery action
        assert "suspect" in incident.action.params

    def test_facade_still_recovers_with_diagnosis_wired(self):
        system = TraderTV(seed=11)
        system.inject("ttx_stale_render", activate_after_presses=2)
        system.press_sequence(["power", "ttx"])
        system.run(40.0)
        assert system.health_report()["screen"]["ttx_status"] == "shown"
