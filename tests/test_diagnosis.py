"""Tests for spectra, similarity coefficients, SFL ranking, and metrics."""

import pytest

from repro.diagnosis import (
    COEFFICIENTS,
    SpectraCollector,
    SpectraCounts,
    SpectrumDiagnoser,
    evaluate_ranking,
    get_coefficient,
    ochiai,
    tarantula,
)


class TestSpectraCollector:
    def test_step_protocol_enforced(self):
        collector = SpectraCollector()
        with pytest.raises(RuntimeError):
            collector.record([1])
        collector.begin_step()
        with pytest.raises(RuntimeError):
            collector.begin_step()
        collector.end_step(error=False)
        with pytest.raises(RuntimeError):
            collector.end_step(error=False)

    def test_counts_for_block(self):
        collector = SpectraCollector()
        # step 0: block 1 executed, error
        collector.begin_step(); collector.record([1]); collector.end_step(True)
        # step 1: block 1 executed, pass
        collector.begin_step(); collector.record([1]); collector.end_step(False)
        # step 2: not executed, error
        collector.begin_step(); collector.record([2]); collector.end_step(True)
        # step 3: not executed, pass
        collector.begin_step(); collector.record([2]); collector.end_step(False)
        counts = collector.counts_for(1)
        assert (counts.a11, counts.a10, counts.a01, counts.a00) == (1, 1, 1, 1)

    def test_executed_blocks_union(self):
        collector = SpectraCollector()
        collector.begin_step(); collector.record([1, 2]); collector.end_step(False)
        collector.begin_step(); collector.record([2, 3]); collector.end_step(True)
        assert collector.executed_blocks() == {1, 2, 3}

    def test_error_steps(self):
        collector = SpectraCollector()
        for error in (False, True, False, True):
            collector.begin_step()
            collector.end_step(error)
        assert collector.error_steps == {1, 3}
        assert collector.step_count == 4

    def test_duplicate_records_merged(self):
        collector = SpectraCollector()
        collector.begin_step()
        collector.record([5])
        collector.record([5, 5])
        collector.end_step(False)
        assert collector.hits_of(5) == {0}


class TestSimilarityCoefficients:
    def perfect(self):
        return SpectraCounts(a11=5, a10=0, a01=0, a00=10)

    def never_in_error(self):
        return SpectraCounts(a11=0, a10=5, a01=5, a00=5)

    def test_ochiai_perfect_correlation(self):
        assert ochiai(self.perfect()) == 1.0

    def test_ochiai_zero_when_never_in_error_step(self):
        assert ochiai(self.never_in_error()) == 0.0

    def test_ochiai_formula(self):
        counts = SpectraCounts(a11=2, a10=2, a01=2, a00=0)
        assert ochiai(counts) == pytest.approx(2 / 4.0)

    def test_tarantula_perfect(self):
        assert tarantula(self.perfect()) == 1.0

    def test_all_coefficients_bounded_and_ordered(self):
        suspicious = SpectraCounts(a11=4, a10=1, a01=0, a00=10)
        innocent = SpectraCounts(a11=1, a10=4, a01=3, a00=7)
        for name, coefficient in COEFFICIENTS.items():
            high = coefficient(suspicious)
            low = coefficient(innocent)
            assert 0.0 <= low <= 1.0, name
            assert 0.0 <= high <= 1.0, name
            assert high > low, f"{name} did not separate suspicious from innocent"

    def test_zero_division_safe(self):
        empty = SpectraCounts()
        for name, coefficient in COEFFICIENTS.items():
            assert coefficient(empty) == 0.0, name

    def test_get_coefficient_unknown(self):
        with pytest.raises(KeyError):
            get_coefficient("psychic")


class TestRankingAndEvaluation:
    def build_collector(self):
        """Fault block 99 executes exactly in the two error steps; block 1
        executes everywhere; block 2 executes in passing steps only."""
        collector = SpectraCollector()
        plan = [
            ({1, 2}, False),
            ({1, 99}, True),
            ({1, 2}, False),
            ({1, 99}, True),
            ({1, 2}, False),
        ]
        for blocks, error in plan:
            collector.begin_step()
            collector.record(blocks)
            collector.end_step(error)
        return collector

    def test_faulty_block_ranked_first(self):
        collector = self.build_collector()
        ranking = SpectrumDiagnoser("ochiai").ranking(collector)
        assert ranking[0].block == 99
        assert ranking[0].rank == 1

    def test_ranking_is_descending(self):
        ranking = SpectrumDiagnoser("ochiai").ranking(self.build_collector())
        scores = [entry.score for entry in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_tie_handling_shares_best_rank(self):
        collector = SpectraCollector()
        collector.begin_step(); collector.record([1, 2]); collector.end_step(True)
        collector.begin_step(); collector.record([3]); collector.end_step(False)
        ranking = SpectrumDiagnoser("ochiai").ranking(collector)
        tied = [entry for entry in ranking if entry.block in (1, 2)]
        assert all(entry.rank == 1 for entry in tied)

    def test_evaluate_ranking_quality(self):
        collector = self.build_collector()
        ranking = SpectrumDiagnoser("ochiai").ranking(collector)
        quality = evaluate_ranking(ranking, [99])
        assert quality.best_rank == 1
        assert quality.in_top_1
        assert quality.wasted_effort == 0.0

    def test_evaluate_requires_faulty_blocks(self):
        ranking = SpectrumDiagnoser().ranking(self.build_collector())
        with pytest.raises(ValueError):
            evaluate_ranking(ranking, [])
        with pytest.raises(ValueError):
            evaluate_ranking(ranking, [123456])  # never executed

    def test_diagnose_produces_contract_object(self):
        collector = self.build_collector()
        diagnosis = SpectrumDiagnoser("ochiai").diagnose(collector, time=3.0)
        assert diagnosis.technique == "sfl:ochiai"
        assert diagnosis.best() == "block:99"
        assert diagnosis.errors_explained == 2

    def test_wasted_effort_with_ties(self):
        collector = SpectraCollector()
        # blocks 1 and 99 always co-execute: indistinguishable spectra
        collector.begin_step(); collector.record([1, 99]); collector.end_step(True)
        collector.begin_step(); collector.record([2]); collector.end_step(False)
        ranking = SpectrumDiagnoser("ochiai").ranking(collector)
        quality = evaluate_ranking(ranking, [99])
        # one innocent tie inspected half the time on average
        assert quality.wasted_effort == pytest.approx(0.5 / 3)
