"""Tests for the printer domain (Octopus, Sect. 5)."""


from repro.awareness import ModeConsistencyChecker, ModeRule
from repro.printer import (
    Printer,
    build_printer_model,
    expected_status,
    make_printer_monitor,
)


class TestPaperPath:
    def test_job_prints_all_pages(self):
        printer = Printer()
        job = printer.submit(pages=4)
        printer.kernel.run(until=30.0)
        assert job.delivered
        assert job.pages_done == 4
        assert printer.status == "idle"
        assert len(printer.pages) == 4

    def test_warmup_gives_full_quality(self):
        printer = Printer()
        printer.submit(pages=3)
        printer.kernel.run(until=30.0)
        assert printer.mean_quality() > 0.95

    def test_queue_processes_in_order(self):
        printer = Printer()
        first = printer.submit(pages=2)
        second = printer.submit(pages=2)
        printer.kernel.run(until=40.0)
        assert first.delivered and second.delivered
        assert [p.job_id for p in printer.pages] == [1, 1, 2, 2]

    def test_pause_and_resume(self):
        printer = Printer()
        printer.submit(pages=10)
        printer.kernel.run(until=8.0)
        printer.pause()
        pages_at_pause = len(printer.pages)
        printer.kernel.run(until=20.0)
        assert len(printer.pages) <= pages_at_pause + 1  # at most one in flight
        printer.resume()
        printer.kernel.run(until=60.0)
        assert len(printer.pages) == 10

    def test_cancel_clears_queue(self):
        printer = Printer()
        printer.submit(pages=100)
        printer.kernel.run(until=8.0)
        printer.cancel_all()
        printer.kernel.run(until=20.0)
        assert printer.status == "idle"
        assert printer.queue == []

    def test_stapling(self):
        printer = Printer()
        printer.submit(pages=3, staple=True)
        printer.kernel.run(until=30.0)
        assert printer.finisher.staples_used == 3
        assert all(p.stapled for p in printer.pages)

    def test_lost_staples_fault(self):
        printer = Printer()
        printer.inject_lost_staples()
        printer.submit(pages=3, staple=True)
        printer.kernel.run(until=30.0)
        assert printer.finisher.staples_used == 0
        assert not any(p.stapled for p in printer.pages)

    def test_silent_jam_stalls_without_mode_change(self):
        printer = Printer()
        printer.submit(pages=20)
        printer.kernel.run(until=8.0)
        pages_before = len(printer.pages)
        printer.inject_silent_jam()
        printer.kernel.run(until=40.0)
        assert len(printer.pages) <= pages_before + 1
        # the fault's signature: still claims to be feeding/printing
        assert printer.component_modes()["feeder"] == "feeding"
        assert printer.status == "printing"

    def test_clear_jam_resumes(self):
        printer = Printer()
        printer.submit(pages=6)
        printer.kernel.run(until=8.0)
        printer.inject_silent_jam()
        printer.kernel.run(until=20.0)
        printer.clear_jam()
        printer.kernel.run(until=80.0)
        assert len(printer.pages) == 6
        assert printer.status == "idle"

    def test_cold_fuser_degrades_quality(self):
        printer = Printer()
        printer.inject_cold_fuser(0.1)
        printer.submit(pages=5)
        printer.kernel.run(until=40.0)
        assert printer.mean_quality() < 0.5

    def test_repair_fuser_restores_quality(self):
        printer = Printer()
        printer.inject_cold_fuser(0.1)
        printer.submit(pages=3)
        printer.kernel.run(until=40.0)
        printer.repair_fuser()
        printer.submit(pages=3)
        printer.kernel.run(until=80.0)
        late_pages = printer.pages[-3:]
        assert sum(p.quality for p in late_pages) / 3 > 0.9


class TestPrinterModel:
    def test_job_lifecycle(self):
        spec = build_printer_model()
        assert expected_status(spec) == "idle"
        spec.inject("submit")
        assert expected_status(spec) == "printing"
        spec.inject("pause")
        assert expected_status(spec) == "paused"
        spec.inject("resume")
        spec.inject("all_jobs_done")
        assert expected_status(spec) == "idle"

    def test_job_counting(self):
        spec = build_printer_model()
        spec.inject("submit")
        spec.inject("submit")
        assert spec.get("jobs") == 2
        spec.inject("cancel")
        assert spec.get("jobs") == 0


class TestPrinterMonitor:
    def test_healthy_run_no_errors(self):
        printer = Printer()
        monitor = make_printer_monitor(printer)
        printer.submit(pages=5, staple=True)
        printer.kernel.run(until=40.0)
        printer.submit(pages=2)
        printer.kernel.run(until=80.0)
        assert monitor.errors == []

    def test_pause_resume_no_errors(self):
        printer = Printer()
        monitor = make_printer_monitor(printer)
        printer.submit(pages=8)
        printer.kernel.run(until=8.0)
        printer.pause()
        printer.kernel.run(until=20.0)
        printer.resume()
        printer.kernel.run(until=60.0)
        assert monitor.errors == []

    def test_silent_jam_detected_by_progress_check(self):
        printer = Printer()
        monitor = make_printer_monitor(printer)
        printer.submit(pages=20)
        printer.kernel.run(until=8.0)
        printer.inject_silent_jam()
        printer.kernel.run(until=40.0)
        observables = {e.observable for e in monitor.errors}
        assert "progressing" in observables

    def test_cold_fuser_detected_by_quality_check(self):
        printer = Printer()
        monitor = make_printer_monitor(printer)
        printer.inject_cold_fuser(0.1)
        printer.submit(pages=6)
        printer.kernel.run(until=40.0)
        observables = {e.observable for e in monitor.errors}
        assert "page_quality" in observables

    def test_closed_loop_jam_recovery(self):
        """Detection drives repair: the Fig. 1 loop on the second domain."""
        printer = Printer()
        monitor = make_printer_monitor(printer)
        monitor.controller.subscribe_errors(
            lambda report: printer.clear_jam()
            if report.observable == "progressing"
            else None
        )
        printer.submit(pages=10)
        printer.kernel.run(until=8.0)
        printer.inject_silent_jam()
        # the jam itself stays (hardware), but clear_jam resets the path;
        # model the repair as also fixing the roller:
        monitor.controller.subscribe_errors(
            lambda report: setattr(printer.feeder, "silently_jammed", False)
        )
        printer.kernel.run(until=120.0)
        assert len(printer.pages) == 10
        assert printer.status == "idle"

    def test_mode_consistency_rule_on_printer(self):
        """A domain-specific mode rule: the feeder may not report
        'feeding' while the printer has been idle for a while."""
        printer = Printer()
        checker = ModeConsistencyChecker(
            printer.kernel, printer.component_modes, interval=1.0
        )

        def feeding_implies_printing(modes):
            if modes["feeder"] == "feeding" and modes["printer"] != "printing":
                return "feeder active while printer not printing"
            return None

        checker.add_rule(
            ModeRule("feeding-implies-printing", feeding_implies_printing,
                     max_consecutive=3)
        )
        checker.start()
        printer.submit(pages=5)
        printer.kernel.run(until=60.0)
        assert checker.reports == []  # healthy run satisfies the rule
