"""Tests for scenario-driven recovery (the Fig. 1 ladder, PR 4).

A ``FaultPhase(recovery=True)`` schedules no repair: each afflicted
member's awareness controller must detect the divergence and walk the
ladder (local reset → component restart → rebind) until the rebind rung
executes the fault's repair action.  Per-wave time-to-recover lands in
fleet telemetry and merges shard-invariantly.
"""

import math

import pytest

from repro.campaign import ProcessShardBackend, run_cell
from repro.runtime.telemetry import mergeable_summary, merge_summaries
from repro.scenarios import FaultPhase, ScenarioSpec, UserProfile, get_scenario
from repro.scenarios.compile import CompiledScenario

DRILL = ScenarioSpec(
    name="mini-drill",
    description="test fixture: one recovery wave over a small fleet",
    duration=60.0,
    tvs=4,
    profiles=(UserProfile(
        "driller", mean_gap=1.5,
        keys=("vol_up", "vol_down", "mute", "vol_up", "vol_down"),
    ),),
    phases=(FaultPhase("volume_overshoot", at=8.0, fraction=1.0, recovery=True),),
)


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
def test_recovery_phase_validation():
    with pytest.raises(ValueError, match="not the schedule"):
        FaultPhase("volume_overshoot", at=1.0, recovery=True, duration=5.0).validate()
    with pytest.raises(ValueError, match="not the schedule"):
        FaultPhase("volume_overshoot", at=1.0, recovery=True,
                   duration=5.0, pulse_every=1.0).validate()
    with pytest.raises(ValueError, match="load faults"):
        FaultPhase("alert_broadcast", at=1.0, recovery=True).validate()
    FaultPhase("volume_overshoot", at=1.0, recovery=True).validate()  # ok


# ----------------------------------------------------------------------
# the ladder walks and repairs
# ----------------------------------------------------------------------
def test_ladder_escalates_and_rebind_repairs():
    compiled = CompiledScenario(DRILL, seed=3)
    compiled.run()
    fleet = compiled.fleet
    # every monitored target got a harness when the wave fired
    assert set(compiled.recoveries) == set(fleet.members)
    recovered = [h for h in compiled.recoveries.values() if h.completed]
    assert recovered, "at least one member must complete the full ladder"
    for harness in recovered:
        wave, ttr = harness.completed[0]
        assert wave == 0
        assert 0.0 < ttr < DRILL.duration
        # the rebind rung executed the repair: the fault flag is gone
        assert not harness.member.suo.control.fault_flags.get("volume_overshoot")
        # and the ladder actually escalated through the lower rungs first
        kinds = [entry.action.kind for entry in harness.manager.log]
        assert kinds[:3] == ["local_reset", "component_restart", "rebind"]

    # telemetry carries the same story
    recovery = fleet.telemetry.summary()["recovery"]
    assert recovery["recovered"] == sum(len(h.completed) for h in recovered)
    assert recovery["actions"]["rebind"] >= len(recovered)
    assert recovery["waves"]["0"]["count"] == recovery["recovered"]
    assert recovery["ttr"]["max"] >= recovery["ttr"]["min"] > 0.0


def test_recovery_phase_needs_a_repairable_fault():
    spec = ScenarioSpec(
        "bad-drill", "d", duration=30.0, tvs=2,
        phases=(FaultPhase("alert_broadcast", at=5.0, recovery=True),),
    )
    with pytest.raises(ValueError, match="load faults"):
        spec.validate()


# ----------------------------------------------------------------------
# the library drill end to end
# ----------------------------------------------------------------------
def test_library_drill_records_finite_ttr_per_wave():
    report = run_cell(get_scenario("recovery-ladder-drill"), 7)
    assert report.detection_rate > 0.0
    assert report.false_alarms == []
    recovery = report.telemetry_summary["recovery"]
    assert recovery["recovered"] > 0
    assert recovery["waves"], "per-wave TTR must be recorded"
    for wave, entry in recovery["waves"].items():
        assert entry["count"] > 0, f"wave {wave} recorded no recovery"
        for key in ("min", "max", "mean"):
            assert math.isfinite(entry[key]) and entry[key] > 0.0


def test_drill_recovery_stats_are_shard_invariant():
    spec = get_scenario("recovery-ladder-drill")
    serial = run_cell(spec, 7)
    sharded = run_cell(spec, 7, backend=ProcessShardBackend(shards=2))
    assert sharded.telemetry_digest == serial.telemetry_digest
    assert mergeable_summary(sharded.telemetry_summary)["recovery"] == \
        mergeable_summary(serial.telemetry_summary)["recovery"]
    assert sharded.detected == serial.detected


# ----------------------------------------------------------------------
# telemetry merge rules for the recovery block
# ----------------------------------------------------------------------
def test_merge_summaries_folds_recovery_blocks():
    def summary(time, recovered, wave, ttrs):
        return {
            "time": time, "suos": 1, "events_total": 10,
            "events_by_kind": {"recovery": len(ttrs)},
            "window_rate": 0.0,
            "latency": {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                        "p50": 0.0, "p90": 0.0, "p99": 0.0, "retained": 0},
            "errors_total": 0, "errors_by_suo": {},
            "recovery": {
                "recovered": recovered,
                "actions": {"rebind": recovered, "local_reset": recovered},
                "ttr": {
                    "count": len(ttrs),
                    "mean": sum(ttrs) / len(ttrs) if ttrs else 0.0,
                    "min": min(ttrs) if ttrs else 0.0,
                    "max": max(ttrs) if ttrs else 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0,
                    "retained": len(ttrs),
                    "samples": list(ttrs),
                },
                "waves": {
                    str(wave): {
                        "count": len(ttrs),
                        "min": min(ttrs) if ttrs else 0.0,
                        "max": max(ttrs) if ttrs else 0.0,
                        "mean": sum(ttrs) / len(ttrs) if ttrs else 0.0,
                    }
                } if ttrs else {},
            },
        }

    merged = merge_summaries([
        summary(30.0, 2, 0, [5.0, 9.0]),
        summary(30.0, 1, 0, [7.0]),
        summary(30.0, 1, 1, [11.0]),
    ])
    recovery = merged["recovery"]
    assert recovery["recovered"] == 4
    assert recovery["actions"] == {"local_reset": 4, "rebind": 4}
    assert recovery["ttr"]["count"] == 4
    assert recovery["ttr"]["min"] == 5.0 and recovery["ttr"]["max"] == 11.0
    assert recovery["waves"]["0"] == {
        "count": 3, "min": 5.0, "max": 9.0, "mean": 7.0,
    }
    assert recovery["waves"]["1"]["count"] == 1

    # single-summary merge is the identity on the exact scalars
    single = merge_summaries([summary(30.0, 2, 0, [5.0, 9.0])])
    assert single["recovery"]["ttr"]["min"] == 5.0
    assert single["recovery"]["waves"]["0"]["mean"] == 7.0
