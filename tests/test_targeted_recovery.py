"""Diagnosis-guided recovery: spectrum-based localization in the ladder.

PR 5 acceptance: in the drill scenarios, the rebind rung targets the SFL
top-ranked suspect component, the true faulty component ranks first in
>= 80% of episodes, the results are identical serial vs 2-shard, and
the new ``diagnosis`` telemetry block merges order-invariantly.
"""

import itertools
import math

import pytest

from repro.campaign import ProcessShardBackend, run_cell, run_cell_detailed
from repro.diagnosis.components import RankedComponent
from repro.runtime.fleet import MonitorFleet
from repro.runtime.telemetry import mergeable_summary, merge_summaries
from repro.scenarios import UserProfile, get_scenario
from repro.scenarios.compile import CompiledScenario
from repro.scenarios.recovery import DOWNTIME, MemberRecovery

#: The drills the CI diagnosis gate runs (quick mode).
DRILLS = ("player-decoder-drill", "printer-jam-drill", "recovery-ladder-drill")


# ----------------------------------------------------------------------
# acceptance: accuracy, targeting, TTR
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", DRILLS)
def test_drill_localizes_and_targets_the_true_component(name):
    report = run_cell(get_scenario(name), 7)
    assert report.detection_rate > 0.0
    assert report.false_alarms == []
    diagnosis = report.telemetry_summary["diagnosis"]
    ranked = sum(diagnosis["rank_of_true"].values())
    assert ranked > 0, "episodes must record a localization outcome"
    # the true faulty component ranks first in >= 80% of episodes
    assert diagnosis["localization_accuracy"] >= 0.8
    # rebind actually targeted the SFL suspect (not always full rebinds)
    assert diagnosis["rebinds"].get("targeted", 0) > 0
    # every targeted TTR is finite and positive
    for mode, block in diagnosis["ttr"].items():
        if block["count"]:
            assert math.isfinite(block["min"]) and block["min"] > 0.0
            assert math.isfinite(block["max"]) and block["max"] >= block["min"]


def test_storm_targets_across_all_three_kinds():
    report = run_cell(get_scenario("targeted-rebind-storm"), 7)
    diagnosis = report.telemetry_summary["diagnosis"]
    # every device kind contributed a correctly-localized suspect
    assert {"audio", "decoder", "feeder"} <= set(diagnosis["suspects"])
    assert diagnosis["localization_accuracy"] >= 0.8
    recovery = report.telemetry_summary["recovery"]
    assert recovery["recovered"] > 0


def test_player_rebind_restarts_pipeline_and_clears_wedge():
    cell = run_cell_detailed(get_scenario("player-decoder-drill"), 7)
    compiled = cell.compiled
    recovered = [h for h in compiled.recoveries.values() if h.completed]
    assert recovered
    for harness in recovered:
        player = harness.member.suo
        assert not player.stall_on_corrupt
        assert not player.stalled
        # the rebuilt pipeline resumed producing frames
        assert player.frames_rendered > 0


def test_printer_rebind_clears_jam():
    cell = run_cell_detailed(get_scenario("printer-jam-drill"), 7)
    compiled = cell.compiled
    recovered = [h for h in compiled.recoveries.values() if h.completed]
    assert recovered
    for harness in recovered:
        printer = harness.member.suo
        assert not printer.feeder.silently_jammed


# ----------------------------------------------------------------------
# SFL ranking determinism (serial vs serial, serial vs sharded)
# ----------------------------------------------------------------------
def _suspect_rankings(compiled):
    return {
        suo_id: [
            (entry.component, round(entry.score, 12), entry.rank)
            for entry in harness.spectra.ranking()
        ]
        for suo_id, harness in sorted(compiled.recoveries.items())
        if harness.spectra is not None
    }


def test_same_scenario_and_seed_yield_identical_rankings():
    spec = get_scenario("recovery-ladder-drill")
    first = CompiledScenario(spec, seed=7)
    first.run()
    second = CompiledScenario(spec, seed=7)
    second.run()
    assert _suspect_rankings(first) == _suspect_rankings(second)
    assert _suspect_rankings(first), "drill must create recovery harnesses"


@pytest.mark.parametrize("name", DRILLS + ("targeted-rebind-storm",))
def test_diagnosis_block_is_shard_invariant(name):
    spec = get_scenario(name)
    serial = run_cell(spec, 7)
    sharded = run_cell(spec, 7, backend=ProcessShardBackend(shards=2))
    assert sharded.telemetry_digest == serial.telemetry_digest
    assert mergeable_summary(sharded.telemetry_summary)["diagnosis"] == \
        mergeable_summary(serial.telemetry_summary)["diagnosis"]
    assert sharded.detected == serial.detected


# ----------------------------------------------------------------------
# telemetry merge rules for the diagnosis block
# ----------------------------------------------------------------------
def _summary(rebinds, ranks, hits, misses, ttrs):
    return {
        "time": 30.0, "suos": 1, "events_total": 10,
        "events_by_kind": {"recovery": 1}, "window_rate": 0.0,
        "latency": {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0, "retained": 0},
        "errors_total": 0, "errors_by_suo": {},
        "recovery": {"recovered": 0, "actions": {}, "waves": {},
                     "ttr": {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                             "p50": 0.0, "p90": 0.0, "p99": 0.0,
                             "retained": 0, "samples": []}},
        "diagnosis": {
            "rebinds": rebinds,
            "suspects": {},
            "rank_of_true": ranks,
            "hits": hits,
            "misses": misses,
            "localization_accuracy": 0.0,
            "targeted_rebind_rate": 0.0,
            "ttr": {
                "targeted": {
                    "count": len(ttrs),
                    "mean": sum(ttrs) / len(ttrs) if ttrs else 0.0,
                    "min": min(ttrs) if ttrs else 0.0,
                    "max": max(ttrs) if ttrs else 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0,
                    "retained": len(ttrs), "samples": list(ttrs),
                },
                "full": {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                         "p50": 0.0, "p90": 0.0, "p99": 0.0,
                         "retained": 0, "samples": []},
            },
        },
    }


def test_merge_summaries_folds_diagnosis_blocks():
    merged = merge_summaries([
        _summary({"targeted": 2}, {"1": 2}, 2, 0, [5.0, 9.0]),
        _summary({"targeted": 1, "full": 1}, {"1": 1, "2": 1}, 1, 1, [7.0]),
    ])
    diagnosis = merged["diagnosis"]
    assert diagnosis["rebinds"] == {"full": 1, "targeted": 3}
    assert diagnosis["rank_of_true"] == {"1": 3, "2": 1}
    assert diagnosis["hits"] == 3 and diagnosis["misses"] == 1
    assert diagnosis["localization_accuracy"] == 0.75
    assert diagnosis["targeted_rebind_rate"] == 0.75
    assert diagnosis["ttr"]["targeted"]["count"] == 3
    assert diagnosis["ttr"]["targeted"]["min"] == 5.0
    assert diagnosis["ttr"]["targeted"]["max"] == 9.0


def test_diagnosis_merge_is_order_invariant():
    parts = [
        _summary({"targeted": 2}, {"1": 2}, 2, 0, [5.0, 9.0]),
        _summary({"targeted": 1, "full": 1}, {"1": 1, "2": 1}, 1, 1, [7.0]),
        _summary({"full": 2}, {"3": 2}, 0, 0, []),
    ]
    baseline = mergeable_summary(merge_summaries(parts))
    for permutation in itertools.permutations(parts):
        merged = mergeable_summary(merge_summaries(list(permutation)))
        assert merged["diagnosis"] == baseline["diagnosis"]


def test_unlocalizable_episodes_count_against_accuracy():
    """An episode whose true component never entered the ranking must
    land in the accuracy denominator (as 'unranked'), not vanish."""
    from repro.runtime.telemetry import DiagnosisStats

    stats = DiagnosisStats()
    stats.observe({"action": "rebind", "mode": "full", "suspect": None,
                   "true_component": "audio", "true_rank": 1,
                   "hit": None, "wave": 0, "ttr": 5.0})
    stats.observe({"action": "rebind", "mode": "full", "suspect": None,
                   "true_component": "audio", "true_rank": None,
                   "hit": None, "wave": 0, "ttr": 9.0})
    summary = stats.summary()
    assert summary["rank_of_true"] == {"1": 1, "unranked": 1}
    assert summary["localization_accuracy"] == 0.5
    # a targeted MISS (no ttr) must not add a second count for the episode
    stats.observe({"action": "rebind", "mode": "targeted", "suspect": "tuner",
                   "true_component": "audio", "true_rank": 2,
                   "hit": False, "wave": 1})
    assert sum(stats.summary()["rank_of_true"].values()) == 2


def test_scripted_profile_must_press_power():
    with pytest.raises(ValueError, match="power"):
        UserProfile("op", script=("ttx", "ch_up")).validate()
    UserProfile("op", script=("power", "ttx", "ch_up")).validate()  # ok


def test_legacy_summaries_without_diagnosis_merge_to_empty_block():
    legacy = _summary({}, {}, 0, 0, [])
    del legacy["diagnosis"]
    merged = merge_summaries([legacy])
    assert merged["diagnosis"]["rebinds"] == {}
    assert merged["diagnosis"]["localization_accuracy"] == 0.0
    assert mergeable_summary(merged)["diagnosis"]["hits"] == 0


# ----------------------------------------------------------------------
# targeted-miss fallback (unit level, via a stubbed ranking)
# ----------------------------------------------------------------------
class _WrongSpectra:
    """Stub: confidently nominates the wrong component."""

    def ranking(self):
        return [
            RankedComponent("tuner", 0.9, 1),
            RankedComponent("audio", 0.2, 2),
        ]

    def confidence(self, ranking=None):
        return 0.7


def test_targeted_miss_falls_back_to_full_rebind():
    fleet = MonitorFleet(seed=3)
    member = fleet.add_tv()
    member.suo.remote.schedule_press(0.0, "power")
    harness = MemberRecovery(member, fleet.kernel, fleet.bus)
    harness.spectra.detach()
    harness.spectra = _WrongSpectra()

    member.suo.control.fault_flags["volume_overshoot"] = True
    member.faulty = True
    flags = member.suo.control.fault_flags
    harness.arm(0, lambda: flags.__setitem__("volume_overshoot", False),
                component="audio")
    # keep the faulty volume path exercised so every rung re-detects
    for i in range(120):
        member.suo.remote.schedule_press(1.0 + i * 1.5,
                                         ("vol_up", "vol_down")[i % 2])
    fleet.run(200.0)

    kinds = [entry.action.kind for entry in harness.manager.log]
    # ladder walked, then rebind twice: the targeted miss, then the full
    assert kinds[:3] == ["local_reset", "component_restart", "rebind"]
    assert kinds.count("rebind") >= 2
    assert harness.completed, "the full rebind must close the episode"
    assert not flags.get("volume_overshoot")
    # the downtime trail shows one targeted attempt before the full one
    rebind_downtimes = [
        entry.downtime for entry in harness.manager.log
        if entry.action.kind == "rebind"
    ]
    assert rebind_downtimes[0] == DOWNTIME["targeted_rebind"]
    assert DOWNTIME["rebind"] in rebind_downtimes[1:]
