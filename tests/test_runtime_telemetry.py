"""Tests for the streaming telemetry aggregators.

The contract under test: bounded memory whatever the traffic, windowing
keyed to *simulated* time, and byte-stable summaries for a fixed seed —
the properties that let a thousand-SUO campaign run without retaining
the merged trace.
"""

import json
import random

import pytest

from repro.runtime import (
    CounterSet,
    EventBus,
    FleetTelemetry,
    ReservoirHistogram,
    WindowedRate,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# CounterSet
# ----------------------------------------------------------------------
def test_counter_set_counts_and_sorts():
    counters = CounterSet()
    counters.inc("b")
    counters.inc("a", 3)
    counters.inc("b")
    assert counters.get("a") == 3
    assert counters.get("missing") == 0
    assert counters.total() == 5
    assert list(counters.as_dict()) == ["a", "b"]


# ----------------------------------------------------------------------
# WindowedRate
# ----------------------------------------------------------------------
def test_windowed_rate_counts_only_the_trailing_window():
    clock = FakeClock()
    rate = WindowedRate(clock, window=10.0, buckets=10)
    for t in (0.5, 1.5, 2.5):
        clock.now = t
        rate.add()
    assert rate.count() == 3
    # advance so the first two events fall off the 10s window
    clock.now = 11.6
    assert rate.count() == 1
    # far past the window everything expires
    clock.now = 50.0
    assert rate.count() == 0


def test_windowed_rate_is_per_sim_time_not_wall_time():
    clock = FakeClock()
    rate = WindowedRate(clock, window=10.0, buckets=10)
    for i in range(20):
        clock.now = 10.0 + i * 0.5  # 2 events per sim second
        rate.add()
    assert rate.rate() == pytest.approx(2.0, rel=0.2)


def test_windowed_rate_early_rate_uses_covered_span():
    clock = FakeClock()
    rate = WindowedRate(clock, window=100.0, buckets=10)
    clock.now = 1.0
    rate.add()
    rate.add()
    # 2 events in ~1s must not read as 2/100
    assert rate.rate() > 0.1


def test_windowed_rate_rejects_bad_parameters():
    with pytest.raises(ValueError):
        WindowedRate(FakeClock(), window=0.0)
    with pytest.raises(ValueError):
        WindowedRate(FakeClock(), buckets=0)


# ----------------------------------------------------------------------
# ReservoirHistogram
# ----------------------------------------------------------------------
def test_reservoir_is_bounded_and_stats_exact():
    hist = ReservoirHistogram(capacity=64, rng=random.Random(1))
    for i in range(10_000):
        hist.add(float(i))
    assert hist.retained == 64  # bounded whatever the stream length
    assert hist.count == 10_000
    assert hist.min == 0.0
    assert hist.max == 9999.0
    assert hist.mean() == pytest.approx(4999.5)
    assert 0.0 <= hist.quantile(0.5) <= 9999.0


def test_reservoir_is_deterministic_under_a_fixed_seed():
    def sample():
        hist = ReservoirHistogram(capacity=16, rng=random.Random(7))
        for i in range(1000):
            hist.add(float(i % 97))
        return hist.stats()

    assert sample() == sample()


def test_reservoir_quantiles_on_small_streams():
    hist = ReservoirHistogram(capacity=8)
    assert hist.quantile(0.5) == 0.0  # empty
    hist.add(3.0)
    assert hist.quantile(0.5) == 3.0
    assert hist.stats()["count"] == 1


# ----------------------------------------------------------------------
# FleetTelemetry
# ----------------------------------------------------------------------
def test_fleet_telemetry_tallies_per_suo_and_kind():
    bus = EventBus()
    clock = FakeClock()
    telemetry = FleetTelemetry(bus, clock, rng=random.Random(0))
    bus.publish("suo.tv-0.input", "press")
    bus.publish("suo.tv-0.output", "screen")
    bus.publish("suo.tv-1.output", "screen")
    bus.publish("suo.tv-1.error", "report")
    assert telemetry.events_total == 4
    assert telemetry.kinds.as_dict() == {"error": 1, "input": 1, "output": 2}
    assert telemetry.per_suo["tv-0"].inputs == 1
    assert telemetry.per_suo["tv-1"].errors == 1
    assert telemetry.errors_by_suo() == {"tv-1": 1}


def test_fleet_telemetry_summary_is_canonical_json():
    bus = EventBus()
    telemetry = FleetTelemetry(bus, FakeClock(), rng=random.Random(0))
    bus.publish("suo.a.input", 1)
    summary = telemetry.summary(per_suo=True)
    # round-trips through JSON and sorts stably → byte-stable digest
    assert json.loads(json.dumps(summary)) == summary
    assert telemetry.digest() == telemetry.digest()


def test_fleet_telemetry_detach_stops_ingestion():
    bus = EventBus()
    telemetry = FleetTelemetry(bus, FakeClock(), rng=random.Random(0))
    bus.publish("suo.a.input", 1)
    telemetry.detach()
    bus.publish("suo.a.input", 2)
    assert telemetry.events_total == 1
    telemetry.detach()  # idempotent


def test_fleet_telemetry_latency_reservoir():
    bus = EventBus()
    telemetry = FleetTelemetry(bus, FakeClock(), rng=random.Random(0), reservoir=4)
    for value in (0.05, 0.06, 0.07, 0.08, 0.09, 0.10):
        telemetry.observe_latency(value)
    stats = telemetry.summary()["latency"]
    assert stats["count"] == 6
    assert stats["retained"] == 4
    assert stats["max"] == 0.10
