"""Endpoint-level tests for the campaign service (PR 10).

The acceptance bar: a campaign submitted over HTTP produces
``telemetry_digest`` and ``span_digest`` byte-identical to a serial
``run_cell`` of the same spec × seed — asserted here against the
terminal NDJSON stream record AND the report endpoint.  Everything runs
against a real server on an ephemeral port with a temp history store.
"""

import json
import threading
from dataclasses import replace

import pytest

from repro.campaign import (
    CampaignCheckpoint,
    DistributedBackend,
    InlineExecutor,
    ShardResult,
    WorkerFaultInjector,
    execute_plan,
    run_cell,
)
from repro.campaign.backends import execute_plan_segmented
from repro.campaign.cli import main as campaign_cli_main
from repro.campaign.core import execute_cell
from repro.campaign.report import merge_shard_results
from repro.scenarios import build_plan, get_scenario, partition_plan
from repro.service import (
    CampaignServer,
    ServiceClient,
    ServiceError,
    SubmissionError,
    parse_submission,
)


def small_spec():
    return get_scenario("zapping-storm").scaled(0.25)


def span_spec():
    return replace(get_scenario("recovery-ladder-drill"), record_spans=True)


# ----------------------------------------------------------------------
# the segmented-execution seam the stream rides on
# ----------------------------------------------------------------------
class TestSegmentedExecution:
    def test_digest_identical_for_any_segment_count(self):
        spec = small_spec()
        serial = run_cell(spec, seed=3)
        plan = partition_plan(build_plan(spec, seed=3), 1)[0]
        for segments in (1, 2, 7):
            payload = execute_plan_segmented(plan, segments)
            merged = merge_shard_results(
                spec.name, 3, "segmented", 1, [payload], 0.0,
            )
            assert merged.telemetry_digest == serial.telemetry_digest
            assert merged.span_digest == serial.span_digest

    def test_segment_callback_sees_monotonic_boundaries(self):
        spec = small_spec()
        plan = partition_plan(build_plan(spec, seed=1), 1)[0]
        seen = []
        execute_plan_segmented(
            plan, 4, on_segment=lambda _c, i, now: seen.append((i, now)),
        )
        assert [index for index, _now in seen] == [0, 1, 2, 3]
        times = [now for _index, now in seen]
        assert times == sorted(times)
        assert times[-1] == pytest.approx(spec.duration)

    def test_segments_must_be_positive(self):
        plan = partition_plan(build_plan(small_spec(), seed=0), 1)[0]
        with pytest.raises(ValueError):
            execute_plan_segmented(plan, 0)

    def test_matches_unsegmented_payload_exactly(self):
        plan = partition_plan(build_plan(small_spec(), seed=5), 1)[0]
        flat = execute_plan(plan)
        sliced = execute_plan_segmented(plan, 3)
        flat.pop("wall_seconds"), sliced.pop("wall_seconds")
        assert json.dumps(flat, sort_keys=True) == \
            json.dumps(sliced, sort_keys=True)


# ----------------------------------------------------------------------
# submission validation (the HTTP 400 surface, unit level)
# ----------------------------------------------------------------------
class TestParseSubmission:
    def test_rejects_non_object(self):
        with pytest.raises(SubmissionError):
            parse_submission(["zapping-storm"])

    def test_rejects_unknown_keys(self):
        with pytest.raises(SubmissionError, match="unknown submission keys"):
            parse_submission({"scenarios": ["zapping-storm"], "seed": 1})

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SubmissionError, match="unknown scenario"):
            parse_submission({"scenarios": ["no-such-scenario"]})

    def test_rejects_bool_seeds(self):
        with pytest.raises(SubmissionError, match="seeds"):
            parse_submission({"scenarios": ["zapping-storm"],
                              "seeds": [True]})

    def test_rejects_bad_inline_spec(self):
        with pytest.raises(SubmissionError, match="invalid scenario spec"):
            parse_submission({"scenarios": [{"name": "x"}]})

    def test_accepts_inline_spec_and_grid(self):
        spec = small_spec()
        cells, options = parse_submission({
            "scenarios": [json.loads(spec.canonical_json()), "zapping-storm"],
            "seeds": [1, 2],
            "shards": 2,
            "segments": 6,
            "campaign_id": "grid-a",
        })
        assert len(cells) == 4
        assert options == {"shards": 2, "segments": 6,
                           "campaign_id": "grid-a"}


# ----------------------------------------------------------------------
# live server fixture
# ----------------------------------------------------------------------
@pytest.fixture()
def service(tmp_path):
    server = CampaignServer(
        host="127.0.0.1", port=0,
        db_path=str(tmp_path / "history.sqlite"),
        workers=2, segments=4,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.address
    try:
        yield ServiceClient(host, port, timeout=30.0)
    finally:
        server.shutdown()
        server.server_close()


class TestEndpoints:
    def test_healthz(self, service):
        health = service.health()
        assert health["ok"] is True
        assert health["jobs"] == 0

    def test_submit_stream_and_digest_identity(self, service):
        spec = span_spec()
        serial = run_cell(spec, seed=7)
        assert serial.span_digest  # the drill records real spans
        job = service.submit(
            [json.loads(spec.canonical_json())], seeds=[7], segments=5,
        )
        assert job["state"] in ("queued", "running")
        records = list(service.stream(job["job_id"]))
        assert records[0]["type"] == "job"
        end = records[-1]
        assert end["type"] == "end"
        assert end["state"] == "complete"
        assert end["telemetry_digest"] == serial.telemetry_digest
        assert end["span_digest"] == serial.span_digest
        telemetry = [r for r in records if r["type"] == "telemetry"]
        assert len(telemetry) == 5
        assert [r["segment"] for r in telemetry] == list(range(5))
        assert all("events_total" in r["summary"] for r in telemetry)
        # report endpoint agrees with the stream's terminal record
        report = service.report(job["job_id"])
        assert report["reports"][0]["telemetry_digest"] == \
            serial.telemetry_digest

    def test_stream_replays_for_late_subscriber(self, service):
        job = service.submit(["zapping-storm"], seeds=[2], segments=3)
        service.wait(job["job_id"])
        # job long finished: the stream must still deliver every record
        records = list(service.stream(job["job_id"]))
        kinds = [r["type"] for r in records]
        assert kinds[0] == "job"
        assert kinds[-1] == "end"
        assert kinds.count("telemetry") == 3

    def test_status_reports_per_shard_checkpoint(self, service):
        job = service.submit(["zapping-storm"], seeds=[4])
        status = service.wait(job["job_id"])
        assert status["state"] == "complete"
        cell = status["checkpoint"]["cells"][0]
        assert cell["status"] == "complete"
        assert [s["state"] for s in cell["shards"]] == ["complete"]
        assert cell["shards"][0]["attempts"] == 1
        assert cell["shards"][0]["worker"] == "service"

    def test_unknown_job_404(self, service):
        for call in (
            lambda: service.status("job-missing"),
            lambda: service.report("job-missing"),
            lambda: service.cancel("job-missing"),
            lambda: list(service.stream("job-missing")),
        ):
            with pytest.raises(ServiceError) as err:
                call()
            assert err.value.status == 404

    def test_malformed_submission_400(self, service):
        for bad in (
            {"scenarios": []},
            {"scenarios": ["no-such-scenario"]},
            {"scenarios": ["zapping-storm"], "typo": 1},
            {"scenarios": [{"name": "broken"}]},
            {"scenarios": ["zapping-storm"], "shards": 0},
        ):
            with pytest.raises(ServiceError) as err:
                service._request("POST", "/campaigns", body=bad)
            assert err.value.status == 400
        # non-JSON body is also a 400, not a stack trace
        with pytest.raises(ServiceError) as err:
            service._request("POST", "/campaigns", body=None)
        assert err.value.status == 400

    def test_mid_stream_cancel(self, service):
        # Five cells x 64 segments: the cancel lands during cell 0,
        # whole cells of runway away from a spurious completion.
        job = service.submit(
            ["recovery-ladder-drill"], seeds=[1, 2, 3, 4, 5], segments=64,
        )
        states = []
        for record in service.stream(job["job_id"]):
            if record["type"] == "telemetry" and not states:
                states.append(service.cancel(job["job_id"]))
            if record["type"] == "end":
                assert record["state"] == "cancelled"
        assert states and states[0]["cancel_requested"] is True
        status = service.status(job["job_id"])
        assert status["state"] == "cancelled"
        assert status["cells_complete"] < 5
        # the interrupted cell's checkpoint row shows its missing shards
        cells = status["checkpoint"]["cells"]
        assert any(
            shard["state"] == "missing"
            for cell in cells for shard in cell["shards"]
        )

    def test_report_conflict_while_incomplete(self, service):
        job = service.submit(
            ["recovery-ladder-drill"], seeds=[1, 2, 3], segments=64,
        )
        try:
            with pytest.raises(ServiceError) as err:
                service.report(job["job_id"])
            assert err.value.status == 409
        finally:
            service.cancel(job["job_id"])
            service.wait(job["job_id"])

    def test_history_and_trend(self, service):
        job = service.submit(["zapping-storm"], seeds=[1, 2])
        service.wait(job["job_id"])
        rows = service.history(limit=10)
        assert len(rows) == 2
        assert {row["scenario"] for row in rows} == {"zapping-storm"}
        assert all(row["telemetry_digest"] for row in rows)
        assert service.history(scenario="no-such") == []
        trend = service.trend()
        assert trend["ok"] is True  # empty runs table: nothing to gate

    def test_jobs_listing(self, service):
        job = service.submit(["zapping-storm"], seeds=[9])
        service.wait(job["job_id"])
        jobs = service.jobs()
        assert [j["job_id"] for j in jobs] == [job["job_id"]]
        assert jobs[0]["cells"] == [{"scenario": "zapping-storm", "seed": 9}]

    def test_grid_submission_multiple_cells(self, service):
        spec = small_spec()
        job = service.submit(
            [json.loads(spec.canonical_json())], seeds=[1, 2], segments=2,
        )
        status = service.wait(job["job_id"])
        assert status["cells_total"] == 2
        assert status["cells_complete"] == 2
        serial = {seed: run_cell(spec, seed) for seed in (1, 2)}
        for done in status["completed"]:
            assert done["telemetry_digest"] == \
                serial[done["seed"]].telemetry_digest


# ----------------------------------------------------------------------
# per-shard status assembly (the helper the CLI and service share)
# ----------------------------------------------------------------------
class TestPerShardStatus:
    def test_attempts_count_lost_workers(self, tmp_path):
        db = str(tmp_path / "history.sqlite")
        spec = small_spec()
        with CampaignCheckpoint(db) as checkpoint:
            backend = DistributedBackend(
                InlineExecutor(WorkerFaultInjector(kill_shards=(1,), kills=1)),
                shards=2, max_attempts=3, parallelism=1,
            )
            execute_cell(
                spec, 5, backend=backend,
                checkpoint=checkpoint, campaign_id="retry-demo",
            )
            cell = checkpoint.status("retry-demo")["cells"][0]
        assert [s["state"] for s in cell["shards"]] == \
            ["complete", "complete"]
        assert cell["shards"][0]["attempts"] == 1
        assert cell["shards"][1]["attempts"] == 2  # one injected loss

    def test_partial_cell_lists_missing_shards(self, tmp_path, capsys):
        db = str(tmp_path / "history.sqlite")
        spec = small_spec()
        with CampaignCheckpoint(db) as checkpoint:
            backend = DistributedBackend(
                InlineExecutor(), shards=3, parallelism=1,
            )
            cell = checkpoint.begin_cell("partial", spec, 9, backend)
            plan = partition_plan(build_plan(spec, seed=9), 3)[0]
            checkpoint.record_shard(
                cell, ShardResult(0, execute_plan(plan), 0, "inline"),
            )
            status = checkpoint.status("partial")["cells"][0]
        assert status["status"] != "complete"
        assert [s["state"] for s in status["shards"]] == \
            ["complete", "missing", "missing"]
        # the CLI renders those same shard rows for partial cells
        code = campaign_cli_main(["status", "partial", "--db", db])
        out = capsys.readouterr().out
        assert code == 0
        assert "shard   0: complete" in out
        assert "shard   1: missing" in out
        assert "shard   2: missing" in out

    def test_complete_cells_stay_compact_in_cli(self, tmp_path, capsys):
        db = str(tmp_path / "history.sqlite")
        with CampaignCheckpoint(db) as checkpoint:
            backend = DistributedBackend(
                InlineExecutor(), shards=2, parallelism=1,
            )
            execute_cell(
                small_spec(), 1, backend=backend,
                checkpoint=checkpoint, campaign_id="done",
            )
        code = campaign_cli_main(["status", "done", "--db", db])
        out = capsys.readouterr().out
        assert code == 0
        assert "1/1 cells complete" in out
        assert "shard " not in out  # no per-shard noise once complete
