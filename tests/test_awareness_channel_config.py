"""Tests for message channels and the awareness configuration."""

import pytest

from repro.awareness import AwarenessConfig, MessageChannel, ObservableSpec
from repro.sim import Kernel, RandomStreams


class TestMessageChannel:
    def test_delivery_after_delay(self):
        kernel = Kernel()
        channel = MessageChannel(kernel, "c", delay=0.5, jitter=0.0)
        received = []
        channel.connect(lambda m: received.append((kernel.now, m.payload)))
        channel.send("input", "hello")
        kernel.run()
        assert received == [(0.5, "hello")]

    def test_order_preserved_under_jitter(self):
        kernel = Kernel()
        channel = MessageChannel(
            kernel, "c", delay=0.1, jitter=0.5, streams=RandomStreams(7)
        )
        received = []
        channel.connect(lambda m: received.append(m.payload))
        for i in range(20):
            kernel.schedule(i * 0.01, lambda i=i: channel.send("k", i))
        kernel.run()
        assert received == list(range(20))

    def test_message_metadata(self):
        kernel = Kernel()
        channel = MessageChannel(kernel, "c", delay=0.2, jitter=0.0)
        seen = []
        channel.connect(seen.append)
        kernel.schedule(1.0, lambda: channel.send("output", {"x": 1}))
        kernel.run()
        message = seen[0]
        assert message.sent_at == 1.0
        assert message.kind == "output"

    def test_counters(self):
        kernel = Kernel()
        channel = MessageChannel(kernel, "c", delay=0.1, jitter=0.0)
        channel.connect(lambda m: None)
        channel.send("k", 1)
        channel.send("k", 2)
        assert channel.sent == 2
        kernel.run()
        assert channel.delivered == 2

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            MessageChannel(Kernel(), "c", delay=-0.1)

    def test_multiple_receivers(self):
        kernel = Kernel()
        channel = MessageChannel(kernel, "c", delay=0.0, jitter=0.0)
        a, b = [], []
        channel.connect(lambda m: a.append(m.payload))
        channel.connect(lambda m: b.append(m.payload))
        channel.send("k", "x")
        kernel.run()
        assert a == ["x"] and b == ["x"]

    def test_deterministic_jitter_with_same_seed(self):
        def run(seed):
            kernel = Kernel()
            channel = MessageChannel(
                kernel, "c", delay=0.1, jitter=0.3, streams=RandomStreams(seed)
            )
            times = []
            channel.connect(lambda m: times.append(kernel.now))
            for i in range(5):
                kernel.schedule(float(i), lambda: channel.send("k", None))
            kernel.run()
            return times

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestObservableSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ObservableSpec(name="x", threshold=-1.0)
        with pytest.raises(ValueError):
            ObservableSpec(name="x", max_consecutive=0)
        with pytest.raises(ValueError):
            ObservableSpec(name="x", trigger="sometimes")

    def test_trigger_flags(self):
        event = ObservableSpec(name="e", trigger="event")
        timed = ObservableSpec(name="t", trigger="time")
        both = ObservableSpec(name="b", trigger="both")
        assert event.event_based and not event.time_based
        assert timed.time_based and not timed.event_based
        assert both.event_based and both.time_based


class TestAwarenessConfig:
    def test_register_and_lookup(self):
        config = AwarenessConfig()
        config.observable("screen", threshold=1.0, max_consecutive=3)
        spec = config.spec("screen")
        assert spec.threshold == 1.0
        assert config.names() == ["screen"]
        assert config.spec("missing") is None

    def test_global_compare_switch(self):
        config = AwarenessConfig()
        config.observable("screen")
        assert config.compare_enabled("screen")
        config.enable_compare(False)
        assert not config.compare_enabled("screen")
        assert not config.compare_enabled()

    def test_per_observable_disable(self):
        config = AwarenessConfig()
        config.observable("screen")
        config.observable("sound")
        config.set_observable_enabled("screen", False)
        assert not config.compare_enabled("screen")
        assert config.compare_enabled("sound")
        config.set_observable_enabled("screen", True)
        assert config.compare_enabled("screen")
