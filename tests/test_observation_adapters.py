"""Tests for hardware monitors lifted into the Fig. 1 loop."""


from repro.core import AwarenessLoop, LadderStep, MonitorHierarchy, RecoveryPolicy
from repro.observation import (
    DeadlockDetector,
    DeadlockSource,
    MemoryArbiterWatch,
    MemoryWatchSource,
    RangeChecker,
    RangeCheckerSource,
)
from repro.platform import MemoryArbiter
from repro.recovery import RecoveryManager
from repro.sim import Delay, Kernel, Process, Resource
from repro.tv import TVSet


class TestRangeCheckerSource:
    def test_violations_become_error_reports(self):
        tv = TVSet(seed=3)
        checker = RangeChecker(tv.configuration, clock=lambda: tv.kernel.now)
        checker.install()
        source = RangeCheckerSource(tv.kernel, checker, interval=1.0)
        source.start()
        tv.press("power")
        tv.audio.handle("audio", "set_volume", level=5000)  # wild write
        tv.run(3.0)
        assert len(source.reports) == 1
        report = source.reports[0]
        assert report.observable == "range:audio.set_volume"
        assert "5000" in report.actual

    def test_no_violations_no_reports(self):
        tv = TVSet(seed=3)
        checker = RangeChecker(tv.configuration, clock=lambda: tv.kernel.now)
        checker.install()
        source = RangeCheckerSource(tv.kernel, checker, interval=1.0)
        source.start()
        tv.press("power")
        tv.press("vol_up")
        tv.run(5.0)
        assert source.reports == []

    def test_each_violation_reported_once(self):
        tv = TVSet(seed=3)
        checker = RangeChecker(tv.configuration, clock=lambda: tv.kernel.now)
        checker.install()
        source = RangeCheckerSource(tv.kernel, checker, interval=1.0)
        source.start()
        tv.press("power")
        tv.audio.handle("audio", "set_volume", level=5000)
        tv.run(10.0)  # many polls, one violation
        assert len(source.reports) == 1


class TestDeadlockSource:
    def test_deadlock_alarm_forwarded(self):
        kernel = Kernel()
        r1 = Resource(kernel, 1, "r1")
        r2 = Resource(kernel, 1, "r2")

        def grab(first, second):
            def body():
                yield first.acquire()
                yield Delay(1.0)
                yield second.acquire()
                second.release()
                first.release()

            return body

        Process(kernel, grab(r1, r2)())
        Process(kernel, grab(r2, r1)())
        detector = DeadlockDetector(kernel, interval=2.0, stall_intervals=2)
        detector.watch_resource(r1)
        detector.watch_resource(r2)
        detector.start()
        source = DeadlockSource(detector)
        kernel.run(until=30.0)
        assert source.reports
        assert source.reports[0].detector == "deadlock-watchdog"
        assert source.reports[0].severity == 3.0


class TestMemoryWatchSource:
    def test_latency_alarm_forwarded(self):
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=10.0)
        watch = MemoryArbiterWatch(kernel, arbiter, latency_bound=0.5, interval=5.0)
        watch.start()
        source = MemoryWatchSource(watch)

        def hog():
            for _ in range(20):
                yield from arbiter.access("greedy", 50)

        Process(kernel, hog())
        kernel.run(until=60.0)
        assert source.reports
        assert source.reports[0].observable == "mem-latency:greedy"


class TestIntegrationWithLoop:
    def test_all_detection_techniques_in_one_hierarchy(self):
        """The Sect. 5 integration goal: model-based, mode-based, and
        hardware-based detectors feeding one loop through one hierarchy."""
        tv = TVSet(seed=3)
        checker = RangeChecker(tv.configuration, clock=lambda: tv.kernel.now)
        checker.install()
        range_source = RangeCheckerSource(tv.kernel, checker, interval=1.0)
        range_source.start()

        hierarchy = MonitorHierarchy("tv")
        hierarchy.add_scope("hw-range", range_source)

        manager = RecoveryManager(tv.kernel)
        clamped = []
        manager.register_repair(
            "clamp_audio",
            lambda: clamped.append(tv.audio.op_audio_set_volume(level=30)),
        )
        policy = RecoveryPolicy()
        policy.add_ladder("range:audio*", [LadderStep("repair", "clamp_audio", 0.0)])
        loop = AwarenessLoop(tv.kernel, policy, manager, settle_time=4.0)
        loop.attach(hierarchy)

        tv.press("power")
        tv.audio.handle("audio", "set_volume", level=5000)
        tv.run(10.0)
        assert clamped == [30]
        assert hierarchy.scope_summary()["hw-range"] == 1
        assert loop.recovered_count() == 1
