"""Canonical serialization round-trips for the scenario spec layer.

The fuzz corpus and shrunk repros live as canonical JSON keyed by
``spec_hash`` — these tests pin the contract: ``from_json(to_json(x))``
equals ``x`` for every shape a spec can take, the hash is stable across
round-trips, and ints-given-for-floats normalize to the same bytes.
"""

import json

import pytest

from repro.scenarios import (
    FaultPhase,
    ScenarioSpec,
    UserProfile,
    get_scenario,
    scenario_names,
    spec_hash,
)


class TestProfileRoundTrip:
    def test_minimal_profile(self):
        profile = UserProfile("zapper")
        assert UserProfile.from_json(profile.to_json()) == profile

    def test_keys_restored_as_tuple(self):
        profile = UserProfile("p", keys=("ch_up", "ch_down"))
        loaded = UserProfile.from_json(
            json.loads(json.dumps(profile.to_json()))
        )
        assert loaded == profile
        assert isinstance(loaded.keys, tuple)

    def test_script_restored_as_tuple(self):
        profile = UserProfile("s", mean_gap=2.0, script=("power", "mute"))
        loaded = UserProfile.from_json(profile.to_json())
        assert loaded == profile
        assert isinstance(loaded.script, tuple)

    def test_absent_optionals_stay_none(self):
        data = UserProfile("p").to_json()
        assert "keys" not in data and "script" not in data


class TestPhaseRoundTrip:
    def test_plain_phase(self):
        phase = FaultPhase("mute_noop", at=5.0)
        assert FaultPhase.from_json(phase.to_json()) == phase

    def test_windowed_pulsed_phase(self):
        phase = FaultPhase(
            "alert_broadcast", at=3.0, kind="tv", fraction=0.5,
            duration=10.0, pulse_every=2.0,
        )
        assert FaultPhase.from_json(phase.to_json()) == phase

    def test_recovery_phase(self):
        phase = FaultPhase("silent_jam", at=4.0, kind="printer", recovery=True)
        loaded = FaultPhase.from_json(phase.to_json())
        assert loaded == phase and loaded.recovery is True

    def test_int_times_normalize_to_float(self):
        # A hand-written JSON file will say "at": 5 — the canonical form
        # must not distinguish it from 5.0.
        a = FaultPhase("mute_noop", at=5)
        b = FaultPhase("mute_noop", at=5.0)
        assert a.to_json() == b.to_json()


class TestSpecRoundTrip:
    @pytest.mark.parametrize("name", scenario_names())
    def test_every_library_scenario_round_trips(self, name):
        spec = get_scenario(name)
        loaded = ScenarioSpec.from_json(spec.to_json())
        assert loaded == spec
        assert spec_hash(loaded) == spec_hash(spec)

    def test_round_trip_through_json_text(self):
        spec = get_scenario("recovery-ladder-drill")
        loaded = ScenarioSpec.from_json(json.loads(spec.canonical_json()))
        assert loaded == spec

    def test_explicit_empty_profiles_survive(self):
        # Legal for a printer-only mix; must not be corrupted into the
        # default profile tuple on the way back in.
        spec = ScenarioSpec(
            name="printers-only", description="", duration=10.0,
            printers=2, profiles=(),
        )
        spec.validate()
        loaded = ScenarioSpec.from_json(spec.to_json())
        assert loaded.profiles == ()
        assert loaded == spec

    def test_missing_profiles_key_means_default(self):
        data = {"name": "n", "description": "", "duration": 5.0, "tvs": 1}
        loaded = ScenarioSpec.from_json(data)
        assert loaded.profiles == (UserProfile("default"),)

    def test_retain_trace_tristate(self):
        base = ScenarioSpec(name="n", description="", duration=5.0, tvs=1)
        for value in (None, True, False):
            spec = ScenarioSpec(
                name="n", description="", duration=5.0, tvs=1,
                retain_trace=value,
            )
            assert ScenarioSpec.from_json(spec.to_json()).retain_trace == value
        assert base.retain_trace is None

    def test_hash_is_stable_and_discriminating(self):
        spec = get_scenario("zapping-storm")
        assert spec_hash(spec) == spec_hash(ScenarioSpec.from_json(spec.to_json()))
        other = get_scenario("overnight-soak")
        assert spec_hash(spec) != spec_hash(other)

    def test_canonical_json_is_key_sorted_and_compact(self):
        text = get_scenario("zapping-storm").canonical_json()
        data = json.loads(text)
        assert text == json.dumps(data, sort_keys=True, separators=(",", ":"))
