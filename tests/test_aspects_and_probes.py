"""Tests for monitoring aspects, buffer probes, and executor stability."""

import pytest

from repro.awareness import AwarenessConfig, ModelExecutor
from repro.core import Observation
from repro.koala import JoinPoint, Weaver
from repro.observation import BufferProbe, call_counter, call_logger, latency_recorder, value_tap
from repro.sim import Kernel, Store, Trace
from repro.statemachine import MachineBuilder
from repro.tv import TVSet


class TestMonitoringAspects:
    def make_tv(self):
        tv = TVSet(seed=5)
        weaver = Weaver(tv.configuration)
        return tv, weaver

    def test_call_logger_records_calls(self):
        tv, weaver = self.make_tv()
        trace = Trace(clock=lambda: tv.kernel.now)
        weaver.weave(call_logger(trace, JoinPoint(component="audio")))
        tv.press("power")
        tv.press("vol_up")
        calls = list(trace.of_kind("call"))
        assert calls
        assert all(record.value["component"] == "audio" for record in calls)
        operations = {record.value["operation"] for record in calls}
        assert "set_volume" in operations

    def test_call_logger_captures_args_and_result(self):
        tv, weaver = self.make_tv()
        trace = Trace()
        weaver.weave(call_logger(trace, JoinPoint(operation="set_volume")))
        tv.press("power")
        tv.press("vol_up")
        record = trace.last("call")
        assert record.value["kwargs"] == {"level": 35}
        assert record.value["result"] == 35
        assert record.value["error"] is None

    def test_call_counter(self):
        tv, weaver = self.make_tv()
        aspect = call_counter(JoinPoint(component="tuner"))
        weaver.weave(aspect)
        tv.press("power")
        tv.press("ch_up")
        tv.press("ch_up")
        assert aspect.counts.get("tuner.tune", 0) == 2

    def test_latency_recorder_on_simulated_clock(self):
        tv, weaver = self.make_tv()
        aspect = latency_recorder(lambda: tv.kernel.now, JoinPoint())
        weaver.weave(aspect)
        tv.press("power")
        # all intercepted calls are instantaneous in simulated time
        assert aspect.samples
        assert all(
            all(v == 0.0 for v in values) for values in aspect.samples.values()
        )

    def test_value_tap_feeds_callback(self):
        tv, weaver = self.make_tv()
        seen = []
        weaver.weave(
            value_tap(
                JoinPoint(operation="tune"),
                lambda context: seen.append(context.kwargs["channel"]),
            )
        )
        tv.press("power")
        tv.press("ch_up")
        tv.press("ch_up")
        assert seen == [2, 3]


class TestBufferProbe:
    def test_samples_fill_and_drops(self):
        kernel = Kernel()
        trace = Trace(clock=lambda: kernel.now)
        store = Store(kernel, capacity=2, name="frames")
        probe = BufferProbe(trace, kernel, interval=1.0)
        probe.watch(store)
        probe.start()
        store.put("a")
        store.put("b")
        store.put("c")  # dropped
        kernel.run(until=3.5)
        samples = list(trace.of_kind("buffer"))
        assert samples
        last = samples[-1].value
        assert last["name"] == "frames"
        assert last["fill"] == 2
        assert last["drops"] == 1
        probe.stop()
        kernel.run(until=10.0)
        assert len(list(trace.of_kind("buffer"))) == len(samples)


class TestExecutorStability:
    def make_executor(self):
        b = MachineBuilder("m")
        b.state("stable")
        b.state("unstable")
        b.initial("stable")
        b.transition("stable", "unstable", event="go")
        b.transition("unstable", "stable", event="settle")
        machine = b.build()
        config = AwarenessConfig()
        config.observable("x")
        executor = ModelExecutor(
            machine,
            translator=lambda obs: (obs.value, {}),
            providers={"x": lambda m: 0},
            config=config,
            unstable_when=lambda m: m.configuration().endswith("unstable"),
        )
        executor.start()
        return executor, config

    def test_unstable_state_disables_comparison(self):
        executor, config = self.make_executor()
        assert config.compare_enabled("x")
        executor.on_input(Observation(0.0, "suo", "cmd", "go"))
        assert not config.compare_enabled("x")
        executor.on_input(Observation(1.0, "suo", "cmd", "settle"))
        assert config.compare_enabled("x")

    def test_untranslatable_events_counted(self):
        executor, config = self.make_executor()
        executor.translator = lambda obs: None
        executor.on_input(Observation(0.0, "suo", "noise", "zzz"))
        assert executor.ignored_events == 1
        assert executor.steps == 0

    def test_stopped_executor_ignores_input(self):
        executor, config = self.make_executor()
        executor.stop()
        executor.on_input(Observation(0.0, "suo", "cmd", "go"))
        assert executor.steps == 0

    def test_expected_unknown_observable_raises(self):
        executor, config = self.make_executor()
        with pytest.raises(KeyError):
            executor.expected("nonexistent")

    def test_expected_all(self):
        executor, config = self.make_executor()
        assert executor.expected_all() == {"x": 0}


class TestRemoteHelpers:
    def test_key_sequence_schedules_at_cadence(self):
        from repro.tv.remote import KeySequence

        tv = TVSet(seed=6)
        sequence = KeySequence(tv.remote, ["power", "vol_up"], interval=3.0, start=1.0)
        assert sequence.press_times() == [1.0, 4.0]
        sequence.schedule()
        tv.run(10.0)
        assert [p.key for p in tv.remote.presses] == ["power", "vol_up"]
        assert [p.time for p in tv.remote.presses] == [1.0, 4.0]

    def test_random_user_is_seeded(self):
        from repro.tv.remote import RandomUser

        def run(seed):
            tv = TVSet(seed=seed)
            user = RandomUser(tv.remote, tv.streams, mean_gap=2.0,
                              keys=["power", "ch_up", "vol_up"])
            user.start()
            tv.run(60.0)
            user.stop()
            return list(user.pressed)

        assert run(4) == run(4)
        assert len(run(4)) > 5

    def test_unknown_key_rejected(self):
        tv = TVSet(seed=6)
        with pytest.raises(ValueError):
            tv.remote.press("self_destruct")
