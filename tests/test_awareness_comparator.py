"""Tests for the Comparator: thresholds, consecutive deviations, triggers."""


from repro.awareness import (
    AwarenessConfig,
    Comparator,
    ModelExecutor,
    OutputObserver,
    deviation_magnitude,
)
from repro.core import Observation
from repro.sim import Kernel
from repro.statemachine import MachineBuilder


class TestDeviationMagnitude:
    def test_numbers(self):
        assert deviation_magnitude(10, 13) == 3.0
        assert deviation_magnitude(1.5, 1.5) == 0.0

    def test_booleans_not_numeric(self):
        assert deviation_magnitude(True, 1) == 0.0 or True  # defined below
        assert deviation_magnitude(True, False) == 1.0
        assert deviation_magnitude(True, True) == 0.0

    def test_dicts_count_differing_keys(self):
        expected = {"a": 1, "b": 2, "c": 3}
        actual = {"a": 1, "b": 9, "d": 4}
        # differing: b (2!=9), c (3 vs missing), d (missing vs 4)
        assert deviation_magnitude(expected, actual) == 3.0

    def test_identical_dicts(self):
        assert deviation_magnitude({"x": 1}, {"x": 1}) == 0.0

    def test_other_types_binary(self):
        assert deviation_magnitude("menu", "ttx") == 1.0
        assert deviation_magnitude("menu", "menu") == 0.0
        assert deviation_magnitude(None, None) == 0.0
        assert deviation_magnitude(None, "x") == 1.0


def make_stack(threshold=0.0, max_consecutive=2, trigger="event"):
    """A minimal executor/observer/comparator harness around one variable."""
    kernel = Kernel()
    b = MachineBuilder("spec")
    b.state("s")
    b.initial("s")
    b.transition(
        "s", None, event="set",
        action=lambda m, e: m.set("value", e.param("v")), internal=True,
    )
    machine = b.var("value", 0).build()
    config = AwarenessConfig()
    config.observable(
        "value", threshold=threshold, max_consecutive=max_consecutive,
        trigger=trigger, period=1.0,
    )
    executor = ModelExecutor(
        machine,
        translator=lambda obs: ("set", {"v": obs.value}) if obs.name == "cmd" else None,
        providers={"value": lambda m: m.get("value")},
        config=config,
    )
    outputs = OutputObserver()
    comparator = Comparator(kernel, config, executor, outputs)
    outputs.subscribe(comparator.on_output_event)
    executor.subscribe_steps(comparator.on_model_step)
    executor.start()
    outputs.start()
    comparator.start()
    return kernel, machine, executor, outputs, comparator


def observe(outputs, kernel, name, value, advance=0.0):
    """Deliver one observation, optionally after advancing simulated time
    (consecutive deviations only count at *distinct* instants — a burst
    of same-timestamp comparisons is one deviation)."""
    from repro.awareness import Message

    kernel._now += advance
    outputs._on_message(
        Message(kernel.now, "output", {"name": name, "value": value, "time": kernel.now})
    )


class TestComparatorEventBased:
    def test_agreement_no_error(self):
        kernel, machine, executor, outputs, comparator = make_stack()
        machine.set("value", 5)
        observe(outputs, kernel, "value", 5)
        assert comparator.reports == []
        assert comparator.stats.comparisons == 1

    def test_error_after_consecutive_limit(self):
        kernel, machine, executor, outputs, comparator = make_stack(max_consecutive=2)
        machine.set("value", 5)
        observe(outputs, kernel, "value", 9)  # deviation 1
        observe(outputs, kernel, "value", 9, advance=1.0)  # deviation 2 (= limit)
        assert comparator.reports == []
        observe(outputs, kernel, "value", 9, advance=1.0)  # deviation 3 > limit
        assert len(comparator.reports) == 1
        report = comparator.reports[0]
        assert report.expected == 5 and report.actual == 9
        assert report.consecutive == 3

    def test_transient_suppressed_by_recovery_sample(self):
        kernel, machine, executor, outputs, comparator = make_stack(max_consecutive=2)
        machine.set("value", 5)
        observe(outputs, kernel, "value", 9)
        observe(outputs, kernel, "value", 5)  # back in agreement
        observe(outputs, kernel, "value", 9)
        observe(outputs, kernel, "value", 5)
        assert comparator.reports == []
        assert comparator.stats.suppressed_transients == 2

    def test_threshold_tolerates_small_deviation(self):
        kernel, machine, executor, outputs, comparator = make_stack(
            threshold=2.0, max_consecutive=1
        )
        machine.set("value", 5)
        for _ in range(5):
            observe(outputs, kernel, "value", 7, advance=1.0)  # |7-5| <= threshold
        assert comparator.reports == []
        for _ in range(3):
            observe(outputs, kernel, "value", 8, advance=1.0)  # 3 > threshold
        assert len(comparator.reports) == 1

    def test_report_only_once_per_streak(self):
        kernel, machine, executor, outputs, comparator = make_stack(max_consecutive=1)
        machine.set("value", 5)
        for _ in range(10):
            observe(outputs, kernel, "value", 9, advance=1.0)
        assert len(comparator.reports) == 1

    def test_reset_allows_new_report(self):
        kernel, machine, executor, outputs, comparator = make_stack(max_consecutive=1)
        machine.set("value", 5)
        for _ in range(3):
            observe(outputs, kernel, "value", 9, advance=1.0)
        comparator.reset("value")
        for _ in range(3):
            observe(outputs, kernel, "value", 9, advance=1.0)
        assert len(comparator.reports) == 2

    def test_nothing_observed_yet_no_compare(self):
        kernel, machine, executor, outputs, comparator = make_stack()
        executor.on_input(Observation(0.0, "suo", "cmd", 5))
        assert comparator.stats.comparisons == 0

    def test_first_deviation_time_in_context(self):
        kernel, machine, executor, outputs, comparator = make_stack(max_consecutive=1)
        machine.set("value", 5)
        observe(outputs, kernel, "value", 9)
        kernel._now = 4.0  # simulate later sample (direct for test brevity)
        observe(outputs, kernel, "value", 9)
        report = comparator.reports[0]
        assert report.context["first_deviation_at"] == 0.0


class TestComparatorTimeBased:
    def test_timed_sampling_detects_quiet_divergence(self):
        kernel, machine, executor, outputs, comparator = make_stack(
            trigger="time", max_consecutive=2
        )
        machine.set("value", 5)
        observe(outputs, kernel, "value", 9)  # event trigger disabled
        assert comparator.reports == []
        kernel.run(until=10.0)  # timed samples every 1.0
        assert len(comparator.reports) == 1

    def test_stop_halts_sampling(self):
        kernel, machine, executor, outputs, comparator = make_stack(trigger="time")
        machine.set("value", 5)
        observe(outputs, kernel, "value", 9)
        comparator.stop()
        kernel.run(until=10.0)
        assert comparator.stats.comparisons == 0

    def test_compare_disabled_globally(self):
        kernel, machine, executor, outputs, comparator = make_stack(
            trigger="time", max_consecutive=1
        )
        comparator.config.enable_compare(False)
        machine.set("value", 5)
        observe(outputs, kernel, "value", 9)
        kernel.run(until=10.0)
        assert comparator.reports == []
