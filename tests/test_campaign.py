"""Tests for the unified campaign API (repro.campaign).

The contract under test is the PR 3 acceptance bar: a campaign cell
executed by ``ProcessShardBackend`` produces *identical* merged
counter/tally telemetry to the same cell under ``SerialBackend`` (the
``telemetry_digest`` witness), per-shard trace digests reproduce across
reruns, and the Campaign plan/grid semantics match the legacy runner.
"""

import json

import pytest

from repro.campaign import (
    Campaign,
    CampaignReport,
    ProcessShardBackend,
    SerialBackend,
    run_cell,
    format_campaign_table,
)
from repro.runtime.telemetry import mergeable_summary
from repro.scenarios import FaultPhase, SCENARIOS, ScenarioSpec, UserProfile, build_plan, partition_plan

SMALL = ScenarioSpec(
    name="campaign-small",
    description="test fixture",
    duration=30.0,
    tvs=5,
    profiles=(UserProfile("p", mean_gap=2.0, keys=("power", "vol_up", "mute")),),
    phases=(FaultPhase("volume_overshoot", at=10.0, fraction=0.5),),
)


# ----------------------------------------------------------------------
# plans and partitioning
# ----------------------------------------------------------------------
def test_plan_partition_preserves_identities_and_targets():
    spec = ScenarioSpec(
        "mix", "d", duration=20.0, tvs=5, players=3, printers=2,
        phases=(FaultPhase("volume_overshoot", at=5.0, fraction=1.0),),
    )
    plan = build_plan(spec, seed=9)
    shards = partition_plan(plan, 3)
    assert len(shards) == 3
    # every member lands on exactly one shard, identity intact
    scattered = [m for shard in shards for m in shard.members]
    assert sorted(m.suo_id for m in scattered) == sorted(
        m.suo_id for m in plan.members
    )
    assert {m.suo_id: m.kind_index for m in scattered} == {
        m.suo_id: m.kind_index for m in plan.members
    }
    assert {m.suo_id: m.profile for m in scattered} == {
        m.suo_id: m.profile for m in plan.members
    }
    # phase targets are partitioned, not re-drawn
    merged_targets = sorted(
        suo for shard in shards for suo in shard.phase_targets[0]
    )
    assert merged_targets == sorted(plan.phase_targets[0])
    # shard specs cover the shard's slice exactly
    for shard in shards:
        assert shard.spec.tvs == len(shard.members_of("tv"))
        assert shard.spec.players == len(shard.members_of("player"))
        assert shard.spec.printers == len(shard.members_of("printer"))


def test_partition_drops_empty_shards_and_rejects_nesting():
    plan = build_plan(SMALL, seed=1)
    shards = partition_plan(plan, 50)  # far more shards than members
    assert 0 < len(shards) <= SMALL.members
    with pytest.raises(ValueError, match="re-partition"):
        partition_plan(shards[0], 2)
    with pytest.raises(ValueError, match="shards"):
        partition_plan(plan, 0)


# ----------------------------------------------------------------------
# Campaign plan / grid semantics
# ----------------------------------------------------------------------
def test_campaign_grid_is_row_major_and_resolves_names():
    campaign = Campaign(["zapping-storm", SMALL], seeds=[1, 2], scale=0.25)
    cells = [(spec.name, seed) for spec, seed in campaign.cells]
    assert cells == [
        ("zapping-storm", 1), ("zapping-storm", 2),
        ("campaign-small", 1), ("campaign-small", 2),
    ]
    # scale applies to device mixes
    assert campaign.cells[0][0].tvs == SCENARIOS["zapping-storm"].scaled(0.25).tvs


def test_run_cell_does_not_rescale_resolved_grid_cells():
    campaign = Campaign("zapping-storm", seeds=[1], scale=2.0)
    spec, seed = campaign.cells[0]
    report = campaign.run_cell(spec, seed)
    assert report.members == spec.members  # scaled once, not twice
    # a fresh name still picks up the campaign scale
    by_name = campaign.run_cell("zapping-storm", seed)
    assert by_name.members == spec.members


def test_campaign_rejects_empty_plans():
    with pytest.raises(ValueError):
        Campaign([], seeds=[1])
    with pytest.raises(ValueError):
        Campaign(SMALL, seeds=[])
    with pytest.raises(ValueError):
        Campaign(SMALL, scale=0)


def test_serial_backend_report_shape():
    report = Campaign(SMALL).run_cell(SMALL, seed=3)
    assert isinstance(report, CampaignReport)
    assert report.backend == "serial"
    assert report.shards == 1
    assert report.members == SMALL.members
    assert len(report.shard_trace_digests) == 1
    assert report.dispatched > 0
    assert report.telemetry_summary["events_total"] > 0
    assert report.telemetry_digest
    assert report.faulty, "the fault phase must afflict someone"
    assert 0.0 <= report.detection_rate <= 1.0
    table = format_campaign_table([report])
    assert "campaign-small" in table and "telemetry digest" in table


def test_campaign_report_to_json_round_trips():
    report = Campaign(SMALL).run_cell(SMALL, seed=3)
    data = json.loads(report.to_json())
    assert data["scenario"] == "campaign-small"
    assert data["seed"] == 3
    assert data["telemetry_digest"] == report.telemetry_digest
    assert data["detection_rate"] == report.detection_rate
    assert data["telemetry_summary"]["events_total"] == \
        report.telemetry_summary["events_total"]


# ----------------------------------------------------------------------
# sharded execution: the acceptance bar
# ----------------------------------------------------------------------
def test_sharded_matches_serial_on_fixture():
    serial = run_cell(SMALL, 5)
    for shards in (2, 3):
        sharded = run_cell(SMALL, 5, backend=ProcessShardBackend(shards=shards))
        assert sharded.shards == shards
        assert sharded.members == serial.members
        assert sharded.telemetry_digest == serial.telemetry_digest
        assert mergeable_summary(sharded.telemetry_summary) == \
            mergeable_summary(serial.telemetry_summary)
        assert sharded.faulty == serial.faulty
        assert sharded.detected == serial.detected
        assert sharded.false_alarms == serial.false_alarms
        assert sharded.errors_by_suo == serial.errors_by_suo
        # kernel dispatch counts differ by a handful of per-shard
        # scheduling events (each shard fires its own phase events); the
        # SUO-event telemetry above is the placement invariant.
        assert abs(sharded.dispatched - serial.dispatched) < 10 * shards


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_library_scenario_shards_match_serial(name):
    """Acceptance: for every library scenario at the quick scale,
    ProcessShardBackend(shards=2) and SerialBackend produce identical
    merged counter/tally telemetry."""
    campaign = Campaign([name], scale=0.25)
    serial = campaign.run_cell(name, seed=7)
    sharded = campaign.run_cell(
        name, seed=7, backend=ProcessShardBackend(shards=2)
    )
    assert sharded.telemetry_digest == serial.telemetry_digest
    assert mergeable_summary(sharded.telemetry_summary) == \
        mergeable_summary(serial.telemetry_summary)
    assert sharded.faulty == serial.faulty
    assert sharded.detected == serial.detected
    assert sharded.false_alarms == serial.false_alarms


def test_shard_trace_digests_reproduce_across_reruns():
    backend = ProcessShardBackend(shards=2)
    first = run_cell(SMALL, 5, backend=backend)
    second = run_cell(SMALL, 5, backend=backend)
    assert first.shard_trace_digests == second.shard_trace_digests
    assert len(first.shard_trace_digests) == 2
    assert first.telemetry_digest == second.telemetry_digest
    # distinct shards record distinct event streams
    assert len(set(first.shard_trace_digests)) == 2


def test_inline_sharding_equals_process_sharding():
    inline = run_cell(SMALL, 5, backend=ProcessShardBackend(shards=2, inline=True))
    process = run_cell(SMALL, 5, backend=ProcessShardBackend(shards=2))
    assert inline.telemetry_digest == process.telemetry_digest
    assert inline.shard_trace_digests == process.shard_trace_digests
    assert inline.dispatched == process.dispatched


def test_single_shard_request_runs_in_process():
    report = run_cell(SMALL, 5, backend=ProcessShardBackend(shards=1))
    serial = run_cell(SMALL, 5)
    assert report.shards == 1
    assert report.telemetry_digest == serial.telemetry_digest
    assert report.shard_trace_digests == serial.shard_trace_digests


# ----------------------------------------------------------------------
# legacy shims
# ----------------------------------------------------------------------
def test_backend_run_shim_warns_once_and_matches_run_cell():
    """PR 9 pin: ``backend.run(spec, seed)`` warns (once) and forwards
    to the unified orchestration path — identical digests."""
    from repro.runtime import fleet as fleet_module

    fleet_module._DEPRECATION_WARNED.discard("ExecutionBackend.run")
    with pytest.warns(DeprecationWarning, match="run_cell"):
        legacy = SerialBackend().run(SMALL, 5)
    unified = run_cell(SMALL, 5)
    assert legacy.telemetry_digest == unified.telemetry_digest
    assert legacy.shard_trace_digests == unified.shard_trace_digests
    assert legacy.detected == unified.detected
    # warn-once: a second call through any backend's shim is silent
    import warnings

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        ProcessShardBackend(shards=2, inline=True).run(SMALL, 5)
    assert not [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]


def test_run_detailed_shim_warns_and_matches_run_cell_detailed():
    """PR 9 pin: ``SerialBackend.run_detailed`` still returns the
    legacy (report, fleet_report, compiled) triple."""
    from repro.campaign import run_cell_detailed
    from repro.runtime import fleet as fleet_module

    fleet_module._DEPRECATION_WARNED.discard("SerialBackend.run_detailed")
    with pytest.warns(DeprecationWarning, match="run_cell_detailed"):
        report, fleet_report, compiled = SerialBackend().run_detailed(
            SMALL, 5
        )
    cell = run_cell_detailed(SMALL, 5)
    assert report.telemetry_digest == cell.report.telemetry_digest
    assert fleet_report.trace_digest == cell.fleet_report.trace_digest
    assert compiled.spec == cell.compiled.spec


def test_run_shard_plan_shim_warns_and_matches_execute_plan():
    """PR 9 pin: module-level ``run_shard_plan`` forwards to
    ``execute_plan`` with an identical payload."""
    from repro.campaign import execute_plan, run_shard_plan
    from repro.runtime import fleet as fleet_module

    fleet_module._DEPRECATION_WARNED.discard("run_shard_plan")
    plan = build_plan(SMALL, 5)
    with pytest.warns(DeprecationWarning, match="execute_plan"):
        legacy = run_shard_plan(plan)
    fresh = execute_plan(plan)
    drop_wall = lambda payload: {  # noqa: E731 — wall-clock is not data
        key: value for key, value in payload.items()
        if key != "wall_seconds"
    }
    assert drop_wall(legacy) == drop_wall(fresh)


def test_scenario_runner_shim_matches_campaign():
    from repro.runtime import fleet as fleet_module
    from repro.scenarios import ScenarioRunner

    fleet_module._DEPRECATION_WARNED.discard("ScenarioRunner")  # warns only once
    with pytest.warns(DeprecationWarning, match="Campaign"):
        runner = ScenarioRunner()
    legacy = runner.run(SMALL, seed=5)
    unified = Campaign(SMALL).run_cell(SMALL, seed=5)
    assert legacy.fleet.trace_digest == unified.shard_trace_digests[0]
    assert legacy.fleet.dispatched == unified.dispatched
    assert sorted(legacy.fleet.faulty) == unified.faulty
    data = json.loads(legacy.to_json())
    assert data["scenario"] == "campaign-small"
    assert data["trace_digest"] == legacy.fleet.trace_digest


def test_experiment_runner_warns_deprecation_exactly_once():
    import warnings

    from repro.runtime import ExperimentRunner, MonitorFleet
    from repro.runtime import fleet as fleet_module

    fleet_module._DEPRECATION_WARNED.discard("ExperimentRunner")
    fleet = MonitorFleet(seed=1)
    fleet.add_tvs(2)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        ExperimentRunner(fleet, duration=1.0)
        ExperimentRunner(fleet, duration=1.0)
        ExperimentRunner(fleet, duration=1.0)
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, "the shim must warn exactly once per process"
    assert "Campaign" in str(deprecations[0].message)


def test_scenario_runner_warns_deprecation_exactly_once():
    import warnings

    from repro.runtime import fleet as fleet_module
    from repro.scenarios import ScenarioRunner

    fleet_module._DEPRECATION_WARNED.discard("ScenarioRunner")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        ScenarioRunner()
        ScenarioRunner(scale=0.5)
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, "the shim must warn exactly once per process"
