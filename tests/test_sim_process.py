"""Tests for generator-based processes, signals, and interrupts."""


from repro.sim import Delay, Interrupted, Kernel, Process, Signal, WaitSignal


def test_process_runs_and_finishes():
    kernel = Kernel()

    def body():
        yield Delay(1.0)
        yield Delay(2.0)
        return "done"

    process = Process(kernel, body(), name="worker")
    kernel.run()
    assert not process.alive
    assert process.result == "done"
    assert kernel.now == 3.0


def test_delays_accumulate_sequentially():
    kernel = Kernel()
    timestamps = []

    def body():
        for _ in range(3):
            yield Delay(1.5)
            timestamps.append(kernel.now)

    Process(kernel, body())
    kernel.run()
    assert timestamps == [1.5, 3.0, 4.5]


def test_signal_wakes_waiter_with_value():
    kernel = Kernel()
    signal = Signal("go")
    received = []

    def waiter():
        value = yield WaitSignal(signal)
        received.append(value)

    Process(kernel, waiter())
    kernel.schedule(2.0, lambda: signal.fire(42))
    kernel.run()
    assert received == [42]


def test_signal_wakes_all_waiters():
    kernel = Kernel()
    signal = Signal()
    woken = []

    def waiter(name):
        yield WaitSignal(signal)
        woken.append(name)

    Process(kernel, waiter("a"))
    Process(kernel, waiter("b"))
    kernel.schedule(1.0, lambda: signal.fire())
    kernel.run()
    assert sorted(woken) == ["a", "b"]
    assert signal.fire_count == 1


def test_waiting_on_finished_process_resumes_immediately():
    kernel = Kernel()
    order = []

    def quick():
        yield Delay(1.0)
        order.append("quick-done")
        return "result"

    quick_process = Process(kernel, quick())

    def joiner():
        value = yield quick_process
        order.append(f"joined:{value}")

    Process(kernel, joiner())
    kernel.run()
    assert order == ["quick-done", "joined:result"]


def test_interrupt_lands_at_wait_point():
    kernel = Kernel()
    outcome = []

    def body():
        try:
            yield Delay(100.0)
        except Interrupted as interrupt:
            outcome.append(interrupt.reason)

    process = Process(kernel, body())
    kernel.schedule(1.0, lambda: process.interrupt("killed-by-test"))
    kernel.run()
    assert outcome == ["killed-by-test"]
    assert not process.alive


def test_kill_terminates_uncooperative_process():
    kernel = Kernel()

    def stubborn():
        while True:
            try:
                yield Delay(1.0)
            except Interrupted:
                continue  # swallows interrupts

    process = Process(kernel, stubborn())
    kernel.run(until=2.0)
    process.kill("forced")
    assert not process.alive
    assert isinstance(process.exception, Interrupted)


def test_exception_in_process_recorded():
    kernel = Kernel()

    def crasher():
        yield Delay(1.0)
        raise ValueError("simulated software fault")

    process = Process(kernel, crasher())
    kernel.run()
    assert not process.alive
    assert isinstance(process.exception, ValueError)


def test_on_exit_callback_invoked():
    kernel = Kernel()
    exits = []

    def body():
        yield Delay(1.0)

    Process(kernel, body(), on_exit=lambda p: exits.append(p.name), name="observed")
    kernel.run()
    assert exits == ["observed"]


def test_interrupt_dead_process_is_noop():
    kernel = Kernel()

    def body():
        yield Delay(1.0)

    process = Process(kernel, body())
    kernel.run()
    process.interrupt("late")  # must not raise
    assert not process.alive


def test_interrupted_while_waiting_on_signal_removed_from_waiters():
    kernel = Kernel()
    signal = Signal()

    def waiter():
        yield WaitSignal(signal)

    process = Process(kernel, waiter())
    kernel.run(until=1.0)
    process.kill("gone")
    assert signal.fire() == 0  # no waiters left
