"""Tests for the benchmark runner's CI gates and shard autotuning.

``benchmarks/run_all.py`` computes its exit status from
``evaluate_report`` over the JSON report; these tests pin the gate rules
without executing any probe: any failed bench exits nonzero (not just
the sharded probe), zeroed detection rates fail, serial-vs-shard
divergence fails, and the drill must record finite per-wave TTR.
"""

import os
import sys

import pytest

BENCHMARKS = os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
if BENCHMARKS not in sys.path:
    sys.path.insert(0, BENCHMARKS)

from run_all import evaluate_report, skipped_gates  # noqa: E402

from repro.campaign import ProcessShardBackend, resolve_shards  # noqa: E402
from repro.scenarios import ScenarioSpec  # noqa: E402


def passing_report():
    return {
        "kernel_events_per_sec": 1_000_000,
        "seed_baseline": {"kernel_events_per_sec": 370_000},
        "sharded": {"digests_match": True},
        "detection": {
            "player-seek-stress": {
                "faulty": 4, "detected": 2, "detection_rate": 0.5,
                "false_alarms": 0, "recovered": 0, "ttr_waves": {},
                "digests_match": True, "detection_invariant": True,
            },
            "printer-burst": {
                "faulty": 2, "detected": 2, "detection_rate": 1.0,
                "false_alarms": 0, "recovered": 0, "ttr_waves": {},
                "digests_match": True, "detection_invariant": True,
            },
            "recovery-ladder-drill": {
                "faulty": 7, "detected": 7, "detection_rate": 1.0,
                "false_alarms": 0, "recovered": 9,
                "ttr_waves": {
                    "0": {"count": 2, "min": 9.0, "max": 12.0, "mean": 10.5},
                    "1": {"count": 3, "min": 8.0, "max": 20.0, "mean": 13.0},
                },
                "digests_match": True, "detection_invariant": True,
            },
            "overnight-soak": {
                "faulty": 3, "detected": 2, "detection_rate": 0.6667,
                "false_alarms": 0, "recovered": 0, "ttr_waves": {},
                "digests_match": True, "detection_invariant": True,
            },
        },
        "diagnosis": {
            "printer-jam-drill": {
                "episodes_ranked": 3, "rank_first": 3,
                "localization_accuracy": 1.0,
                "targeted_rebinds": 3, "full_rebinds": 0,
                "recovered": 3,
                "ttr": {
                    "targeted": {"count": 3, "min": 24.0, "max": 31.0},
                    "full": {"count": 0, "min": 0.0, "max": 0.0},
                },
                "digests_match": True, "diagnosis_invariant": True,
            },
            "player-decoder-drill": {
                "episodes_ranked": 3, "rank_first": 3,
                "localization_accuracy": 1.0,
                "targeted_rebinds": 3, "full_rebinds": 0,
                "recovered": 3,
                "ttr": {
                    "targeted": {"count": 3, "min": 20.0, "max": 31.0},
                    "full": {"count": 0, "min": 0.0, "max": 0.0},
                },
                "digests_match": True, "diagnosis_invariant": True,
            },
            "recovery-ladder-drill": {
                "episodes_ranked": 10, "rank_first": 9,
                "localization_accuracy": 0.9,
                "targeted_rebinds": 9, "full_rebinds": 1,
                "recovered": 10,
                "ttr": {
                    "targeted": {"count": 9, "min": 9.0, "max": 40.0},
                    "full": {"count": 1, "min": 14.0, "max": 14.0},
                },
                "digests_match": True, "diagnosis_invariant": True,
            },
        },
        "fuzz": {
            "seed": 7, "candidates": 8, "evaluated": 8,
            "stopped_by": "candidates", "admitted": 6, "findings": 2,
            "crash_findings": [], "coverage_keys": 40,
            "candidates_per_sec": 2.5, "deterministic": True,
        },
        "resume": {
            "scenario": "recovery-ladder-drill", "seed": 7, "shards": 3,
            "killed_shard": 1, "interrupt_observed": True,
            "shards_durable_at_interrupt": 2, "lost_shards": 0,
            "telemetry_match": True, "span_match": True,
        },
        "service": {
            "scenario": "recovery-ladder-drill", "seed": 7, "segments": 4,
            "state": "complete", "telemetry_records": 4,
            "stream_ordered": True, "telemetry_match": True,
            "span_match": True, "history_recorded": True,
        },
        "benches": {
            "bench_e14_fleet.py": {"ok": True, "seconds": 1.0},
            "bench_e16_sharded.py": {"ok": True, "seconds": 2.0},
        },
    }


def test_clean_report_passes():
    assert evaluate_report(passing_report()) == []


def test_any_failed_bench_fails_not_just_the_sharded_probe():
    report = passing_report()
    report["benches"]["bench_e14_fleet.py"]["ok"] = False
    failures = evaluate_report(report)
    assert any("bench_e14_fleet.py" in failure for failure in failures)


def test_zero_detection_rate_fails():
    report = passing_report()
    report["detection"]["printer-burst"]["detected"] = 0
    report["detection"]["printer-burst"]["detection_rate"] = 0.0
    failures = evaluate_report(report)
    assert any("printer-burst" in f and "zero" in f for f in failures)


def test_serial_vs_sharded_divergence_fails():
    report = passing_report()
    report["detection"]["player-seek-stress"]["detection_invariant"] = False
    assert any("diverged" in f for f in evaluate_report(report))
    report = passing_report()
    report["detection"]["player-seek-stress"]["digests_match"] = False
    assert any("digests" in f for f in evaluate_report(report))
    report = passing_report()
    report["sharded"]["digests_match"] = False
    assert any("shard determinism" in f for f in evaluate_report(report))


def test_drill_must_record_finite_per_wave_ttr():
    report = passing_report()
    report["detection"]["recovery-ladder-drill"]["recovered"] = 0
    report["detection"]["recovery-ladder-drill"]["ttr_waves"] = {}
    failures = evaluate_report(report)
    assert any("no completed recoveries" in f for f in failures)
    assert any("no per-wave" in f for f in failures)

    report = passing_report()
    report["detection"]["recovery-ladder-drill"]["ttr_waves"]["1"]["mean"] = float("inf")
    assert any("not finite" in f for f in evaluate_report(report))


def test_false_alarms_fail_the_gate():
    report = passing_report()
    report["detection"]["player-seek-stress"]["false_alarms"] = 2
    assert any("false alarms" in f for f in evaluate_report(report))


def test_kernel_regression_fails():
    report = passing_report()
    report["kernel_events_per_sec"] = 100
    assert any("regressed" in f for f in evaluate_report(report))


# ----------------------------------------------------------------------
# the perf floor gate (PR 6)
# ----------------------------------------------------------------------
def floored_report(mode="full", cpu_count=4):
    report = passing_report()
    report["mode"] = mode
    report["sharded"]["cpu_count"] = cpu_count
    report["perf_floor"] = {
        "fleet_events_per_sec": 120_000,
        "scenarios_events_per_sec": 130_000,
        "max_regression": 0.30,
    }
    report["fleet"] = {"events_per_sec": 120_000}
    report["scenarios"] = {"events_per_sec": 130_000}
    return report


def test_perf_floor_passes_at_and_above_the_recorded_numbers():
    assert evaluate_report(floored_report()) == []
    report = floored_report()
    report["fleet"]["events_per_sec"] = 95_000  # -21%: inside the margin
    assert evaluate_report(report) == []


def test_perf_floor_fails_on_injected_2x_slowdown():
    report = floored_report()
    report["fleet"]["events_per_sec"] = 60_000  # half the recorded floor
    failures = evaluate_report(report)
    assert any("fleet" in f and "perf floor" in f for f in failures)

    report = floored_report()
    report["scenarios"]["events_per_sec"] = 65_000
    failures = evaluate_report(report)
    assert any("scenarios" in f and "perf floor" in f for f in failures)


def test_perf_floor_skipped_in_quick_mode_on_one_cpu_host():
    report = floored_report(mode="quick", cpu_count=1)
    report["fleet"]["events_per_sec"] = 60_000
    assert evaluate_report(report) == []
    # ... but quick mode on a multi-core host still enforces it,
    report = floored_report(mode="quick", cpu_count=4)
    report["fleet"]["events_per_sec"] = 60_000
    assert evaluate_report(report) != []
    # ... and a full-mode run enforces it even on one CPU.
    report = floored_report(mode="full", cpu_count=1)
    report["fleet"]["events_per_sec"] = 60_000
    assert evaluate_report(report) != []


def test_reports_without_a_recorded_floor_are_not_gated():
    assert evaluate_report(passing_report()) == []


# ----------------------------------------------------------------------
# the diagnosis gate (PR 5)
# ----------------------------------------------------------------------
def test_zero_localization_accuracy_fails():
    report = passing_report()
    cell = report["diagnosis"]["player-decoder-drill"]
    cell["rank_first"] = 0
    cell["localization_accuracy"] = 0.0
    failures = evaluate_report(report)
    assert any("player-decoder-drill" in f and "accuracy" in f for f in failures)


def test_missing_localization_episodes_fail():
    report = passing_report()
    cell = report["diagnosis"]["recovery-ladder-drill"]
    cell["episodes_ranked"] = 0
    failures = evaluate_report(report)
    assert any("no localization episodes" in f for f in failures)


def test_diagnosis_divergence_fails():
    report = passing_report()
    report["diagnosis"]["player-decoder-drill"]["diagnosis_invariant"] = False
    assert any(
        "diagnosis stats diverged" in f for f in evaluate_report(report)
    )
    report = passing_report()
    report["diagnosis"]["player-decoder-drill"]["digests_match"] = False
    assert any("digests diverged" in f for f in evaluate_report(report))


def test_diagnosis_ttr_must_be_finite_and_positive():
    report = passing_report()
    cell = report["diagnosis"]["recovery-ladder-drill"]
    cell["ttr"]["targeted"]["max"] = float("inf")
    assert any("not finite" in f for f in evaluate_report(report))

    report = passing_report()
    cell = report["diagnosis"]["recovery-ladder-drill"]
    cell["ttr"]["full"]["min"] = 0.0  # count > 0 but zero TTR: bogus
    assert any("not finite" in f for f in evaluate_report(report))


def test_diagnosis_requires_completed_recoveries():
    report = passing_report()
    report["diagnosis"]["player-decoder-drill"]["recovered"] = 0
    assert any(
        "player-decoder-drill" in f and "no completed recoveries" in f
        for f in evaluate_report(report)
    )


def test_overnight_soak_zero_detection_fails():
    report = passing_report()
    report["detection"]["overnight-soak"]["detected"] = 0
    report["detection"]["overnight-soak"]["detection_rate"] = 0.0
    failures = evaluate_report(report)
    assert any("overnight-soak" in f and "zero" in f for f in failures)


def test_dropped_probe_scenarios_fail_not_pass():
    """A drill silently missing from a probe must read as a failure —
    an empty loop over absent cells must not look like a clean gate."""
    report = passing_report()
    del report["diagnosis"]["printer-jam-drill"]
    failures = evaluate_report(report)
    assert any("printer-jam-drill" in f and "missing" in f for f in failures)

    report = passing_report()
    report["diagnosis"] = {}
    assert len([f for f in evaluate_report(report) if "missing" in f]) == 3

    report = passing_report()
    del report["detection"]["overnight-soak"]
    failures = evaluate_report(report)
    assert any("overnight-soak" in f and "missing" in f for f in failures)


# ----------------------------------------------------------------------
# the fuzz gate (PR 8)
# ----------------------------------------------------------------------
def test_missing_fuzz_probe_fails():
    report = passing_report()
    del report["fuzz"]
    assert any("fuzz probe missing" in f for f in evaluate_report(report))


def test_fuzz_nondeterminism_fails():
    report = passing_report()
    report["fuzz"]["deterministic"] = False
    assert any(
        "fuzz determinism gate" in f for f in evaluate_report(report)
    )


def test_fuzz_crash_findings_fail():
    report = passing_report()
    report["fuzz"]["crash_findings"] = [
        {"detail": "ValueError: boom", "spec_hash": "abc"},
    ]
    failures = evaluate_report(report)
    assert any("crash verdict" in f and "boom" in f for f in failures)


def test_fuzz_zero_candidates_fails():
    report = passing_report()
    report["fuzz"]["evaluated"] = 0
    assert any("no candidates" in f for f in evaluate_report(report))


def test_fuzz_throughput_joins_the_perf_floor():
    report = floored_report()
    report["perf_floor"]["fuzz_candidates_per_sec"] = 2.0
    report["fuzz"]["candidates_per_sec"] = 1.8  # -10%: inside the margin
    assert evaluate_report(report) == []
    report["fuzz"]["candidates_per_sec"] = 0.9  # -55%: below the floor
    failures = evaluate_report(report)
    assert any("fuzz" in f and "perf floor" in f for f in failures)
    # quick mode runs a smaller candidate budget than the floor was
    # recorded at, so the fuzz floor (and only it) is not applied
    report["mode"] = "quick"
    report["sharded"]["cpu_count"] = 4
    assert not any("fuzz" in f for f in evaluate_report(report))


# ----------------------------------------------------------------------
# the checkpoint/resume gate (PR 9)
# ----------------------------------------------------------------------
def test_missing_resume_probe_fails():
    report = passing_report()
    del report["resume"]
    assert any("resume probe missing" in f for f in evaluate_report(report))


def test_resume_telemetry_divergence_fails():
    report = passing_report()
    report["resume"]["telemetry_match"] = False
    failures = evaluate_report(report)
    assert any(
        "telemetry digest diverged" in f and "resume" in f.lower()
        for f in failures
    )


def test_resume_span_divergence_fails():
    report = passing_report()
    report["resume"]["span_match"] = False
    failures = evaluate_report(report)
    assert any("span digest diverged" in f for f in failures)


def test_lost_shards_fail_the_resume_gate():
    report = passing_report()
    report["resume"]["lost_shards"] = 1
    failures = evaluate_report(report)
    assert any("unexecuted" in f for f in failures)


def test_resume_probe_must_actually_interrupt():
    # A probe whose injected kill never fired (or that checkpointed
    # nothing before dying) proved nothing and must read as a failure.
    report = passing_report()
    report["resume"]["interrupt_observed"] = False
    assert any("interruption" in f for f in evaluate_report(report))
    report = passing_report()
    report["resume"]["shards_durable_at_interrupt"] = 0
    assert any("checkpointed no shards" in f for f in evaluate_report(report))


# ----------------------------------------------------------------------
# the campaign-service gate (PR 10)
# ----------------------------------------------------------------------
def test_missing_service_probe_fails():
    report = passing_report()
    del report["service"]
    assert any("service probe missing" in f for f in evaluate_report(report))


def test_service_digest_divergence_fails():
    report = passing_report()
    report["service"]["telemetry_match"] = False
    failures = evaluate_report(report)
    assert any(
        "HTTP" in f and "telemetry digest" in f for f in failures
    )
    report = passing_report()
    report["service"]["span_match"] = False
    assert any(
        "HTTP" in f and "span digest" in f for f in evaluate_report(report)
    )


def test_service_job_must_complete_with_live_telemetry():
    report = passing_report()
    report["service"]["state"] = "failed"
    assert any("did not complete" in f for f in evaluate_report(report))
    report = passing_report()
    report["service"]["telemetry_records"] = 0
    assert any(
        "no live telemetry" in f for f in evaluate_report(report)
    )
    report = passing_report()
    report["service"]["stream_ordered"] = False
    assert any("ordered" in f for f in evaluate_report(report))


def test_service_must_append_to_history():
    report = passing_report()
    report["service"]["history_recorded"] = False
    assert any(
        "run-history store" in f for f in evaluate_report(report)
    )


# ----------------------------------------------------------------------
# skipped gates are visible, not silent (PR 7)
# ----------------------------------------------------------------------
def test_no_gates_skipped_on_a_capable_host():
    assert skipped_gates(floored_report(mode="full", cpu_count=4)) == []
    assert skipped_gates(floored_report(mode="quick", cpu_count=4)) == []


def test_perf_floor_skip_is_reported_with_its_reason():
    report = floored_report(mode="quick", cpu_count=1)
    skipped = skipped_gates(report)
    gates = [entry["gate"] for entry in skipped]
    assert "perf-floor" in gates
    entry = next(e for e in skipped if e["gate"] == "perf-floor")
    assert "quick mode" in entry["reason"]
    # the skip list and the gate rules agree: the floor is not applied
    report["fleet"]["events_per_sec"] = 1
    assert not any("perf floor" in f for f in evaluate_report(report))


def test_bench_e16_speedup_skip_tracks_cpu_vs_shards():
    report = floored_report(cpu_count=1)
    report["sharded"]["shards"] = 2
    skipped = skipped_gates(report)
    entry = next(e for e in skipped if e["gate"] == "bench_e16-speedup")
    assert "1 CPUs" in entry["reason"]
    # enough cores: the speedup gate applies, nothing skipped
    report = floored_report(cpu_count=8)
    report["sharded"]["shards"] = 4
    assert skipped_gates(report) == []


# ----------------------------------------------------------------------
# trend rules ride through evaluate_report (PR 7)
# ----------------------------------------------------------------------
def trended_report(fleet_eps=150_000):
    report = floored_report()
    report["fleet"]["events_per_sec"] = fleet_eps
    return report


def test_trend_rules_engage_only_with_priors():
    current = trended_report(fleet_eps=95_000)  # above the absolute floor
    assert evaluate_report(current) == []
    assert evaluate_report(current, priors=[]) == []
    priors = [trended_report(fleet_eps=200_000) for _ in range(3)]
    failures = evaluate_report(current, priors=priors)
    assert any("trend perf floor" in f for f in failures)


def test_detection_drift_fails_through_evaluate_report():
    current = trended_report()
    current["detection"]["recovery-ladder-drill"]["detection_rate"] = 0.5
    priors = [trended_report() for _ in range(3)]
    failures = evaluate_report(current, priors=priors)
    assert any("detection drift" in f for f in failures)


# ----------------------------------------------------------------------
# span forests survive sharding (PR 7: the causal-trace invariant)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name", ["recovery-ladder-drill", "targeted-rebind-storm"]
)
def test_span_forest_digest_is_shard_invariant(name):
    from dataclasses import replace

    from repro.campaign import run_cell
    from repro.scenarios import get_scenario

    spec = replace(get_scenario(name), record_spans=True)
    serial = run_cell(spec, 7)
    sharded = run_cell(spec, 7, backend=ProcessShardBackend(shards=2, inline=True))
    assert serial.spans["completed"] > 0
    assert sharded.span_digest == serial.span_digest
    assert sharded.spans["completed"] == serial.spans["completed"]
    assert sharded.spans["digests"] == serial.spans["digests"]
    # the drills fit the reservoir, so even the sample lists agree
    assert sharded.spans["samples"] == serial.spans["samples"]
    # and the spans block is as reproducible as the telemetry digest
    again = run_cell(spec, 7)
    assert again.spans == serial.spans


# ----------------------------------------------------------------------
# shard-count autotuning (ROADMAP follow-up)
# ----------------------------------------------------------------------
def test_resolve_shards_scales_with_members_and_caps_at_cpus():
    assert resolve_shards(10, cpu_count=8) == 1    # too small to split
    assert resolve_shards(100, cpu_count=8) == 4   # 25 members per shard
    assert resolve_shards(1000, cpu_count=8) == 8  # capped by the host
    assert resolve_shards(1000, cpu_count=1) == 1  # 1-CPU container
    assert resolve_shards(0, cpu_count=4) == 1


def test_backend_autotunes_when_shards_is_none():
    backend = ProcessShardBackend(shards=None)
    assert backend.name == "process-shard[auto]"
    spec = ScenarioSpec("auto", "d", duration=10.0, tvs=120)
    expected = resolve_shards(120)
    assert backend.resolve(spec) == expected
    with pytest.raises(ValueError, match="autotune"):
        ProcessShardBackend(shards=0)


def test_autotuned_run_matches_serial_digest():
    from repro.campaign import run_cell
    from repro.scenarios import UserProfile

    spec = ScenarioSpec(
        "auto-cell", "d", duration=20.0, tvs=6,
        profiles=(UserProfile("p", mean_gap=3.0, keys=("power", "vol_up")),),
    )
    auto = run_cell(spec, 5, backend=ProcessShardBackend(shards=None, inline=True))
    serial = run_cell(spec, 5)
    assert auto.telemetry_digest == serial.telemetry_digest
    assert auto.shards == resolve_shards(spec.members)
