"""Tests for probes, hardware monitors, and the deadlock detector."""


from repro.observation import (
    CallStackMonitor,
    DeadlockDetector,
    InputProbe,
    LoadProbe,
    MemoryArbiterWatch,
    ModeProbe,
    OutputProbe,
    RangeChecker,
)
from repro.platform import MemoryArbiter
from repro.sim import Delay, Kernel, Process, Resource, Trace
from repro.tv import TVSet


class TestProbes:
    def test_input_probe_records_keys(self):
        tv = TVSet(seed=1)
        trace = Trace(clock=lambda: tv.kernel.now)
        probe = InputProbe(trace)
        probe.attach(tv.remote)
        tv.press("power")
        tv.press("vol_up")
        keys = [r.value["key"] for r in trace.of_kind("key")]
        assert keys == ["power", "vol_up"]

    def test_output_probe_records_observables(self):
        tv = TVSet(seed=1)
        trace = Trace(clock=lambda: tv.kernel.now)
        probe = OutputProbe(trace)
        probe.attach(tv)
        tv.press("power")
        assert trace.count("out:screen") >= 1
        assert trace.count("out:sound") >= 1

    def test_mode_probe_tracks_changes(self):
        tv = TVSet(seed=1)
        trace = Trace(clock=lambda: tv.kernel.now)
        probe = ModeProbe(trace)
        probe.attach(tv.configuration)
        tv.press("power")
        tv.press("mute")
        assert probe.current["audio"] == "mute"
        assert trace.count("mode") >= 1

    def test_mode_probe_sees_nested_teletext_parts(self):
        tv = TVSet(seed=1)
        probe = ModeProbe(Trace())
        probe.attach(tv.configuration)
        tv.press("power")
        tv.press("ttx")
        assert probe.current[tv.teletext.acquirer.name].startswith("acquiring")
        assert probe.current[tv.teletext.renderer.name].startswith("visible")

    def test_load_probe_samples_periodically(self):
        tv = TVSet(seed=1)
        trace = Trace(clock=lambda: tv.kernel.now)
        probe = LoadProbe(trace, tv.kernel, tv.soc, interval=2.0)
        probe.start()
        tv.run(11.0)
        assert probe.samples == 5
        probe.stop()
        tv.run(10.0)
        assert probe.samples == 5


class TestRangeChecker:
    def test_no_violations_nominal(self):
        tv = TVSet(seed=1)
        checker = RangeChecker(tv.configuration, clock=lambda: tv.kernel.now)
        checker.install()
        tv.press("power")
        tv.press("vol_up")
        assert checker.violations == []
        assert checker.checked_calls > 0

    def test_detects_out_of_range_argument(self):
        tv = TVSet(seed=1)
        checker = RangeChecker(tv.configuration, clock=lambda: tv.kernel.now)
        checker.install()
        # A wild internal call bypassing the control logic: the component
        # clamps and carries on, but the range checker sees the raw value.
        tv.audio.handle("audio", "set_volume", level=1000)
        assert len(checker.violations) == 1
        violation = checker.violations[0]
        assert violation.component == "audio"
        assert "1000" in violation.detail

    def test_uninstall_stops_checking(self):
        tv = TVSet(seed=1)
        checker = RangeChecker(tv.configuration, clock=lambda: tv.kernel.now)
        checker.install()
        checker.uninstall()
        before = checker.checked_calls
        tv.press("power")
        assert checker.checked_calls == before


class TestCallStackMonitor:
    def test_depth_watermark(self):
        tv = TVSet(seed=1)
        monitor = CallStackMonitor(tv.configuration)
        monitor.install()
        tv.press("power")
        assert monitor.max_observed_depth >= 2  # control -> video/audio
        assert monitor.current_depth() == 0  # everything unwound

    def test_call_log_grows(self):
        tv = TVSet(seed=1)
        monitor = CallStackMonitor(tv.configuration)
        monitor.install()
        tv.press("power")
        tv.press("vol_up")
        assert monitor.call_log_size > 2


class TestMemoryArbiterWatch:
    def test_alarm_on_latency_violation(self):
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=10.0)
        watch = MemoryArbiterWatch(kernel, arbiter, latency_bound=0.5, interval=5.0)
        watch.start()

        def client():
            for _ in range(20):
                yield from arbiter.access("greedy", 50)  # 5.0 each

        Process(kernel, client())
        kernel.run(until=60.0)
        assert watch.alarms
        assert watch.alarms[0].client == "greedy"

    def test_no_alarm_when_fast(self):
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=1000.0)
        watch = MemoryArbiterWatch(kernel, arbiter, latency_bound=0.5, interval=5.0)
        watch.start()

        def client():
            for _ in range(10):
                yield from arbiter.access("polite", 10)
                yield Delay(1.0)

        Process(kernel, client())
        kernel.run(until=30.0)
        assert watch.alarms == []


class TestDeadlockDetector:
    def test_detects_real_deadlock(self):
        kernel = Kernel()
        r1 = Resource(kernel, 1, "r1")
        r2 = Resource(kernel, 1, "r2")

        def proc_a():
            yield r1.acquire()
            yield Delay(1.0)
            yield r2.acquire()  # blocks forever
            r2.release()
            r1.release()

        def proc_b():
            yield r2.acquire()
            yield Delay(1.0)
            yield r1.acquire()  # blocks forever
            r1.release()
            r2.release()

        Process(kernel, proc_a())
        Process(kernel, proc_b())
        detector = DeadlockDetector(kernel, interval=2.0, stall_intervals=3)
        detector.watch_resource(r1)
        detector.watch_resource(r2)
        detector.start()
        kernel.run(until=60.0)
        assert detector.alarms
        assert detector.alarms[0].waiting == 2

    def test_no_alarm_on_progress(self):
        kernel = Kernel()
        resource = Resource(kernel, 1, "shared")

        def worker():
            for _ in range(30):
                yield resource.acquire()
                yield Delay(1.0)
                resource.release()

        Process(kernel, worker())
        Process(kernel, worker())
        detector = DeadlockDetector(kernel, interval=2.0, stall_intervals=3)
        detector.watch_resource(resource)
        detector.start()
        kernel.run(until=50.0)
        assert detector.alarms == []

    def test_no_alarm_when_idle(self):
        kernel = Kernel()
        resource = Resource(kernel, 1, "idle")
        detector = DeadlockDetector(kernel, interval=2.0)
        detector.watch_resource(resource)
        detector.start()
        kernel.run(until=30.0)
        assert detector.alarms == []
