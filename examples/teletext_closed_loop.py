"""The paper's flagship scenario: teletext sync loss, closed loop.

A channel-change notification is lost between the TV's control logic and
the teletext acquirer (the fault of Sect. 4.3, [17]).  The user sees an
endless 'searching' page; the system itself is unaware.

This example wires the *complete* Fig. 1 loop:

* the Fig. 2 awareness monitor watches the user observables;
* a mode-consistency checker watches the internal component modes;
* spectrum-based diagnosis localizes the fault in the 60 000-block build;
* a recovery policy repairs the synchronization, verified by the loop.

Run:  python examples/teletext_closed_loop.py
"""

from repro.awareness import ModeConsistencyChecker, make_tv_monitor, ttx_sync_rule
from repro.core import AwarenessLoop, LadderStep, RecoveryPolicy
from repro.diagnosis import (
    TELETEXT_SCENARIO_27,
    ScenarioRunner,
    SpectrumDiagnoser,
    evaluate_ranking,
)
from repro.recovery import RecoveryManager
from repro.tv import FaultInjector, TVSet


def closed_loop_demo() -> None:
    print("== closed-loop recovery ==")
    tv = TVSet(seed=21)
    monitor = make_tv_monitor(tv)
    checker = ModeConsistencyChecker(
        tv.kernel,
        lambda: {
            tv.teletext.acquirer.name: tv.teletext.acquirer.mode,
            tv.teletext.renderer.name: tv.teletext.renderer.mode,
        },
        interval=1.0,
    )
    checker.add_rule(
        ttx_sync_rule(tv.teletext.acquirer.name, tv.teletext.renderer.name)
    )
    checker.start()

    injector = FaultInjector(tv)
    injector.inject("drop_ttx_notify", activate_after_presses=3)

    manager = RecoveryManager(tv.kernel)
    manager.register_repair("ttx_resync", lambda: injector.clear("drop_ttx_notify"))
    policy = RecoveryPolicy()
    for observable in ("ttx-*", "screen", "sound"):
        policy.add_ladder(observable, [LadderStep("repair", "ttx_resync", 0.0)])
    loop = AwarenessLoop(tv.kernel, policy, manager, settle_time=8.0)
    loop.attach(monitor.controller)
    loop.attach(checker)
    loop.post_recovery_hooks.append(
        lambda incident: (monitor.comparator.reset(), checker.reset())
    )

    for key in ["power", "ttx", "ttx", "ch_up", "ttx"]:
        tv.press(key)
        tv.run(5.0)
        descriptor = tv.screen_descriptor()
        print(f"  t={tv.kernel.now:6.1f}  pressed {key:6s} -> "
              f"overlay={descriptor['overlay']:4s} ttx={descriptor.get('ttx_status', '-')}")
    tv.run(30.0)

    for incident in loop.incidents:
        print(
            f"  incident: {incident.report.detector} flagged "
            f"{incident.report.observable!r} at t={incident.report.time:.1f}; "
            f"action={incident.action.kind}->{incident.action.target}; "
            f"recovered={incident.recovered}"
        )
    print(f"  final teletext status: {tv.screen_descriptor().get('ttx_status')}")


def diagnosis_demo() -> None:
    print("\n== spectrum-based diagnosis (Sect. 4.4) ==")
    tv = TVSet(seed=11)
    FaultInjector(tv).inject("ttx_stale_render", activate_after_presses=10)
    runner = ScenarioRunner(tv)
    result = runner.run(TELETEXT_SCENARIO_27)
    print(f"  scenario: {len(result.keys)} key presses, "
          f"{result.error_steps} flagged erroneous")
    print(f"  blocks: {result.executed_blocks} of {result.total_blocks} executed "
          f"(paper: 13 796 of 60 000)")
    ranking = SpectrumDiagnoser("ochiai").ranking(result.collector)
    quality = evaluate_ranking(ranking, runner.build.fault_blocks("ttx_stale_render"))
    print(f"  faulty block rank: {quality.best_rank} (paper: 1); "
          f"wasted effort: {quality.wasted_effort:.4f}")


if __name__ == "__main__":
    closed_loop_demo()
    diagnosis_demo()
