"""Fleet campaign through the unified API: one plan, two backends.

The paper's framework (Fig. 1/2) watches a single TV.  This example runs
the production-scale version end to end: a declarative
:class:`~repro.scenarios.ScenarioSpec` for 120 monitored devices (110
TVs + 10 media players) with a seeded volume-fault wave, executed twice
through :class:`~repro.campaign.Campaign` —

* once on :class:`~repro.campaign.SerialBackend` — one kernel, one
  fleet, one telemetry hub (PR 1's hand-coded campaign, now one call);
* once on :class:`~repro.campaign.ProcessShardBackend` — the device mix
  partitioned into 4 per-shard plans, one kernel + fleet per worker
  process, telemetry merged back into one report.

The point of the demo: the two reports carry the *identical* merged
counter/tally telemetry digest.  Per-member behaviour is keyed to
``(campaign seed, suo_id)``, so how the fleet is placed across kernels
is invisible in what it does — which is what makes sharding safe to
reach for when one kernel stops being enough.

(Hand-built fleets remain available underneath: ``repro.runtime.
MonitorFleet`` is unchanged, and the deprecated ``ExperimentRunner``
still drives custom mixes the declarative layer cannot express.)

Run:  python examples/fleet_campaign.py
"""

from repro.campaign import Campaign, ProcessShardBackend
from repro.scenarios import FaultPhase, ScenarioSpec, UserProfile

CAMPAIGN_SPEC = ScenarioSpec(
    name="fleet-campaign",
    description="110 TVs + 10 players, volume fault on a seeded quarter",
    duration=120.0,
    tvs=110,
    players=10,
    profiles=(
        UserProfile("active", mean_gap=3.0,
                    keys=("power", "vol_up", "vol_down", "ch_up", "ch_down",
                          "mute", "ttx", "menu", "epg", "back")),
    ),
    phases=(FaultPhase("volume_overshoot", at=40.0, fraction=0.25),),
)


def main() -> None:
    campaign = Campaign(CAMPAIGN_SPEC)

    # 1. the serial path: one kernel runs the whole fleet ---------------
    serial = campaign.run_cell(CAMPAIGN_SPEC, seed=2026)
    print(f"serial : {serial.members} SUOs, {serial.dispatched:,} events in "
          f"{serial.wall_seconds:.2f}s wall "
          f"({serial.events_per_sec:,.0f} events/sec)")
    print(f"         afflicted {len(serial.faulty)}, detected "
          f"{len(serial.detected)} ({serial.detection_rate:.0%}), "
          f"false alarms: {len(serial.false_alarms)}")

    # 2. the sharded path: same plan, 4 worker processes ----------------
    sharded = campaign.run_cell(
        CAMPAIGN_SPEC, seed=2026, backend=ProcessShardBackend(shards=4)
    )
    print(f"sharded: {sharded.members} SUOs across {sharded.shards} worker "
          f"processes in {sharded.wall_seconds:.2f}s wall "
          f"(shard walls {[f'{w:.2f}' for w in sharded.shard_wall_seconds]})")
    print(f"         per-shard trace digests: "
          f"{[d[:10] for d in sharded.shard_trace_digests]}")

    # 3. the witness: the partition is invisible in the telemetry -------
    print(f"serial  telemetry digest: {serial.telemetry_digest[:24]}…")
    print(f"sharded telemetry digest: {sharded.telemetry_digest[:24]}…")
    assert sharded.telemetry_digest == serial.telemetry_digest
    assert sharded.faulty == serial.faulty
    assert sharded.detected == serial.detected
    assert serial.false_alarms == [] and sharded.false_alarms == []
    print("identical merged counters, tallies, and detections — one "
          "campaign API, pluggable execution.")


if __name__ == "__main__":
    main()
