"""Fleet campaign: 120 monitored devices on one kernel, one event bus.

The paper's framework (Fig. 1/2) watches a single TV.  This example runs
the production-scale version: a :class:`~repro.runtime.MonitorFleet` of
TVs and media players, each with its own awareness monitor and its own
deterministic random streams, multiplexed on one simulation kernel and
one runtime :class:`~repro.runtime.EventBus`.  A fault-injection campaign
afflicts a seeded subset of devices; the per-device monitors catch the
divergences with zero false alarms, and the whole run is reproducible —
the merged fleet trace hashes to the same digest every time.

Run:  python examples/fleet_campaign.py
"""

from repro.runtime import ExperimentRunner, MonitorFleet


def main() -> None:
    # 1. the fleet: 110 TVs + 10 media players, one kernel ------------
    fleet = MonitorFleet(seed=2026)
    fleet.add_tvs(110)
    for _ in range(10):
        fleet.add_player()
    print(f"fleet: {len(fleet)} SUOs on one kernel")

    # 2. the campaign: random users everywhere, volume-overshoot fault
    #    injected into a seeded 25% of the TVs at t=40 -----------------
    runner = ExperimentRunner(
        fleet,
        duration=120.0,
        mean_gap=3.0,
        fault="volume_overshoot",
        fault_fraction=0.25,
        keys=["power", "vol_up", "vol_down", "ch_up", "ch_down",
              "mute", "ttx", "menu", "epg", "back"],
    )
    report = runner.run()

    # 3. what happened -------------------------------------------------
    print(f"simulated {report.duration:.0f}s, dispatched {report.dispatched:,} "
          f"events at {report.events_per_sec:,.0f} events/sec wall")
    print(f"afflicted {len(report.faulty)} devices; monitors caught "
          f"{len(report.detected)} ({report.detection_rate:.0%}), "
          f"false alarms: {len(report.false_alarms)}")
    for suo_id in report.detected[:5]:
        member = fleet.members[suo_id]
        first = member.monitor.errors[0]
        print(f"  {suo_id}: first divergence at t={first.time:.2f} "
              f"on {first.observable!r} "
              f"(expected {first.expected!r}, saw {first.actual!r})")

    # 4. determinism: same seed, byte-identical fleet trace ------------
    print(f"fleet trace: {report.trace_records} records, "
          f"digest {report.trace_digest[:16]}…")
    assert report.false_alarms == [], "fault-free devices must stay silent"
    assert report.detected, "the campaign must catch someone"
    print("one kernel, one bus, a whole fleet under observation.")


if __name__ == "__main__":
    main()
