"""Scenario × seed sweep with streaming telemetry.

PR 1 ran one hand-coded fleet campaign.  This example runs the
declarative version: a grid of named scenarios from the library swept
over several seeds by :class:`~repro.scenarios.ScenarioRunner`, each cell
reporting through the bounded-memory telemetry layer.  The telemetry
digest column is the reproducibility witness — rerun this script and the
digests come out identical, because every stochastic choice in a
scenario draws from streams derived from ``(seed, role)`` names.

Run:  python examples/scenario_sweep.py
"""

from repro.scenarios import ScenarioRunner, format_table, get_scenario, scenario_names


def main() -> None:
    # 1. the grid: four contrasting workload classes, three seeds each --
    grid = ["zapping-storm", "teletext-heavy", "mixed-fleet-cascade",
            "recovery-ladder-drill"]
    seeds = [1, 2, 3]
    print(f"library: {len(scenario_names())} named scenarios; sweeping "
          f"{len(grid)} of them x {len(seeds)} seeds\n")

    runner = ScenarioRunner()
    reports = runner.sweep(grid, seeds=seeds)

    # 2. the summary table: one row per (scenario, seed) cell -----------
    print(format_table(reports))

    # 3. what the telemetry layer saw for one interesting cell ----------
    drill = next(r for r in reports
                 if r.scenario == "recovery-ladder-drill" and r.seed == 1)
    summary = drill.telemetry
    print(f"\nrecovery-ladder-drill seed 1, through the telemetry hub:")
    print(f"  {summary['suos']} SUOs, {summary['events_total']} suo events "
          f"({summary['events_by_kind']})")
    latency = summary["latency"]
    print(f"  monitor channel latency: p50={latency['p50'] * 1000:.1f}ms "
          f"p99={latency['p99'] * 1000:.1f}ms over {latency['count']} deliveries "
          f"({latency['retained']} retained in the reservoir)")
    print(f"  errors by SUO: {summary['errors_by_suo']}")
    spec = get_scenario("recovery-ladder-drill")
    print(f"  drill schedule: {len(spec.phases)} waves, "
          f"fractions {[phase.fraction for phase in spec.phases]}")

    # 4. determinism: the same cell reruns to the same bytes ------------
    again = runner.run("recovery-ladder-drill", seed=1)
    assert again.telemetry_digest == drill.telemetry_digest
    assert again.fleet.trace_digest == drill.fleet.trace_digest
    print("\nrerun of that cell reproduced identical telemetry and trace "
          "digests — the sweep is replayable byte for byte.")


if __name__ == "__main__":
    main()
