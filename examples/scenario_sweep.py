"""Scenario × seed sweep through the unified campaign API.

PR 2 swept this grid with ``ScenarioRunner``; PR 3 unified the campaign
surface, so the same sweep is now one :class:`~repro.campaign.Campaign`
— and because execution backends are pluggable, the identical plan can
run serially or sharded across worker processes without changing a line
of the sweep.  The telemetry digest column is the reproducibility
witness: it is backend-invariant *and* rerun-stable, because every
stochastic choice in a scenario draws from streams derived from
``(campaign seed, role)`` names.

Run:  python examples/scenario_sweep.py          # aligned text table
      python examples/scenario_sweep.py --json   # machine-readable cells
"""

import argparse
import json

from repro.campaign import Campaign, ProcessShardBackend, format_campaign_table
from repro.scenarios import get_scenario, scenario_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON array of campaign-report dicts instead of text",
    )
    args = parser.parse_args()

    # 1. the grid: four contrasting workload classes, three seeds each --
    grid = ["zapping-storm", "teletext-heavy", "mixed-fleet-cascade",
            "recovery-ladder-drill"]
    seeds = [1, 2, 3]
    campaign = Campaign(grid, seeds=seeds)
    reports = campaign.run()

    if args.json:
        print(json.dumps([report.as_dict() for report in reports], indent=2,
                         sort_keys=True))
        return

    print(f"library: {len(scenario_names())} named scenarios; sweeping "
          f"{len(grid)} of them x {len(seeds)} seeds\n")

    # 2. the summary table: one row per (scenario, seed) cell -----------
    print(format_campaign_table(reports))

    # 3. what the telemetry layer saw for one interesting cell ----------
    drill = next(r for r in reports
                 if r.scenario == "recovery-ladder-drill" and r.seed == 1)
    summary = drill.telemetry_summary
    print(f"\nrecovery-ladder-drill seed 1, through the telemetry hub:")
    print(f"  {summary['suos']} SUOs, {summary['events_total']} suo events "
          f"({summary['events_by_kind']})")
    latency = summary["latency"]
    print(f"  monitor channel latency: p50={latency['p50'] * 1000:.1f}ms "
          f"p99={latency['p99'] * 1000:.1f}ms over {latency['count']} deliveries "
          f"({latency['retained']} retained in the reservoir)")
    print(f"  errors by SUO: {summary['errors_by_suo']}")
    spec = get_scenario("recovery-ladder-drill")
    print(f"  drill schedule: {len(spec.phases)} waves, "
          f"fractions {[phase.fraction for phase in spec.phases]}")

    # 4. determinism: the same cell re-executes to the same digest ------
    #    even on a different backend (2 worker processes).
    again = campaign.run_cell("recovery-ladder-drill", seed=1,
                              backend=ProcessShardBackend(shards=2))
    assert again.telemetry_digest == drill.telemetry_digest
    print("\nrerun of that cell on a 2-shard process backend reproduced the "
          "identical merged telemetry digest — the sweep is replayable, "
          "and the partition is invisible.")


if __name__ == "__main__":
    main()
