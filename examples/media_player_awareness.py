"""Awareness for a media player: the Sect. 5 MPlayer experiments.

The paper's second SUO: an open-source media player monitored for both
*correctness* (a corrupt packet wedges the decoder; the control state
diverges from the model) and *performance* (a decoder slowdown silently
halves throughput).

Run:  python examples/media_player_awareness.py
"""

from repro.awareness import make_player_monitor
from repro.sim import Kernel
from repro.tv import MediaPlayer, MediaSource


def correctness_demo() -> None:
    print("== correctness: decoder wedged by a corrupt packet ==")
    kernel = Kernel()
    player = MediaPlayer(kernel, MediaSource(packet_count=200, corrupt_indices=[30]))
    player.stall_on_corrupt = True  # the injected fault
    monitor = make_player_monitor(player)

    kernel.run(until=1.0)
    player.command("play")
    kernel.run(until=30.0)
    print(f"  player state: {player.state!r}, stalled={player.stalled}, "
          f"frames={player.frames_rendered}")

    # the user gives up and pauses/stops; the dead pipeline stops obeying
    player.command("pause")
    player._cmd_stop = lambda: None  # the stall also wedged the stop path
    kernel.run(until=35.0)
    player.command("stop")
    kernel.run(until=50.0)
    for error in monitor.errors:
        print(f"  ERROR on {error.observable!r}: expected {error.expected!r}, "
              f"observed {error.actual!r}")


def performance_demo() -> None:
    print("\n== performance: silent decoder slowdown ==")

    def run(slowdown):
        kernel = Kernel()
        player = MediaPlayer(kernel, MediaSource(packet_count=400))
        player.decode_slowdown = slowdown
        player.command("play")
        kernel.run(until=60.0)
        return player.frames_rendered

    nominal = run(1.0)
    slowed = run(3.0)
    print(f"  frames in 60s: nominal={nominal}, slowed={slowed} "
          f"({slowed / nominal:.0%} of nominal)")
    print("  a throughput observable with a time-based comparator catches "
          "this class of degradation.")


if __name__ == "__main__":
    correctness_demo()
    performance_demo()
