"""Model quality: checking, test generation, and model-to-model validation.

Sect. 4.2's workflow on the TV specification model:

1. executable simulation — drive the model directly and watch outputs;
2. model checking — exhaustively explore for nondeterminism, deadlocks,
   dead states, and feature-interaction invariants;
3. test-script generation — transition-covering key sequences;
4. model-to-model validation (Sect. 5) — run those scripts against the
   implementation in lock-step and compare every observable.

Run:  python examples/model_quality.py
"""

from repro.statemachine import Event, ModelChecker, TestGenerator
from repro.tv import (
    TVSet,
    build_tv_model,
    expected_screen,
    expected_sound,
    key_to_event_name,
)

ALPHABET = [
    Event(name)
    for name in (
        "power", "ch_up", "ch_down", "vol_up", "vol_down", "mute",
        "ttx", "menu", "back", "dual", "swap", "epg", "ok",
    )
]


def checking_demo() -> None:
    print("== model checking the TV spec ==")
    spec = build_tv_model(channel_count=4)
    invariants = [
        (
            "dual and teletext never together",
            lambda m: not (m.get("dual") and "ttx" in m.configuration()),
        ),
        (
            "pip channel set exactly when dual",
            lambda m: (m.get("pip", 0) > 0) == bool(m.get("dual")),
        ),
    ]
    report = ModelChecker(spec, ALPHABET, invariants=invariants, max_states=50000).run()
    print(f"  states explored:     {report.states_explored}")
    print(f"  transitions taken:   {report.transitions_taken}")
    print(f"  nondeterminism:      {len(report.nondeterminism)}")
    print(f"  deadlocks:           {len(report.deadlocks)}")
    print(f"  invariant violations:{len(report.violations)}")


def testgen_and_lockstep_demo() -> None:
    print("\n== generated test scripts, replayed against the implementation ==")
    spec = build_tv_model(channel_count=3)
    generator = TestGenerator(spec, ALPHABET[:9], max_states=5000)
    scenarios = generator.generate(max_scenarios=30)
    print(f"  {len(scenarios)} scripts, "
          f"{sum(len(s) for s in scenarios)} key presses total")

    mismatches = 0
    checked = 0
    for scenario in scenarios[:5]:
        tv = TVSet(seed=77)
        oracle = build_tv_model(channel_count=tv.tuner.channel_count)
        time = 0.0
        # replay a representative prefix; full replay is what the test
        # suite does
        for event_name in scenario.events[:300]:
            time += 5.0
            tv.kernel.run(until=time)
            key = event_name  # alphabet uses raw key names here
            tv.press(key)
            name, params = key_to_event_name(key)
            oracle.advance(time)
            oracle.inject(name, **params)
            checked += 1
            if expected_screen(oracle) != tv.screen_descriptor():
                mismatches += 1
            if expected_sound(oracle) != tv.sound_level():
                mismatches += 1
    print(f"  lock-step checks: {checked} presses, {mismatches} mismatches")
    assert mismatches == 0


if __name__ == "__main__":
    checking_demo()
    testgen_and_lockstep_demo()
