"""Awareness beyond TVs: the printer/copier domain (Octopus, Sect. 5).

The paper closes by noting that the model-based run-time awareness
concept carries over to printer/copiers (the Océ/Octopus project).  This
example runs the same monitor recipe on a simulated printer:

1. a healthy job — no errors;
2. a *silent paper jam*: the feeder stalls while still reporting
   'feeding'; the system believes it is printing, the model knows no page
   can take this long — detection drives the jam-clear repair;
3. a degraded fuser heater: pages keep coming but fused badly; the
   page-quality observable flags the divergence.

Run:  python examples/printer_awareness.py
"""

from repro.printer import Printer, make_printer_monitor


def healthy_demo() -> None:
    print("== healthy job ==")
    printer = Printer()
    monitor = make_printer_monitor(printer)
    printer.submit(pages=5, staple=True)
    printer.kernel.run(until=40.0)
    print(f"  {len(printer.pages)} pages, mean quality "
          f"{printer.mean_quality():.2f}, staples {printer.finisher.staples_used}, "
          f"errors: {len(monitor.errors)}")


def silent_jam_demo() -> None:
    print("\n== silent paper jam, closed loop ==")
    printer = Printer()
    monitor = make_printer_monitor(printer)

    def repair(report) -> None:
        if report.observable != "progressing":
            return
        print(f"  t={printer.kernel.now:5.1f}  monitor: {report.observable} "
              f"diverged (system believes {report.actual!r}, model says "
              f"{report.expected!r}) -> clearing jam")
        printer.feeder.silently_jammed = False
        printer.clear_jam()

    monitor.controller.subscribe_errors(repair)
    printer.submit(pages=10)
    printer.kernel.run(until=8.0)
    print(f"  t={printer.kernel.now:5.1f}  jam occurs "
          f"(feeder mode stays {printer.feeder.mode!r})")
    printer.inject_silent_jam()
    printer.kernel.run(until=120.0)
    print(f"  final: {len(printer.pages)}/10 pages delivered, "
          f"status={printer.status!r}")


def cold_fuser_demo() -> None:
    print("\n== degraded fuser heater ==")
    printer = Printer()
    monitor = make_printer_monitor(printer)
    printer.inject_cold_fuser(0.15)
    printer.submit(pages=6)
    printer.kernel.run(until=40.0)
    quality_errors = [e for e in monitor.errors if e.observable == "page_quality"]
    print(f"  mean page quality {printer.mean_quality():.2f} "
          f"(spec expects ~1.0); quality errors: {len(quality_errors)}")


if __name__ == "__main__":
    healthy_demo()
    silent_jam_demo()
    cold_fuser_demo()
