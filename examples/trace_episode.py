"""One fault episode, end to end, as a causal span tree.

The aggregate telemetry says *how many* episodes recovered and *how
fast* on average; this example shows the other view (PR 7): the
player-decoder drill runs with ``record_spans=True``, and every fault
episode comes back as a complete causal tree —

    inject ─ latent ─ detect ─ sfl-rank ─ rung* ─ repair (TTR)

keyed to simulated time.  The script prints the plain-text timeline for
every episode, checks the trees against the drill's recovery telemetry,
and writes a Chrome ``trace_event`` file you can open at
``chrome://tracing`` (or https://ui.perfetto.dev) to scrub through the
fleet's episodes on a per-SUO lane.

Run:  python examples/trace_episode.py [trace.json]
"""

import json
import sys
from dataclasses import replace

from repro.campaign import run_cell_detailed
from repro.obs.spans import chrome_trace, text_timeline
from repro.scenarios import get_scenario

SCENARIO = "player-decoder-drill"
SEED = 7


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "episode_trace.json"

    # 1. run the drill with span recording on ---------------------------
    spec = replace(get_scenario(SCENARIO), record_spans=True)
    cell = run_cell_detailed(spec, SEED)
    report, compiled = cell.report, cell.compiled
    recorder = compiled.span_recorder
    episodes = list(recorder.episodes)
    print(f"{SCENARIO} seed {SEED}: {recorder.completed} fault episodes "
          f"stitched, forest digest {report.span_digest[:16]}…\n")

    # 2. the causal timeline, episode by episode ------------------------
    print(text_timeline(episodes))

    # 3. the trees agree with the aggregate telemetry -------------------
    waves = report.telemetry_summary["recovery"]["waves"]
    ttrs = sorted(record["ttr"] for record in episodes)
    print(f"\nspan TTRs:      {[f'{ttr:.1f}s' for ttr in ttrs]}")
    print(f"telemetry says: count={waves['0']['count']} "
          f"min={waves['0']['min']:.1f}s max={waves['0']['max']:.1f}s")
    assert waves["0"]["count"] == len(ttrs)
    assert abs(waves["0"]["min"] - ttrs[0]) < 1e-9
    assert abs(waves["0"]["max"] - ttrs[-1]) < 1e-9

    # 4. export for chrome://tracing ------------------------------------
    trace = chrome_trace(episodes)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {len(trace['traceEvents'])} trace events to {out} — "
          "load it at chrome://tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main()
