"""Overload scenarios: bad signal, task migration, CPU eater, adaptive memory.

Three Sect. 4.5/4.7 mechanisms on the simulated SoC:

1. a degrading broadcast signal inflates error-correction work until the
   pipeline misses deadlines — the load balancer migrates the enhancement
   task and frame quality recovers (the IMEC demonstration);
2. a tester activates the CPU eater and watches the same overload appear
   on demand (TASS stress testing);
3. memory hogs starve the video DMA path until the adaptive arbiter
   re-weights the shares (NXP Research).

Run:  python examples/overload_recovery.py
"""

from repro.devtools import CpuEater
from repro.platform import MemoryArbiter
from repro.recovery import AdaptiveArbiterController, LoadBalancer
from repro.sim import Kernel, Process
from repro.tv import TVSet


def migration_demo() -> None:
    print("== task migration under bad signal (Sect. 4.5, IMEC) ==")
    tv = TVSet(seed=9)
    tv.press("power")
    tv.run(20.0)
    balancer = LoadBalancer(
        tv.kernel,
        tv.soc.scheduler,
        movable_tasks=["video.enhance"],
        miss_rate_threshold=0.2,
        interval=4.0,
    )
    balancer.start()

    print(f"  healthy:   quality={tv.video.mean_quality(since=5.0):.3f}  "
          f"placement={tv.soc.scheduler.placement()['video.enhance']}")
    tv.tuner.degrade_channel(1, 0.45)
    overload_at = tv.kernel.now
    tv.run(300.0)
    for decision in balancer.decisions:
        print(f"  t={decision.time:.0f}: migrated {decision.task} "
              f"{decision.source} -> {decision.target} "
              f"(miss rate {decision.miss_rate:.2f})")
    print(f"  after:     quality={tv.video.mean_quality(since=overload_at + 60):.3f}  "
          f"placement={tv.soc.scheduler.placement()['video.enhance']}")


def cpu_eater_demo() -> None:
    print("\n== CPU eater stress test (Sect. 4.7, TASS) ==")
    tv = TVSet(seed=2)
    tv.press("power")
    tv.run(30.0)
    nominal = tv.video.mean_quality(since=10.0)
    eater = CpuEater(tv.soc, "cpu0")
    eater.start(0.7)
    start = tv.kernel.now
    tv.run(150.0)
    stressed = tv.video.mean_quality(since=start)
    misses = sum(t.stats.misses for t in tv.video.tasks)
    print(f"  nominal quality: {nominal:.3f}")
    print(f"  with 70% CPU eaten: quality {stressed:.3f}, "
          f"{misses} deadline misses exposed")
    eater.stop()


def adaptive_memory_demo() -> None:
    print("\n== adaptive memory arbitration (Sect. 4.5, NXP Research) ==")
    kernel = Kernel()
    arbiter = MemoryArbiter(kernel, words_per_time=100.0)
    controller = AdaptiveArbiterController(
        kernel, arbiter, latency_bounds={"video": 3.0}, interval=10.0
    )
    controller.start()

    def client(name, words, count):
        def body():
            for _ in range(count):
                yield from arbiter.access(name, words)

        Process(kernel, body())

    client("video", 50, 200)
    client("hog1", 400, 60)
    client("hog2", 400, 60)
    kernel.run(until=700.0)
    stats = arbiter.client_stats("video")
    print(f"  video mean latency: {stats.mean_latency():.2f} (bound 3.0)")
    print(f"  adaptations performed: {len(controller.events)}; "
          f"final policy: {arbiter.policy}, video weight "
          f"{arbiter.weights.get('video', 1.0):.1f}")


if __name__ == "__main__":
    migration_demo()
    cpu_eater_demo()
    adaptive_memory_demo()
