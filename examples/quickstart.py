"""Quickstart: attach a run-time awareness monitor to a simulated TV.

This is the smallest end-to-end use of the library:

1. build the simulated TV (the System Under Observation);
2. attach the Fig. 2 awareness monitor (spec model + observers + comparator);
3. use the TV normally — no errors;
4. inject a field fault — the monitor detects the divergence between the
   specification model and the real behaviour.

Run:  python examples/quickstart.py
"""

from repro.awareness import make_tv_monitor
from repro.tv import FaultInjector, TVSet


def main() -> None:
    # 1. the SUO ------------------------------------------------------
    tv = TVSet(seed=1)

    # 2. the awareness monitor ---------------------------------------
    monitor = make_tv_monitor(tv)

    # 3. normal use: zap around, no errors reported -------------------
    for key in ["power", "ch_up", "vol_up", "ttx", "ttx", "menu", "back"]:
        tv.press(key)
        tv.run(4.0)
    print(f"after normal use: {len(monitor.errors)} errors "
          f"({monitor.comparator.stats.comparisons} comparisons, "
          f"{monitor.comparator.stats.suppressed_transients} transients suppressed)")

    # 4. a field fault appears: the mute key handler dies --------------
    FaultInjector(tv).inject("mute_noop")
    tv.press("mute")
    tv.run(6.0)

    for error in monitor.errors:
        print(
            f"ERROR at t={error.time:.2f} on {error.observable!r}: "
            f"model expected {error.expected!r}, system shows {error.actual!r} "
            f"(after {error.consecutive} consecutive deviations)"
        )
    assert monitor.errors, "expected the fault to be detected"
    print("the monitor noticed what the user would have noticed.")


if __name__ == "__main__":
    main()
