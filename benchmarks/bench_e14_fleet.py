"""E14 — beyond the paper: fleet-scale awareness on one kernel.

The paper's framework watches one TV.  The production north star is a
service monitoring *populations* of devices, so this bench drives the
MonitorFleet engine: 100 independent TVs with their awareness monitors
multiplexed on a single kernel and a single runtime bus, seeded random
users on every set, and a fault-injection campaign across a deterministic
subset.

Claims checked:

* the fleet runs at six-figure dispatch throughput (events/sec);
* injected faults are detected with zero false alarms (the Sect. 4.3
  comparator discipline survives multiplexing);
* the run is deterministic — same fleet seed, byte-identical trace.

This bench intentionally drives the legacy hand-built-fleet path
(``MonitorFleet`` + the deprecated ``ExperimentRunner`` shim) so its
throughput and determinism stay covered; declarative campaigns run
through ``repro.campaign`` (bench_e16).
"""


from repro.runtime import ExperimentRunner, MonitorFleet

from conftest import print_table, qscale, run_once

FLEET_SEED = 14
FLEET_SIZE = qscale(100, 30)
DURATION = qscale(60.0, 30.0)
VOLUME_HEAVY_KEYS = [
    "power", "vol_up", "vol_down", "vol_up", "ch_up", "ch_down",
    "mute", "menu", "back", "ttx", "epg",
]


def _campaign():
    fleet = MonitorFleet(seed=FLEET_SEED)
    fleet.add_tvs(FLEET_SIZE)
    runner = ExperimentRunner(
        fleet,
        duration=DURATION,
        fault_fraction=0.2,
        fault="volume_overshoot",
        keys=VOLUME_HEAVY_KEYS,
    )
    return fleet, runner.run()


def test_e14_fleet_campaign(benchmark):
    fleet, report = run_once(benchmark, _campaign)
    print_table(
        "E14: 100-SUO fleet fault-injection campaign (one kernel, one bus)",
        ["members", "sim time", "events", "events/sec", "faulty", "detected",
         "false alarms"],
        [[
            report.members,
            f"{report.duration:.0f}",
            report.dispatched,
            f"{report.events_per_sec:.0f}",
            len(report.faulty),
            len(report.detected),
            len(report.false_alarms),
        ]],
    )
    assert report.members == FLEET_SIZE
    assert report.dispatched > qscale(10_000, 1_000)
    assert report.faulty, "20% injection over 100 TVs must afflict someone"
    assert report.detected, "the monitors must catch injected faults"
    assert report.false_alarms == [], "fault-free members must stay silent"
    # one shared kernel serves the whole fleet
    assert all(
        member.suo.kernel is fleet.kernel for member in fleet.members.values()
    )


def test_e14_fleet_determinism(benchmark):
    """Same fleet seed → byte-identical merged trace, twice over."""

    def both():
        first = _campaign()[1]
        second = _campaign()[1]
        return first, second

    first, second = run_once(benchmark, both)
    assert first.trace_digest == second.trace_digest
    assert first.dispatched == second.dispatched
    assert first.errors_by_suo == second.errors_by_suo
