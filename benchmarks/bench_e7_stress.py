"""E7 — Sect. 4.7: stress testing by resource takeaway.

Paper claim (TASS): artificially removing shared resources (CPU cycles
via the CPU eater, bus bandwidth) "to simulate the occurrence of errors or
the addition of an additional resource user [...] has shown to be very
useful in the TV domain" — overloads expose behaviour that nominal
testing never reaches.

The bench runs the stress campaign across the default scenario sweep and
shows that (a) the nominal run is clean and (b) stress reveals deadline
misses and quality loss, monotonically in stress intensity.
"""


from repro.devtools import DEFAULT_SCENARIOS, StressCampaign

from conftest import print_table, qscale, run_once


def test_e7_stress_campaign(benchmark):
    def experiment():
        campaign = StressCampaign(seed=2, measure=qscale(120.0, 40.0))
        return campaign.run(DEFAULT_SCENARIOS)

    outcomes = run_once(benchmark, experiment)
    rows = [
        [
            outcome.scenario,
            f"{outcome.miss_rate:.3f}",
            f"{outcome.mean_frame_quality:.3f}",
            f"{outcome.degraded_fraction:.3f}",
        ]
        for outcome in outcomes
    ]
    print_table(
        "E7: stress-testing campaign (paper: overload reveals behaviour "
        "nominal testing cannot)",
        ["scenario", "deadline miss rate", "frame quality", "degraded frames"],
        rows,
    )
    by_name = {outcome.scenario: outcome for outcome in outcomes}
    nominal = by_name["nominal"]
    assert nominal.miss_rate < 0.05
    assert nominal.mean_frame_quality > 0.8
    # CPU eating monotonically degrades quality (small simulation noise)
    assert (
        by_name["eat25"].mean_frame_quality
        >= by_name["eat50"].mean_frame_quality - 0.02
    )
    assert (
        by_name["eat50"].mean_frame_quality
        >= by_name["eat70"].mean_frame_quality - 0.02
    )
    # heavy stress exposes misses invisible nominally
    assert by_name["eat70"].miss_rate > nominal.miss_rate
    # bandwidth takeaway becomes user-visible once transfers overrun
    assert by_name["bw60"].mean_frame_quality < nominal.mean_frame_quality
    # combined stress is at least as bad as its CPU component alone
    assert (
        by_name["eat50+bw30"].mean_frame_quality
        <= by_name["eat50"].mean_frame_quality + 0.05
    )


def test_e7_stress_reveals_latent_fault_tolerance_limits(benchmark):
    """The paper's use case: studying the effect of overload on the
    system's fault-tolerant mechanisms.  Here: the load balancer saves the
    pipeline up to a point; the CPU eater finds its limit."""
    from repro.recovery import LoadBalancer
    from repro.tv import TVSet
    from repro.devtools import CpuEater

    def sweep():
        rows = []
        for load in (0.3, 0.5, 0.7, 0.85):
            tv = TVSet(seed=2)
            tv.press("power")
            tv.run(20.0)
            balancer = LoadBalancer(
                tv.kernel,
                tv.soc.scheduler,
                movable_tasks=["video.enhance", "video.errcorr"],
                miss_rate_threshold=0.2,
                interval=4.0,
            )
            balancer.start()
            eater = CpuEater(tv.soc, "cpu0")
            eater.start(load)
            start = tv.kernel.now
            tv.run(qscale(200.0, 80.0))
            rows.append(
                [
                    load,
                    f"{tv.video.mean_quality(since=start + 50):.3f}",
                    len(balancer.decisions),
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "E7b: CPU eater vs the load balancer's rescue capacity",
        ["eater load", "frame quality", "migrations"],
        rows,
    )
    qualities = [float(row[1]) for row in rows]
    assert qualities[0] > 0.75  # balancer absorbs light stress
