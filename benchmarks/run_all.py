#!/usr/bin/env python
"""Benchmark smoke runner: execute every bench in quick mode and record
the runtime performance trajectory in ``BENCH_runtime.json``.

Usage::

    python benchmarks/run_all.py              # throughput probes + all benches
    python benchmarks/run_all.py --no-benches # throughput probes only (fast)
    python benchmarks/run_all.py --out /tmp/bench.json

Quick mode runs each ``bench_e*.py`` once under ``pytest
--benchmark-disable`` (the simulations are deterministic, so a single
round is a faithful measurement) and times the file.  Independently of
the benches, three throughput probes measure the kernel itself:

* ``kernel``     — bare dispatch loop, no SUO (events/sec);
* ``single_suo`` — one TV driven through the E13 workload (events/sec);
* ``fleet``      — a 100-SUO MonitorFleet campaign (events/sec), plus a
  byte-identical-trace determinism check.

``BENCH_runtime.json`` carries the numbers plus the seed-kernel baseline
measured before the runtime refactor, so future PRs can see the
trajectory at a glance.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

#: Seed-kernel numbers measured on the same container immediately before
#: the runtime refactor (PR 1), for trajectory comparison.
SEED_BASELINE = {
    "kernel_events_per_sec": 370_000,
    "single_suo_events_per_sec": 115_000,
    "note": "seed kernel (pre-EventBus), same host, best of 3",
}

TV_WORKLOAD = [
    "power", "ch_up", "vol_up", "ttx", "ttx", "menu", "back",
    "dual", "swap", "epg", "epg", "mute", "mute", "power",
] * 5


def probe_kernel(events: int = 200_000) -> float:
    """Bare kernel dispatch throughput (events/sec), best of 3."""
    from repro.sim import Kernel

    best = 0.0
    for _ in range(3):
        kernel = Kernel()

        def reschedule() -> None:
            kernel.schedule(1.0, reschedule)

        for i in range(100):
            kernel.schedule(float(i % 7) * 0.1, reschedule)
        start = time.perf_counter()
        kernel.run(max_events=events)
        best = max(best, events / (time.perf_counter() - start))
    return best


def probe_single_suo() -> float:
    """One TV through the E13 workload (events/sec), best of 3."""
    from repro.tv import TVSet

    best = 0.0
    for _ in range(3):
        start = time.perf_counter()
        tv = TVSet(seed=55)
        for key in TV_WORKLOAD:
            tv.press(key)
            tv.run(3.0)
        tv.run(5.0)
        best = max(best, tv.kernel.dispatched_count / (time.perf_counter() - start))
    return best


def probe_fleet(members: int = 100, duration: float = 60.0) -> dict:
    """100-SUO campaign throughput + determinism witness."""
    from repro.runtime import ExperimentRunner, MonitorFleet

    def campaign():
        fleet = MonitorFleet(seed=14)
        fleet.add_tvs(members)
        runner = ExperimentRunner(fleet, duration=duration, fault_fraction=0.2)
        return runner.run()

    first = campaign()
    second = campaign()
    return {
        "members": members,
        "sim_duration": duration,
        "dispatched": first.dispatched,
        "events_per_sec": round(first.events_per_sec),
        "deterministic": first.trace_digest == second.trace_digest,
        "trace_digest": first.trace_digest,
    }


def run_benches() -> dict:
    """Each bench_e*.py once, quick mode; returns per-file status."""
    results = {}
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    for path in sorted(glob.glob(os.path.join(REPO_ROOT, "benchmarks", "bench_e*.py"))):
        name = os.path.basename(path)
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", path, "-q", "--benchmark-disable",
             "-p", "no:cacheprovider"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        seconds = round(time.perf_counter() - start, 2)
        results[name] = {
            "ok": proc.returncode == 0,
            "seconds": seconds,
        }
        status = "ok" if proc.returncode == 0 else "FAIL"
        print(f"  {name:<28} {status:>4}  {seconds:7.2f}s", flush=True)
        if proc.returncode != 0:
            tail = "\n".join(proc.stdout.splitlines()[-15:])
            print(tail)
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-benches", action="store_true",
        help="skip the bench_e*.py smoke pass; only run throughput probes",
    )
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_runtime.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    print("probing kernel dispatch throughput ...", flush=True)
    kernel_eps = probe_kernel()
    print(f"  kernel: {kernel_eps:,.0f} events/sec")
    print("probing single-SUO throughput ...", flush=True)
    single_eps = probe_single_suo()
    print(f"  single-SUO TV: {single_eps:,.0f} events/sec")
    print("probing 100-SUO fleet campaign ...", flush=True)
    fleet = probe_fleet()
    print(
        f"  fleet: {fleet['events_per_sec']:,} events/sec over "
        f"{fleet['members']} SUOs, deterministic={fleet['deterministic']}"
    )

    benches = {}
    if not args.no_benches:
        print("running benches in quick mode ...", flush=True)
        benches = run_benches()

    report = {
        "kernel_events_per_sec": round(kernel_eps),
        "single_suo_events_per_sec": round(single_eps),
        "fleet": fleet,
        "seed_baseline": SEED_BASELINE,
        "benches": benches,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    failed = [name for name, r in benches.items() if not r["ok"]]
    if failed:
        print("FAILED:", ", ".join(failed))
        return 1
    if round(kernel_eps) < SEED_BASELINE["kernel_events_per_sec"]:
        print("WARNING: kernel throughput regressed below the seed baseline")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
