#!/usr/bin/env python
"""Benchmark smoke runner: execute every bench in quick mode and record
the runtime performance trajectory in ``BENCH_runtime.json``.

Usage::

    python benchmarks/run_all.py              # throughput probes + all benches
    python benchmarks/run_all.py --quick      # down-scaled workloads (CI smoke)
    python benchmarks/run_all.py --no-benches # throughput probes only (fast)
    python benchmarks/run_all.py --out /tmp/bench.json

``--quick`` exports ``REPRO_BENCH_QUICK=1`` to every bench process; each
bench routes its dominant size knob through ``conftest.qscale`` so the
whole suite smoke-runs in a fraction of the full-mode time (full mode is
what ``BENCH_runtime.json`` trajectories are compared on).

Every bench_e*.py runs once under ``pytest --benchmark-disable`` (the
simulations are deterministic, so a single round is a faithful
measurement) and the file is timed.  Independently of the benches, four
throughput probes measure the runtime itself:

* ``kernel``     — bare dispatch loop, no SUO (events/sec);
* ``single_suo`` — one TV driven through the E13 workload (events/sec);
* ``fleet``      — a 100-SUO MonitorFleet campaign (events/sec), plus a
  byte-identical-trace determinism check;
* ``scenarios``  — a 1000-SUO streaming-telemetry scenario (the E15
  workload), recording its trace and telemetry digests;
* ``sharded``    — the same scenario through the campaign API, serial vs
  ``ProcessShardBackend``: records the wall-clock speedup and **fails
  the run if the serial and sharded telemetry digests diverge** (the CI
  shard-determinism gate; quick mode shrinks to 2 shards).

``BENCH_runtime.json`` carries the numbers plus the seed-kernel baseline
measured before the runtime refactor, so future PRs can see the
trajectory at a glance.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

#: Seed-kernel numbers measured on the same container immediately before
#: the runtime refactor (PR 1), for trajectory comparison.
SEED_BASELINE = {
    "kernel_events_per_sec": 370_000,
    "single_suo_events_per_sec": 115_000,
    "note": "seed kernel (pre-EventBus), same host, best of 3",
}

TV_WORKLOAD = [
    "power", "ch_up", "vol_up", "ttx", "ttx", "menu", "back",
    "dual", "swap", "epg", "epg", "mute", "mute", "power",
] * 5


def probe_kernel(events: int = 200_000) -> float:
    """Bare kernel dispatch throughput (events/sec), best of 3."""
    from repro.sim import Kernel

    best = 0.0
    for _ in range(3):
        kernel = Kernel()

        def reschedule() -> None:
            kernel.schedule(1.0, reschedule)

        for i in range(100):
            kernel.schedule(float(i % 7) * 0.1, reschedule)
        start = time.perf_counter()
        kernel.run(max_events=events)
        best = max(best, events / (time.perf_counter() - start))
    return best


def probe_single_suo() -> float:
    """One TV through the E13 workload (events/sec), best of 3."""
    from repro.tv import TVSet

    best = 0.0
    for _ in range(3):
        start = time.perf_counter()
        tv = TVSet(seed=55)
        for key in TV_WORKLOAD:
            tv.press(key)
            tv.run(3.0)
        tv.run(5.0)
        best = max(best, tv.kernel.dispatched_count / (time.perf_counter() - start))
    return best


def probe_fleet(members: int = 100, duration: float = 60.0) -> dict:
    """100-SUO campaign throughput + determinism witness.

    Intentionally stays on the legacy hand-built-fleet path (the
    deprecated ``ExperimentRunner`` shim) so its throughput remains
    tracked; the campaign API is probed by :func:`probe_sharded`.
    """
    import warnings

    from repro.runtime import ExperimentRunner, MonitorFleet

    def campaign():
        fleet = MonitorFleet(seed=14)
        fleet.add_tvs(members)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runner = ExperimentRunner(fleet, duration=duration, fault_fraction=0.2)
        return runner.run()

    first = campaign()
    second = campaign()
    return {
        "members": members,
        "sim_duration": duration,
        "dispatched": first.dispatched,
        "events_per_sec": round(first.events_per_sec),
        "deterministic": first.trace_digest == second.trace_digest,
        "trace_digest": first.trace_digest,
    }


def probe_scenarios(members: int = 1000, duration: float = 20.0) -> dict:
    """One 1000-SUO streaming scenario campaign (the E15 workload)."""
    from repro.campaign import SerialBackend
    from repro.scenarios import FaultPhase, ScenarioSpec, UserProfile

    spec = ScenarioSpec(
        name="probe-thousand-suo",
        description="run_all probe: streaming-telemetry scale point",
        duration=duration,
        tvs=members,
        profiles=(UserProfile("probe", mean_gap=15.0,
                              keys=("power", "ch_up", "vol_up", "mute")),),
        phases=(FaultPhase("volume_overshoot", at=duration / 2, fraction=0.1),),
    )
    report, fleet_report, _compiled = SerialBackend().run_detailed(spec, 15)
    return {
        "members": report.members,
        "sim_duration": duration,
        "dispatched": report.dispatched,
        "events_per_sec": round(fleet_report.events_per_sec),
        "streaming": not fleet_report.retained_trace,
        "suo_events": report.telemetry_summary["events_total"],
        "telemetry_digest": report.telemetry_digest,
        "trace_digest": report.shard_trace_digests[0],
    }


def probe_sharded(quick: bool = False) -> dict:
    """Serial vs sharded execution of the E15-scale scenario.

    Full mode: 1000 SUOs, 4 shards.  Quick mode: 300 SUOs, 2 shards —
    the CI smoke that gates shard determinism.  ``digests_match`` is the
    gate: the merged counter/tally telemetry of the sharded run must be
    byte-identical to the serial run's.
    """
    from repro.campaign import ProcessShardBackend, SerialBackend
    from repro.scenarios import FaultPhase, ScenarioSpec, UserProfile

    members = 300 if quick else 1000
    duration = 10.0 if quick else 20.0
    shards = 2 if quick else 4
    spec = ScenarioSpec(
        name="probe-sharded",
        description="run_all probe: sharded vs serial execution",
        duration=duration,
        tvs=members,
        profiles=(UserProfile("probe", mean_gap=15.0,
                              keys=("power", "ch_up", "vol_up", "mute")),),
        phases=(FaultPhase("volume_overshoot", at=duration / 2, fraction=0.1),),
    )
    # Sharded first: fork from a lean parent (a prior serial run would
    # leave a big heap whose pages the workers' refcount writes unshare).
    sharded = ProcessShardBackend(shards=shards).run(spec, seed=16)
    serial = SerialBackend().run(spec, seed=16)
    speedup = (
        serial.wall_seconds / sharded.wall_seconds
        if sharded.wall_seconds > 0 else 0.0
    )
    return {
        "members": members,
        "sim_duration": duration,
        "shards": shards,
        "cpu_count": os.cpu_count(),
        "serial_wall_seconds": round(serial.wall_seconds, 3),
        "sharded_wall_seconds": round(sharded.wall_seconds, 3),
        "speedup": round(speedup, 3),
        "digests_match": sharded.telemetry_digest == serial.telemetry_digest,
        "telemetry_digest": serial.telemetry_digest,
        "shard_trace_digests": sharded.shard_trace_digests,
    }


def run_benches(quick: bool = False) -> dict:
    """Each bench_e*.py once; returns per-file status."""
    results = {}
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if quick:
        env["REPRO_BENCH_QUICK"] = "1"
    else:
        # A stale exported REPRO_BENCH_QUICK must not silently down-scale
        # a run recorded as full mode.
        env.pop("REPRO_BENCH_QUICK", None)
    for path in sorted(glob.glob(os.path.join(REPO_ROOT, "benchmarks", "bench_e*.py"))):
        name = os.path.basename(path)
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", path, "-q", "--benchmark-disable",
             "-p", "no:cacheprovider"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        seconds = round(time.perf_counter() - start, 2)
        results[name] = {
            "ok": proc.returncode == 0,
            "seconds": seconds,
        }
        status = "ok" if proc.returncode == 0 else "FAIL"
        print(f"  {name:<28} {status:>4}  {seconds:7.2f}s", flush=True)
        if proc.returncode != 0:
            tail = "\n".join(proc.stdout.splitlines()[-15:])
            print(tail)
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-benches", action="store_true",
        help="skip the bench_e*.py smoke pass; only run throughput probes",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="down-scale every bench (REPRO_BENCH_QUICK=1): CI smoke mode",
    )
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_runtime.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args()
    default_out = parser.get_default("out")
    if args.quick and os.path.abspath(args.out) == os.path.abspath(default_out):
        parser.error(
            "--quick requires an explicit --out: quick-mode timings must "
            "not overwrite the tracked full-mode trajectory in "
            "BENCH_runtime.json"
        )

    print("probing kernel dispatch throughput ...", flush=True)
    kernel_eps = probe_kernel()
    print(f"  kernel: {kernel_eps:,.0f} events/sec")
    print("probing single-SUO throughput ...", flush=True)
    single_eps = probe_single_suo()
    print(f"  single-SUO TV: {single_eps:,.0f} events/sec")
    print("probing 100-SUO fleet campaign ...", flush=True)
    fleet = probe_fleet()
    print(
        f"  fleet: {fleet['events_per_sec']:,} events/sec over "
        f"{fleet['members']} SUOs, deterministic={fleet['deterministic']}"
    )
    # The sharded probe runs before the big serial scenario probe: its
    # workers fork from a still-lean parent, so the recorded speedup
    # measures the backend rather than copy-on-write page duplication.
    print("probing sharded vs serial campaign execution ...", flush=True)
    sharded = probe_sharded(quick=args.quick)
    print(
        f"  sharded: {sharded['members']} SUOs on {sharded['shards']} shards "
        f"({sharded['cpu_count']} cores): {sharded['speedup']}x speedup, "
        f"digests_match={sharded['digests_match']}"
    )
    print("probing 1000-SUO streaming scenario ...", flush=True)
    scenarios = probe_scenarios()
    print(
        f"  scenario: {scenarios['events_per_sec']:,} events/sec over "
        f"{scenarios['members']} SUOs, streaming={scenarios['streaming']}"
    )

    benches = {}
    if not args.no_benches:
        mode = "quick" if args.quick else "full"
        print(f"running benches ({mode} mode) ...", flush=True)
        benches = run_benches(quick=args.quick)

    report = {
        "mode": "quick" if args.quick else "full",
        "kernel_events_per_sec": round(kernel_eps),
        "single_suo_events_per_sec": round(single_eps),
        "fleet": fleet,
        "scenarios": scenarios,
        "sharded": sharded,
        "seed_baseline": SEED_BASELINE,
        "benches": benches,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    failed = [name for name, r in benches.items() if not r["ok"]]
    if failed:
        print("FAILED:", ", ".join(failed))
        return 1
    if not sharded["digests_match"]:
        print("FAILED: serial and sharded telemetry digests diverged "
              "(shard determinism gate)")
        return 1
    if round(kernel_eps) < SEED_BASELINE["kernel_events_per_sec"]:
        print("WARNING: kernel throughput regressed below the seed baseline")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
