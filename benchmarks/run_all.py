#!/usr/bin/env python
"""Benchmark smoke runner: execute every bench in quick mode and record
the runtime performance trajectory in ``BENCH_runtime.json``.

Usage::

    python benchmarks/run_all.py              # throughput probes + all benches
    python benchmarks/run_all.py --quick      # down-scaled workloads (CI smoke)
    python benchmarks/run_all.py --no-benches # throughput probes only (fast)
    python benchmarks/run_all.py --out /tmp/bench.json

``--quick`` exports ``REPRO_BENCH_QUICK=1`` to every bench process; each
bench routes its dominant size knob through ``conftest.qscale`` so the
whole suite smoke-runs in a fraction of the full-mode time (full mode is
what ``BENCH_runtime.json`` trajectories are compared on).

Every bench_e*.py runs once under ``pytest --benchmark-disable`` (the
simulations are deterministic, so a single round is a faithful
measurement) and the file is timed.  Independently of the benches, four
throughput probes measure the runtime itself:

* ``kernel``     — bare dispatch loop, no SUO (events/sec);
* ``single_suo`` — one TV driven through the E13 workload (events/sec);
* ``fleet``      — a 100-SUO MonitorFleet campaign (events/sec), plus a
  byte-identical-trace determinism check;
* ``scenarios``  — a 1000-SUO streaming-telemetry scenario (the E15
  workload), recording its trace and telemetry digests;
* ``sharded``    — the same scenario through the campaign API, serial vs
  ``ProcessShardBackend``: records the wall-clock speedup and **fails
  the run if the serial and sharded telemetry digests diverge** (the CI
  shard-determinism gate; quick mode shrinks to 2 shards);
* ``detection``  — the detection/recovery library scenarios
  (player-seek-stress, printer-burst, recovery-ladder-drill,
  overnight-soak) serial and 2-shard: **fails the run if any detection
  rate is zero, a recovery wave records no finite time-to-recover, or
  the serial and sharded detection stats diverge** (the CI detection
  gate);
* ``diagnosis``  — the diagnosis-guided recovery drills
  (player-decoder-drill, printer-jam-drill, recovery-ladder-drill)
  serial and 2-shard: **fails the run on zero localization accuracy,
  a non-finite time-to-recover, or serial-vs-sharded divergence of the
  diagnosis telemetry** (the CI diagnosis gate);
* ``fuzz``       — a bounded :mod:`repro.fuzz` campaign run twice
  (candidates/sec): **fails the run if the two runs' determinism
  witnesses differ or a grammar-sampled candidate crashes the campaign
  surface** (the CI fuzz gate; candidates/sec joins the perf floor).

Exit status is computed by :func:`evaluate_report` over the JSON report:
any failed bench, a diverged digest, a zeroed detection rate, a
kernel-throughput regression below the seed baseline, or a fleet/
scenario probe more than 30% below the recorded ``PERF_FLOOR`` exits
nonzero (the floor is skipped in ``--quick`` mode on 1-CPU hosts, where
wall-clock throughput measures the container rather than the runtime).
Every gate a run skips is listed explicitly — ``skipped: <reason>``
lines on stdout and a ``skipped_gates`` block in the report — so a CI
log never reads as a pass for a check that did not run.

``BENCH_runtime.json`` carries the numbers plus the seed-kernel baseline
measured before the runtime refactor, so future PRs can see the
trajectory at a glance.  Independently, every run is appended to the
run-history store (``BENCH_history.sqlite`` by default, ``--history`` to
point elsewhere, ``--no-history`` to opt out): :mod:`repro.obs.history`
keeps the full report per run, and :func:`evaluate_report` then also
applies the :mod:`repro.obs.trend` rules against the prior window — a
rolling perf floor over the last runs' median and a detection-rate
drift bound — catching slow slides no single-snapshot gate can see.
Inspect or trend the store with ``python -m repro.obs``.
"""

from __future__ import annotations

import argparse
import glob
import json
import math
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.obs.trend import evaluate_trends, perf_skip_reason  # noqa: E402

#: Default run-history store (append-only SQLite; see repro.obs.history).
DEFAULT_HISTORY = os.path.join(REPO_ROOT, "BENCH_history.sqlite")

#: Prior runs consulted by the trend rules.
TREND_WINDOW = 5

#: Seed-kernel numbers measured on the same container immediately before
#: the runtime refactor (PR 1), for trajectory comparison.
SEED_BASELINE = {
    "kernel_events_per_sec": 370_000,
    "single_suo_events_per_sec": 115_000,
    "note": "seed kernel (pre-EventBus), same host, best of 3",
}

#: Throughput floor for the fleet and scenario probes, recorded after the
#: dispatch hot-path overhaul (compiled bus tables, event freelists,
#: telemetry burst folding).  ``evaluate_report`` fails the run when a
#: probe drops more than ``max_regression`` below these full-mode
#: numbers.  Quick-mode runs on 1-CPU hosts skip the floor, same as the
#: bench_e16 speedup guard: there the wall-clock numbers measure the
#: container, not the runtime.
PERF_FLOOR = {
    "fleet_events_per_sec": 122_000,
    "scenarios_events_per_sec": 137_000,
    "fuzz_candidates_per_sec": 2.0,
    "max_regression": 0.30,
    "note": "full-mode probes after the dispatch overhaul, same host, best of 3; "
            "fuzz floor recorded with the PR 8 probe config (8 candidates)",
}

TV_WORKLOAD = [
    "power", "ch_up", "vol_up", "ttx", "ttx", "menu", "back",
    "dual", "swap", "epg", "epg", "mute", "mute", "power",
] * 5


def probe_kernel(events: int = 200_000) -> float:
    """Bare kernel dispatch throughput (events/sec), best of 3."""
    from repro.sim import Kernel

    best = 0.0
    for _ in range(3):
        kernel = Kernel()

        def reschedule() -> None:
            kernel.schedule(1.0, reschedule)

        for i in range(100):
            kernel.schedule(float(i % 7) * 0.1, reschedule)
        start = time.perf_counter()
        kernel.run(max_events=events)
        best = max(best, events / (time.perf_counter() - start))
    return best


def probe_single_suo() -> float:
    """One TV through the E13 workload (events/sec), best of 3."""
    from repro.tv import TVSet

    best = 0.0
    for _ in range(3):
        start = time.perf_counter()
        tv = TVSet(seed=55)
        for key in TV_WORKLOAD:
            tv.press(key)
            tv.run(3.0)
        tv.run(5.0)
        best = max(best, tv.kernel.dispatched_count / (time.perf_counter() - start))
    return best


def probe_fleet(members: int = 100, duration: float = 60.0) -> dict:
    """100-SUO campaign throughput + determinism witness.

    Intentionally stays on the legacy hand-built-fleet path (the
    deprecated ``ExperimentRunner`` shim) so its throughput remains
    tracked; the campaign API is probed by :func:`probe_sharded`.
    """
    import warnings

    from repro.runtime import ExperimentRunner, MonitorFleet

    def campaign():
        fleet = MonitorFleet(seed=14)
        fleet.add_tvs(members)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runner = ExperimentRunner(fleet, duration=duration, fault_fraction=0.2)
        return runner.run()

    first = campaign()
    second = campaign()
    return {
        "members": members,
        "sim_duration": duration,
        "dispatched": first.dispatched,
        "events_per_sec": round(first.events_per_sec),
        "deterministic": first.trace_digest == second.trace_digest,
        "trace_digest": first.trace_digest,
    }


def probe_scenarios(members: int = 1000, duration: float = 20.0) -> dict:
    """One 1000-SUO streaming scenario campaign (the E15 workload)."""
    from repro.campaign import run_cell_detailed
    from repro.scenarios import FaultPhase, ScenarioSpec, UserProfile

    spec = ScenarioSpec(
        name="probe-thousand-suo",
        description="run_all probe: streaming-telemetry scale point",
        duration=duration,
        tvs=members,
        profiles=(UserProfile("probe", mean_gap=15.0,
                              keys=("power", "ch_up", "vol_up", "mute")),),
        phases=(FaultPhase("volume_overshoot", at=duration / 2, fraction=0.1),),
    )
    cell = run_cell_detailed(spec, 15)
    report, fleet_report = cell.report, cell.fleet_report
    return {
        "members": report.members,
        "sim_duration": duration,
        "dispatched": report.dispatched,
        "events_per_sec": round(fleet_report.events_per_sec),
        "streaming": not fleet_report.retained_trace,
        "suo_events": report.telemetry_summary["events_total"],
        "telemetry_digest": report.telemetry_digest,
        "trace_digest": report.shard_trace_digests[0],
    }


def probe_sharded(quick: bool = False) -> dict:
    """Serial vs sharded execution of the E15-scale scenario.

    Full mode: 1000 SUOs, 4 shards.  Quick mode: 300 SUOs, 2 shards —
    the CI smoke that gates shard determinism.  ``digests_match`` is the
    gate: the merged counter/tally telemetry of the sharded run must be
    byte-identical to the serial run's.
    """
    from repro.campaign import ProcessShardBackend, run_cell
    from repro.scenarios import FaultPhase, ScenarioSpec, UserProfile

    members = 300 if quick else 1000
    duration = 10.0 if quick else 20.0
    shards = 2 if quick else 4
    spec = ScenarioSpec(
        name="probe-sharded",
        description="run_all probe: sharded vs serial execution",
        duration=duration,
        tvs=members,
        profiles=(UserProfile("probe", mean_gap=15.0,
                              keys=("power", "ch_up", "vol_up", "mute")),),
        phases=(FaultPhase("volume_overshoot", at=duration / 2, fraction=0.1),),
    )
    # Sharded first: fork from a lean parent (a prior serial run would
    # leave a big heap whose pages the workers' refcount writes unshare).
    sharded = run_cell(spec, 16, backend=ProcessShardBackend(shards=shards))
    serial = run_cell(spec, 16)
    speedup = (
        serial.wall_seconds / sharded.wall_seconds
        if sharded.wall_seconds > 0 else 0.0
    )
    return {
        "members": members,
        "sim_duration": duration,
        "shards": shards,
        "cpu_count": os.cpu_count(),
        "serial_wall_seconds": round(serial.wall_seconds, 3),
        "sharded_wall_seconds": round(sharded.wall_seconds, 3),
        "speedup": round(speedup, 3),
        "digests_match": sharded.telemetry_digest == serial.telemetry_digest,
        "telemetry_digest": serial.telemetry_digest,
        "shard_trace_digests": sharded.shard_trace_digests,
    }


#: The library scenarios whose detection/recovery rates CI gates on.
#: ``overnight-soak`` joined in PR 5: the TV's timed volume self-check
#: must keep sparse sleeper sessions detecting injected volume faults.
DETECTION_SCENARIOS = (
    "player-seek-stress", "printer-burst", "recovery-ladder-drill",
    "overnight-soak",
)


#: Memo of probe campaign cells: (scenario, seed, shards-or-None) ->
#: CampaignReport.  ``recovery-ladder-drill`` sits in both the detection
#: and the diagnosis probe; the runs are deterministic, so recomputing
#: the identical cell would only burn CI wall-clock.
_PROBE_CELLS: dict = {}


def _probe_cell(name: str, seed: int, shards=None):
    from repro.campaign import ProcessShardBackend, run_cell
    from repro.scenarios import get_scenario

    key = (name, seed, shards)
    if key not in _PROBE_CELLS:
        backend = (
            None if shards is None else ProcessShardBackend(shards=shards)
        )
        _PROBE_CELLS[key] = run_cell(name, seed, backend=backend)
    return _PROBE_CELLS[key]


def probe_detection(seed: int = 7) -> dict:
    """Detection-depth probe (the PR 4 gate): the detection and
    recovery scenarios, each serial and 2-shard.

    Gated facts per scenario: faults were injected, the detection rate
    is nonzero, nobody false-alarmed, the recovery drill recorded a
    finite time-to-recover for every wave, and the sharded run agrees
    with the serial run on the telemetry digest AND the detection
    accounting (faulty/detected/false-alarm sets).
    """
    result = {}
    for name in DETECTION_SCENARIOS:
        # Sharded first: fork from the leanest parent heap available.
        sharded = _probe_cell(name, seed, shards=2)
        serial = _probe_cell(name, seed)
        recovery = serial.telemetry_summary.get("recovery", {})
        result[name] = {
            "members": serial.members,
            "seed": seed,
            "faulty": len(serial.faulty),
            "detected": len(serial.detected),
            "detection_rate": round(serial.detection_rate, 4),
            "false_alarms": len(serial.false_alarms),
            "recovered": recovery.get("recovered", 0),
            "ttr_waves": recovery.get("waves", {}),
            "digests_match": sharded.telemetry_digest == serial.telemetry_digest,
            "detection_invariant": (
                sharded.faulty == serial.faulty
                and sharded.detected == serial.detected
                and sharded.false_alarms == serial.false_alarms
            ),
        }
    return result


#: The drills whose diagnosis-guided recovery CI gates on (PR 5).
DIAGNOSIS_SCENARIOS = (
    "player-decoder-drill", "printer-jam-drill", "recovery-ladder-drill",
)


def probe_diagnosis(seed: int = 7) -> dict:
    """Diagnosis-guided recovery probe (the PR 5 gate).

    Each drill runs serial and 2-shard.  Gated facts per drill:
    episodes reached the rebind rung with an SFL ranking recorded, the
    localization accuracy (true faulty component ranked first) is
    nonzero, every recorded time-to-recover is finite and positive, and
    the sharded run agrees with the serial run on the telemetry digest
    AND the shard-invariant diagnosis block.
    """
    from repro.runtime.telemetry import mergeable_summary

    result = {}
    for name in DIAGNOSIS_SCENARIOS:
        sharded = _probe_cell(name, seed, shards=2)
        serial = _probe_cell(name, seed)
        diagnosis = serial.telemetry_summary.get("diagnosis", {})
        rebinds = diagnosis.get("rebinds", {})
        ranks = diagnosis.get("rank_of_true", {})
        ranked = sum(ranks.values())
        ttr = diagnosis.get("ttr", {})
        result[name] = {
            "members": serial.members,
            "seed": seed,
            "episodes_ranked": ranked,
            "rank_first": ranks.get("1", 0),
            "localization_accuracy": (
                round(ranks.get("1", 0) / ranked, 4) if ranked else 0.0
            ),
            "targeted_rebinds": rebinds.get("targeted", 0),
            "full_rebinds": rebinds.get("full", 0),
            "targeted_rebind_rate": diagnosis.get("targeted_rebind_rate", 0.0),
            "recovered": serial.telemetry_summary.get("recovery", {}).get(
                "recovered", 0
            ),
            "ttr": {
                mode: {
                    key: ttr.get(mode, {}).get(key, 0.0)
                    for key in ("count", "min", "max")
                }
                for mode in ("targeted", "full")
            },
            "digests_match": sharded.telemetry_digest == serial.telemetry_digest,
            "diagnosis_invariant": (
                mergeable_summary(sharded.telemetry_summary).get("diagnosis")
                == mergeable_summary(serial.telemetry_summary).get("diagnosis")
            ),
        }
    return result


def probe_fuzz(quick: bool = False) -> dict:
    """Bounded fuzz campaign probe (the PR 8 gate).

    Runs the same small grammar-sampled candidate budget twice with a
    fresh in-memory corpus each time and compares the determinism
    witnesses: byte-identical candidates, admissions, findings, and
    coverage, or the gate fails.  Also records candidates/sec for the
    perf-floor trajectory.  Divergence checking stays off here — the
    sharded probes own that gate, and the fuzz probe's job is the fuzz
    loop itself.
    """
    from repro.fuzz import Corpus, FuzzConfig, Fuzzer

    config = FuzzConfig(
        seed=7,
        candidates=4 if quick else 8,
        campaign_seed=0,
        check_divergence=False,
        shrink_attempts=60,
    )
    first = Fuzzer(config, corpus=Corpus()).run()
    second = Fuzzer(config, corpus=Corpus()).run()
    crashes = [
        finding.as_dict() for finding in first.findings
        if finding.original.verdict.kind == "crash"
    ]
    return {
        "seed": config.seed,
        "candidates": config.candidates,
        "evaluated": first.evaluated,
        "stopped_by": first.stopped_by,
        "admitted": len(first.admitted),
        "findings": len(first.findings),
        "crash_findings": crashes,
        "coverage_keys": first.coverage_keys,
        "coverage_by_layer": first.coverage_by_layer,
        "wall_seconds": round(first.wall_seconds, 3),
        "candidates_per_sec": round(first.candidates_per_sec, 3),
        "deterministic": (
            first.determinism_witness() == second.determinism_witness()
        ),
    }


def probe_resume(quick: bool = False) -> dict:
    """Checkpoint/resume determinism probe (the PR 9 gate).

    Interrupt a checkpointed campaign cell for real — a worker-fault
    injector kills one shard's worker and the backend is allowed no
    retry, so the cell dies with exactly one shard durable — then
    resume it with a healthy backend against the same store and compare
    the merged telemetry AND span digests against an uninterrupted
    serial run of the same cell.  Inline executors only: deterministic,
    no processes, so the gate applies identically on a 1-CPU container
    (no skip guard needed, unlike the wall-clock speedup gates).
    """
    import tempfile
    from dataclasses import replace as dc_replace

    from repro.campaign import (
        CampaignCheckpoint,
        DistributedBackend,
        InlineExecutor,
        ShardExhaustedError,
        WorkerFaultInjector,
        run_cell,
    )
    from repro.scenarios import get_scenario

    name = "recovery-ladder-drill"
    seed, shards, kill_shard = 7, 3, 1
    spec = dc_replace(get_scenario(name), record_spans=True)
    serial = run_cell(spec, seed)
    result = {
        "scenario": name,
        "seed": seed,
        "shards": shards,
        "killed_shard": kill_shard,
        "interrupt_observed": False,
        "shards_durable_at_interrupt": 0,
        "lost_shards": shards,
        "telemetry_match": False,
        "span_match": False,
    }
    with tempfile.TemporaryDirectory() as tmp:
        db = os.path.join(tmp, "resume_probe.sqlite")
        # Phase 1: the interrupted sitting.  Shard 0 lands durably;
        # shard `kill_shard` loses its (only allowed) worker and the
        # campaign dies mid-cell.
        faulty_backend = DistributedBackend(
            InlineExecutor(WorkerFaultInjector(kill_shards=(kill_shard,))),
            shards=shards, max_attempts=1,
        )
        with CampaignCheckpoint(db) as checkpoint:
            try:
                run_cell(
                    spec, seed, backend=faulty_backend,
                    checkpoint=checkpoint, campaign_id="resume-probe",
                )
            except ShardExhaustedError:
                result["interrupt_observed"] = True
            status = checkpoint.status("resume-probe")
            result["shards_durable_at_interrupt"] = (
                status["cells"][0]["completed_shards"] if status["cells"]
                else 0
            )
        # Phase 2: resume with a healthy backend against the same store.
        healthy = DistributedBackend(InlineExecutor(), shards=shards)
        with CampaignCheckpoint(db) as checkpoint:
            resumed = run_cell(
                spec, seed, backend=healthy,
                checkpoint=checkpoint, campaign_id="resume-probe",
            )
            status = checkpoint.status("resume-probe")
        cell_status = status["cells"][0] if status["cells"] else {}
        result["lost_shards"] = shards - cell_status.get("completed_shards", 0)
        result["telemetry_match"] = (
            resumed.telemetry_digest == serial.telemetry_digest
        )
        result["span_match"] = resumed.span_digest == serial.span_digest
        result["telemetry_digest"] = serial.telemetry_digest
        result["span_digest"] = serial.span_digest
    return result


def probe_service(quick: bool = False) -> dict:
    """Campaign-service determinism probe (the PR 10 gate).

    Boot the real HTTP service on an ephemeral port against a temp
    history store, submit ``recovery-ladder-drill`` over the wire,
    consume the chunked NDJSON stream to its terminal record, and
    compare both digests against a serial ``run_cell`` of the same
    spec × seed.  In-process threads only — deterministic and identical
    on a 1-CPU container, like the resume probe.
    """
    import tempfile
    import threading
    from dataclasses import replace as dc_replace

    from repro.campaign import run_cell
    from repro.scenarios import get_scenario
    from repro.service import CampaignServer, ServiceClient

    name = "recovery-ladder-drill"
    seed, segments = 7, 4
    spec = dc_replace(get_scenario(name), record_spans=True)
    serial = run_cell(spec, seed)
    result = {
        "scenario": name,
        "seed": seed,
        "segments": segments,
        "state": "unsubmitted",
        "telemetry_records": 0,
        "stream_ordered": False,
        "telemetry_match": False,
        "span_match": False,
        "history_recorded": False,
        "telemetry_digest": serial.telemetry_digest,
        "span_digest": serial.span_digest,
    }
    with tempfile.TemporaryDirectory() as tmp:
        server = CampaignServer(
            host="127.0.0.1", port=0,
            db_path=os.path.join(tmp, "service_probe.sqlite"),
            workers=1, segments=segments,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(*server.address)
            start = time.perf_counter()
            job = client.submit(
                [json.loads(spec.canonical_json())], seeds=[seed],
            )
            records = list(client.stream(job["job_id"]))
            result["wall_seconds"] = round(time.perf_counter() - start, 3)
            kinds = [record["type"] for record in records]
            end = records[-1] if records else {}
            result["state"] = end.get("state", "no-end-record")
            result["telemetry_records"] = kinds.count("telemetry")
            result["stream_ordered"] = (
                bool(kinds) and kinds[0] == "job" and kinds[-1] == "end"
            )
            result["telemetry_match"] = (
                end.get("telemetry_digest") == serial.telemetry_digest
            )
            result["span_match"] = (
                end.get("span_digest") == serial.span_digest
            )
            result["history_recorded"] = bool(client.history(limit=5))
        finally:
            server.shutdown()
            server.server_close()
    return result


def run_benches(quick: bool = False) -> dict:
    """Each bench_e*.py once; returns per-file status."""
    results = {}
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if quick:
        env["REPRO_BENCH_QUICK"] = "1"
    else:
        # A stale exported REPRO_BENCH_QUICK must not silently down-scale
        # a run recorded as full mode.
        env.pop("REPRO_BENCH_QUICK", None)
    for path in sorted(glob.glob(os.path.join(REPO_ROOT, "benchmarks", "bench_e*.py"))):
        name = os.path.basename(path)
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", path, "-q", "--benchmark-disable",
             "-p", "no:cacheprovider"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        seconds = round(time.perf_counter() - start, 2)
        results[name] = {
            "ok": proc.returncode == 0,
            "seconds": seconds,
        }
        status = "ok" if proc.returncode == 0 else "FAIL"
        print(f"  {name:<28} {status:>4}  {seconds:7.2f}s", flush=True)
        if proc.returncode != 0:
            tail = "\n".join(proc.stdout.splitlines()[-15:])
            print(tail)
    return results


def skipped_gates(report: dict) -> list:
    """Every gate this report did NOT apply, with its reason.

    Pure over the JSON report (same discipline as
    :func:`evaluate_report`).  A skipped gate is not a failure, but it
    must never be silent: the runner prints one ``skipped: <reason>``
    line per entry and embeds the list in the report, so a green CI log
    on a small host is readable as "passed N gates, skipped these two"
    rather than as a full pass.
    """
    skipped = []
    reason = perf_skip_reason(report)
    if report.get("perf_floor") and reason is not None:
        skipped.append({
            "gate": "perf-floor",
            "reason": f"fleet/scenarios throughput floor not applied: {reason}",
        })
    sharded = report.get("sharded", {})
    cpus = sharded.get("cpu_count") or 0
    shards = sharded.get("shards") or 0
    if shards and cpus < shards:
        skipped.append({
            "gate": "bench_e16-speedup",
            "reason": (
                f"sharded wall-clock speedup >= 2x not asserted: "
                f"{cpus} CPUs cannot physically deliver it at "
                f"{shards} shards (bench_e16 applies the same guard)"
            ),
        })
    return skipped


def evaluate_report(report: dict, priors: list = None) -> list:
    """Every gate the given run_all report violates (empty = pass).

    Pure over the JSON report, so CI steps and unit tests apply exactly
    the rules the smoke run enforces — and so ANY failed bench (not just
    the sharded probe) makes the run exit nonzero.

    ``priors`` (newest-first run_all reports from the history store)
    additionally arms the :mod:`repro.obs.trend` rules: the rolling
    perf floor and the detection-rate drift bound.
    """
    failures = []
    for name, bench in sorted(report.get("benches", {}).items()):
        if not bench.get("ok"):
            failures.append(f"bench {name} failed")
    sharded = report.get("sharded", {})
    if sharded and not sharded.get("digests_match"):
        failures.append(
            "serial and sharded telemetry digests diverged "
            "(shard determinism gate)"
        )
    detection = report.get("detection", {})
    for name in DETECTION_SCENARIOS:
        # A drill silently dropped from the probe must not read as a
        # pass: the loop below only sees cells that are present.
        if name not in detection:
            failures.append(f"{name} missing from the detection probe")
    for name, cell in sorted(detection.items()):
        if cell.get("faulty", 0) == 0:
            failures.append(f"{name}: no faults were injected")
        elif cell.get("detection_rate", 0.0) <= 0.0:
            failures.append(f"{name}: detection rate is zero")
        if cell.get("false_alarms", 0):
            failures.append(f"{name}: false alarms on clean members")
        if not cell.get("digests_match"):
            failures.append(
                f"{name}: serial vs sharded telemetry digests diverged"
            )
        if not cell.get("detection_invariant"):
            failures.append(
                f"{name}: serial vs sharded detection stats diverged"
            )
    drill = detection.get("recovery-ladder-drill")
    if drill is not None:
        if drill.get("recovered", 0) <= 0:
            failures.append("recovery-ladder-drill: no completed recoveries")
        waves = drill.get("ttr_waves", {})
        if not waves:
            failures.append(
                "recovery-ladder-drill: no per-wave time-to-recover recorded"
            )
        for wave, entry in sorted(waves.items()):
            values = [
                entry.get("min", 0.0), entry.get("max", 0.0),
                entry.get("mean", 0.0),
            ]
            if entry.get("count", 0) <= 0 or not all(
                isinstance(v, (int, float)) and math.isfinite(v) for v in values
            ):
                failures.append(
                    f"recovery-ladder-drill wave {wave}: "
                    "time-to-recover not finite"
                )
    diagnosis = report.get("diagnosis", {})
    for name in DIAGNOSIS_SCENARIOS:
        if name not in diagnosis:
            failures.append(f"{name} missing from the diagnosis probe")
    for name, cell in sorted(diagnosis.items()):
        if cell.get("episodes_ranked", 0) <= 0:
            failures.append(f"{name}: no localization episodes recorded")
        elif cell.get("localization_accuracy", 0.0) <= 0.0:
            failures.append(f"{name}: localization accuracy is zero")
        if cell.get("recovered", 0) <= 0:
            failures.append(f"{name}: no completed recoveries")
        if not cell.get("digests_match"):
            failures.append(
                f"{name}: serial vs sharded telemetry digests diverged"
            )
        if not cell.get("diagnosis_invariant"):
            failures.append(
                f"{name}: serial vs sharded diagnosis stats diverged"
            )
        for mode, stats in sorted(cell.get("ttr", {}).items()):
            if stats.get("count", 0) <= 0:
                continue
            values = [stats.get("min", 0.0), stats.get("max", 0.0)]
            if not all(
                isinstance(v, (int, float)) and math.isfinite(v) and v > 0.0
                for v in values
            ):
                failures.append(
                    f"{name}: {mode} time-to-recover not finite"
                )
    fuzz = report.get("fuzz")
    if fuzz is None:
        failures.append("fuzz probe missing from the report")
    else:
        if fuzz.get("evaluated", 0) <= 0:
            failures.append("fuzz probe evaluated no candidates")
        if not fuzz.get("deterministic"):
            failures.append(
                "two identical fuzz runs produced different witnesses "
                "(fuzz determinism gate)"
            )
        for crash in fuzz.get("crash_findings", []):
            failures.append(
                "fuzz probe hit a crash verdict on a grammar-sampled "
                f"candidate: {crash.get('detail', '?')}"
            )
    resume = report.get("resume")
    if resume is None:
        failures.append("resume probe missing from the report")
    else:
        if not resume.get("interrupt_observed"):
            failures.append(
                "resume probe never observed its injected interruption "
                "(the gate proved nothing)"
            )
        if resume.get("shards_durable_at_interrupt", 0) <= 0:
            failures.append(
                "resume probe checkpointed no shards before the "
                "interruption"
            )
        if resume.get("lost_shards", 1) > 0:
            failures.append(
                f"resume left {resume.get('lost_shards')} shard(s) "
                "unexecuted (checkpoint resume gate)"
            )
        if not resume.get("telemetry_match"):
            failures.append(
                "resumed campaign telemetry digest diverged from the "
                "uninterrupted run (checkpoint resume gate)"
            )
        if not resume.get("span_match"):
            failures.append(
                "resumed campaign span digest diverged from the "
                "uninterrupted run (checkpoint resume gate)"
            )
    service = report.get("service")
    if service is None:
        failures.append("service probe missing from the report")
    else:
        if service.get("state") != "complete":
            failures.append(
                "service probe job did not complete "
                f"(state: {service.get('state')})"
            )
        if not service.get("stream_ordered"):
            failures.append(
                "service stream was not job-first/end-last ordered"
            )
        if service.get("telemetry_records", 0) <= 0:
            failures.append(
                "service stream carried no live telemetry records"
            )
        if not service.get("telemetry_match"):
            failures.append(
                "campaign submitted over HTTP produced a telemetry digest "
                "diverging from the serial run (service determinism gate)"
            )
        if not service.get("span_match"):
            failures.append(
                "campaign submitted over HTTP produced a span digest "
                "diverging from the serial run (service determinism gate)"
            )
        if not service.get("history_recorded"):
            failures.append(
                "service did not append the finished campaign to the "
                "run-history store"
            )
    baseline = report.get("seed_baseline", SEED_BASELINE).get(
        "kernel_events_per_sec", 0
    )
    if round(report.get("kernel_events_per_sec", 0)) < baseline:
        failures.append("kernel throughput regressed below the seed baseline")
    floor = report.get("perf_floor", {})
    if floor and perf_skip_reason(report) is None:
        max_regression = floor.get("max_regression", 0.30)
        allowed = 1.0 - max_regression
        for probe, key, metric, unit in (
            ("fleet", "fleet_events_per_sec", "events_per_sec", "events/sec"),
            ("scenarios", "scenarios_events_per_sec", "events_per_sec",
             "events/sec"),
            ("fuzz", "fuzz_candidates_per_sec", "candidates_per_sec",
             "candidates/sec"),
        ):
            if probe == "fuzz" and report.get("mode") == "quick":
                # The fuzz floor was recorded at the full-mode candidate
                # budget; quick mode runs a different (smaller) workload.
                continue
            recorded = floor.get(key, 0)
            measured = report.get(probe, {}).get(metric, 0)
            if recorded and measured < recorded * allowed:
                failures.append(
                    f"{probe} throughput {measured:,} {unit} is more "
                    f"than {max_regression:.0%} below the recorded floor "
                    f"of {recorded:,} (perf floor gate)"
                )
    if priors:
        failures.extend(
            evaluate_trends(report, priors, window=TREND_WINDOW)
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-benches", action="store_true",
        help="skip the bench_e*.py smoke pass; only run throughput probes",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="down-scale every bench (REPRO_BENCH_QUICK=1): CI smoke mode",
    )
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_runtime.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--history", default=DEFAULT_HISTORY,
        help="append the run to this SQLite run-history store "
             "(see repro.obs.history)",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="do not record the run (also disables the trend rules, "
             "which need the prior-run window)",
    )
    parser.add_argument(
        "--label", default=None,
        help="free-form label stored with the run (e.g. the CI run id)",
    )
    args = parser.parse_args()
    default_out = parser.get_default("out")
    if args.quick and os.path.abspath(args.out) == os.path.abspath(default_out):
        parser.error(
            "--quick requires an explicit --out: quick-mode timings must "
            "not overwrite the tracked full-mode trajectory in "
            "BENCH_runtime.json"
        )

    print("probing kernel dispatch throughput ...", flush=True)
    kernel_eps = probe_kernel()
    print(f"  kernel: {kernel_eps:,.0f} events/sec")
    print("probing single-SUO throughput ...", flush=True)
    single_eps = probe_single_suo()
    print(f"  single-SUO TV: {single_eps:,.0f} events/sec")
    print("probing 100-SUO fleet campaign ...", flush=True)
    fleet = probe_fleet()
    print(
        f"  fleet: {fleet['events_per_sec']:,} events/sec over "
        f"{fleet['members']} SUOs, deterministic={fleet['deterministic']}"
    )
    # The sharded probe runs before the big serial scenario probe: its
    # workers fork from a still-lean parent, so the recorded speedup
    # measures the backend rather than copy-on-write page duplication.
    print("probing sharded vs serial campaign execution ...", flush=True)
    sharded = probe_sharded(quick=args.quick)
    print(
        f"  sharded: {sharded['members']} SUOs on {sharded['shards']} shards "
        f"({sharded['cpu_count']} cores): {sharded['speedup']}x speedup, "
        f"digests_match={sharded['digests_match']}"
    )
    print("probing detection/recovery scenarios (serial vs 2-shard) ...", flush=True)
    detection = probe_detection()
    for name, cell in detection.items():
        print(
            f"  {name}: detected {cell['detected']}/{cell['faulty']} "
            f"(rate {cell['detection_rate']}), "
            f"false_alarms={cell['false_alarms']}, "
            f"recovered={cell['recovered']}, "
            f"digests_match={cell['digests_match']}, "
            f"detection_invariant={cell['detection_invariant']}"
        )
    print("probing diagnosis-guided recovery drills (serial vs 2-shard) ...", flush=True)
    diagnosis = probe_diagnosis()
    for name, cell in diagnosis.items():
        print(
            f"  {name}: accuracy {cell['localization_accuracy']} "
            f"({cell['rank_first']}/{cell['episodes_ranked']} ranked first), "
            f"targeted={cell['targeted_rebinds']}, full={cell['full_rebinds']}, "
            f"digests_match={cell['digests_match']}, "
            f"diagnosis_invariant={cell['diagnosis_invariant']}"
        )
    print("probing bounded fuzz campaign (twice, for determinism) ...", flush=True)
    fuzz = probe_fuzz(quick=args.quick)
    print(
        f"  fuzz: {fuzz['evaluated']} candidates at "
        f"{fuzz['candidates_per_sec']} candidates/sec, "
        f"{fuzz['findings']} findings, {fuzz['coverage_keys']} coverage keys, "
        f"deterministic={fuzz['deterministic']}"
    )
    print("probing checkpoint interrupt/resume determinism ...", flush=True)
    resume = probe_resume(quick=args.quick)
    print(
        f"  resume: {resume['scenario']} x{resume['shards']} shards, "
        f"killed shard {resume['killed_shard']}, "
        f"{resume['shards_durable_at_interrupt']} durable at interrupt, "
        f"telemetry_match={resume['telemetry_match']}, "
        f"span_match={resume['span_match']}, "
        f"lost_shards={resume['lost_shards']}"
    )
    print("probing the campaign service over HTTP ...", flush=True)
    service = probe_service(quick=args.quick)
    print(
        f"  service: {service['scenario']} seed {service['seed']} -> "
        f"{service['state']}, {service['telemetry_records']} telemetry "
        f"records, telemetry_match={service['telemetry_match']}, "
        f"span_match={service['span_match']}, "
        f"history_recorded={service['history_recorded']}"
    )
    print("probing 1000-SUO streaming scenario ...", flush=True)
    scenarios = probe_scenarios()
    print(
        f"  scenario: {scenarios['events_per_sec']:,} events/sec over "
        f"{scenarios['members']} SUOs, streaming={scenarios['streaming']}"
    )

    benches = {}
    if not args.no_benches:
        mode = "quick" if args.quick else "full"
        print(f"running benches ({mode} mode) ...", flush=True)
        benches = run_benches(quick=args.quick)

    report = {
        "mode": "quick" if args.quick else "full",
        "kernel_events_per_sec": round(kernel_eps),
        "single_suo_events_per_sec": round(single_eps),
        "fleet": fleet,
        "scenarios": scenarios,
        "sharded": sharded,
        "detection": detection,
        "diagnosis": diagnosis,
        "fuzz": fuzz,
        "resume": resume,
        "service": service,
        "seed_baseline": SEED_BASELINE,
        "perf_floor": PERF_FLOOR,
        "benches": benches,
    }
    report["skipped_gates"] = skipped_gates(report)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    # The trend window is the history as it stood BEFORE this run; the
    # run itself is recorded unconditionally (failed runs are history
    # too — a later fix should show up as recovery, not as a gap).
    priors = []
    if not args.no_history:
        from repro.obs.history import RunHistory

        with RunHistory(args.history) as history:
            priors = history.run_reports(limit=TREND_WINDOW)
            run_id = history.record_run(report, label=args.label)
        print(
            f"recorded run {run_id} in {args.history} "
            f"({len(priors)} prior run{'s' if len(priors) != 1 else ''} "
            "in the trend window)"
        )

    for entry in report["skipped_gates"]:
        print(f"skipped: {entry['gate']}: {entry['reason']}")
    failures = evaluate_report(report, priors=priors)
    for failure in failures:
        print(f"FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
