"""E12 — Sect. 4.2: executable models reveal modeling errors and
undesired feature interactions.

Paper claims: "it was very easy to make modeling errors, for instance,
because there are many interactions between features.  Examples are
relations between dual screen, teletext and various types of on-screen
displays that remove or suppress each other"; executable models plus
model checking / test scripts improve model quality.

The bench (a) checks the shipped TV model clean, (b) re-introduces three
historical modeling mistakes and shows the checker catching each, and
(c) generates the covering test scripts Sect. 4.2 proposes.
"""


from repro.statemachine import Event, ModelChecker, TestGenerator
from repro.tv import build_tv_model
from repro.tv.control_model import _exit_dual

from conftest import print_table, qscale, run_once

# --quick (REPRO_BENCH_QUICK=1) shrinks the state space: two channels
# instead of three and a tighter exploration bound — same claims, ~5x
# less graph.
CHANNELS = qscale(3, 2)
MAX_STATES = qscale(20000, 6000)

# vol_up AND vol_down: with only one of them the volume variable is a
# one-way door and the reachable graph is not strongly connected, which
# makes coverage walks restart from reset far more often.  Quick mode
# drops swap and alert_broadcast — none of the seeded mistakes or
# invariants need them, and they multiply the reachable state space.
ALPHABET = [
    Event(name)
    for name in qscale(
        (
            "power", "ch_up", "vol_up", "vol_down", "mute", "ttx", "menu",
            "back", "dual", "swap", "epg", "ok", "alert_broadcast",
        ),
        (
            "power", "ch_up", "vol_up", "vol_down", "mute", "ttx", "menu",
            "back", "dual", "epg", "ok",
        ),
    )
]


def check(machine, invariants=()):
    return ModelChecker(machine, ALPHABET, invariants=list(invariants), max_states=MAX_STATES).run()


INVARIANTS = [
    (
        "no-dual-while-ttx",
        lambda m: not (m.get("dual") and "ttx" in m.configuration()),
    ),
    (
        "pip-set-iff-dual",
        lambda m: (m.get("pip", 0) > 0) == bool(m.get("dual")),
    ),
    (
        "alert-not-suppressed",
        # whenever the alert state is active the overlay must be alert —
        # trivially true structurally, violated if a transition sneaks out
        lambda m: True,
    ),
]


def test_e12_shipped_model_is_clean(benchmark):
    def experiment():
        return check(build_tv_model(channel_count=CHANNELS), INVARIANTS)

    report = run_once(benchmark, experiment)
    print_table(
        "E12: model checking the shipped TV spec",
        ["metric", "value"],
        [
            ["states explored", report.states_explored],
            ["nondeterministic choices", len(report.nondeterminism)],
            ["deadlocks", len(report.deadlocks)],
            ["invariant violations", len(report.violations)],
            ["unreached states", len(report.unreached_states)],
        ],
    )
    assert report.nondeterminism == []
    assert report.deadlocks == []
    assert report.violations == []


def _buggy_dual_ttx():
    """Modeling mistake 1: forgot that ttx must force single screen."""
    machine = build_tv_model(channel_count=CHANNELS)
    for transition in machine.all_transitions():
        if transition.action is _exit_dual and transition.event == "ttx":
            transition.action = None  # the forgotten suppression rule
    return machine


def _buggy_double_transition():
    """Modeling mistake 2: two enabled transitions for the same event."""
    from repro.statemachine import Transition

    machine = build_tv_model(channel_count=CHANNELS)
    viewing = machine._find_state("tv_spec_root.on.viewing")
    menu = machine._find_state("tv_spec_root.on.menu")
    machine.add_transition(
        Transition(viewing, menu, event="epg", name="epg-also-opens-menu")
    )
    return machine


def _buggy_dead_state():
    """Modeling mistake 3: the EPG overlay is declared but never entered
    (every transition *into* it was forgotten) — dead model parts."""
    machine = build_tv_model(channel_count=CHANNELS)
    epg = machine._find_state("tv_spec_root.on.epg")
    for bucket_key in list(machine._transitions):
        machine._transitions[bucket_key] = [
            t for t in machine._transitions[bucket_key] if t.target is not epg
        ]
    return machine


def test_e12_checker_catches_seeded_modeling_errors(benchmark):
    def experiment():
        results = {}
        report = check(_buggy_dual_ttx(), INVARIANTS)
        results["forgot dual/ttx rule"] = (
            "invariant violation", len(report.violations)
        )
        report = check(_buggy_double_transition())
        results["conflicting transitions"] = (
            "nondeterminism", len(report.nondeterminism)
        )
        report = check(_buggy_dead_state())
        results["unreachable overlay"] = (
            "unreached states", len(report.unreached_states)
        )
        return results

    results = run_once(benchmark, experiment)
    print_table(
        "E12b: seeded modeling mistakes vs checker findings "
        "(paper: modeling errors from feature interactions are easy to make)",
        ["seeded mistake", "finding class", "findings"],
        [[k, v[0], v[1]] for k, v in results.items()],
    )
    assert all(count > 0 for _, count in results.values())


def test_e12_testgen_covers_interaction_transitions(benchmark):
    def experiment():
        machine = build_tv_model(channel_count=CHANNELS)
        generator = TestGenerator(machine, ALPHABET, max_states=MAX_STATES)
        scenarios = generator.generate(max_scenarios=500)
        covered = set()
        for scenario in scenarios:
            covered |= scenario.covers
        graph = generator._graph
        total = graph.number_of_edges()
        return len(scenarios), sum(len(s) for s in scenarios), len(covered), total

    count, presses, covered, total = run_once(benchmark, experiment)
    print_table(
        "E12c: generated test scripts (Sect. 4.2 'test scripts')",
        ["scripts", "total key presses", "edges covered", "edges total"],
        [[count, presses, covered, total]],
    )
    assert covered == total
