"""E5 — Sect. 4.5: partial recovery of recoverable units vs full restart.

Paper claim (Twente): "independent recovery of parts of the system is
possible without large overhead" — the whole motivation for recoverable
units over whole-system restart.

The bench builds a TV-like set of recoverable units with a communication
manager, injects unit failures, and compares (a) downtime per recovery,
(b) collateral damage (other units' availability), and (c) message loss,
between partial recovery and whole-system restart.
"""


from repro.core import RecoveryAction
from repro.recovery import (
    CommunicationManager,
    RecoverableUnit,
    RecoveryManager,
)
from repro.sim import Delay, Interrupted, Kernel

from conftest import print_table, qscale, run_once

UNIT_SPECS = [
    ("tuner_driver", 1.0),
    ("video_pipeline", 2.0),
    ("teletext", 0.8),
    ("osd", 0.5),
    ("audio", 0.6),
]


def build_system():
    kernel = Kernel()
    manager = RecoveryManager(kernel)
    comm = CommunicationManager(kernel)
    ticks = {}
    units = {}

    for name, restart_time in UNIT_SPECS:
        ticks[name] = []

        def factory(name=name):
            def body():
                try:
                    while True:
                        yield Delay(0.5)
                        ticks[name].append(kernel.now)
                except Interrupted:
                    return

            return body()

        unit = RecoverableUnit(kernel, name, factory=factory, restart_time=restart_time)
        unit.start()
        manager.manage(unit)
        comm.register(unit, lambda message: None)
        units[name] = unit
    return kernel, manager, comm, units, ticks


def availability(ticks, name, start, end, tick_period=0.5):
    expected = (end - start) / tick_period
    actual = sum(1 for t in ticks[name] if start <= t < end)
    return actual / expected if expected else 1.0


def run_strategy(kind):
    kernel, manager, comm, units, ticks = build_system()
    kernel.run(until=10.0)
    # teletext fails three times over the run
    total_downtime = 0.0
    for failure_time in (10.0, 40.0, 70.0):
        kernel.run(until=failure_time)
        action = RecoveryAction(
            time=kernel.now,
            kind="restart_unit" if kind == "partial" else "restart_all",
            target="teletext" if kind == "partial" else "*",
        )
        total_downtime += manager.execute(action)
        # traffic to the recovering unit while it is down
        for _ in range(5):
            comm.send("osd", "teletext", "page-request")
    kernel.run(until=100.0)
    audio_availability = availability(ticks, "audio", 10.0, 100.0)
    return {
        "downtime": total_downtime,
        "audio_availability": audio_availability,
        "messages_dropped": comm.dropped,
        "messages_buffered": comm.buffered,
    }


def test_e5_partial_vs_full_restart(benchmark):
    def experiment():
        return {kind: run_strategy(kind) for kind in ("partial", "full")}

    results = run_once(benchmark, experiment)
    partial, full = results["partial"], results["full"]
    print_table(
        "E5: partial recovery vs whole-system restart "
        "(paper: independent recovery without large overhead)",
        ["metric", "partial recovery", "full restart"],
        [
            ["total downtime", f"{partial['downtime']:.1f}", f"{full['downtime']:.1f}"],
            [
                "audio availability",
                f"{partial['audio_availability']:.3f}",
                f"{full['audio_availability']:.3f}",
            ],
            ["messages dropped", partial["messages_dropped"], full["messages_dropped"]],
            ["messages buffered", partial["messages_buffered"], full["messages_buffered"]],
        ],
    )
    # Shape: partial recovery's downtime is a fraction of full restart's,
    # unaffected units stay ~fully available, and no traffic is lost.
    assert partial["downtime"] < 0.5 * full["downtime"]
    assert partial["audio_availability"] > 0.95
    assert full["audio_availability"] < partial["audio_availability"]
    assert partial["messages_dropped"] == 0


def test_e5_steady_state_overhead(benchmark):
    """The framework's cost when nothing fails: communication-manager
    routing vs direct calls (paper: 'without large overhead')."""

    def measure():
        kernel, manager, comm, units, ticks = build_system()
        kernel.run(until=50.0)
        sent = 0
        for _ in range(qscale(2000, 500)):
            comm.send("osd", "teletext", "req")
            sent += 1
        return comm.delivered, sent

    delivered, sent = run_once(benchmark, measure)
    print_table(
        "E5b: steady-state routing overhead",
        ["messages sent", "delivered immediately"],
        [[sent, delivered]],
    )
    assert delivered == sent
