"""E6 — Sect. 4.6: user perception — the attribution effect.

Paper claim (DTI): users *rank* image quality and the motorized swivel as
comparably important, yet under observation tolerate bad image quality
(attributed to external sources) while a broken swivel irritates them.

The bench runs the controlled-experiment simulator over a user population
and prints the stated-importance vs observed-irritation table, plus the
sensitivity of the effect to the external-attribution discount.
"""


from repro.perception import (
    ControlledStudy,
    PAPER_FUNCTIONS,
    SeverityModel,
    generate_population,
)

from conftest import print_table, qscale, run_once


def test_e6_attribution_effect(benchmark):
    def experiment():
        study = ControlledStudy(PAPER_FUNCTIONS, seed=42)
        return study.run(generate_population(qscale(500, 150), seed=7))

    result = run_once(benchmark, experiment)
    rows = []
    for name, outcome in sorted(result.outcomes.items()):
        rows.append(
            [
                name,
                f"{outcome.stated_importance_mean:.2f}",
                f"{outcome.observed_irritation_mean:.3f}",
                f"{outcome.external_attribution_rate:.2f}",
            ]
        )
    print_table(
        "E6: stated importance vs observed irritation "
        "(paper: image quality tolerated, swivel irritates)",
        ["function", "stated importance", "observed irritation", "external attribution"],
        rows,
    )
    image = result.outcomes["image_quality"]
    swivel = result.outcomes["swivel"]
    assert abs(image.stated_importance_mean - swivel.stated_importance_mean) < 0.1
    assert swivel.observed_irritation_mean > 1.5 * image.observed_irritation_mean
    assert image.external_attribution_rate > 0.6
    assert swivel.external_attribution_rate < 0.2


def test_e6_discount_sensitivity(benchmark):
    """Ablation: the effect vanishes when attribution carries no weight."""

    def sweep():
        rows = []
        for discount in (0.0, 0.4, 0.8):
            study = ControlledStudy(
                PAPER_FUNCTIONS,
                severity=SeverityModel(external_discount=discount),
                seed=42,
            )
            result = study.run(generate_population(qscale(300, 120), seed=7))
            image = result.outcomes["image_quality"].observed_irritation_mean
            swivel = result.outcomes["swivel"].observed_irritation_mean
            rows.append([discount, f"{image:.3f}", f"{swivel:.3f}", f"{swivel / image:.2f}"])
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "E6b: attribution-discount ablation",
        ["external discount", "image irritation", "swivel irritation", "ratio"],
        rows,
    )
    ratios = [float(row[3]) for row in rows]
    assert ratios == sorted(ratios)  # effect grows with the discount
    assert ratios[0] < 1.3           # no discount -> no big gap
    assert ratios[-1] > 1.5          # paper's regime -> swivel dominates
