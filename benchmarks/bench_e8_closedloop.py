"""E8 — Fig. 1 + Fig. 2 + Sect. 5: the complete closed loop, end to end.

The paper validates the Linux awareness framework "by means of
model-to-model experiments": a specification model compared against an
SUO generated from models, then used for correction.  This bench runs the
full observe → detect → diagnose → recover loop on the simulated TV with
the teletext synchronization fault, and reports the loop-stage breakdown
the architecture promises: detection, diagnosis, recovery, verification.

It also benchmarks the ablation Sect. 3 motivates: one global monitor vs
hierarchical per-aspect monitors.
"""


from repro.awareness import (
    ModeConsistencyChecker,
    make_tv_monitor,
    ttx_sync_rule,
)
from repro.core import AwarenessLoop, LadderStep, MonitorHierarchy, RecoveryPolicy
from repro.recovery import RecoveryManager
from repro.tv import FaultInjector, TVSet

from conftest import print_table, qscale, run_once

# After the fault activates (press 3) every later teletext session runs on
# a channel the stale acquirer does not believe is tuned.
SCENARIO = ["power", "ttx", "ttx", "ch_up", "ttx", "vol_up", "ch_up", "ttx"]


def build_loop(tv, monitor, checker, injector):
    manager = RecoveryManager(tv.kernel)
    manager.register_repair("ttx_resync", lambda: injector.clear("drop_ttx_notify"))
    policy = RecoveryPolicy()
    policy.add_ladder("ttx-*", [LadderStep("repair", "ttx_resync", 0.0)])
    policy.add_ladder("screen", [LadderStep("repair", "ttx_resync", 0.0)])
    policy.add_ladder("sound", [LadderStep("repair", "ttx_resync", 0.0)])
    loop = AwarenessLoop(tv.kernel, policy, manager, settle_time=8.0)
    loop.attach(monitor.controller)
    loop.attach(checker)
    loop.post_recovery_hooks.append(
        lambda incident: (monitor.comparator.reset(), checker.reset())
    )
    return loop


def run_closed_loop():
    tv = TVSet(seed=21)
    monitor = make_tv_monitor(tv)
    checker = ModeConsistencyChecker(
        tv.kernel,
        lambda: {
            tv.teletext.acquirer.name: tv.teletext.acquirer.mode,
            tv.teletext.renderer.name: tv.teletext.renderer.mode,
        },
        interval=1.0,
    )
    checker.add_rule(
        ttx_sync_rule(tv.teletext.acquirer.name, tv.teletext.renderer.name)
    )
    checker.start()
    injector = FaultInjector(tv)
    injector.inject("drop_ttx_notify", activate_after_presses=3)
    loop = build_loop(tv, monitor, checker, injector)
    for key in SCENARIO:
        tv.press(key)
        tv.run(5.0)
    tv.run(qscale(30.0, 20.0))
    return tv, monitor, checker, loop


def test_e8_closed_loop_recovers(benchmark):
    tv, monitor, checker, loop = run_once(benchmark, run_closed_loop)
    summary = loop.summary()
    print_table(
        "E8: closed-loop pass (observe->detect->recover->verify)",
        ["stage", "result"],
        [
            ["errors detected", len(summary.errors)],
            ["recovery actions", len(summary.actions)],
            ["incidents verified recovered", loop.recovered_count()],
            ["mean detection latency", f"{summary.detection_latency:.2f}"
             if summary.detection_latency is not None else "n/a"],
            ["final ttx status", tv.screen_descriptor().get("ttx_status")],
            ["loop recovered", summary.recovered],
        ],
    )
    assert summary.errors, "fault went undetected"
    assert summary.actions, "no recovery executed"
    assert summary.recovered
    assert tv.screen_descriptor().get("ttx_status") == "shown"


def test_e8_open_loop_baseline(benchmark):
    """The paper's open-loop contrast: without the awareness loop the
    failure persists for the rest of the session."""

    def run_open_loop():
        tv = TVSet(seed=21)
        injector = FaultInjector(tv)
        injector.inject("drop_ttx_notify", activate_after_presses=3)
        for key in SCENARIO:
            tv.press(key)
            tv.run(5.0)
        tv.run(qscale(30.0, 20.0))
        return tv.screen_descriptor().get("ttx_status")

    status = run_once(benchmark, run_open_loop)
    print_table(
        "E8b: open-loop baseline (no monitor attached)",
        ["final ttx status", "user impact"],
        [[status, "endless 'searching' until power cycle"]],
    )
    assert status == "searching"


def test_e8_monitor_granularity_ablation(benchmark):
    """Sect. 3: 'typically there will be several awareness monitors'.
    Hierarchical scoping attributes every error to the right subsystem."""

    def run_hierarchy():
        tv, monitor, checker, loop = run_closed_loop()
        hierarchy = MonitorHierarchy("tv")
        # NOTE: attached after the run only to classify collected errors;
        # live scoping is exercised in the integration tests.
        counts = {"user-observables": 0, "mode-consistency": 0}
        for incident in loop.incidents:
            if incident.report.detector.endswith("comparator"):
                counts["user-observables"] += 1
            else:
                counts["mode-consistency"] += 1
        return counts

    counts = run_once(benchmark, run_hierarchy)
    print_table(
        "E8c: error attribution across monitor scopes",
        ["scope", "errors"],
        [[scope, count] for scope, count in counts.items()],
    )
    assert sum(counts.values()) >= 1
    assert counts["mode-consistency"] >= 1
