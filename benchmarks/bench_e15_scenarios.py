"""E15 — beyond the paper: thousand-SUO scenario campaign in bounded
memory.

The ROADMAP's north star is many-scenario campaigns over thousands of
devices.  This bench runs a declarative :class:`ScenarioSpec` with 1000
monitored TVs on one kernel: the fleet auto-selects streaming mode (no
merged trace retained), so observation memory is O(members), while the
incremental trace digest and the telemetry digest keep the run's
determinism checkable.

Claims checked:

* a 1000-SUO campaign completes with **zero retained trace records**;
* streaming telemetry still accounts for every ``suo.*`` event;
* the run is deterministic — same seed, identical trace digest *and*
  byte-identical telemetry summary, across two fresh runs.
"""

import json

from repro.campaign import run_cell
from repro.scenarios import (
    CompiledScenario,
    FaultPhase,
    ScenarioSpec,
    UserProfile,
)

from conftest import print_table, qscale, run_once

DURATION = qscale(40.0, 20.0)

THOUSAND = ScenarioSpec(
    name="thousand-suo-soak",
    description="1000 monitored TVs, light traffic, one mid-run fault wave",
    duration=DURATION,
    tvs=1000,
    profiles=(
        UserProfile("prime-time", mean_gap=15.0,
                    keys=("power", "ch_up", "vol_up", "vol_down", "mute")),
        UserProfile("idle", mean_gap=60.0, keys=("power", "ch_up"), weight=0.5),
    ),
    phases=(
        FaultPhase("volume_overshoot", at=DURATION / 2, fraction=0.1),
    ),
)


def test_e15_thousand_suo_streaming_campaign(benchmark):
    def campaign():
        compiled = CompiledScenario(THOUSAND, seed=15)
        report = compiled.run()
        return compiled, report

    compiled, report = run_once(benchmark, campaign)
    fleet = compiled.fleet
    summary = report.telemetry_summary
    print_table(
        "E15: 1000-SUO scenario campaign, streaming telemetry",
        ["members", "sim s", "dispatched", "events/sec", "suo events",
         "retained records", "reservoir", "faulty"],
        [[
            report.members,
            f"{report.duration:.0f}",
            report.dispatched,
            f"{report.events_per_sec:.0f}",
            summary["events_total"],
            len(fleet.trace.records),
            summary["latency"]["retained"],
            len(report.faulty),
        ]],
    )
    assert report.members == 1000
    assert report.retained_trace is False, "1000 SUOs must auto-stream"
    assert fleet.trace.records == [], "no merged trace may be retained"
    assert summary["events_total"] == report.trace_records > 0
    # reservoir stays bounded however much traffic flowed
    assert summary["latency"]["retained"] <= fleet.telemetry.latency.capacity
    assert report.faulty, "the fault wave must afflict someone"


def test_e15_streaming_run_is_deterministic(benchmark):
    def both():
        first = run_cell(THOUSAND, 15)
        second = run_cell(THOUSAND, 15)
        return first, second

    first, second = run_once(benchmark, both)
    assert first.shard_trace_digests == second.shard_trace_digests
    assert first.telemetry_digest == second.telemetry_digest
    assert json.dumps(first.telemetry_summary, sort_keys=True) == json.dumps(
        second.telemetry_summary, sort_keys=True
    )
    assert first.dispatched == second.dispatched
