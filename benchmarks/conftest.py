"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table/claim from the paper (see
EXPERIMENTS.md).  Simulations are deterministic, so a single round is a
faithful measurement; ``run_once`` wraps ``benchmark.pedantic`` so heavy
experiments do not get re-run dozens of times by the calibrator.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_table(title, header, rows):
    """Print one paper-style result table to the benchmark log."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
