"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table/claim from the paper (see
EXPERIMENTS.md).  Simulations are deterministic, so a single round is a
faithful measurement; ``run_once`` wraps ``benchmark.pedantic`` so heavy
experiments do not get re-run dozens of times by the calibrator.
"""

from __future__ import annotations

import os


def quick_mode() -> bool:
    """True when the smoke runner asked for down-scaled workloads.

    Set by ``benchmarks/run_all.py --quick`` (env ``REPRO_BENCH_QUICK=1``);
    every bench routes its dominant size knob through :func:`qscale` so
    the whole suite smoke-runs in seconds while full mode keeps the
    paper-scale numbers.
    """
    return os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def qscale(full, quick):
    """``full`` normally, ``quick`` under ``--quick``."""
    return quick if quick_mode() else full


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_table(title, header, rows):
    """Print one paper-style result table to the benchmark log."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
