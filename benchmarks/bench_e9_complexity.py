"""E9 — Sect. 2: the complexity argument.

Paper claims: TV software grew from 1 KB (1980) to >20 MB; "given the
large number of possible user settings and types of input, exhaustive
testing is impossible".

The bench quantifies both halves on our artifacts: (a) the state space of
the TV specification model as features are enabled one by one (the
exhaustive-testing wall), and (b) the test-script budget needed for mere
transition coverage, compared against the state count.
"""


from repro.statemachine import Event, ModelChecker, TestGenerator
from repro.tv import build_tv_model

from conftest import print_table, qscale, run_once

FEATURE_ALPHABETS = [
    ("power only", ["power"]),
    ("+channels", ["power", "ch_up", "ch_down"]),
    ("+volume/mute", ["power", "ch_up", "ch_down", "vol_up", "vol_down", "mute"]),
    ("+overlays", [
        "power", "ch_up", "ch_down", "vol_up", "vol_down", "mute",
        "menu", "back", "ttx", "epg",
    ]),
    ("+dual/alerts", [
        "power", "ch_up", "ch_down", "vol_up", "vol_down", "mute",
        "menu", "back", "ttx", "epg", "dual", "swap", "alert_broadcast", "ok",
    ]),
]


def explore(alphabet_names, channels=qscale(5, 3)):
    spec = build_tv_model(channel_count=channels)
    alphabet = [Event(name) for name in alphabet_names]
    report = ModelChecker(spec, alphabet, max_states=qscale(100000, 30000)).run()
    return report.states_explored, report.transitions_taken


def test_e9_state_space_growth(benchmark):
    def sweep():
        rows = []
        for label, alphabet in FEATURE_ALPHABETS:
            states, transitions = explore(alphabet)
            rows.append([label, len(alphabet), states, transitions])
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "E9: reachable state space vs feature count "
        "(paper: exhaustive testing is impossible)",
        ["feature set", "events", "reachable states", "transitions"],
        rows,
    )
    state_counts = [row[2] for row in rows]
    assert state_counts == sorted(state_counts)  # monotone growth
    assert state_counts[-1] > 20 * state_counts[0]


def test_e9_channel_count_scales_state_space(benchmark):
    """The 'large number of user settings' half: states scale with the
    channel range; real TVs have hundreds of channels and dozens of other
    settings, multiplying out to the untestable."""

    def sweep():
        rows = []
        alphabet = ["power", "ch_up", "vol_up", "mute", "ttx", "menu", "back"]
        for channels in (3, 5, 10, 20):
            states, _ = explore(alphabet, channels=channels)
            rows.append([channels, states])
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "E9b: state count vs channel range",
        ["channels", "reachable states"],
        rows,
    )
    counts = [row[1] for row in rows]
    assert counts == sorted(counts)
    assert counts[-1] > counts[0]


def test_e9_test_budget_vs_coverage(benchmark):
    """Transition-coverage scripts are linear-ish; exhaustive state×input
    testing is the product — the gap is the paper's argument."""

    def measure():
        import networkx as nx

        spec = build_tv_model(channel_count=3)
        alphabet = [
            Event(name)
            for name in ("power", "ch_up", "vol_up", "mute", "ttx", "menu", "back")
        ]
        generator = TestGenerator(spec, alphabet, max_states=qscale(20000, 8000))
        scenarios = generator.generate(max_scenarios=qscale(200, 100))
        total_presses = sum(len(s) for s in scenarios)
        graph = generator._graph
        states = graph.number_of_nodes()
        # Exhaustive probing: every (state, input) pair needs its own test
        # run — reset, drive to the state (its BFS depth), press the input.
        depths = nx.single_source_shortest_path_length(
            graph, generator._initial_key
        )
        exhaustive = sum(
            (depth + 1) * len(alphabet) for depth in depths.values()
        )
        return total_presses, states, exhaustive

    total_presses, states, exhaustive = run_once(benchmark, measure)
    print_table(
        "E9c: coverage budget vs exhaustive budget",
        ["metric", "value"],
        [
            ["transition-coverage key presses", total_presses],
            ["reachable states", states],
            ["exhaustive state x input probes", exhaustive],
        ],
    )
    assert total_presses < exhaustive
