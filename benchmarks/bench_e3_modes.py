"""E3 — Sect. 4.3: mode-consistency checking detects teletext sync loss.

Paper claim: "an approach which checks the consistency of internal modes
of components turned out to be successful to detect teletext problems due
to a loss of synchronization between components" [17].

The bench injects the synchronization fault and compares three detectors:
the mode-consistency checker, the model-based comparator, and a no-
monitoring baseline — plus the false-alarm behaviour on a healthy run.
"""


from repro.awareness import (
    ModeConsistencyChecker,
    make_tv_monitor,
    ttx_sync_rule,
)
from repro.tv import FaultInjector, TVSet

from conftest import print_table, qscale, run_once

SCENARIO = ["power", "ttx", "ttx", "ch_up", "ttx"]


def build_tv(faulty):
    tv = TVSet(seed=51)
    monitor = make_tv_monitor(tv)
    checker = ModeConsistencyChecker(
        tv.kernel,
        lambda: {
            tv.teletext.acquirer.name: tv.teletext.acquirer.mode,
            tv.teletext.renderer.name: tv.teletext.renderer.mode,
        },
        interval=1.0,
    )
    checker.add_rule(
        ttx_sync_rule(tv.teletext.acquirer.name, tv.teletext.renderer.name)
    )
    checker.start()
    if faulty:
        FaultInjector(tv).inject("drop_ttx_notify", activate_after_presses=3)
    return tv, monitor, checker


def run_experiment(faulty):
    tv, monitor, checker = build_tv(faulty)
    fault_visible_at = None
    for index, key in enumerate(SCENARIO):
        tv.press(key)
        if faulty and key == "ttx" and index == 4:
            fault_visible_at = tv.kernel.now
        tv.run(5.0)
    tv.run(qscale(15.0, 10.0))
    mode_latency = (
        checker.reports[0].time - fault_visible_at
        if checker.reports and fault_visible_at
        else None
    )
    comparator_latency = (
        monitor.errors[0].time - fault_visible_at
        if monitor.errors and fault_visible_at
        else None
    )
    return {
        "mode_reports": len(checker.reports),
        "comparator_reports": len(monitor.errors),
        "mode_latency": mode_latency,
        "comparator_latency": comparator_latency,
    }


def test_e3_mode_consistency_detection(benchmark):
    def experiment():
        return {"faulty": run_experiment(True), "healthy": run_experiment(False)}

    results = run_once(benchmark, experiment)
    faulty = results["faulty"]
    healthy = results["healthy"]
    def fmt(v):
        return f"{v:.2f}" if isinstance(v, float) else str(v)

    print_table(
        "E3: teletext sync-loss detection by mode consistency "
        "(paper: mode checking successfully detects these faults)",
        ["detector", "errors (faulty run)", "latency", "errors (healthy run)"],
        [
            ["mode-consistency", faulty["mode_reports"], fmt(faulty["mode_latency"]), healthy["mode_reports"]],
            ["model comparator", faulty["comparator_reports"], fmt(faulty["comparator_latency"]), healthy["comparator_reports"]],
        ],
    )
    assert faulty["mode_reports"] >= 1          # detected
    assert healthy["mode_reports"] == 0          # no false alarms
    assert healthy["comparator_reports"] == 0
    # mode checking sees the internal inconsistency before the user-level
    # comparator confirms the ttx status divergence
    assert faulty["mode_latency"] <= faulty["comparator_latency"]
