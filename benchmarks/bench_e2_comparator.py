"""E2 — Sect. 4.3: comparator tuning (threshold / consecutive deviations).

The paper: "small delays in system-internal communication might easily
lead to differences during a short time interval", hence per-observable
thresholds and a maximum number of consecutive deviations, trading false
errors against detection speed.

The bench sweeps ``max_consecutive`` under realistic IPC delay/jitter and
measures (a) false errors on a fault-free run and (b) detection latency
on a faulty run — the paper's trade-off frontier.
"""


from repro.awareness import default_tv_config, make_tv_monitor
from repro.tv import FaultInjector, TVSet

from conftest import print_table, qscale, run_once

WORKLOAD = [
    "power", "ttx", "ch_up", "ttx", "menu", "back", "vol_up", "vol_up",
    "epg", "epg", "dual", "swap", "dual", "ttx", "ch_down", "ttx", "power",
]


def run_point(max_consecutive, delay=0.3, jitter=0.25, period=0.25):
    config = default_tv_config(max_consecutive=max_consecutive, period=period)

    # (a) fault-free run: every reported error is a false error
    tv = TVSet(seed=41)
    monitor = make_tv_monitor(
        tv, config=config, channel_delay=delay, channel_jitter=jitter
    )
    for key in WORKLOAD:
        tv.press(key)
        tv.run(4.0)
    tv.run(6.0)
    false_errors = len(monitor.errors)

    # (b) faulty run: detection latency for a mute fault
    config_b = default_tv_config(max_consecutive=max_consecutive, period=period)
    tv_f = TVSet(seed=41)
    monitor_f = make_tv_monitor(
        tv_f, config=config_b, channel_delay=delay, channel_jitter=jitter
    )
    FaultInjector(tv_f).inject("mute_noop")
    tv_f.press("power")
    tv_f.run(4.0)
    fault_time = tv_f.kernel.now
    tv_f.press("mute")
    tv_f.run(30.0)
    sound_errors = [e for e in monitor_f.errors if e.observable == "sound"]
    latency = sound_errors[0].time - fault_time if sound_errors else None
    return false_errors, latency


def test_e2_tolerance_tradeoff(benchmark):
    def sweep():
        rows = []
        for max_consecutive in qscale((1, 2, 3, 5, 8), (1, 3, 8)):
            false_errors, latency = run_point(max_consecutive)
            rows.append(
                [
                    max_consecutive,
                    false_errors,
                    f"{latency:.2f}" if latency is not None else "missed",
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "E2: consecutive-deviation tolerance vs false errors and latency "
        "(paper: trade-off between avoiding false errors and reporting fast)",
        ["max_consecutive", "false errors (no fault)", "detection latency"],
        rows,
    )
    # Shape: strictest setting produces false alarms; a tolerant setting
    # eliminates them; latency grows monotonically with tolerance.
    false_by_setting = [row[1] for row in rows]
    assert false_by_setting[0] > 0
    assert false_by_setting[-1] == 0
    latencies = [float(row[2]) for row in rows if row[2] != "missed"]
    assert latencies == sorted(latencies)


def test_e2_event_vs_time_comparison(benchmark):
    """Ablation: event-based vs time-based triggering (Sect. 4.3 supports
    both; event-based detects input-driven faults faster, time-based
    catches quiet divergence)."""
    from repro.awareness import AwarenessConfig

    def run_mode(trigger):
        config = AwarenessConfig()
        config.observable("screen", max_consecutive=3, trigger=trigger, period=0.5)
        config.observable("sound", max_consecutive=3, trigger=trigger, period=0.5)
        tv = TVSet(seed=42)
        monitor = make_tv_monitor(tv, config=config)
        FaultInjector(tv).inject("mute_noop")
        tv.press("power")
        tv.run(4.0)
        fault_time = tv.kernel.now
        tv.press("mute")
        tv.run(30.0)
        errors = [e for e in monitor.errors if e.observable == "sound"]
        return (errors[0].time - fault_time) if errors else None

    def sweep():
        return {trigger: run_mode(trigger) for trigger in ("event", "time", "both")}

    latencies = run_once(benchmark, sweep)
    print_table(
        "E2b: comparison trigger ablation",
        ["trigger", "detection latency"],
        [[k, f"{v:.2f}" if v else "missed"] for k, v in latencies.items()],
    )
    # The mute fault produces no further output events, so a purely
    # event-based comparator can under-sample the divergence; time-based
    # (and combined) comparison is what catches quiet divergence — the
    # reason the framework supports a comparison *frequency* (Sect. 4.3).
    assert latencies["time"] is not None
    assert latencies["both"] is not None
