"""E11 — Sect. 4.5: adaptive run-time memory arbitration.

Paper claim (NXP Research): making memory arbitration adaptable at run
time deals with memory-access problems — a latency-sensitive client (the
video path) can be protected against background hogs without re-taping
the chip.

The bench runs a video client against background memory hogs under three
arbiters — static round-robin, static priority, and the adaptive
controller — and reports the video client's latency and the hogs'
throughput (the fairness cost of protection).
"""


from repro.platform import MemoryArbiter
from repro.recovery import AdaptiveArbiterController
from repro.sim import Delay, Kernel, Process

from conftest import print_table, qscale, run_once

VIDEO_BOUND = 3.0


def run_system(mode):
    kernel = Kernel()
    arbiter = MemoryArbiter(kernel, words_per_time=100.0)
    controller = None
    if mode == "priority":
        arbiter.set_policy("priority")
        arbiter.set_priority("video", 0)
        arbiter.set_priority("hog1", 10)
        arbiter.set_priority("hog2", 10)
    elif mode == "adaptive":
        controller = AdaptiveArbiterController(
            kernel, arbiter, latency_bounds={"video": VIDEO_BOUND}, interval=10.0
        )
        controller.start()

    def client(name, words, count):
        def body():
            for _ in range(count):
                yield from arbiter.access(name, words)

        Process(kernel, body())

    client("video", 50, 200)
    client("hog1", 500, 70)
    client("hog2", 500, 70)
    kernel.run(until=qscale(900.0, 400.0))
    return {
        "video_latency": arbiter.client_stats("video").mean_latency(),
        "video_max": arbiter.client_stats("video").max_latency,
        "hog_words": arbiter.client_stats("hog1").words
        + arbiter.client_stats("hog2").words,
        "adaptations": len(controller.events) if controller else 0,
    }


def test_e11_adaptive_arbitration(benchmark):
    def experiment():
        return {mode: run_system(mode) for mode in ("round_robin", "priority", "adaptive")}

    results = run_once(benchmark, experiment)
    rows = [
        [
            mode,
            f"{r['video_latency']:.2f}",
            f"{r['video_max']:.2f}",
            r["hog_words"],
            r["adaptations"],
        ]
        for mode, r in results.items()
    ]
    print_table(
        "E11: memory arbitration policies under contention "
        f"(video latency bound = {VIDEO_BOUND})",
        ["arbiter", "video mean latency", "video max", "hog words served", "adaptations"],
        rows,
    )
    static = results["round_robin"]
    adaptive = results["adaptive"]
    # static RR violates the video bound; adaptation pulls it down
    assert static["video_latency"] > VIDEO_BOUND
    assert adaptive["video_latency"] < static["video_latency"]
    assert adaptive["adaptations"] >= 1
    # hogs still make progress (adaptation is not starvation)
    assert adaptive["hog_words"] > 0


def test_e11_adaptation_reacts_to_phase_change(benchmark):
    """Contention appears mid-run; the controller reacts at run time —
    the whole point of *run-time* adaptability."""

    def experiment():
        kernel = Kernel()
        arbiter = MemoryArbiter(kernel, words_per_time=100.0)
        controller = AdaptiveArbiterController(
            kernel, arbiter, latency_bounds={"video": VIDEO_BOUND}, interval=10.0
        )
        controller.start()

        def video():
            while kernel.now < 900.0:
                yield from arbiter.access("video", 50)
                yield Delay(1.0)

        def hog(name, start):
            def body():
                yield Delay(start)
                for _ in range(50):
                    yield from arbiter.access(name, 400)

            return body

        Process(kernel, video())
        Process(kernel, hog("hog1", 300.0)())
        Process(kernel, hog("hog2", 300.0)())
        kernel.run(until=qscale(1000.0, 600.0))
        first_adaptation = controller.events[0].time if controller.events else None
        return first_adaptation

    first_adaptation = run_once(benchmark, experiment)
    print_table(
        "E11b: reaction to a contention phase change at t=300",
        ["first adaptation at"],
        [[f"{first_adaptation:.0f}" if first_adaptation else "never"]],
    )
    assert first_adaptation is not None
    assert first_adaptation > 300.0
    assert first_adaptation < 400.0
