"""E13 — Sect. 2 / Sect. 5: the cost constraint of the approach itself.

The Trader challenge is to improve dependability "with minimal additional
hardware costs and without degrading performance", and Sect. 5 notes "the
constraint to minimize overhead is a limiting factor".

This bench measures what attaching the awareness stack costs on our
substrate: wall-clock time and simulation-event count for the *same*
workload bare, with the Fig. 2 monitor, and with the full integrated
stack (monitor + mode checker + online diagnosis + recovery loop).  The
assertion is the paper's constraint: monitoring must stay within a small
multiple of the bare system.
"""

import time as wallclock
from dataclasses import replace


from repro.awareness import make_tv_monitor
from repro.campaign import run_cell
from repro.core import TraderTV
from repro.scenarios import get_scenario
from repro.tv import TVSet

from conftest import print_table, qscale, run_once

WORKLOAD = [
    "power", "ch_up", "ch_up", "vol_up", "ttx", "ttx", "menu", "back",
    "dual", "swap", "dual", "epg", "epg", "mute", "mute", "ch_down",
    "ttx", "ch_up", "ttx", "power",
] * 3


def drive(tv):
    for key in WORKLOAD:
        tv.press(key)
        tv.run(3.0)
    tv.run(5.0)
    return tv.kernel.dispatched_count


def run_bare():
    start = wallclock.perf_counter()
    tv = TVSet(seed=55)
    events = drive(tv)
    return wallclock.perf_counter() - start, events


def run_monitored():
    start = wallclock.perf_counter()
    tv = TVSet(seed=55)
    make_tv_monitor(tv)
    events = drive(tv)
    return wallclock.perf_counter() - start, events


def run_full_stack():
    start = wallclock.perf_counter()
    system = TraderTV(seed=55)
    events = drive(system.tv)
    return wallclock.perf_counter() - start, events


def test_e13_monitoring_overhead(benchmark):
    def experiment():
        rows = {}
        # interleave repetitions so machine noise spreads evenly
        samples = {"bare": [], "monitored": [], "full stack": []}
        events = {}
        for _ in range(qscale(3, 2)):
            for name, runner in (
                ("bare", run_bare),
                ("monitored", run_monitored),
                ("full stack", run_full_stack),
            ):
                elapsed, dispatched = runner()
                samples[name].append(elapsed)
                events[name] = dispatched
        for name in samples:
            rows[name] = (min(samples[name]), events[name])
        return rows

    rows = run_once(benchmark, experiment)
    bare_time, bare_events = rows["bare"]
    table = [
        [
            name,
            f"{elapsed * 1000:.1f} ms",
            dispatched,
            f"{elapsed / bare_time:.2f}x",
        ]
        for name, (elapsed, dispatched) in rows.items()
    ]
    print_table(
        "E13: cost of attaching the awareness stack "
        "(paper: dependability without degrading performance)",
        ["configuration", "wall time (best of 3)", "sim events", "slowdown"],
        table,
    )
    monitored_time, monitored_events = rows["monitored"]
    full_time, full_events = rows["full stack"]
    # The monitor multiplies event counts (channels, sampling loops), but
    # the end-to-end cost must stay within a small constant factor.
    assert monitored_events < 10 * bare_events
    assert monitored_time < 10 * bare_time
    assert full_time < 25 * bare_time


def test_e13_span_recorder_overhead(benchmark):
    """Causal-span recording must honor the same Sect. 2 constraint.

    The recovery-ladder drill runs with and without ``record_spans``,
    repetitions interleaved, best-of compared: the recorder may cost at
    most 5% wall clock — it stays off the ``suo.*`` firehose (exact
    error topics + the ``obs.*`` marker lane), so its handlers fire a
    handful of times per episode, not per event.  The run with the
    recorder enabled must also leave every existing determinism witness
    byte-identical: span markers live on their own namespace precisely
    so the fleet trace digest and the telemetry digest cannot see them.
    """
    spec = get_scenario("recovery-ladder-drill")
    spans_spec = replace(spec, record_spans=True)

    def experiment():
        samples = {"disabled": [], "enabled": []}
        reports = {}
        for _ in range(qscale(5, 3)):
            for name, cell in (("disabled", spec), ("enabled", spans_spec)):
                start = wallclock.perf_counter()
                reports[name] = run_cell(cell, 7)
                samples[name].append(wallclock.perf_counter() - start)
        return {name: min(times) for name, times in samples.items()}, reports

    best, reports = run_once(benchmark, experiment)
    spans = reports["enabled"].spans
    print_table(
        "E13c: cost of causal-span recording (recovery-ladder-drill)",
        ["configuration", "wall time (best of reps)", "episodes", "overhead"],
        [
            ["record_spans=False", f"{best['disabled'] * 1000:.1f} ms", "-",
             "1.00x"],
            ["record_spans=True", f"{best['enabled'] * 1000:.1f} ms",
             spans.get("completed", 0),
             f"{best['enabled'] / best['disabled']:.3f}x"],
        ],
    )
    # the <5% overhead gate (ROADMAP: observability without cost)
    assert best["enabled"] <= best["disabled"] * 1.05, (
        f"span recording cost {best['enabled'] / best['disabled']:.3f}x, "
        "budget is 1.05x"
    )
    # recording must not perturb any existing determinism witness
    assert (
        reports["enabled"].telemetry_digest
        == reports["disabled"].telemetry_digest
    )
    assert (
        reports["enabled"].shard_trace_digests
        == reports["disabled"].shard_trace_digests
    )
    # and it must have actually stitched the drill's episodes
    assert spans.get("completed", 0) > 0
    assert spans.get("forest_digest")


def test_e13_comparison_rate(benchmark):
    """Throughput of the comparator itself: comparisons per wall second."""

    def measure():
        tv = TVSet(seed=55)
        monitor = make_tv_monitor(tv)
        start = wallclock.perf_counter()
        drive(tv)
        elapsed = wallclock.perf_counter() - start
        comparisons = monitor.comparator.stats.comparisons
        return comparisons, comparisons / elapsed

    comparisons, rate = run_once(benchmark, measure)
    print_table(
        "E13b: comparator throughput",
        ["comparisons in workload", "comparisons / wall second"],
        [[comparisons, f"{rate:,.0f}"]],
    )
    assert comparisons > 500
