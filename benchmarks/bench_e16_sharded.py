"""E16 — beyond the paper: sharded campaign execution.

The ROADMAP's next scale decade is sharded fleets: one kernel per shard,
N shards in worker processes, merged telemetry.  This bench runs the
1000-SUO scenario of E15 through both execution backends of the unified
campaign API and checks the two claims that make sharding *trustworthy*:

* **determinism** — the sharded run's merged counter/tally telemetry is
  byte-identical to the serial run's (`telemetry_digest` matches), and
  every shard contributes a reproducible trace digest;
* **speed** — with enough cores, 4 shards beat one kernel by >= 2x on
  wall clock (the assertion is gated on ``os.cpu_count()``: on a 1-core
  container the partitioned run still *works* and still matches the
  serial digests, but the processes serialize and the speedup is
  recorded rather than asserted).

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the fleet and shard count
so this doubles as the CI shard-determinism smoke (serial vs 2-shard).
"""

import os

from repro.campaign import ProcessShardBackend, run_cell
from repro.scenarios import FaultPhase, ScenarioSpec, UserProfile

from conftest import print_table, qscale, run_once

MEMBERS = qscale(1000, 200)
DURATION = qscale(20.0, 8.0)
SHARDS = qscale(4, 2)

SPEC = ScenarioSpec(
    name="sharded-soak",
    description="the E15 thousand-SUO workload, partitionable",
    duration=DURATION,
    tvs=MEMBERS,
    profiles=(
        UserProfile("prime-time", mean_gap=15.0,
                    keys=("power", "ch_up", "vol_up", "vol_down", "mute")),
        UserProfile("idle", mean_gap=60.0, keys=("power", "ch_up"), weight=0.5),
    ),
    phases=(
        FaultPhase("volume_overshoot", at=DURATION / 2, fraction=0.1),
    ),
)


def test_e16_sharded_campaign_matches_serial_and_scales(benchmark):
    def both():
        # Sharded first: forking from a lean parent measures the backend,
        # not the CPython copy-on-write penalty of duplicating a heap the
        # serial run would otherwise have left behind (refcount writes
        # unshare forked pages).
        sharded = run_cell(SPEC, 16, backend=ProcessShardBackend(shards=SHARDS))
        serial = run_cell(SPEC, 16)
        return serial, sharded

    serial, sharded = run_once(benchmark, both)
    speedup = (
        serial.wall_seconds / sharded.wall_seconds
        if sharded.wall_seconds > 0 else 0.0
    )
    cores = os.cpu_count() or 1
    print_table(
        f"E16: {MEMBERS}-SUO campaign, serial vs {SHARDS} shards "
        f"({cores} cores)",
        ["backend", "members", "wall s", "dispatched", "suo events",
         "telemetry digest"],
        [
            ["serial", serial.members, f"{serial.wall_seconds:.2f}",
             serial.dispatched, serial.telemetry_summary["events_total"],
             serial.telemetry_digest[:16]],
            [sharded.backend, sharded.members, f"{sharded.wall_seconds:.2f}",
             sharded.dispatched, sharded.telemetry_summary["events_total"],
             sharded.telemetry_digest[:16]],
        ],
    )
    print(f"speedup: {speedup:.2f}x on {cores} cores "
          f"(shard walls: {[round(w, 2) for w in sharded.shard_wall_seconds]})")

    # determinism: the partition is invisible in the merged telemetry
    assert sharded.members == serial.members == MEMBERS
    assert sharded.telemetry_digest == serial.telemetry_digest, \
        "sharded counter/tally telemetry must equal the serial run's"
    assert sharded.faulty == serial.faulty
    assert sharded.detected == serial.detected
    assert len(sharded.shard_trace_digests) == SHARDS
    assert len(set(sharded.shard_trace_digests)) == SHARDS

    # speed: only assert where the hardware can physically deliver it
    if cores >= SHARDS:
        assert speedup >= 2.0, (
            f"expected >= 2x wall-clock speedup at {SHARDS} shards on "
            f"{cores} cores, measured {speedup:.2f}x"
        )


def test_e16_shard_trace_digests_reproduce(benchmark):
    backend = ProcessShardBackend(shards=SHARDS)

    def twice():
        return (
            run_cell(SPEC, 16, backend=backend),
            run_cell(SPEC, 16, backend=backend),
        )

    first, second = run_once(benchmark, twice)
    assert first.shard_trace_digests == second.shard_trace_digests
    assert first.telemetry_digest == second.telemetry_digest
