#!/usr/bin/env python
"""Profile the fleet dispatch hot path and dump the top of the profile.

Runs ONE fleet campaign tick — the same 100-SUO workload as the
``run_all.py`` fleet probe — under ``cProfile`` and prints the top-20
functions by cumulative time (plus the top-20 by internal time, which
is where dispatch-loop regressions actually show up).  CI uploads the
dump as a workflow artifact next to ``/tmp/bench.json`` so a perf-floor
failure comes with the profile that explains it.

Usage::

    python benchmarks/profile_dispatch.py               # print to stdout
    python benchmarks/profile_dispatch.py --out /tmp/profile_dispatch.txt
    python benchmarks/profile_dispatch.py --members 30 --duration 10

The workload is deterministic (fixed fleet seed), so two dumps from the
same code differ only in timings, never in call counts: a changed
``ncalls`` column between two runs is a behavior change, not noise.
See docs/PERF.md for how to read the dump.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import os
import pstats
import sys
import warnings

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

FLEET_SEED = 14
TOP = 20


def profile_fleet_tick(members: int, duration: float) -> tuple:
    """Run one fleet campaign under cProfile; returns (report, stats)."""
    from repro.runtime import ExperimentRunner, MonitorFleet

    fleet = MonitorFleet(seed=FLEET_SEED)
    fleet.add_tvs(members)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        runner = ExperimentRunner(fleet, duration=duration, fault_fraction=0.2)
    profiler = cProfile.Profile()
    profiler.enable()
    report = runner.run()
    profiler.disable()
    return report, pstats.Stats(profiler)


def render(report, stats: pstats.Stats, members: int, duration: float) -> str:
    out = io.StringIO()
    out.write(
        f"fleet dispatch profile: {members} SUOs, {duration:g}s simulated, "
        f"seed {FLEET_SEED}\n"
        f"dispatched {report.dispatched:,} events "
        f"at {report.events_per_sec:,.0f} events/sec\n"
        f"trace digest {report.trace_digest}\n\n"
    )
    stats.stream = out
    stats.sort_stats("cumulative").print_stats(TOP)
    stats.sort_stats("tottime").print_stats(TOP)
    return out.getvalue()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--members", type=int, default=100, help="fleet size (default 100)"
    )
    parser.add_argument(
        "--duration", type=float, default=60.0,
        help="simulated seconds (default 60)",
    )
    parser.add_argument(
        "--out", default=None,
        help="also write the dump to this file (CI artifact path)",
    )
    args = parser.parse_args()

    report, stats = profile_fleet_tick(args.members, args.duration)
    dump = render(report, stats, args.members, args.duration)
    print(dump, end="")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(dump)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
