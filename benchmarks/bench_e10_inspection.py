"""E10 — Sect. 4.7: prioritizing software-inspection warnings.

Paper claim ([2], Boogerd & Moonen): static execution-likelihood
profiling prioritizes QA-C-style inspection warnings so developers spend
their inspection budget on warnings that matter in the field.

The bench generates a synthetic warning population over the TV's 60 000-
block build, ranks with the likelihood analyzer, and compares the
relevant-warning density at top-N cutoffs against the tool's file-order
output and a random order.
"""


from repro.devtools import WarningGenerator, WarningPrioritizer
from repro.tv.software import SoftwareBuild

from conftest import print_table, qscale, run_once

CUTOFFS = (10, 25, 50, 100)


def test_e10_prioritization_beats_baselines(benchmark):
    def experiment():
        build = SoftwareBuild()
        warnings = WarningGenerator(build, seed=3, warning_count=qscale(800, 300)).generate()
        prioritizer = WarningPrioritizer(build, seed=3)
        return {
            strategy: prioritizer.evaluate(warnings, strategy, cutoffs=CUTOFFS)
            for strategy in ("likelihood", "file_order", "random")
        }

    results = run_once(benchmark, experiment)
    rows = []
    for strategy, result in results.items():
        rows.append(
            [strategy]
            + [f"{result.precision_at[c]:.2f}" for c in CUTOFFS]
            + [result.total_relevant]
        )
    print_table(
        "E10: relevant-warning density at top-N "
        "(paper: execution-likelihood prioritization focuses inspection)",
        ["strategy"] + [f"P@{c}" for c in CUTOFFS] + ["total relevant"],
        rows,
    )
    likelihood = results["likelihood"]
    for baseline in ("file_order", "random"):
        assert (
            likelihood.precision_at[100] > results[baseline].precision_at[100]
        ), baseline
    base_density = likelihood.total_relevant / likelihood.total_warnings
    assert likelihood.precision_at[50] > 1.5 * base_density


def test_e10_robust_across_seeds(benchmark):
    """The ordering advantage is systematic, not a lucky seed."""

    def sweep():
        wins = 0
        trials = qscale(6, 3)
        for seed in range(trials):
            build = SoftwareBuild(seed=seed)
            warnings = WarningGenerator(build, seed=seed, warning_count=500).generate()
            prioritizer = WarningPrioritizer(build, seed=seed)
            likelihood = prioritizer.evaluate(warnings, "likelihood", cutoffs=(50,))
            rand = prioritizer.evaluate(warnings, "random", cutoffs=(50,))
            if likelihood.precision_at[50] > rand.precision_at[50]:
                wins += 1
        return wins, trials

    wins, trials = run_once(benchmark, sweep)
    print_table(
        "E10b: seeds where likelihood beats random at P@50",
        ["wins", "trials"],
        [[wins, trials]],
    )
    assert wins >= trials - 1
