"""E1 — Sect. 4.4: spectrum-based diagnosis of an injected teletext error.

Paper numbers: 60 000 instrumented blocks; a 27-key-press scenario
executes 13 796 of them; the block containing the injected teletext fault
ranks **first** by spectrum similarity.

This bench reruns that experiment on the simulated TV and prints the same
row the paper reports, plus the coefficient sweep the underlying SFL work
([20]) tabulates.
"""

import pytest

from repro.diagnosis import (
    TELETEXT_SCENARIO_27,
    ScenarioRunner,
    SpectrumDiagnoser,
    evaluate_ranking,
)
from repro.tv import FaultInjector, TVSet

from conftest import print_table, qscale, run_once


def run_diagnosis_experiment(coefficient="ochiai", seed=11):
    tv = TVSet(seed=seed)
    FaultInjector(tv).inject("ttx_stale_render", activate_after_presses=10)
    runner = ScenarioRunner(tv)
    result = runner.run(TELETEXT_SCENARIO_27)
    ranking = SpectrumDiagnoser(coefficient).ranking(result.collector)
    quality = evaluate_ranking(
        ranking, runner.build.fault_blocks("ttx_stale_render")
    )
    return result, quality


def test_e1_teletext_fault_ranked_first(benchmark):
    result, quality = run_once(benchmark, run_diagnosis_experiment)
    print_table(
        "E1: teletext fault diagnosis (paper: 60 000 blocks, 27 presses, "
        "13 796 executed, faulty block rank 1)",
        ["metric", "paper", "measured"],
        [
            ["total blocks", 60000, result.total_blocks],
            ["key presses", 27, len(result.keys)],
            ["blocks executed", 13796, result.executed_blocks],
            ["erroneous presses", "(some)", result.error_steps],
            ["faulty block rank", 1, quality.best_rank],
            ["wasted effort", "~0", f"{quality.wasted_effort:.4f}"],
        ],
    )
    assert result.total_blocks == 60000
    assert len(result.keys) == 27
    assert 10000 <= result.executed_blocks <= 20000
    assert quality.best_rank == 1


def test_e1_coefficient_sweep(benchmark):
    def sweep():
        rows = []
        for name in qscale(("ochiai", "tarantula", "jaccard", "dice", "kulczynski2"),
                            ("ochiai", "tarantula", "jaccard")):
            result, quality = run_diagnosis_experiment(coefficient=name)
            rows.append(
                [name, quality.best_rank, f"{quality.wasted_effort:.4f}"]
            )
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "E1b: similarity coefficient sweep",
        ["coefficient", "best rank", "wasted effort"],
        rows,
    )
    assert all(rank <= 5 for _, rank, _ in rows)
