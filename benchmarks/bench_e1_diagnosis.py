"""E1 — Sect. 4.4: spectrum-based diagnosis of an injected teletext error.

Paper numbers: 60 000 instrumented blocks; a 27-key-press scenario
executes 13 796 of them; the block containing the injected teletext fault
ranks **first** by spectrum similarity.

Since PR 5 the experiment runs through the unified campaign surface
(``repro.diagnosis.experiment``): the 27-press script is a scripted
user profile, the fault is a scheduled ``FaultPhase``, errors come from
the member's awareness monitor, and the spectra are collected online —
the same metrics as the old hand-rolled driver, now sweepable and
shardable like every other scenario.
"""


from repro.diagnosis.experiment import run_teletext_diagnosis_campaign

from conftest import print_table, qscale, run_once


def run_diagnosis_experiment(coefficient="ochiai", seed=11):
    result = run_teletext_diagnosis_campaign(coefficient=coefficient, seed=seed)
    return result, result.quality


def test_e1_teletext_fault_ranked_first(benchmark):
    result, quality = run_once(benchmark, run_diagnosis_experiment)
    print_table(
        "E1: teletext fault diagnosis (paper: 60 000 blocks, 27 presses, "
        "13 796 executed, faulty block rank 1) — campaign-driven",
        ["metric", "paper", "measured"],
        [
            ["total blocks", 60000, result.total_blocks],
            ["key presses", 27, len(result.keys)],
            ["blocks executed", 13796, result.executed_blocks],
            ["erroneous presses", "(some)", result.error_steps],
            ["faulty block rank", 1, quality.best_rank],
            ["wasted effort", "~0", f"{quality.wasted_effort:.4f}"],
            ["monitor detection", 1.0, result.report.detection_rate],
        ],
    )
    assert result.total_blocks == 60000
    assert len(result.keys) == 27
    assert 10000 <= result.executed_blocks <= 20000
    assert result.error_steps > 0
    assert quality.best_rank == 1
    # The campaign path detects through the real awareness monitor, not
    # a bespoke oracle — the one injected fault must be detected.
    assert result.report.detection_rate == 1.0


def test_e1_coefficient_sweep(benchmark):
    def sweep():
        rows = []
        for name in qscale(("ochiai", "tarantula", "jaccard", "dice", "kulczynski2"),
                            ("ochiai", "tarantula", "jaccard")):
            result, quality = run_diagnosis_experiment(coefficient=name)
            rows.append(
                [name, quality.best_rank, f"{quality.wasted_effort:.4f}"]
            )
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "E1b: similarity coefficient sweep",
        ["coefficient", "best rank", "wasted effort"],
        rows,
    )
    assert all(rank <= 5 for _, rank, _ in rows)
