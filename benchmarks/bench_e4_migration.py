"""E4 — Sect. 4.5: task migration improves image quality under overload.

Paper claim (IMEC): migrating an image-processing task from one processor
to another "leads to improved image quality in case of overload
situations (e.g., due to intensive error correction on a bad input
signal)".

The bench degrades the input signal (inflating error-correction work),
and compares delivered frame quality with and without the run-time load
balancer, across a sweep of signal qualities.
"""


from repro.recovery import LoadBalancer
from repro.tv import TVSet

from conftest import print_table, qscale, run_once


def run_point(signal_quality, migrate, seed=9):
    tv = TVSet(seed=seed)
    tv.press("power")
    tv.run(20.0)
    tv.tuner.degrade_channel(1, signal_quality)
    balancer = None
    if migrate:
        balancer = LoadBalancer(
            tv.kernel,
            tv.soc.scheduler,
            movable_tasks=["video.enhance"],
            miss_rate_threshold=0.2,
            interval=4.0,
        )
        balancer.start()
    start = tv.kernel.now
    tv.run(qscale(300.0, 120.0))
    return {
        "quality": tv.video.mean_quality(since=start + 60),
        "miss_rate": max(t.recent_miss_rate(50) for t in tv.video.tasks),
        "migrations": len(balancer.decisions) if balancer else 0,
    }


def test_e4_migration_improves_quality(benchmark):
    def sweep():
        rows = []
        for signal in (0.9, 0.6, 0.45, 0.3):
            static = run_point(signal, migrate=False)
            balanced = run_point(signal, migrate=True)
            gain = (
                balanced["quality"] / static["quality"]
                if static["quality"] > 0
                else float("inf")
            )
            rows.append(
                [
                    signal,
                    f"{static['quality']:.3f}",
                    f"{balanced['quality']:.3f}",
                    f"{gain:.2f}x",
                    balanced["migrations"],
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "E4: frame quality vs signal quality, static vs migrating "
        "(paper: migration improves image quality under overload)",
        ["signal", "quality (static)", "quality (migrate)", "gain", "migrations"],
        rows,
    )
    # Shape: no benefit needed at good signal; clear win in the overload
    # region where error correction saturates one core.
    good_signal = rows[0]
    overload = rows[2]  # signal 0.45
    assert float(good_signal[1]) > 0.8  # healthy baseline
    assert float(overload[2]) > 2.0 * float(overload[1])
    assert overload[4] >= 1


def test_e4_migration_latency(benchmark):
    """How quickly does the balancer react once overload begins?"""

    def measure():
        tv = TVSet(seed=9)
        tv.press("power")
        tv.run(20.0)
        balancer = LoadBalancer(
            tv.kernel,
            tv.soc.scheduler,
            movable_tasks=["video.enhance"],
            miss_rate_threshold=0.2,
            interval=4.0,
        )
        balancer.start()
        overload_at = tv.kernel.now
        tv.tuner.degrade_channel(1, 0.4)
        tv.run(qscale(200.0, 100.0))
        if not balancer.decisions:
            return None
        return balancer.decisions[0].time - overload_at

    latency = run_once(benchmark, measure)
    print_table(
        "E4b: balancer reaction time",
        ["metric", "value"],
        [["reaction latency (sim time)", f"{latency:.1f}"]],
    )
    assert latency is not None
    assert latency < 100.0
