"""Recovery policy: choosing corrections with minimal user impact.

Sect. 3: recovery should "correct erroneous behaviour, based on the
diagnosis results and information about the expected impact on the user",
and Sect. 5 stresses the high-volume constraint: minimize overhead.

:class:`RecoveryPolicy` keeps, per observable, an *escalation ladder* of
candidate actions ordered by increasing user impact (an in-place repair
disturbs nobody; restarting a unit blanks one feature briefly; a full
restart is the last resort).  Repeated errors on the same observable walk
up the ladder; a quiet period resets it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .contract import Diagnosis, ErrorReport, RecoveryAction


@dataclass(frozen=True)
class LadderStep:
    """One candidate action template on an escalation ladder."""

    kind: str
    target: str
    user_impact: float
    params: Dict[str, object] = field(default_factory=dict)


class RecoveryPolicy:
    """Escalating, impact-ordered action selection."""

    def __init__(self, quiet_period: float = 30.0) -> None:
        #: observable (or "*") → ladder of steps, least impact first.
        self.ladders: Dict[str, List[LadderStep]] = {}
        self.quiet_period = quiet_period
        self._escalation: Dict[str, int] = {}
        self._last_error_time: Dict[str, float] = {}
        self.decisions: List[Tuple[ErrorReport, RecoveryAction]] = []

    # ------------------------------------------------------------------
    def add_ladder(self, observable: str, steps: Sequence[LadderStep]) -> None:
        ordered = sorted(steps, key=lambda step: step.user_impact)
        self.ladders[observable] = list(ordered)

    def ladder_for(self, observable: str) -> Optional[List[LadderStep]]:
        if observable in self.ladders:
            return self.ladders[observable]
        # Prefix match lets one ladder cover families like "ttx-sync(...)".
        for key, ladder in self.ladders.items():
            if key.endswith("*") and observable.startswith(key[:-1]):
                return ladder
        return self.ladders.get("*")

    # ------------------------------------------------------------------
    def decide(
        self, report: ErrorReport, diagnosis: Optional[Diagnosis] = None
    ) -> Optional[RecoveryAction]:
        """Pick the next action for this error, escalating on recurrence."""
        ladder = self.ladder_for(report.observable)
        if not ladder:
            return None
        key = report.observable
        last = self._last_error_time.get(key)
        if last is not None and report.time - last > self.quiet_period:
            self._escalation[key] = 0
        self._last_error_time[key] = report.time
        level = self._escalation.get(key, 0)
        if level >= len(ladder):
            level = len(ladder) - 1  # stay at the top of the ladder
        step = ladder[level]
        self._escalation[key] = level + 1
        params = dict(step.params)
        if diagnosis is not None and diagnosis.best() is not None:
            params.setdefault("suspect", diagnosis.best())
        action = RecoveryAction(
            time=report.time,
            kind=step.kind,
            target=step.target,
            params=params,
            user_impact=step.user_impact,
        )
        self.decisions.append((report, action))
        return action

    def notify_recovered(self, observable: str) -> None:
        """A recovery verified as successful resets the ladder."""
        self._escalation[observable] = 0

    def reset(self, observable: Optional[str] = None) -> None:
        """Drop escalation state — for one observable, or entirely.

        A scenario recovery harness resets the whole policy when a new
        fault episode is armed, so every wave walks the ladder from the
        bottom instead of inheriting the previous wave's escalation.
        """
        if observable is None:
            self._escalation.clear()
            self._last_error_time.clear()
            return
        self._escalation.pop(observable, None)
        self._last_error_time.pop(observable, None)

    def escalation_level(self, observable: str) -> int:
        return self._escalation.get(observable, 0)


def perception_weighted_ladder(
    steps: Sequence[LadderStep],
    function,
    severity_model,
) -> Tuple[LadderStep, ...]:
    """Weight a ladder's user impacts by perceived severity (Sect. 3+4.6).

    The paper's recovery is guided by "information about the expected
    impact on the user"; the perception package quantifies that per
    product function.  This helper scales each step's ``user_impact`` by
    the function's population-level severity weight, so disrupting a
    function users barely notice (externally attributed image hiccups)
    costs less than disrupting one they blame the product for (the
    swivel) — and the policy orders actions accordingly.

    ``function`` is a :class:`repro.perception.severity.FunctionProfile`;
    ``severity_model`` a :class:`repro.perception.severity.SeverityModel`.
    """
    weight = severity_model.severity_weight(function)
    return tuple(
        LadderStep(
            kind=step.kind,
            target=step.target,
            user_impact=step.user_impact * weight,
            params=dict(step.params),
        )
        for step in steps
    )
