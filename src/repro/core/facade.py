"""One-call assembly of the full Trader stack (Sect. 5 'integration').

The paper's stated future work is "the optimal integration of various
techniques for observation, error detection, diagnosis, and recovery".
:class:`TraderTV` is that integration for the TV domain: one object that
builds the SUO, the Fig. 2 monitor, the mode-consistency checker, the
recovery machinery, and the Fig. 1 loop — pre-wired with the repair
ladders for the known fault classes and with comparator/checker resets
after recovery.

Use it when you want the whole closed loop in two lines::

    system = TraderTV(seed=7)
    system.inject("drop_ttx_notify", activate_after_presses=3)
    system.press_sequence(["power", "ttx", "ttx", "ch_up", "ttx"])
    system.run(30.0)
    assert system.loop.recovered_count() == len(system.loop.incidents)
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..awareness.config import AwarenessConfig
from ..awareness.modes import ModeConsistencyChecker, ttx_sync_rule
from ..awareness.monitor import AwarenessMonitor, make_tv_monitor
from ..recovery.recoverymgr import RecoveryManager
from ..tv.faults import FaultInjector
from ..tv.tvset import TVSet
from .hierarchy import MonitorHierarchy
from .loop import AwarenessLoop
from .policy import LadderStep, RecoveryPolicy


class TraderTV:
    """The integrated system: TV + monitors + diagnosis hooks + recovery."""

    def __init__(
        self,
        seed: int = 0,
        config: Optional[AwarenessConfig] = None,
        settle_time: float = 8.0,
        mode_check_interval: float = 1.0,
    ) -> None:
        self.tv = TVSet(seed=seed)
        self.kernel = self.tv.kernel
        self.injector = FaultInjector(self.tv)

        # observation + error detection --------------------------------
        self.monitor: AwarenessMonitor = make_tv_monitor(self.tv, config=config)
        self.mode_checker = ModeConsistencyChecker(
            self.kernel,
            lambda: {
                self.tv.teletext.acquirer.name: self.tv.teletext.acquirer.mode,
                self.tv.teletext.renderer.name: self.tv.teletext.renderer.mode,
            },
            interval=mode_check_interval,
        )
        self.mode_checker.add_rule(
            ttx_sync_rule(
                self.tv.teletext.acquirer.name, self.tv.teletext.renderer.name
            )
        )
        self.mode_checker.start()

        # diagnosis --------------------------------------------------------
        from ..diagnosis.online import OnlineDiagnoser

        self.diagnoser = OnlineDiagnoser(self.tv, monitor=self.monitor)

        # recovery -------------------------------------------------------
        self.recovery = RecoveryManager(self.kernel)
        self._register_repairs()
        self.policy = RecoveryPolicy()
        self._build_ladders()

        # the loop ---------------------------------------------------------
        self.loop = AwarenessLoop(
            self.kernel,
            self.policy,
            self.recovery,
            diagnoser=self.diagnoser.diagnose,
            settle_time=settle_time,
        )
        self.loop.attach(self.monitor.controller)
        self.loop.attach(self.mode_checker)
        self.loop.post_recovery_hooks.append(self._post_recovery)

        # the hierarchical view (several monitors, Sect. 3) ---------------
        self.hierarchy = MonitorHierarchy("tv")
        self.hierarchy.add_scope("user-observables", self.monitor.controller)
        self.hierarchy.add_scope("mode-consistency", self.mode_checker)

    # ------------------------------------------------------------------
    def _register_repairs(self) -> None:
        """Repairs for every fault class the injector knows."""
        for fault in (
            "drop_ttx_notify",
            "ttx_stale_render",
            "volume_overshoot",
            "mute_noop",
            "menu_opens_epg",
        ):
            self.recovery.register_repair(
                f"clear:{fault}",
                lambda fault=fault: self.injector.clear(fault),
            )
        self.recovery.register_repair("clear_all", self._clear_all_faults)

    def _clear_all_faults(self) -> None:
        for fault in list(self.injector.plan):
            self.injector.clear(fault)

    def _build_ladders(self) -> None:
        # Teletext-internal inconsistencies: targeted resync first.
        self.policy.add_ladder(
            "ttx-*",
            [LadderStep("repair", "clear:drop_ttx_notify", user_impact=0.0)],
        )
        # User-observable divergence: escalate from invisible repairs to
        # the catch-all (which still beats a service call).
        generic = [
            LadderStep("repair", "clear:drop_ttx_notify", user_impact=0.0),
            LadderStep("repair", "clear:ttx_stale_render", user_impact=0.0),
            LadderStep("repair", "clear_all", user_impact=0.1),
        ]
        self.policy.add_ladder("screen", list(generic))
        sound = [
            LadderStep("repair", "clear:mute_noop", user_impact=0.0),
            LadderStep("repair", "clear:volume_overshoot", user_impact=0.0),
            LadderStep("repair", "clear_all", user_impact=0.1),
        ]
        self.policy.add_ladder("sound", sound)

    def _post_recovery(self, incident) -> None:
        self.monitor.comparator.reset()
        self.mode_checker.reset()

    # ------------------------------------------------------------------
    # convenience driving API
    # ------------------------------------------------------------------
    def inject(self, fault: str, activate_after_presses: int = 0):
        """Inject a catalogue fault into the SUO."""
        return self.injector.inject(fault, activate_after_presses)

    def press_sequence(self, keys: Sequence[str], gap: float = 5.0) -> None:
        for key in keys:
            self.tv.press(key)
            self.tv.run(gap)

    def run(self, duration: float) -> None:
        self.tv.run(duration)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def health_report(self) -> dict:
        """One-shot summary of the whole stack's state."""
        return {
            "screen": self.tv.screen_descriptor(),
            "sound": self.tv.sound_level(),
            "active_faults": self.injector.active_faults(),
            "errors_by_scope": self.hierarchy.scope_summary(),
            "incidents": len(self.loop.incidents),
            "recovered": self.loop.recovered_count(),
            "comparisons": self.monitor.comparator.stats.comparisons,
            "suppressed_transients": (
                self.monitor.comparator.stats.suppressed_transients
            ),
        }
