"""The closed loop of Fig. 1: observe → detect → diagnose → recover.

:class:`AwarenessLoop` is the paper's primary contribution as an
executable object.  It subscribes to error sources (the Comparator via
the Controller, the mode-consistency checker, hardware monitors), asks
the policy for a correction, executes it through the recovery manager,
and *verifies* the correction by watching whether the error recurs within
a settle window — feedback control at system level, as opposed to the
open-loop fire-and-forget of traditional software.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim.kernel import Kernel
from .contract import Diagnosis, ErrorReport, LoopReport, RecoveryAction
from .policy import RecoveryPolicy

#: A diagnosis provider: called with the triggering error, may return None.
Diagnoser = Callable[[ErrorReport], Optional[Diagnosis]]


@dataclass
class Incident:
    """One error with everything the loop did about it."""

    report: ErrorReport
    diagnosis: Optional[Diagnosis] = None
    action: Optional[RecoveryAction] = None
    downtime: float = 0.0
    verified_at: Optional[float] = None
    recovered: Optional[bool] = None


class AwarenessLoop:
    """Error-driven recovery orchestration."""

    def __init__(
        self,
        kernel: Kernel,
        policy: RecoveryPolicy,
        recovery_manager,
        diagnoser: Optional[Diagnoser] = None,
        settle_time: float = 10.0,
        name: str = "awareness-loop",
    ) -> None:
        self.kernel = kernel
        self.policy = policy
        self.recovery_manager = recovery_manager
        self.diagnoser = diagnoser
        self.settle_time = settle_time
        self.name = name
        self.incidents: List[Incident] = []
        #: Called after executing a recovery action (e.g. comparator reset).
        self.post_recovery_hooks: List[Callable[[Incident], None]] = []
        self.enabled = True

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, error_source) -> None:
        """Subscribe to anything exposing ``subscribe_errors``."""
        error_source.subscribe_errors(self.on_error)

    # ------------------------------------------------------------------
    # the loop body
    # ------------------------------------------------------------------
    def on_error(self, report: ErrorReport) -> None:
        """One pass: diagnose, decide, act, schedule verification."""
        if not self.enabled:
            return
        incident = Incident(report=report)
        self.incidents.append(incident)
        if self.diagnoser is not None:
            incident.diagnosis = self.diagnoser(report)
        action = self.policy.decide(report, incident.diagnosis)
        if action is None:
            incident.recovered = False
            return
        incident.action = action
        incident.downtime = self.recovery_manager.execute(action)
        for hook in self.post_recovery_hooks:
            hook(incident)
        self.kernel.schedule(
            self.settle_time + incident.downtime,
            lambda: self._verify(incident),
            name=f"verify:{report.observable}",
        )

    def _verify(self, incident: Incident) -> None:
        """Did the same observable error again after the action settled?"""
        incident.verified_at = self.kernel.now
        recurred = any(
            other.report.observable == incident.report.observable
            and other.report.time > incident.report.time
            for other in self.incidents
            if other is not incident
        )
        incident.recovered = not recurred
        if incident.recovered:
            self.policy.notify_recovered(incident.report.observable)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> LoopReport:
        report = LoopReport()
        for incident in self.incidents:
            report.errors.append(incident.report)
            if incident.action is not None:
                report.actions.append(incident.action)
            if incident.diagnosis is not None and report.diagnosis is None:
                report.diagnosis = incident.diagnosis
        verified = [i for i in self.incidents if i.recovered is not None]
        report.recovered = bool(verified) and all(i.recovered for i in verified)
        detection = [
            i.report.time - i.report.context["first_deviation_at"]
            for i in self.incidents
            if isinstance(i.report.context.get("first_deviation_at"), (int, float))
        ]
        if detection:
            report.detection_latency = sum(detection) / len(detection)
        return report

    def recovered_count(self) -> int:
        return sum(1 for i in self.incidents if i.recovered)
