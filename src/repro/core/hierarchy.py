"""Hierarchical and incremental awareness (Sect. 3).

"The approach allows the use of partial models [...].  Moreover, we can
apply this approach hierarchically and incrementally to parts of the
system, e.g., to third-party components.  Typically, there will be
several awareness monitors in a complex system, for different components,
different aspects, and different kinds of faults."

:class:`MonitorHierarchy` composes scoped error sources into one stream:
each scope (a component, an aspect like timing, a fault class) registers
its monitor; errors are tagged with their scope and forwarded both to the
scope's own loop (if any) and to the parent aggregate — so local problems
are fixed locally while the global view stays complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from .contract import ErrorReport


@dataclass
class Scope:
    """One registered monitor scope."""

    name: str
    source: object
    #: Optional scope-local error handler (e.g. a dedicated loop).
    local_handler: Optional[Callable[[ErrorReport], None]] = None
    errors: List[ErrorReport] = field(default_factory=list)


class MonitorHierarchy:
    """Aggregates scoped monitors into a single error stream."""

    def __init__(self, name: str = "root") -> None:
        self.name = name
        self.scopes: Dict[str, Scope] = {}
        self.errors: List[ErrorReport] = []
        self.listeners: List[Callable[[ErrorReport], None]] = []

    # ------------------------------------------------------------------
    def add_scope(
        self,
        name: str,
        source,
        local_handler: Optional[Callable[[ErrorReport], None]] = None,
    ) -> Scope:
        """Register a monitor under a scope name.

        ``source`` is anything exposing ``subscribe_errors`` (an awareness
        Controller, a ModeConsistencyChecker, a hardware monitor adapter).
        """
        if name in self.scopes:
            raise ValueError(f"duplicate scope {name!r}")
        scope = Scope(name=name, source=source, local_handler=local_handler)
        self.scopes[name] = scope
        source.subscribe_errors(
            lambda report, scope_name=name: self._on_error(scope_name, report)
        )
        return scope

    def subscribe_errors(self, listener: Callable[[ErrorReport], None]) -> None:
        """The hierarchy itself is an error source (composable upward)."""
        self.listeners.append(listener)

    # ------------------------------------------------------------------
    def _on_error(self, scope_name: str, report: ErrorReport) -> None:
        scope = self.scopes[scope_name]
        tagged = replace(
            report,
            context={**report.context, "scope": scope_name},
        )
        scope.errors.append(tagged)
        self.errors.append(tagged)
        if scope.local_handler is not None:
            scope.local_handler(tagged)
        for listener in self.listeners:
            listener(tagged)

    # ------------------------------------------------------------------
    def errors_in(self, scope_name: str) -> List[ErrorReport]:
        return list(self.scopes[scope_name].errors)

    def scope_summary(self) -> Dict[str, int]:
        """Errors per scope — which part of the system is misbehaving."""
        return {name: len(scope.errors) for name, scope in self.scopes.items()}
