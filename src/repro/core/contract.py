"""Shared data contracts of the awareness control loop (Fig. 1).

These dataclasses are the vocabulary every stage speaks — aligned with the
taxonomy of Avizienis et al. [1] the paper adopts (Sect. 2):

* an :class:`Observation` is a time-stamped fact about the SUO;
* an :class:`ErrorReport` flags *erroneous state* detected by comparing
  observations against the specification model;
* a :class:`Diagnosis` names the most likely *fault* location;
* a :class:`RecoveryAction` is the correction applied back to the SUO.

The module is import-leaf on purpose: every other package (awareness,
diagnosis, recovery, core) depends on it and on nothing else here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Observation:
    """One time-stamped fact about the SUO."""

    time: float
    source: str
    name: str
    value: Any


@dataclass(frozen=True)
class Deviation:
    """One observable differing between model and system."""

    observable: str
    expected: Any
    actual: Any
    magnitude: float


@dataclass(frozen=True)
class ErrorReport:
    """An error: system state diverged from the specification model."""

    time: float
    detector: str
    observable: str
    expected: Any
    actual: Any
    consecutive: int
    severity: float = 1.0
    context: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Diagnosis:
    """Outcome of fault localization for a set of errors."""

    time: float
    technique: str
    #: Ranked candidates: (location, score), best first.
    ranking: Tuple[Tuple[str, float], ...]
    errors_explained: int

    def best(self) -> Optional[str]:
        if not self.ranking:
            return None
        return self.ranking[0][0]


@dataclass(frozen=True)
class RecoveryAction:
    """One corrective step selected by the recovery policy."""

    time: float
    kind: str
    target: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: Expected user impact of executing the action (0 = invisible).
    user_impact: float = 0.0


@dataclass
class LoopReport:
    """End-to-end record of one pass around the Fig. 1 loop."""

    errors: List[ErrorReport] = field(default_factory=list)
    diagnosis: Optional[Diagnosis] = None
    actions: List[RecoveryAction] = field(default_factory=list)
    recovered: bool = False
    detection_latency: Optional[float] = None
