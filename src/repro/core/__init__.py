"""The paper's primary contribution: the run-time awareness control loop."""

from .contract import (
    Deviation,
    Diagnosis,
    ErrorReport,
    LoopReport,
    Observation,
    RecoveryAction,
)
from .hierarchy import MonitorHierarchy, Scope
from .loop import AwarenessLoop, Incident
from .policy import LadderStep, RecoveryPolicy, perception_weighted_ladder

__all__ = [
    "AwarenessLoop",
    "Deviation",
    "Diagnosis",
    "ErrorReport",
    "Incident",
    "LadderStep",
    "LoopReport",
    "MonitorHierarchy",
    "Observation",
    "RecoveryAction",
    "RecoveryPolicy",
    "perception_weighted_ladder",
    "Scope",
]

from .facade import TraderTV

__all__ += ["TraderTV"]
