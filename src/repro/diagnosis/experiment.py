"""The Sect. 4.4 diagnosis experiment through the unified campaign surface.

``bench_e1`` used to hand-roll its driver: build a TV, patch in a fault
injector, drive the 27-press script through a bespoke
:class:`~repro.diagnosis.instrument.ScenarioRunner`.  The ROADMAP's
"thread the campaign API upward" item asks for the same experiment
expressed as a :class:`~repro.scenarios.ScenarioSpec`, so it can sweep,
scale, and shard like every other workload.

:func:`run_teletext_diagnosis_campaign` does exactly that:

* the 27-press script becomes a **scripted user profile** (one press per
  ``interval``, deterministic);
* the paper's "fault activates after 10 presses" becomes a
  :class:`~repro.scenarios.FaultPhase` scheduled between presses 9 and
  10 (scripted presses land at known instants, so press count and
  simulated time are interchangeable);
* error detection comes from the member's own awareness monitor (the
  Fig. 2 assembly) instead of a bespoke lock-step oracle, feeding an
  :class:`~repro.diagnosis.online.OnlineDiagnoser` that keeps the block
  instrumentation attached throughout;
* spectra, ranking, and ranking quality come out of the same
  :class:`~repro.diagnosis.sfl.SpectrumDiagnoser` /
  :func:`~repro.diagnosis.evaluate.evaluate_ranking` machinery, so the
  recorded metrics (blocks executed, erroneous presses, rank of the
  faulty block) stay comparable with the hand-rolled driver and the
  paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..runtime.fleet import FleetReport
from ..scenarios import FaultPhase, ScenarioSpec, UserProfile
from ..scenarios.compile import CompiledScenario
from ..tv.software import SoftwareBuild
from .evaluate import RankingQuality, evaluate_ranking
from .instrument import TELETEXT_SCENARIO_27
from .online import OnlineDiagnoser
from .sfl import RankedBlock, SpectrumDiagnoser


@dataclass
class CampaignDiagnosisResult:
    """Outcome of one campaign-driven diagnosis experiment, shaped to
    match the metrics the hand-rolled E1 driver recorded."""

    keys: List[str]
    error_steps: int
    executed_blocks: int
    total_blocks: int
    ranking: List[RankedBlock]
    quality: RankingQuality
    report: FleetReport


def teletext_diagnosis_spec(
    script: Sequence[str] = TELETEXT_SCENARIO_27,
    interval: float = 5.0,
    activate_after_presses: int = 10,
) -> ScenarioSpec:
    """The E1 experiment as a declarative scenario.

    Scripted press *i* (1-based) lands at ``1.0 + (i-1) * interval``;
    the stale-render fault is injected halfway between presses
    ``activate_after_presses - 1`` and ``activate_after_presses`` — the
    scheduled-time equivalent of the injector's press counter.
    """
    if not 1 < activate_after_presses <= len(script):
        raise ValueError("activate_after_presses must fall inside the script")
    fault_at = 1.0 + (activate_after_presses - 1.5) * interval
    return ScenarioSpec(
        name="teletext-diagnosis",
        description="Sect. 4.4: the 27-press teletext scenario with the "
                    "stale-render fault, campaign-driven",
        duration=1.0 + len(script) * interval + 4.0,
        tvs=1,
        profiles=(UserProfile(
            "operator", mean_gap=interval, script=tuple(script),
        ),),
        phases=(FaultPhase("ttx_stale_render", at=fault_at, fraction=1.0),),
    )


def run_teletext_diagnosis_campaign(
    coefficient: str = "ochiai",
    seed: int = 11,
    script: Sequence[str] = TELETEXT_SCENARIO_27,
    interval: float = 5.0,
    activate_after_presses: int = 10,
    build: Optional[SoftwareBuild] = None,
) -> CampaignDiagnosisResult:
    """Run the Sect. 4.4 experiment through the campaign machinery."""
    spec = teletext_diagnosis_spec(script, interval, activate_after_presses)
    compiled = CompiledScenario(spec, seed)
    member = next(iter(compiled.fleet.members.values()))
    build = build or SoftwareBuild(seed=0)
    diagnoser = OnlineDiagnoser(
        member.suo,
        build=build,
        coefficient=coefficient,
        monitor=member.monitor,
    )
    report = compiled.run()
    # Close the trailing step so the last press's evidence is counted.
    diagnoser.diagnose()
    collector = diagnoser.collector
    ranking = SpectrumDiagnoser(coefficient).ranking(collector)
    quality = evaluate_ranking(ranking, build.fault_blocks("ttx_stale_render"))
    return CampaignDiagnosisResult(
        keys=list(script),
        error_steps=len(collector.error_steps),
        executed_blocks=len(collector.executed_blocks()),
        total_blocks=build.total_blocks,
        ranking=ranking,
        quality=quality,
        report=report,
    )
