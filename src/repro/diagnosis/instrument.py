"""Block instrumentation of the simulated TV + scenario runner for E1.

Reproduces the Sect. 4.4 experimental setup end to end:

1. "First the C code is instrumented to record which blocks are executed"
   — :class:`BlockInstrumenter` attaches hooks to the TV (handler reports,
   teletext render calls, background activity) and maps them to block ids
   through :class:`~repro.tv.software.SoftwareBuild`.
2. "for each sequence of key presses, a so-called scenario, for each block
   it is recorded whether it has been executed or not between two key
   presses" — :class:`ScenarioRunner` drives a key script, closing one
   spectra step per key press.
3. "based on some error detection mechanism, it is recorded for each key
   press whether it leads to error or not" — the runner keeps a lock-step
   specification model and flags a step erroneous when screen or sound
   disagree at the end of the step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..statemachine.machine import Machine
from ..tv.control_model import (
    build_tv_model,
    expected_screen,
    expected_sound,
    key_to_event_name,
)
from ..tv.software import SoftwareBuild
from ..tv.tvset import TVSet
from .spectra import SpectraCollector


class BlockInstrumenter:
    """Maps TV activity to executed block ids, feeding a collector."""

    def __init__(
        self, tv: TVSet, build: SoftwareBuild, collector: SpectraCollector
    ) -> None:
        self.tv = tv
        self.build = build
        self.collector = collector
        self.step_index = -1
        self._active = False
        self._current_key: Optional[str] = None
        self._last_missed_updates = 0
        tv.control.on_handler.append(self._on_handler)
        tv.teletext.add_interceptor(self._ttx_interceptor)

    # ------------------------------------------------------------------
    def begin_step(self, key: Optional[str]) -> None:
        """One scenario step = one key press interval."""
        self.step_index = self.collector.begin_step()
        self._active = True
        self._current_key = key
        self.collector.record(self.build.background_blocks(self.step_index))

    def end_step(self, error: bool) -> None:
        self._record_acquirer_fault()
        self.collector.end_step(error)
        self._active = False

    # ------------------------------------------------------------------
    def _on_handler(self, handler: str, tags: List[str]) -> None:
        if not self._active:
            return
        blocks = self.build.blocks_for_handler(
            handler, tags, self._current_key, self.step_index
        )
        self.collector.record(blocks)

    def _ttx_interceptor(
        self,
        component,
        port: str,
        operation: str,
        kwargs: Dict[str, Any],
        proceed: Callable[[], Any],
    ) -> Any:
        result = proceed()
        if not self._active or operation != "rendered_page":
            return result
        tags = ["render"]
        if isinstance(result, dict) and result.get("stale"):
            tags.append("FAULT_ttx_stale_render")
        acquirer = self.tv.teletext.acquirer
        if (
            acquirer.drop_channel_updates
            and isinstance(result, dict)
            and result.get("visible")
            and acquirer.believed_channel != result.get("channel")
        ):
            # The desynchronized channel-tracking state is consulted by
            # this (failing) lookup — the faulty code is on the path.
            tags.append("FAULT_drop_ttx_notify")
        blocks = self.build.blocks_for_handler(
            "ttx_render", tags, None, self.step_index
        )
        self.collector.record(blocks)
        return result

    def _record_acquirer_fault(self) -> None:
        """The sync-loss fault's branch: dropped notifications this step."""
        missed = self.tv.teletext.acquirer.missed_updates
        if missed > self._last_missed_updates:
            self.collector.record(self.build.fault_blocks("drop_ttx_notify"))
        self._last_missed_updates = missed


@dataclass
class ScenarioResult:
    """Outcome of one instrumented scenario run."""

    keys: List[str]
    error_vector: List[bool]
    executed_blocks: int
    total_blocks: int
    collector: SpectraCollector

    @property
    def error_steps(self) -> int:
        return sum(self.error_vector)


class ScenarioRunner:
    """Drives a key scenario over an instrumented TV with a lock-step oracle."""

    def __init__(
        self,
        tv: TVSet,
        build: Optional[SoftwareBuild] = None,
        spec: Optional[Machine] = None,
        step_interval: float = 5.0,
    ) -> None:
        self.tv = tv
        self.build = build or SoftwareBuild(seed=0)
        self.spec = spec or build_tv_model(channel_count=tv.tuner.channel_count)
        self.step_interval = step_interval
        self.collector = SpectraCollector()
        self.instrumenter = BlockInstrumenter(tv, self.build, self.collector)

    # ------------------------------------------------------------------
    def run(self, keys: Sequence[str]) -> ScenarioResult:
        """Execute the scenario, one spectra step per key press."""
        for key in keys:
            self.instrumenter.begin_step(key)
            self.tv.press(key)
            name, params = key_to_event_name(key)
            self.spec.advance(self.tv.kernel.now)
            self.spec.inject(name, **params)
            # Let the interval elapse: transients settle, teletext
            # acquires, render refresh publishes.
            self.tv.run(self.step_interval)
            self.spec.advance(self.tv.kernel.now)
            self.instrumenter.end_step(self._step_erroneous())
        return ScenarioResult(
            keys=list(keys),
            error_vector=list(self.collector.error_vector),
            executed_blocks=len(self.collector.executed_blocks()),
            total_blocks=self.build.total_blocks,
            collector=self.collector,
        )

    # ------------------------------------------------------------------
    def _step_erroneous(self) -> bool:
        """End-of-step oracle: model vs system on both user observables."""
        if expected_screen(self.spec) != self.tv.screen_descriptor():
            return True
        if expected_sound(self.spec) != self.tv.sound_level():
            return True
        return False


#: The 27-key-press teletext scenario of Sect. 4.4: normal zapping and
#: volume use, then teletext sessions that expose the injected fault.
TELETEXT_SCENARIO_27 = [
    "power",     # 1  turn on
    "ch_up",     # 2  zap
    "ch_up",     # 3
    "vol_up",    # 4
    "vol_up",    # 5
    "ttx",       # 6  first teletext session (healthy if fault dormant)
    "ttx",       # 7  close
    "ch_down",   # 8
    "menu",      # 9
    "back",      # 10
    "ttx",       # 11 teletext again
    "vol_down",  # 12 volume while ttx
    "ttx",       # 13 close
    "ch_up",     # 14
    "ttx",       # 15 teletext after channel change
    "ttx",       # 16 close
    "mute",      # 17
    "mute",      # 18
    "ch_down",   # 19
    "ttx",       # 20 teletext
    "ch_up",     # 21 channel change closes ttx
    "ttx",       # 22 reopen
    "ttx",       # 23 close
    "dual",      # 24
    "dual",      # 25
    "vol_up",    # 26
    "power",     # 27 off
]
