"""Program spectra: (block × step) hit matrix plus an error vector.

Sect. 4.4: "for each sequence of key presses, a so-called scenario, for
each block it is recorded whether it has been executed or not between two
key presses.  This leads to a vector, a so-called spectrum, for each
block.  [...] it is recorded for each key press whether it leads to an
error or not."

The collector keeps the matrix sparse (block → set of step indices); the
SFL engine folds it into the four similarity counters per block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set


@dataclass
class SpectraCounts:
    """The classic 2×2 contingency counts for one block.

    * ``a11`` — executed in an erroneous step;
    * ``a10`` — executed in a correct step;
    * ``a01`` — not executed, step erroneous;
    * ``a00`` — not executed, step correct.
    """

    a11: int = 0
    a10: int = 0
    a01: int = 0
    a00: int = 0


class SpectraCollector:
    """Accumulates block-hit spectra over scenario steps."""

    def __init__(self) -> None:
        self._hits: Dict[int, Set[int]] = {}
        self.error_vector: List[bool] = []
        self._current_step: int = -1
        self._open = False
        self._current_blocks: Set[int] = set()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def begin_step(self) -> int:
        """Open the next step (one key-press interval); returns its index."""
        if self._open:
            raise RuntimeError("previous step still open; call end_step first")
        self._current_step += 1
        self._open = True
        self._current_blocks = set()
        return self._current_step

    def record(self, blocks: Iterable[int]) -> None:
        """Record executed blocks within the open step."""
        if not self._open:
            raise RuntimeError("no open step")
        self._current_blocks.update(blocks)

    def end_step(self, error: bool) -> None:
        """Close the open step with its error verdict."""
        if not self._open:
            raise RuntimeError("no open step")
        step = self._current_step
        for block in self._current_blocks:
            self._hits.setdefault(block, set()).add(step)
        self.error_vector.append(bool(error))
        self._open = False
        self._current_blocks = set()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def step_count(self) -> int:
        return len(self.error_vector)

    @property
    def error_steps(self) -> FrozenSet[int]:
        return frozenset(
            i for i, erroneous in enumerate(self.error_vector) if erroneous
        )

    def executed_blocks(self) -> FrozenSet[int]:
        """All blocks that executed at least once (the paper's 13 796)."""
        return frozenset(self._hits)

    def hits_of(self, block: int) -> FrozenSet[int]:
        return frozenset(self._hits.get(block, frozenset()))

    def counts_for(self, block: int) -> SpectraCounts:
        """Contingency counts for one block."""
        hits = self._hits.get(block, set())
        errors = self.error_steps
        steps = self.step_count
        a11 = len(hits & errors)
        a10 = len(hits) - a11
        a01 = len(errors) - a11
        a00 = steps - len(hits) - a01
        return SpectraCounts(a11=a11, a10=a10, a01=a01, a00=a00)

    def all_counts(self) -> Dict[int, SpectraCounts]:
        """Counts for every executed block (unexecuted blocks score 0)."""
        return {block: self.counts_for(block) for block in self._hits}
