"""Spectrum-based fault localization: similarity ranking of blocks.

"Next, the similarity between the error vector and the spectra is
computed.  Finally, the blocks are ranked according [to] their
similarity." (Sect. 4.4)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.contract import Diagnosis
from .similarity import Coefficient, get_coefficient
from .spectra import SpectraCollector


@dataclass(frozen=True)
class RankedBlock:
    """One entry of the suspicion ranking."""

    block: int
    score: float
    #: 1-based best-case rank (number of strictly higher scores + 1).
    rank: int


class SpectrumDiagnoser:
    """Ranks code blocks by similarity to the error vector."""

    def __init__(self, coefficient: str = "ochiai") -> None:
        self.coefficient_name = coefficient
        self.coefficient: Coefficient = get_coefficient(coefficient)

    # ------------------------------------------------------------------
    def scores(self, collector: SpectraCollector) -> Dict[int, float]:
        """Similarity score for every executed block."""
        return {
            block: self.coefficient(counts)
            for block, counts in collector.all_counts().items()
        }

    def ranking(self, collector: SpectraCollector) -> List[RankedBlock]:
        """Blocks sorted by descending suspicion.

        Ties share the best-case rank (strictly-higher count + 1), the
        convention under which the paper's faulty block "appeared on the
        first place".
        """
        scores = self.scores(collector)
        ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        ranked: List[RankedBlock] = []
        higher = 0
        index = 0
        while index < len(ordered):
            tie_end = index
            score = ordered[index][1]
            while tie_end < len(ordered) and ordered[tie_end][1] == score:
                tie_end += 1
            for block, block_score in ordered[index:tie_end]:
                ranked.append(RankedBlock(block=block, score=block_score, rank=higher + 1))
            higher = tie_end
            index = tie_end
        return ranked

    def diagnose(
        self,
        collector: SpectraCollector,
        time: float = 0.0,
        top_n: int = 20,
    ) -> Diagnosis:
        """Produce a :class:`~repro.core.contract.Diagnosis` artifact."""
        ranked = self.ranking(collector)
        return Diagnosis(
            time=time,
            technique=f"sfl:{self.coefficient_name}",
            ranking=tuple(
                (f"block:{entry.block}", entry.score) for entry in ranked[:top_n]
            ),
            errors_explained=len(collector.error_steps),
        )
