"""Similarity coefficients for spectrum-based fault localization.

The Trader diagnosis line ([20], Zoeteweij et al.) ranks blocks by the
similarity between each block's hit spectrum and the error vector.  The
standard coefficients from that literature are provided; Ochiai is the
default (it performed best in the embedded-software studies the project
reports on).

All coefficients map :class:`~repro.diagnosis.spectra.SpectraCounts` to a
score in which *larger means more suspicious*.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from .spectra import SpectraCounts

Coefficient = Callable[[SpectraCounts], float]


def ochiai(c: SpectraCounts) -> float:
    """a11 / sqrt((a11 + a01) * (a11 + a10))."""
    denominator = math.sqrt((c.a11 + c.a01) * (c.a11 + c.a10))
    if denominator == 0:
        return 0.0
    return c.a11 / denominator


def tarantula(c: SpectraCounts) -> float:
    """Failed-rate / (failed-rate + passed-rate)."""
    total_failed = c.a11 + c.a01
    total_passed = c.a10 + c.a00
    failed_rate = c.a11 / total_failed if total_failed else 0.0
    passed_rate = c.a10 / total_passed if total_passed else 0.0
    if failed_rate + passed_rate == 0:
        return 0.0
    return failed_rate / (failed_rate + passed_rate)


def jaccard(c: SpectraCounts) -> float:
    """a11 / (a11 + a01 + a10)."""
    denominator = c.a11 + c.a01 + c.a10
    if denominator == 0:
        return 0.0
    return c.a11 / denominator


def ample(c: SpectraCounts) -> float:
    """|a11/(a11+a01) - a10/(a10+a00)|."""
    failed = c.a11 + c.a01
    passed = c.a10 + c.a00
    term_failed = c.a11 / failed if failed else 0.0
    term_passed = c.a10 / passed if passed else 0.0
    return abs(term_failed - term_passed)


def dice(c: SpectraCounts) -> float:
    """2*a11 / (2*a11 + a01 + a10)."""
    denominator = 2 * c.a11 + c.a01 + c.a10
    if denominator == 0:
        return 0.0
    return 2 * c.a11 / denominator


def kulczynski2(c: SpectraCounts) -> float:
    """0.5 * (a11/(a11+a01) + a11/(a11+a10))."""
    failed = c.a11 + c.a01
    executed = c.a11 + c.a10
    term_a = c.a11 / failed if failed else 0.0
    term_b = c.a11 / executed if executed else 0.0
    return 0.5 * (term_a + term_b)


def russell_rao(c: SpectraCounts) -> float:
    """a11 / n."""
    n = c.a11 + c.a10 + c.a01 + c.a00
    if n == 0:
        return 0.0
    return c.a11 / n


COEFFICIENTS: Dict[str, Coefficient] = {
    "ochiai": ochiai,
    "tarantula": tarantula,
    "jaccard": jaccard,
    "ample": ample,
    "dice": dice,
    "kulczynski2": kulczynski2,
    "russell_rao": russell_rao,
}


def get_coefficient(name: str) -> Coefficient:
    if name not in COEFFICIENTS:
        raise KeyError(
            f"unknown coefficient {name!r}; choose from {sorted(COEFFICIENTS)}"
        )
    return COEFFICIENTS[name]
