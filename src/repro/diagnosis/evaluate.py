"""Diagnosis quality metrics.

The paper reports one headline number — the faulty block "appeared on the
first place in the ranking".  The SFL literature behind it ([20]) uses
richer metrics, all provided here:

* best/average/worst rank of the faulty block(s) under ties;
* **wasted effort** — fraction of executed blocks a developer inspects
  before reaching a faulty one (ties counted half);
* top-N hit indicators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from .sfl import RankedBlock


@dataclass(frozen=True)
class RankingQuality:
    """Quality of one ranking against ground-truth faulty blocks."""

    best_rank: int
    average_rank: float
    worst_rank: int
    wasted_effort: float
    total_ranked: int
    in_top_1: bool
    in_top_5: bool
    in_top_10: bool


def evaluate_ranking(
    ranking: Sequence[RankedBlock], faulty_blocks: Iterable[int]
) -> RankingQuality:
    """Score a ranking; raises if no faulty block was ranked at all."""
    faulty = frozenset(faulty_blocks)
    if not faulty:
        raise ValueError("no ground-truth faulty blocks given")
    by_block: Dict[int, RankedBlock] = {entry.block: entry for entry in ranking}
    present = [by_block[b] for b in faulty if b in by_block]
    if not present:
        raise ValueError(
            "no faulty block appears in the ranking (it never executed)"
        )

    best_entry = min(present, key=lambda entry: entry.rank)
    best_score = best_entry.score
    strictly_higher = sum(1 for e in ranking if e.score > best_score)
    ties = sum(1 for e in ranking if e.score == best_score and e.block not in faulty)
    total = len(ranking)
    # Developer inspects all strictly-higher blocks plus on average half of
    # the non-faulty blocks tied with the best faulty one.
    effort = (strictly_higher + ties / 2.0) / total if total else 0.0

    ranks = [entry.rank for entry in present]
    return RankingQuality(
        best_rank=min(ranks),
        average_rank=sum(ranks) / len(ranks),
        worst_rank=max(ranks),
        wasted_effort=effort,
        total_ranked=total,
        in_top_1=min(ranks) <= 1,
        in_top_5=min(ranks) <= 5,
        in_top_10=min(ranks) <= 10,
    )


def random_baseline_effort(executed_blocks: int) -> float:
    """Expected wasted effort of inspecting blocks in random order."""
    if executed_blocks <= 0:
        return 0.0
    return 0.5
