"""Online diagnosis: program spectra collected during normal operation.

Sect. 4.4's experiment is offline (instrument, run a scenario, rank).
The Fig. 1 loop, however, wants diagnosis *when an error is detected at
run time*.  :class:`OnlineDiagnoser` bridges the two: it keeps the block
instrumentation attached while the product is used, delimits spectra
steps at key presses, flags each step erroneous if any monitor error was
reported during it, and can produce a ranking on demand — which is what
the loop's ``diagnoser`` hook calls when an incident needs a suspect.
"""

from __future__ import annotations

from typing import Optional

from ..core.contract import Diagnosis, ErrorReport
from ..tv.software import SoftwareBuild
from ..tv.tvset import TVSet
from .instrument import BlockInstrumenter
from .sfl import SpectrumDiagnoser
from .spectra import SpectraCollector


class OnlineDiagnoser:
    """Continuous spectra collection + on-demand SFL ranking."""

    def __init__(
        self,
        tv: TVSet,
        build: Optional[SoftwareBuild] = None,
        coefficient: str = "ochiai",
        top_n: int = 20,
        monitor=None,
    ) -> None:
        self.tv = tv
        self.build = build or SoftwareBuild(seed=0)
        self.collector = SpectraCollector()
        self.instrumenter = BlockInstrumenter(tv, self.build, self.collector)
        self.diagnoser = SpectrumDiagnoser(coefficient)
        self.top_n = top_n
        #: Optional awareness monitor: its comparator's live deviation
        #: state marks *every* step spent in an erroneous state, not only
        #: the step where the error report fired.
        self.monitor = monitor
        if monitor is not None:
            monitor.controller.subscribe_errors(self.on_error)
        self._errors_in_step = 0
        self._step_open = False
        #: Span marker for repro.obs: each on-demand ranking announces
        #: itself on the silent ``obs.*`` namespace (free with no
        #: SpanRecorder subscribed; never visible to ``suo.*`` digests).
        self._span = tv.kernel.bus.publisher(f"obs.{tv.suo_id}.span")
        tv.remote.input_hooks.append(self._on_press)

    # ------------------------------------------------------------------
    # step management: one step per key press
    # ------------------------------------------------------------------
    def _on_press(self, press) -> None:
        self._close_step()
        self.instrumenter.begin_step(press.key)
        self._step_open = True
        self._errors_in_step = 0

    def _close_step(self) -> None:
        if not self._step_open:
            return
        erroneous = self._errors_in_step > 0
        if self.monitor is not None:
            erroneous = erroneous or bool(
                self.monitor.comparator.deviating_observables()
            )
        self.instrumenter.end_step(erroneous)
        self._step_open = False

    # ------------------------------------------------------------------
    # error feed (subscribe the monitor's controller to this)
    # ------------------------------------------------------------------
    def on_error(self, report: ErrorReport) -> None:
        """Mark the current step erroneous."""
        self._errors_in_step += 1

    # ------------------------------------------------------------------
    # the loop's diagnoser hook
    # ------------------------------------------------------------------
    def diagnose(self, report: Optional[ErrorReport] = None) -> Optional[Diagnosis]:
        """Rank blocks from everything collected so far.

        The open step is closed (flagged by the triggering error) so the
        evidence that fired the loop is part of the spectra.
        """
        self._close_step()
        if not self.collector.error_steps:
            return None
        diagnosis = self.diagnoser.diagnose(
            self.collector, time=self.tv.kernel.now, top_n=self.top_n
        )
        if diagnosis is not None:
            self._span(
                {"ev": "sfl-rank", "source": "online",
                 "suspect": self.suspect_module(diagnosis),
                 "best": diagnosis.best()}
            )
        return diagnosis

    # ------------------------------------------------------------------
    def suspect_module(self, diagnosis: Diagnosis) -> Optional[str]:
        """Map the top-ranked block back to its module (repair routing)."""
        best = diagnosis.best()
        if best is None or not best.startswith("block:"):
            return None
        block = int(best.split(":", 1)[1])
        module = self.build.module_of_block(block)
        return module.name if module is not None else None

    def steps_recorded(self) -> int:
        return self.collector.step_count
