"""Spectrum-based diagnosis (Sect. 4.4)."""

from .components import (
    COMPONENTS,
    FAULT_COMPONENTS,
    ComponentSpectra,
    RankedComponent,
)
from .evaluate import RankingQuality, evaluate_ranking, random_baseline_effort
from .instrument import (
    TELETEXT_SCENARIO_27,
    BlockInstrumenter,
    ScenarioResult,
    ScenarioRunner,
)
from .online import OnlineDiagnoser
from .sfl import RankedBlock, SpectrumDiagnoser
from .similarity import COEFFICIENTS, get_coefficient, ochiai, tarantula
from .spectra import SpectraCollector, SpectraCounts

__all__ = [
    "BlockInstrumenter",
    "COEFFICIENTS",
    "COMPONENTS",
    "ComponentSpectra",
    "FAULT_COMPONENTS",
    "OnlineDiagnoser",
    "RankedBlock",
    "RankedComponent",
    "RankingQuality",
    "ScenarioResult",
    "ScenarioRunner",
    "SpectraCollector",
    "SpectraCounts",
    "SpectrumDiagnoser",
    "TELETEXT_SCENARIO_27",
    "evaluate_ranking",
    "get_coefficient",
    "ochiai",
    "random_baseline_effort",
    "tarantula",
]
