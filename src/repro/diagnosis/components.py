"""Component-level online spectra: SFL at the granularity recovery acts on.

Sect. 4.4 ranks *code blocks*; the recovery ladder (Fig. 1) rebinds
*components*.  This module bridges the two for the fleet: while a member
is under suspicion, a :class:`ComponentSpectra` collector folds the
member's ``suo.<id>.*`` bus traffic into per-component activity spectra —
which components were exercised in each window of simulated time, and
which windows a monitor error landed in — and ranks the components by
spectrum similarity on demand, exactly the coefficient machinery of
:mod:`repro.diagnosis.similarity`.

Two evidence sources feed each window:

* **activity** — inputs and outputs classified to the component that
  produced or consumed them (a ``vol_up`` press exercises the audio
  component; a rendered frame proves decoder *and* renderer ran);
* **manifestation** — when an error report lands, the component
  *responsible for the deviating observable* is recorded in that window
  (where the mapping is unambiguous: a ``sound`` divergence implicates
  audio, a ``progressing`` stall implicates the decoder).  This is what
  keeps omission faults localizable: a wedged decoder produces *no*
  activity exactly while it is the problem, so pure hit-correlation
  would rank it last.  Ambiguous observables (``screen``, ``status``)
  deliberately attribute nothing and leave the verdict to correlation.

Determinism: windows are delimited by *simulated* time, events are
member-local and keyed to ``(campaign seed, suo_id)``, and ranking ties
break on component name — so a member's ranking is byte-identical
whichever shard it runs on.

Memory is O(components): windows fold into the classic 2x2 contingency
counters incrementally, never retaining the per-window sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..runtime.bus import EventBus, Subscription
from .similarity import Coefficient, get_coefficient
from .spectra import SpectraCounts

#: The component vocabulary per SUO kind — the units a targeted rebind
#: can replace (TV Koala components, player pipeline stages, printer
#: paper-path modules).
COMPONENTS: Dict[str, Tuple[str, ...]] = {
    "tv": ("audio", "dualscreen", "osd", "teletext", "tuner", "video"),
    "player": ("control", "decoder", "demux", "renderer"),
    "printer": ("controller", "engine", "feeder", "finisher"),
}

#: Ground truth for the scenario faults: the component an injected
#: ``(kind, fault)`` actually lives in (the analogue of
#: ``SoftwareBuild.fault_blocks`` at component granularity).  Telemetry
#: records the rank this component achieved in each episode's SFL
#: ranking — the localization-accuracy observable CI gates on.
FAULT_COMPONENTS: Dict[Tuple[str, str], str] = {
    ("tv", "volume_overshoot"): "audio",
    ("tv", "mute_noop"): "audio",
    ("tv", "menu_opens_epg"): "osd",
    ("tv", "drop_ttx_notify"): "teletext",
    ("tv", "ttx_stale_render"): "teletext",
    ("player", "stall_on_corrupt"): "decoder",
    ("player", "decode_slowdown"): "decoder",
    ("printer", "silent_jam"): "feeder",
    ("printer", "cold_fuser"): "engine",
    ("printer", "lost_staples"): "finisher",
}

# ----------------------------------------------------------------------
# event -> component classification
# ----------------------------------------------------------------------
_TV_KEY_COMPONENTS = {
    "vol_up": "audio", "vol_down": "audio", "mute": "audio",
    "ch_up": "tuner", "ch_down": "tuner",
    "ttx": "teletext",
    "menu": "osd", "epg": "osd", "back": "osd", "ok": "osd",
    "sleep": "osd", "lock": "osd",
    "dual": "dualscreen", "swap": "dualscreen",
    "power": "video",
}

_TV_OUTPUT_COMPONENTS = {"sound": ("audio",), "screen": ("video",)}

#: Observable -> responsible component(s), only where unambiguous.
_TV_ERROR_COMPONENTS = {"sound": ("audio",)}

_PLAYER_OUTPUT_COMPONENTS = {
    "state": ("control",),
    "buffer": ("demux",),
    "frame": ("decoder", "renderer"),
    "position": ("renderer",),
}

_PLAYER_ERROR_COMPONENTS = {
    "progressing": ("decoder",),
    "pace": ("decoder",),
    "buffer": ("demux",),
    "state": ("control",),
}

_PRINTER_OUTPUT_COMPONENTS = {
    "status": ("controller",),
    "queue": ("controller",),
    "job_done": ("controller",),
    "pages_done": ("feeder", "engine"),
    "page_quality": ("engine",),
}

_PRINTER_ERROR_COMPONENTS = {
    "progressing": ("feeder",),
    "page_rate": ("feeder",),
    "page_quality": ("engine",),
    "queue": ("controller",),
}

_EMPTY: Tuple[str, ...] = ()


def classify_tv_event(kind: str, event: Any) -> Tuple[str, ...]:
    """Components a TV bus event proves active."""
    if kind == "input":
        key = getattr(event, "key", None)
        if not isinstance(key, str):
            return _EMPTY
        if key.startswith("digit"):
            return ("tuner",)
        component = _TV_KEY_COMPONENTS.get(key)
        return (component,) if component else _EMPTY
    if kind == "stimulus":
        return ("osd",)
    if kind == "output":
        name = getattr(event, "name", None)
        return _TV_OUTPUT_COMPONENTS.get(name, _EMPTY)
    return _EMPTY


def classify_player_event(kind: str, event: Any) -> Tuple[str, ...]:
    """Components a player bus event proves active."""
    if kind == "input":
        return ("control",)
    if kind == "output" and isinstance(event, tuple) and event:
        return _PLAYER_OUTPUT_COMPONENTS.get(event[0], _EMPTY)
    return _EMPTY


def classify_printer_event(kind: str, event: Any) -> Tuple[str, ...]:
    """Components a printer bus event proves active."""
    if kind == "input":
        return ("controller",)
    if kind == "output" and isinstance(event, tuple) and event:
        return _PRINTER_OUTPUT_COMPONENTS.get(event[0], _EMPTY)
    return _EMPTY


CLASSIFIERS: Dict[str, Callable[[str, Any], Tuple[str, ...]]] = {
    "tv": classify_tv_event,
    "player": classify_player_event,
    "printer": classify_printer_event,
}

ERROR_COMPONENTS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "tv": _TV_ERROR_COMPONENTS,
    "player": _PLAYER_ERROR_COMPONENTS,
    "printer": _PRINTER_ERROR_COMPONENTS,
}


@dataclass(frozen=True)
class RankedComponent:
    """One entry of the component suspicion ranking."""

    component: str
    score: float
    #: 1-based best-case rank (number of strictly higher scores + 1),
    #: the same tie convention :class:`~repro.diagnosis.sfl.RankedBlock`
    #: uses for blocks.
    rank: int
    #: Whether the component was active in *every* erroneous window —
    #: the single-fault coverage criterion the ranking orders on first.
    covers_failures: bool = True


class ComponentSpectra:
    """Online per-component spectra for one fleet member.

    Subscribes to the member's whole ``suo.<id>.*`` namespace and folds
    every event into the open *window* (a fixed slice of simulated
    time).  A window is erroneous when a monitor error report landed in
    it.  Contingency counters update incrementally at window close, so
    state never grows with campaign length.
    """

    def __init__(
        self,
        kind: str,
        suo_id: str,
        bus: EventBus,
        clock: Callable[[], float],
        window: float = 1.0,
        coefficient: str = "ochiai",
    ) -> None:
        if kind not in COMPONENTS:
            raise ValueError(f"no component vocabulary for SUO kind {kind!r}")
        if window <= 0:
            raise ValueError("window must be positive")
        self.kind = kind
        self.suo_id = suo_id
        self.components = COMPONENTS[kind]
        self.window = window
        self.coefficient_name = coefficient
        self.coefficient: Coefficient = get_coefficient(coefficient)
        self._classify = CLASSIFIERS[kind]
        self._error_map = ERROR_COMPONENTS[kind]
        self._clock = clock
        self._prefix_len = len(f"suo.{suo_id}.")
        # closed-window state (incrementally folded)
        self.steps = 0
        self.error_steps = 0
        self._hits: Dict[str, int] = {c: 0 for c in self.components}
        self._a11: Dict[str, int] = {c: 0 for c in self.components}
        # open-window state
        self._window_index: Optional[int] = None
        self._active: set = set()
        self._erroneous = False
        self._subscription: Optional[Subscription] = bus.subscribe(
            f"suo.{suo_id}.*", self._on_event
        )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        index = int(self._clock() / self.window)
        if self._window_index is None:
            self._window_index = index
            return
        if index == self._window_index:
            return
        self._close_window()
        # windows the clock skipped were clean and inactive
        self.steps += index - self._window_index - 1
        self._window_index = index

    def _close_window(self) -> None:
        self.steps += 1
        if self._erroneous:
            self.error_steps += 1
        for component in self._active:
            self._hits[component] += 1
            if self._erroneous:
                self._a11[component] += 1
        self._active.clear()
        self._erroneous = False

    def _on_event(self, topic: str, event: Any) -> None:
        self._advance()
        kind = topic[self._prefix_len:]
        if kind == "error":
            self._erroneous = True
            observable = getattr(event, "observable", None)
            self._active.update(self._error_map.get(observable, _EMPTY))
        else:
            self._active.update(self._classify(kind, event))

    def detach(self) -> None:
        """Stop ingesting; accumulated spectra stay queryable."""
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    # ------------------------------------------------------------------
    # queries (all include the open window, folded virtually)
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, SpectraCounts]:
        """2x2 contingency counts per component that was ever active."""
        self._advance()
        steps = self.steps
        errors = self.error_steps
        hits = dict(self._hits)
        a11 = dict(self._a11)
        if self._active or self._erroneous:
            steps += 1
            if self._erroneous:
                errors += 1
            for component in self._active:
                hits[component] += 1
                if self._erroneous:
                    a11[component] += 1
        result: Dict[str, SpectraCounts] = {}
        for component in self.components:
            if hits[component] == 0:
                continue
            c11 = a11[component]
            c10 = hits[component] - c11
            c01 = errors - c11
            c00 = steps - hits[component] - c01
            result[component] = SpectraCounts(a11=c11, a10=c10, a01=c01, a00=c00)
        return result

    def ranking(self) -> List[RankedComponent]:
        """Components by descending suspicion (empty without evidence).

        Without any erroneous window there is nothing to correlate
        against, so the ranking is empty and the caller falls back to
        undirected recovery.

        Single-fault exoneration: a component absent from some failing
        window cannot be the (single) standing fault — the fault *was*
        exercised in every window that failed — so components covering
        every erroneous window rank ahead of partially-covering ones
        whatever their similarity scores (tiny samples otherwise let a
        rarely-active bystander win on perfect precision).  Within each
        group the coefficient orders by similarity as usual.
        """
        counts = self.counts()
        if not counts:
            return []
        if self.error_steps == 0 and not self._erroneous:
            return []
        # a01 == 0 <=> the component was active in every erroneous window
        scored = sorted(
            (
                (1 if c.a01 > 0 else 0, -self.coefficient(c), component)
                for component, c in counts.items()
            ),
        )
        ranked: List[RankedComponent] = []
        higher = 0
        index = 0
        while index < len(scored):
            tie_end = index
            tie_key = scored[index][:2]
            while tie_end < len(scored) and scored[tie_end][:2] == tie_key:
                tie_end += 1
            for exonerated, negated_score, component in scored[index:tie_end]:
                ranked.append(
                    RankedComponent(
                        component,
                        -negated_score,
                        higher + 1,
                        covers_failures=not exonerated,
                    )
                )
            higher = tie_end
            index = tie_end
        return ranked

    def confidence(self, ranking: Optional[List[RankedComponent]] = None) -> float:
        """Separation between the top suspect and the runner-up.

        A tie at the top (or a zero-scored top) yields 0.0 — exactly the
        "low confidence" condition under which the recovery ladder falls
        back to a full rebind rather than gambling on one of several
        equally suspicious components.  When the top suspect is the
        *only* component covering every failing window, the separation
        is structural and the full score counts; otherwise it is the
        score margin over the runner-up in the same coverage group.
        """
        if ranking is None:
            ranking = self.ranking()
        if not ranking or ranking[0].score <= 0.0:
            return 0.0
        top = ranking[0]
        if len(ranking) == 1:
            return top.score
        second = ranking[1]
        if second.rank == top.rank:
            return 0.0
        if top.covers_failures and not second.covers_failures:
            return top.score
        return top.score - second.score

    def top_suspect(self) -> Tuple[Optional[str], float]:
        """The top-ranked component and the confidence margin."""
        ranking = self.ranking()
        if not ranking:
            return None, 0.0
        return ranking[0].component, self.confidence(ranking)

    def rank_of(self, component: str) -> Optional[int]:
        """Best-case rank of ``component`` (None when never active)."""
        for entry in self.ranking():
            if entry.component == component:
                return entry.rank
        return None
