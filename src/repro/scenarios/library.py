"""The named scenario library.

Each entry is a complete :class:`~repro.scenarios.spec.ScenarioSpec` —
device mix, user profiles, phased fault schedule — capturing one workload
class the Trader case studies worry about (Sect. 3–5): zapping storms,
overnight soaks, teletext-heavy sessions, seek stress, printer bursts,
broadcast alert floods, degraded platforms, monitor churn, and repair
drills.  Scenarios are intentionally modest in device count; scale any of
them with ``spec.scaled(factor)`` or ``Campaign(..., scale=...)`` — the
thousand-SUO benchmarks (``benchmarks/bench_e15_scenarios.py``,
``bench_e16_sharded.py``) run at 40-60x this size.

Use :func:`get_scenario` / :func:`scenario_names` to look entries up, and
:func:`register_scenario` to add project-local ones.
"""

from __future__ import annotations

from typing import Dict, List

from .exercise import exercise_profile
from .spec import FaultPhase, ScenarioSpec, UserProfile

ZAP_KEYS = ("ch_up", "ch_down", "digit1", "digit5", "digit9", "ok", "back")
COUCH_KEYS = ("power", "ch_up", "vol_up", "vol_down", "mute", "menu", "back", "epg")
VOLUME_KEYS = ("power", "vol_up", "vol_down", "vol_up", "mute", "ch_up", "menu", "back")
TTX_KEYS = ("ttx", "ttx", "ch_up", "back", "dual", "swap", "digit1", "ok")

SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a scenario to the library (name must be unused)."""
    spec.validate()
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} already registered")
    SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None


def scenario_names() -> List[str]:
    return list(SCENARIOS)


# ----------------------------------------------------------------------
# the library
# ----------------------------------------------------------------------
register_scenario(ScenarioSpec(
    name="zapping-storm",
    description="Aggressive channel zapping across the whole population: "
                "the densest input workload the remote can produce.",
    duration=60.0,
    tvs=24,
    profiles=(UserProfile("zapper", mean_gap=0.8, keys=ZAP_KEYS),),
))

register_scenario(ScenarioSpec(
    name="overnight-soak",
    description="Sparse traffic over a long simulated stretch, with a "
                "late-night volume fault on a small slice of the fleet.",
    duration=900.0,
    tvs=16,
    profiles=(UserProfile("sleeper", mean_gap=90.0, keys=COUCH_KEYS),),
    phases=(FaultPhase("volume_overshoot", at=600.0, fraction=0.2),),
))

register_scenario(ScenarioSpec(
    name="teletext-heavy",
    description="Teletext readers hammering page acquisition while the "
                "Sect. 4.3 synchronization fault drops channel-change "
                "notifications on part of the fleet.",
    duration=90.0,
    tvs=12,
    profiles=(UserProfile("reader", mean_gap=2.5, keys=TTX_KEYS),),
    phases=(FaultPhase("drop_ttx_notify", at=30.0, fraction=0.3),),
))

register_scenario(ScenarioSpec(
    name="player-seek-stress",
    description="Media players under constant seeking with corrupt "
                "packets in the stream; half the pipeline builds carry "
                "the stall-on-corrupt defect.",
    duration=60.0,
    players=10,
    player_seek_every=3.0,
    corrupt_player_packets=(40, 41, 42, 90, 91),
    phases=(FaultPhase("stall_on_corrupt", at=20.0, kind="player", fraction=0.5),),
))

register_scenario(ScenarioSpec(
    name="printer-burst",
    description="Office printers under pulsed job bursts, with a silent "
                "paper jam injected mid-burst on a quarter of them.",
    duration=80.0,
    printers=8,
    printer_job_gap=20.0,
    printer_pages=(1, 6),
    phases=(
        FaultPhase("job_burst", at=5.0, kind="printer", fraction=1.0,
                   duration=40.0, pulse_every=10.0),
        FaultPhase("silent_jam", at=30.0, kind="printer", fraction=0.25),
    ),
))

register_scenario(ScenarioSpec(
    name="mixed-fleet-cascade",
    description="TVs, players, and printers on one kernel with faults "
                "cascading across device kinds twenty seconds apart.",
    duration=90.0,
    tvs=12,
    players=6,
    printers=4,
    profiles=(UserProfile("couch", mean_gap=3.0, keys=VOLUME_KEYS),),
    corrupt_player_packets=(60, 61),
    phases=(
        FaultPhase("volume_overshoot", at=20.0, fraction=0.3),
        FaultPhase("stall_on_corrupt", at=40.0, kind="player", fraction=0.5),
        FaultPhase("silent_jam", at=60.0, kind="printer", fraction=0.5),
    ),
))

register_scenario(ScenarioSpec(
    name="alert-flood",
    description="Emergency broadcast alerts pulsing over the entire "
                "fleet every five seconds: overlay-suppression stress "
                "for the Sect. 4.2 feature-interaction rules.",
    duration=70.0,
    tvs=20,
    profiles=(UserProfile("calm", mean_gap=8.0, keys=COUCH_KEYS),),
    phases=(
        FaultPhase("alert_broadcast", at=10.0, fraction=1.0,
                   duration=40.0, pulse_every=5.0),
    ),
))

register_scenario(ScenarioSpec(
    name="degraded-memory",
    description="Memory pressure modeled as a 3x decode slowdown on most "
                "players while TVs keep normal sessions — the graceful-"
                "degradation regime of the Sect. 5 case study.",
    duration=70.0,
    tvs=6,
    players=8,
    profiles=(UserProfile("background", mean_gap=6.0, keys=COUCH_KEYS),),
    phases=(
        FaultPhase("decode_slowdown", at=15.0, kind="player", fraction=0.6,
                   duration=30.0),
    ),
))

register_scenario(ScenarioSpec(
    name="monitor-churn",
    description="Awareness monitors stopped and restarted mid-session on "
                "part of the fleet: the monitors themselves are the "
                "disturbance (restart cost and re-sync stress).",
    duration=80.0,
    tvs=16,
    profiles=(UserProfile("steady", mean_gap=5.0, keys=COUCH_KEYS),),
    phases=(
        FaultPhase("monitor_churn", at=20.0, fraction=0.4, duration=15.0),
        FaultPhase("monitor_churn", at=55.0, fraction=0.4, duration=10.0),
    ),
))

register_scenario(ScenarioSpec(
    name="player-decoder-drill",
    description="Players seeking across corrupt streams wedge their "
                "decoder with NO scheduled repair: the monitor detects "
                "the stall, walks the ladder, and the SFL ranking lets "
                "rebind restart just the pipeline (decoder) instead of "
                "replacing the whole player — localization outcomes land "
                "in the diagnosis telemetry block.",
    duration=110.0,
    players=8,
    player_seek_every=4.0,
    # Corrupt clusters spread across the whole seekable range, so every
    # seed's seek pattern crosses one within the drill window (clusters
    # confined to one region let unlucky seeds play clean forever).
    corrupt_player_packets=(
        25, 26, 27, 75, 76, 77, 125, 126, 127, 175, 176, 177,
        225, 226, 227, 275, 276, 277, 325, 326, 327, 375, 376, 377,
        425, 426, 427,
    ),
    phases=(
        FaultPhase("stall_on_corrupt", at=12.0, kind="player", fraction=0.5,
                   recovery=True),
    ),
))

register_scenario(ScenarioSpec(
    name="printer-jam-drill",
    description="Office printers under steady jobs; half the feeders "
                "jam silently with NO scheduled repair — the throughput "
                "floor detects the stall and the ladder's targeted "
                "rebind clears the jam at the feeder the spectra "
                "implicate.",
    duration=90.0,
    printers=6,
    printer_job_gap=10.0,
    printer_pages=(2, 6),
    phases=(
        FaultPhase("silent_jam", at=25.0, kind="printer", fraction=0.5,
                   recovery=True),
    ),
))

register_scenario(ScenarioSpec(
    name="targeted-rebind-storm",
    description="Mixed fleet with recovery waves landing on every device "
                "kind ten seconds apart: TVs slam volume, players wedge "
                "decoders, printers jam — every repair routed through "
                "the diagnosis-guided ladder on one shared kernel.",
    duration=100.0,
    tvs=8,
    players=6,
    printers=4,
    profiles=(UserProfile(
        "storm", mean_gap=1.5,
        keys=("vol_up", "vol_down", "mute", "vol_up", "vol_down", "ch_up"),
    ),),
    player_seek_every=4.0,
    corrupt_player_packets=(25, 26, 27, 55, 56, 57, 85, 86, 87),
    printer_job_gap=10.0,
    phases=(
        FaultPhase("volume_overshoot", at=12.0, fraction=0.5, recovery=True),
        FaultPhase("stall_on_corrupt", at=22.0, kind="player", fraction=0.5,
                   recovery=True),
        FaultPhase("silent_jam", at=32.0, kind="printer", fraction=0.5,
                   recovery=True),
    ),
))

# ----------------------------------------------------------------------
# fuzzer-pinned repros (PR 8).  Each pair of facts below was found by
# ``python -m repro.fuzz run``, shrunk to a minimal spec, and pinned
# here with the workload fix that closes the detection gap; the shrunk
# *failing* twins live in tests/test_fuzz_repros.py.
# ----------------------------------------------------------------------
register_scenario(ScenarioSpec(
    name="fuzz-latent-volume",
    description="Fuzzer find (spec 2c248f67be04, campaign seed 2): a "
                "volume_overshoot injected at t=0 on a lone TV stayed "
                "invisible for the whole horizon because the sampled "
                "profile never touched a volume key — passive awareness "
                "cannot see a latent interaction fault.  Pinned with the "
                "model-coverage exercise profile, which is guaranteed to "
                "reach every key-triggered spec transition: detection "
                "now lands within the first volume press's streak.",
    duration=18.0,
    tvs=1,
    profiles=(exercise_profile(),),
    phases=(FaultPhase("volume_overshoot", at=1.0, kind="tv", fraction=1.0),),
))

register_scenario(ScenarioSpec(
    name="fuzz-printer-silent-jam",
    description="Fuzzer find (spec 8ade5f2b092a, campaign seed 5): a "
                "silent feeder jam on an idle printer — no job gap, so "
                "the paper path never ran and every throughput/progress "
                "observable stayed vacuously healthy.  Pinned with a "
                "probe job cadence: the first submission stalls in the "
                "jammed feeder and the progressing observable flags the "
                "divergence inside the spec's slack window.",
    duration=25.0,
    printers=1,
    printer_job_gap=5.0,
    printer_pages=(2, 4),
    profiles=(),
    phases=(FaultPhase("silent_jam", at=1.0, kind="printer", fraction=1.0),),
))

register_scenario(ScenarioSpec(
    name="recovery-ladder-drill",
    description="Escalating fault waves with NO scheduled repair: each "
                "afflicted member's awareness controller must detect the "
                "divergence and walk the recovery ladder (local reset → "
                "component restart → rebind) until the fault is gone — "
                "the Fig. 1 loop end to end, with per-wave time-to-"
                "recover recorded in fleet telemetry.",
    duration=80.0,
    tvs=10,
    # Volume-heavy and never standby: every rung of the ladder needs a
    # fresh faulty interaction to re-diverge after the restart re-sync,
    # so the drill keeps the faulty controls exercised.
    profiles=(UserProfile(
        "driller", mean_gap=1.5,
        keys=("vol_up", "vol_down", "mute", "vol_up", "vol_down", "ch_up"),
    ),),
    phases=(
        FaultPhase("volume_overshoot", at=10.0, fraction=0.3, recovery=True),
        FaultPhase("mute_noop", at=36.0, fraction=0.5, recovery=True),
        FaultPhase("volume_overshoot", at=62.0, fraction=0.8, recovery=True),
    ),
))
