"""Declarative scenario specifications.

The paper's industry-as-laboratory method (Sect. 3) validates awareness
monitors by driving real systems through realistic usage — which only
works if the workloads are *diverse* and *reproducible*.  PR 1's
:class:`~repro.runtime.fleet.ExperimentRunner` made campaigns runnable;
this module makes them **declarative**: a :class:`ScenarioSpec` names a
device mix, per-profile user behaviors, and a phased fault-injection
schedule, and the compiler (:mod:`repro.scenarios.compile`) lowers it
onto a :class:`~repro.runtime.fleet.MonitorFleet`.

Specs are frozen dataclasses: hashable, comparable, and safe to share
between sweep points.  Everything stochastic inside a compiled scenario
draws from streams derived from ``(seed, scenario)`` names, so the same
``(spec, seed)`` pair reproduces the identical campaign byte for byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

#: TV faults toggled through ``control.fault_flags``.
TV_FLAG_FAULTS = ("volume_overshoot", "mute_noop", "menu_opens_epg")

#: Every ``(kind, fault)`` pair the compiler knows how to apply.  Faults
#: in :data:`LOAD_FAULTS` are load/churn disturbances rather than latent
#: defects: they do not mark their targets "faulty" for detection-rate
#: accounting.
KNOWN_FAULTS = frozenset(
    [("tv", name) for name in TV_FLAG_FAULTS]
    + [
        ("tv", "drop_ttx_notify"),
        ("tv", "ttx_stale_render"),
        ("tv", "alert_broadcast"),
        ("tv", "monitor_churn"),
        ("player", "stall_on_corrupt"),
        ("player", "decode_slowdown"),
        ("printer", "silent_jam"),
        ("printer", "cold_fuser"),
        ("printer", "lost_staples"),
        ("printer", "job_burst"),
    ]
)

LOAD_FAULTS = frozenset(
    [("tv", "alert_broadcast"), ("tv", "monitor_churn"), ("printer", "job_burst")]
)


def _opt_tuple(value) -> Optional[Tuple[str, ...]]:
    return None if value is None else tuple(value)


def _opt_float(value) -> Optional[float]:
    return None if value is None else float(value)


def spec_hash(spec: "ScenarioSpec") -> str:
    """Stable SHA-256 identity of a spec's canonical JSON form.

    Two specs hash equal iff they are behaviourally the same scenario:
    the canonical form coerces ints-given-for-floats, restores no
    defaults, and sorts keys, so hand-written, round-tripped, and
    grammar-sampled specs all agree.  This is the corpus key under
    :mod:`repro.fuzz` and the diffable identity of a shrunk repro.
    """
    return hashlib.sha256(spec.canonical_json().encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class UserProfile:
    """One class of TV user: how often they press, and what.

    ``weight`` sets the share of the TV population assigned to this
    profile (normalized across the spec's profiles, drawn from a seeded
    stream so assignment is deterministic per seed).

    With ``script`` the profile is **deterministic** instead of random:
    every assigned member presses exactly these keys, one every
    ``mean_gap`` simulated seconds (offset by its stagger slot), and is
    exempted from the automatic power-on — the script owns the whole
    session.  This is how hand-rolled scripted drivers (the Sect. 4.4
    27-press diagnosis scenario) run through the campaign surface.
    """

    name: str
    mean_gap: float = 4.0
    keys: Optional[Tuple[str, ...]] = None
    weight: float = 1.0
    script: Optional[Tuple[str, ...]] = None

    def to_json(self) -> Dict[str, Any]:
        """Canonical JSON form (see :func:`spec_hash` for the contract)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "mean_gap": float(self.mean_gap),
            "weight": float(self.weight),
        }
        # Optional tuple fields serialize as lists only when present, so
        # the canonical form has no nulls to diff against.
        if self.keys is not None:
            data["keys"] = list(self.keys)
        if self.script is not None:
            data["script"] = list(self.script)
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "UserProfile":
        return cls(
            name=data["name"],
            mean_gap=float(data.get("mean_gap", 4.0)),
            # JSON has no tuples: restore them, else a loaded profile
            # would not compare (or hash) equal to the one it came from.
            keys=_opt_tuple(data.get("keys")),
            weight=float(data.get("weight", 1.0)),
            script=_opt_tuple(data.get("script")),
        )

    def validate(self) -> None:
        if self.mean_gap <= 0:
            raise ValueError(f"profile {self.name!r}: mean_gap must be > 0")
        if self.weight <= 0:
            raise ValueError(f"profile {self.name!r}: weight must be > 0")
        if self.keys is not None and not self.keys:
            raise ValueError(f"profile {self.name!r}: keys may not be empty")
        if self.script is not None:
            if not self.script:
                raise ValueError(f"profile {self.name!r}: script may not be empty")
            if self.keys is not None:
                raise ValueError(
                    f"profile {self.name!r}: script and keys are exclusive — "
                    "a scripted profile presses exactly its script"
                )
            from ..tv.remote import KEYS  # deferred: keep spec import-light

            unknown = [key for key in self.script if key not in KEYS]
            if unknown:
                raise ValueError(
                    f"profile {self.name!r}: unknown script keys {unknown!r}"
                )
            if "power" not in self.script:
                # Scripted members skip the automatic power-on (the
                # script owns the session), so a script that never
                # powers the set would run entirely in standby — every
                # press swallowed, every fault unexercised, no error.
                raise ValueError(
                    f"profile {self.name!r}: a script owns its whole "
                    "session and must press 'power' to leave standby"
                )


@dataclass(frozen=True)
class FaultPhase:
    """One entry in the fault-injection schedule.

    At simulated time ``at``, ``fault`` is applied to a seeded
    ``fraction`` of the members of ``kind``.  With ``duration`` the fault
    is cleared again at ``at + duration`` (a scheduled repair); with
    ``pulse_every`` the application repeats on that period until the
    phase window closes (floods and bursts).  With ``recovery`` nothing
    is scheduled at all: the repair comes from the awareness controller
    — each afflicted member's monitor detects the divergence and walks
    the Fig. 1 recovery ladder (local reset → component restart →
    rebind), with per-wave time-to-recover recorded in fleet telemetry.
    """

    fault: str
    at: float
    kind: str = "tv"
    fraction: float = 0.25
    duration: Optional[float] = None
    pulse_every: Optional[float] = None
    recovery: bool = False

    @property
    def marks_faulty(self) -> bool:
        """Whether targets count as fault-injected for detection rates."""
        return (self.kind, self.fault) not in LOAD_FAULTS

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "fault": self.fault,
            "at": float(self.at),
            "kind": self.kind,
            "fraction": float(self.fraction),
        }
        if self.duration is not None:
            data["duration"] = float(self.duration)
        if self.pulse_every is not None:
            data["pulse_every"] = float(self.pulse_every)
        if self.recovery:
            data["recovery"] = True
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FaultPhase":
        return cls(
            fault=data["fault"],
            at=float(data["at"]),
            kind=data.get("kind", "tv"),
            fraction=float(data.get("fraction", 0.25)),
            duration=_opt_float(data.get("duration")),
            pulse_every=_opt_float(data.get("pulse_every")),
            recovery=bool(data.get("recovery", False)),
        )

    def validate(self) -> None:
        if (self.kind, self.fault) not in KNOWN_FAULTS:
            raise ValueError(f"unknown fault {self.fault!r} for kind {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"fault {self.fault!r}: at must be >= 0")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fault {self.fault!r}: fraction must be in (0, 1]")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"fault {self.fault!r}: duration must be > 0")
        if self.pulse_every is not None:
            if self.pulse_every <= 0:
                raise ValueError(f"fault {self.fault!r}: pulse_every must be > 0")
            if self.duration is None:
                raise ValueError(
                    f"fault {self.fault!r}: pulse_every needs a duration window"
                )
        if self.recovery:
            if not self.marks_faulty:
                raise ValueError(
                    f"fault {self.fault!r}: load faults are never detected, "
                    "so controller-driven recovery cannot repair them"
                )
            if self.duration is not None or self.pulse_every is not None:
                raise ValueError(
                    f"fault {self.fault!r}: a recovery phase repairs through "
                    "the awareness controller, not the schedule — drop "
                    "duration/pulse_every"
                )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative campaign: who, what, when, for how long."""

    name: str
    description: str
    duration: float
    # device mix ------------------------------------------------------
    tvs: int = 0
    players: int = 0
    printers: int = 0
    # behavior --------------------------------------------------------
    profiles: Tuple[UserProfile, ...] = (UserProfile("default"),)
    phases: Tuple[FaultPhase, ...] = ()
    #: Players issue a seeded seek every this many simulated seconds.
    player_seek_every: Optional[float] = None
    player_packets: int = 500
    corrupt_player_packets: Tuple[int, ...] = ()
    #: Mean gap between background print jobs (None: no background jobs).
    printer_job_gap: Optional[float] = 30.0
    printer_pages: Tuple[int, int] = (1, 4)
    #: Power-on stagger between TVs.
    stagger: float = 0.1
    # telemetry / tracing ---------------------------------------------
    #: None → automatic: retain the full merged trace only for fleets
    #: under :data:`AUTO_STREAM_THRESHOLD` members.
    retain_trace: Optional[bool] = None
    telemetry_window: float = 10.0
    telemetry_reservoir: int = 512
    #: Attach a :class:`~repro.obs.spans.SpanRecorder` so every fault
    #: episode is stitched into a causal span tree (injection →
    #: detection → ranking → rungs → repair).  Off by default — the
    #: paper's overhead budget; when off the harness's ``obs.*`` markers
    #: publish into silence and no digest changes.
    record_spans: bool = False

    AUTO_STREAM_THRESHOLD = 200

    @property
    def members(self) -> int:
        return self.tvs + self.players + self.printers

    def resolve_retain_trace(self) -> bool:
        if self.retain_trace is not None:
            return self.retain_trace
        return self.members < self.AUTO_STREAM_THRESHOLD

    def validate(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"scenario {self.name!r}: duration must be > 0")
        if min(self.tvs, self.players, self.printers) < 0:
            raise ValueError(f"scenario {self.name!r}: negative device count")
        if self.members == 0:
            raise ValueError(f"scenario {self.name!r}: empty device mix")
        if self.tvs and not self.profiles:
            raise ValueError(f"scenario {self.name!r}: TVs need user profiles")
        seen = set()
        for profile in self.profiles:
            profile.validate()
            if profile.name in seen:
                raise ValueError(
                    f"scenario {self.name!r}: duplicate profile {profile.name!r}"
                )
            seen.add(profile.name)
        counts = {"tv": self.tvs, "player": self.players, "printer": self.printers}
        for phase in self.phases:
            phase.validate()
            if phase.at >= self.duration:
                raise ValueError(
                    f"scenario {self.name!r}: fault {phase.fault!r} at "
                    f"{phase.at} starts after the scenario ends"
                )
            if counts.get(phase.kind, 0) == 0:
                raise ValueError(
                    f"scenario {self.name!r}: fault {phase.fault!r} targets "
                    f"kind {phase.kind!r} but the mix has no such devices "
                    "(a silent no-op would read as perfect detection)"
                )
        if self.player_seek_every is not None and self.player_seek_every <= 0:
            raise ValueError(f"scenario {self.name!r}: player_seek_every must be > 0")
        if self.printer_job_gap is not None and self.printer_job_gap <= 0:
            raise ValueError(f"scenario {self.name!r}: printer_job_gap must be > 0")
        if self.printer_pages[0] < 1 or self.printer_pages[1] < self.printer_pages[0]:
            raise ValueError(f"scenario {self.name!r}: bad printer_pages range")

    # ------------------------------------------------------------------
    # canonical serialization (corpus entries, shrunk repros, diffs)
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """Canonical JSON form: floats are floats, tuples are lists, and
        fields at their dataclass default are omitted — so two equal
        specs always serialize to the same bytes under
        ``json.dumps(..., sort_keys=True)`` and :func:`spec_hash` is a
        stable identity for corpus entries and shrunk repros."""
        data: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "duration": float(self.duration),
            "tvs": int(self.tvs),
            "players": int(self.players),
            "printers": int(self.printers),
            "profiles": [profile.to_json() for profile in self.profiles],
            "phases": [phase.to_json() for phase in self.phases],
            "player_packets": int(self.player_packets),
            "corrupt_player_packets": [
                int(i) for i in self.corrupt_player_packets
            ],
            "printer_pages": [int(p) for p in self.printer_pages],
            "stagger": float(self.stagger),
            "telemetry_window": float(self.telemetry_window),
            "telemetry_reservoir": int(self.telemetry_reservoir),
            "record_spans": bool(self.record_spans),
        }
        if self.player_seek_every is not None:
            data["player_seek_every"] = float(self.player_seek_every)
        if self.printer_job_gap is not None:
            data["printer_job_gap"] = float(self.printer_job_gap)
        if self.retain_trace is not None:
            data["retain_trace"] = bool(self.retain_trace)
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_json`: ``from_json(spec.to_json())``
        compares equal to ``spec`` (tuples restored from JSON lists —
        the field shapes that used to break round-tripping)."""
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            duration=float(data["duration"]),
            tvs=int(data.get("tvs", 0)),
            players=int(data.get("players", 0)),
            printers=int(data.get("printers", 0)),
            profiles=(
                tuple(
                    UserProfile.from_json(entry)
                    for entry in data["profiles"]
                )
                if "profiles" in data
                else (UserProfile("default"),)
            ),
            phases=tuple(
                FaultPhase.from_json(entry) for entry in data.get("phases", [])
            ),
            player_seek_every=_opt_float(data.get("player_seek_every")),
            player_packets=int(data.get("player_packets", 500)),
            corrupt_player_packets=tuple(
                int(i) for i in data.get("corrupt_player_packets", [])
            ),
            printer_job_gap=_opt_float(data.get("printer_job_gap")),
            printer_pages=tuple(
                int(p) for p in data.get("printer_pages", (1, 4))
            ),
            stagger=float(data.get("stagger", 0.1)),
            retain_trace=(
                None if data.get("retain_trace") is None
                else bool(data["retain_trace"])
            ),
            telemetry_window=float(data.get("telemetry_window", 10.0)),
            telemetry_reservoir=int(data.get("telemetry_reservoir", 512)),
            record_spans=bool(data.get("record_spans", False)),
        )

    def canonical_json(self) -> str:
        """The canonical byte form :func:`spec_hash` hashes."""
        return json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        )

    def scaled(self, factor: float) -> "ScenarioSpec":
        """The same scenario with the device mix scaled by ``factor``
        (at least one device of every kind present in the original)."""
        if factor <= 0:
            raise ValueError("scale factor must be > 0")

        def scale(count: int) -> int:
            return max(1, round(count * factor)) if count else 0

        return replace(
            self,
            tvs=scale(self.tvs),
            players=scale(self.players),
            printers=scale(self.printers),
        )
