"""Model-coverage exercise workloads: scripts that expose latent faults.

The fuzz campaigns (PR 8) surfaced a systematic detection gap: every
``missed_detection`` finding was a *latent* fault — ``volume_overshoot``
on a TV whose profile never touches the volume keys, ``mute_noop`` with
no mute press, a silently jammed feeder in a printer nobody sends jobs
to.  Passive awareness compares observed behaviour against the spec
model, so a fault that only corrupts an interaction path is invisible
until that path runs.  Random :class:`~repro.scenarios.spec.UserProfile`
workloads (Markov walks over a key subset) can starve whole key classes
for an entire scenario horizon.

The fix is the paper's own loop closed the other way: derive the
workload *from the specification model*.  :func:`tv_exercise_script`
searches the TV control model (breadth-first over machine snapshots) for
a shortest deterministic key sequence that fires **every key-triggered
spec transition reachable from the remote alphabet** — the same
transition universe the :class:`~repro.statemachine.testgen.TestGenerator`
exposes through its coverage API.  A profile built from that script
(:func:`exercise_profile`) is guaranteed to exercise volume, mute,
teletext, menu/EPG, and dual-screen paths, so any fault squatting on
them must diverge from the model while the monitor watches.

The library's ``fuzz-*`` repro scenarios pin shrunk fuzzer findings with
this profile: same fault, same horizon, but the workload now reaches the
faulty path and detection succeeds (see ``tests/test_fuzz_repros.py``).
"""

from __future__ import annotations

from collections import deque
from functools import lru_cache
from typing import FrozenSet, Tuple

from ..statemachine.machine import Machine
from ..tv.control_model import build_tv_model
from .spec import UserProfile

#: Remote keys the exercise walk may press.  Mirrors the fuzz grammar's
#: TV vocabulary minus digits (their model event carries a parameter and
#: channel surfing is already covered by ch_up/ch_down) and minus keys
#: the broadcaster owns (``alert_broadcast`` is not a remote key).
EXERCISE_KEYS: Tuple[str, ...] = (
    "power", "ch_up", "ch_down", "vol_up", "vol_down", "mute",
    "ttx", "menu", "back", "dual", "swap", "epg", "ok", "sleep",
)

#: Press cadence the script is synthesized for.  Chosen below the
#: teletext acquire time (1.6) so a press can still land in
#: ``ttx_searching``, and below the overlay timeouts (2.0) so volbar /
#: banner transitions stay reachable from their own states.
EXERCISE_GAP = 1.5

#: Search bounds.  The guard-pruned configuration space of the control
#: model is tiny (leaf state x dual x lock flag), so these are generous.
_MAX_DEPTH = 6
_MAX_NODES = 4000


def _signature(machine: Machine, time: float, gap: float) -> Tuple[str, bool, bool, bool]:
    """Guard-relevant configuration: only ``dual`` and ``lock_enabled``
    feed transition guards, so richer vars (volume, channel, pip) would
    just bloat the visited set without changing what is enabled.  The
    timer flag keeps "wait" moves alive: a no-op press leaves the
    configuration alone but may carry the machine across a timed
    transition (teletext acquire), which changes what the next press can
    fire."""
    timeout = machine.next_timeout()
    return (
        machine.configuration(),
        bool(machine.get("dual")),
        bool(machine.get("lock_enabled")),
        timeout is not None and timeout <= time + gap,
    )


def _search_step(
    committed: Machine,
    scratch: Machine,
    now: float,
    gap: float,
) -> Tuple[str, ...]:
    """Shortest key sequence (at ``gap`` cadence) firing any transition
    the committed trajectory has not fired yet; empty when none is
    reachable."""
    pending = {
        t.name
        for t in committed.all_transitions()
        if t.fire_count == 0 and t.event in EXERCISE_KEYS
    }
    if not pending:
        return ()
    scratch.restore(committed.snapshot())
    transitions = scratch.all_transitions()
    queue = deque([(scratch.snapshot(), now, ())])
    seen = {_signature(scratch, now, gap)}
    nodes = 0
    while queue and nodes < _MAX_NODES:
        snapshot, time, keys = queue.popleft()
        for key in EXERCISE_KEYS:
            scratch.restore(snapshot)
            before = [t.fire_count for t in transitions]
            scratch.advance(time + gap)
            scratch.inject(key)
            nodes += 1
            fired = {
                t.name
                for t, count in zip(transitions, before)
                if t.fire_count > count
            }
            if fired & pending:
                return keys + (key,)
            signature = _signature(scratch, time + gap, gap)
            if signature in seen or len(keys) + 1 >= _MAX_DEPTH:
                continue
            seen.add(signature)
            queue.append((scratch.snapshot(), time + gap, keys + (key,)))
    return ()


@lru_cache(maxsize=8)
def tv_exercise_script(
    channel_count: int = 3, gap: float = EXERCISE_GAP
) -> Tuple[str, ...]:
    """Deterministic remote-key script covering every key-triggered TV
    spec transition reachable from :data:`EXERCISE_KEYS`.

    Pure function of its arguments: the search is breadth-first with a
    fixed key order, so the same script comes back on every call (the
    fuzz determinism gate depends on that).  Build cost is a few tens of
    milliseconds; the result is cached.
    """
    committed = build_tv_model(channel_count=channel_count)
    committed.initialize()
    scratch = build_tv_model(channel_count=channel_count)
    scratch.initialize()
    script: list = []
    now = 0.0
    while True:
        step = _search_step(committed, scratch, now, gap)
        if not step:
            break
        for key in step:
            now += gap
            committed.advance(now)
            committed.inject(key)
            script.append(key)
    return tuple(script)


def uncovered_by_exercise(
    channel_count: int = 3, gap: float = EXERCISE_GAP
) -> FrozenSet[str]:
    """Key-triggered spec transitions the exercise script cannot reach.

    Structurally unreachable classes only: transitions out of ``alert``
    (entering it needs the broadcaster's ``alert_broadcast``, not a
    remote key) and the ``*-locked`` variants (no channels are locked in
    the default model).  Pinned by tests so a model change that silently
    shrinks exercise coverage fails loudly.
    """
    machine = build_tv_model(channel_count=channel_count)
    machine.initialize()
    now = 0.0
    for key in tv_exercise_script(channel_count=channel_count, gap=gap):
        now += gap
        machine.advance(now)
        machine.inject(key)
    return frozenset(
        t.name
        for t in machine.all_transitions()
        if t.fire_count == 0 and t.event in EXERCISE_KEYS
    )


def exercise_profile(
    name: str = "exerciser",
    channel_count: int = 3,
    gap: float = EXERCISE_GAP,
    weight: float = 1.0,
) -> UserProfile:
    """A scripted profile that replays the exercise walk at the cadence
    it was synthesized for."""
    return UserProfile(
        name,
        weight=weight,
        mean_gap=gap,
        script=tv_exercise_script(channel_count=channel_count, gap=gap),
    )
