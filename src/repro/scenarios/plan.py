"""Scenario placement plans: the determinism seam under sharded execution.

A compiled scenario makes three kinds of global stochastic decisions
*before* any event is dispatched: which ``suo_id`` every member gets,
which user profile each TV is assigned, and which members every fault
phase afflicts.  When one kernel runs the whole fleet those decisions can
be drawn lazily; once the fleet is partitioned across worker processes
they must be **planned up front from the campaign seed**, or shard
placement would perturb behaviour and a sharded run could never match
its serial twin.

:func:`build_plan` computes those decisions as a pure function of
``(spec, seed)`` — drawing from exactly the streams the PR 2 compiler
used, so serial campaigns are bit-compatible — and
:func:`partition_plan` splits a plan round-robin per device kind into
per-shard plans, each carrying a partitioned :class:`ScenarioSpec` plus
the global identities, profile assignments, stagger slots, and phase
targets of its members.

Determinism rules (see docs/CAMPAIGNS.md):

* per-member behaviour is keyed to ``(campaign seed, suo_id)`` — a
  member simulates identically whichever shard it lands on;
* fleet-internal streams of a shard (telemetry reservoir sampling) are
  keyed to :func:`derive_shard_seed` ``(seed, shard_id)``;
* everything the plan decides is keyed to the campaign seed alone.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..runtime.fleet import derive_member_seed
from ..sim.random import RandomStreams
from .spec import ScenarioSpec

KINDS = ("tv", "player", "printer")


def derive_shard_seed(seed: int, shard_id: int) -> int:
    """Stable per-shard seed for shard-local streams."""
    digest = hashlib.sha256(f"shard:{seed}:{shard_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class PlannedMember:
    """One member's global identity and placement-independent slots."""

    suo_id: str
    kind: str
    #: Index among members of the same kind across the *whole* campaign
    #: (drives power-on/play stagger, so it must survive partitioning).
    kind_index: int
    #: Assigned user profile name (TVs only).
    profile: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "suo_id": self.suo_id,
            "kind": self.kind,
            "kind_index": self.kind_index,
        }
        if self.profile is not None:
            data["profile"] = self.profile
        return data

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "PlannedMember":
        return cls(
            suo_id=str(data["suo_id"]),
            kind=str(data["kind"]),
            kind_index=int(data["kind_index"]),
            profile=(
                None if data.get("profile") is None
                else str(data["profile"])
            ),
        )


@dataclass(frozen=True)
class ScenarioPlan:
    """All pre-run decisions for one (scenario, seed) cell — or for one
    shard's slice of it."""

    spec: ScenarioSpec
    seed: int
    members: Tuple[PlannedMember, ...]
    #: Per fault phase, the suo_ids it afflicts (global decision; a
    #: shard plan keeps only its local members' entries).
    phase_targets: Tuple[Tuple[str, ...], ...]
    shard_id: int = 0
    shards: int = 1

    def members_of(self, kind: str) -> List[PlannedMember]:
        return [member for member in self.members if member.kind == kind]

    @property
    def is_shard(self) -> bool:
        return self.shards > 1

    # ------------------------------------------------------------------
    # wire form: how a remote-dispatch backend ships a shard plan to a
    # worker on another host (see repro.campaign.distributed).  The JSON
    # round-trip is exact — plan_from_json(plan.to_json()) == plan — so
    # a socket worker executes the byte-identical placement decisions.
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_json(),
            "seed": self.seed,
            "members": [member.to_json() for member in self.members],
            "phase_targets": [list(targets) for targets in self.phase_targets],
            "shard_id": self.shard_id,
            "shards": self.shards,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ScenarioPlan":
        return cls(
            spec=ScenarioSpec.from_json(data["spec"]),
            seed=int(data["seed"]),
            members=tuple(
                PlannedMember.from_json(entry)
                for entry in data["members"]
            ),
            phase_targets=tuple(
                tuple(str(suo) for suo in targets)
                for targets in data.get("phase_targets", [])
            ),
            shard_id=int(data.get("shard_id", 0)),
            shards=int(data.get("shards", 1)),
        )


def build_plan(spec: ScenarioSpec, seed: int = 0) -> ScenarioPlan:
    """Plan one full (unsharded) scenario cell.

    Stream discipline mirrors the PR 2 compiler exactly — suo_ids embed
    the global admission slot, profiles draw one ``choices`` per TV from
    the ``scenario.profiles`` stream, phase targets draw one ``random``
    per member of the phase's kind from ``scenario.phase.<i>`` — so a
    serial campaign compiled from this plan reproduces the PR 2 event
    stream byte for byte.
    """
    spec.validate()
    streams = RandomStreams(derive_member_seed(seed, "<fleet>"))
    members: List[PlannedMember] = []
    slot = 0
    for kind, count in (("tv", spec.tvs), ("player", spec.players),
                        ("printer", spec.printers)):
        for kind_index in range(count):
            members.append(PlannedMember(f"{kind}-{slot}", kind, kind_index))
            slot += 1
    if spec.profiles and spec.tvs:
        rng = streams.stream("scenario.profiles")
        profiles = list(spec.profiles)
        weights = [profile.weight for profile in profiles]
        members = [
            replace(member, profile=rng.choices(profiles, weights=weights)[0].name)
            if member.kind == "tv"
            else member
            for member in members
        ]
    phase_targets: List[Tuple[str, ...]] = []
    for index, phase in enumerate(spec.phases):
        rng = streams.stream(f"scenario.phase.{index}")
        phase_targets.append(tuple(
            member.suo_id
            for member in members
            if member.kind == phase.kind and rng.random() < phase.fraction
        ))
    return ScenarioPlan(
        spec=spec,
        seed=seed,
        members=tuple(members),
        phase_targets=tuple(phase_targets),
    )


def partition_plan(plan: ScenarioPlan, shards: int) -> List[ScenarioPlan]:
    """Split a full plan into per-shard plans, round-robin per kind.

    Each shard plan carries a partitioned spec (device counts shrink to
    the shard's slice; ``retain_trace`` is pinned to the parent's
    resolved mode so memory behaviour is scale-invariant) while members
    keep their global suo_ids, kind indices, profiles, and phase
    memberships.  Shards that would be empty are dropped, so asking for
    more shards than members degrades gracefully.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if plan.is_shard:
        raise ValueError("cannot re-partition a shard plan")
    if shards == 1:
        return [plan]
    buckets: List[List[PlannedMember]] = [[] for _ in range(shards)]
    for kind in KINDS:
        for index, member in enumerate(plan.members_of(kind)):
            buckets[index % shards].append(member)
    result: List[ScenarioPlan] = []
    for shard_id, bucket in enumerate(buckets):
        if not bucket:
            continue
        local = {member.suo_id for member in bucket}
        counts: Dict[str, int] = {kind: 0 for kind in KINDS}
        for member in bucket:
            counts[member.kind] += 1
        shard_spec = replace(
            plan.spec,
            tvs=counts["tv"],
            players=counts["player"],
            printers=counts["printer"],
            retain_trace=plan.spec.resolve_retain_trace(),
        )
        result.append(ScenarioPlan(
            spec=shard_spec,
            seed=plan.seed,
            members=tuple(bucket),
            phase_targets=tuple(
                tuple(suo_id for suo_id in targets if suo_id in local)
                for targets in plan.phase_targets
            ),
            shard_id=shard_id,
            shards=shards,
        ))
    return result
