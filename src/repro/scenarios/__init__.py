"""Scenario engine: declarative, reproducible fleet workloads.

The subsystem every workload PR plugs into:

* :mod:`repro.scenarios.spec`    — :class:`ScenarioSpec` /
  :class:`UserProfile` / :class:`FaultPhase`, the declarative layer;
* :mod:`repro.scenarios.compile` — :class:`CompiledScenario`, lowering a
  spec onto a :class:`~repro.runtime.fleet.MonitorFleet`;
* :mod:`repro.scenarios.library` — ≥10 named scenarios
  (``zapping-storm`` … ``recovery-ladder-drill``) in a registry;
* :mod:`repro.scenarios.runner`  — :class:`ScenarioRunner`, sweeping
  scenario × seed grids into :class:`ScenarioReport` cells.

Quick start::

    from repro.scenarios import ScenarioRunner, scenario_names

    runner = ScenarioRunner()
    report = runner.run("zapping-storm", seed=7)
    print(report.telemetry["events_total"], report.telemetry_digest)
"""

from .compile import CompiledScenario, FAULT_ACTIONS
from .exercise import (
    EXERCISE_GAP,
    EXERCISE_KEYS,
    exercise_profile,
    tv_exercise_script,
    uncovered_by_exercise,
)
from .recovery import MemberRecovery
from .plan import (
    PlannedMember,
    ScenarioPlan,
    build_plan,
    derive_shard_seed,
    partition_plan,
)
from .library import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    scenario_names,
)
from .runner import ScenarioReport, ScenarioRunner, format_table
from .spec import (
    KNOWN_FAULTS,
    LOAD_FAULTS,
    FaultPhase,
    ScenarioSpec,
    UserProfile,
    spec_hash,
)

__all__ = [
    "CompiledScenario",
    "EXERCISE_GAP",
    "EXERCISE_KEYS",
    "FAULT_ACTIONS",
    "FaultPhase",
    "KNOWN_FAULTS",
    "LOAD_FAULTS",
    "MemberRecovery",
    "PlannedMember",
    "SCENARIOS",
    "ScenarioPlan",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "UserProfile",
    "build_plan",
    "derive_shard_seed",
    "exercise_profile",
    "format_table",
    "get_scenario",
    "partition_plan",
    "register_scenario",
    "scenario_names",
    "spec_hash",
    "tv_exercise_script",
    "uncovered_by_exercise",
]
