"""Scenario-driven recovery: the Fig. 1 ladder wired to fleet members.

A :class:`FaultPhase` with ``recovery=True`` schedules *no* repair.
Instead every monitored target gets a :class:`MemberRecovery` harness —
the paper's outer loop assembled from the real parts:

* the member's :class:`~repro.awareness.controller.Controller` is the
  error source (``IErrorNotify``);
* a :class:`~repro.core.policy.RecoveryPolicy` holds the escalation
  ladder — **local reset** (clear comparator state; invisible to the
  user), **component restart** (bounce the awareness monitor, re-sync
  via ``Machine.reseed``), **rebind** (replace the faulty component and
  restart; the only rung that removes a permanent fault);
* a :class:`~repro.recovery.RecoveryManager` executes the rungs;
* an :class:`~repro.core.loop.AwarenessLoop` ties them together and
  verifies each action by watching for recurrence.

The first two rungs deliberately cannot remove an injected fault: a
local reset only clears detection state, and a restarted monitor
re-adopts the SUO's (still faulty) behaviour as baseline until the next
interaction diverges again.  Repeated detection therefore walks the
ladder to ``rebind``, which invokes the phase's repair action — so the
drill exercises detection → escalation → repair → verification end to
end, and the elapsed time from fault injection to the rebind completing
is the episode's **time-to-recover**.

**Diagnosis in the loop (PR 5).**  From the moment a member comes under
suspicion (its harness is created), a
:class:`~repro.diagnosis.components.ComponentSpectra` collector folds
the member's bus traffic into per-component activity/error spectra.
When the ladder reaches ``rebind``, the harness consults the SFL
ranking: with a confident top suspect it performs a **targeted rebind**
of just that component (smaller downtime; the repair only clears the
fault when the suspect actually is the faulty component — a
mislocalized rebind leaves the fault standing, the next detection
re-escalates, and the harness falls back to a full rebind).  With a
weak or tied ranking it goes straight to the full rebind.  Every rebind
publishes its localization outcome (mode, suspect, confidence, the
rank the *true* faulty component achieved) into the ``diagnosis``
telemetry block.

Every executed rung publishes on ``suo.<suo_id>.recovery``; completed
episodes carry their TTR and wave index, which
:class:`~repro.runtime.telemetry.FleetTelemetry` folds into the
shard-invariant recovery block (merged by ``merge_summaries``).

Determinism: everything here is member-local — errors come from the
member's own monitor, rungs are scheduled on the shared kernel, and no
fleet-level randomness is consulted — so a member recovers identically
whichever shard it lands on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..core.contract import RecoveryAction
from ..core.loop import AwarenessLoop
from ..core.policy import LadderStep, RecoveryPolicy, perception_weighted_ladder
from ..diagnosis.components import COMPONENTS, ComponentSpectra
from ..perception.severity import FunctionProfile, SeverityModel
from ..recovery.recoverymgr import RecoveryManager
from ..runtime.bus import EventBus
from ..runtime.fleet import FleetMember
from ..sim.kernel import Kernel

#: The escalation ladder, least user impact first (Sect. 3: corrections
#: are chosen by expected impact on the user).
LADDER_KINDS = ("local_reset", "component_restart", "rebind")

#: Downtime each rung inflicts on the member's observation pipeline.
#: ``targeted_rebind`` is the diagnosis dividend: swapping one suspect
#: component rebinds less of the SUO than replacing it wholesale, so a
#: correct localization shows up as a measurably smaller TTR.
DOWNTIME = {
    "local_reset": 0.0,
    "component_restart": 0.5,
    "targeted_rebind": 0.8,
    "rebind": 2.0,
}

#: Relative user impact per rung (scales the policy's ordering).
USER_IMPACT = {"local_reset": 0.2, "component_restart": 1.0, "rebind": 2.5}

#: How users perceive a failure of the function each SUO kind serves
#: (Sect. 4.6 DTI factors).  :func:`perception_weighted_ladder` scales
#: the rung impacts by the population-level severity weight, so a
#: recovery that disrupts a function users notice and blame the product
#: for (live TV viewing) is costed higher than one users often
#: attribute externally (playback hiccups).
KIND_FUNCTIONS = {
    "tv": FunctionProfile(
        "viewing", stated_importance=0.9, usage=1.0,
        failure_visibility=0.9, external_attribution_prior=0.2,
    ),
    "player": FunctionProfile(
        "playback", stated_importance=0.8, usage=0.8,
        failure_visibility=0.8, external_attribution_prior=0.5,
    ),
    "printer": FunctionProfile(
        "printing", stated_importance=0.7, usage=0.6,
        failure_visibility=0.9, external_attribution_prior=0.3,
    ),
}


@dataclass
class FaultEpisode:
    """One open fault on a member: when it was armed, how to repair it,
    and which component actually carries it (diagnosis ground truth)."""

    wave: int
    armed_at: float
    repair: Callable[[], None]
    component: Optional[str] = None
    #: Targeted rebinds already spent on this episode: after one miss
    #: the harness stops trusting the ranking and rebinds fully.
    targeted_attempts: int = 0


class MemberRecovery:
    """One member's recovery ladder: policy + manager + loop, armed per
    fault episode by the scenario compiler."""

    def __init__(
        self,
        member: FleetMember,
        kernel: Kernel,
        bus: EventBus,
        settle_time: float = 15.0,
        quiet_period: float = 30.0,
        confidence_threshold: float = 0.05,
        spectra_window: float = 1.0,
    ) -> None:
        if member.monitor is None:
            raise ValueError(f"member {member.suo_id!r} has no monitor to recover")
        self.member = member
        self.kernel = kernel
        self.monitor = member.monitor
        self._publish = bus.publisher(f"suo.{member.suo_id}.recovery")
        #: Span markers for repro.obs.  Deliberately a *separate*
        #: namespace: nothing on ``suo.*`` may change shape (the fleet
        #: trace digest hashes event reprs), and with no SpanRecorder
        #: subscribed these publishes hit an empty compiled table —
        #: effectively free, honoring the overhead budget.
        self._span = bus.publisher(f"obs.{member.suo_id}.span")
        #: Online SFL evidence, collected from harness creation onward
        #: ("while the member is under suspicion").  Kinds without a
        #: component vocabulary would get no ranking; every fleet kind
        #: has one, but stay defensive for hand-built members.
        self.spectra: Optional[ComponentSpectra] = (
            ComponentSpectra(
                member.kind,
                member.suo_id,
                bus,
                clock=lambda: kernel.now,
                window=spectra_window,
            )
            if member.kind in COMPONENTS
            else None
        )
        self.confidence_threshold = confidence_threshold
        self.policy = RecoveryPolicy(quiet_period=quiet_period)
        steps = [
            LadderStep(kind, member.suo_id, USER_IMPACT[kind])
            for kind in LADDER_KINDS
        ]
        function = KIND_FUNCTIONS.get(member.kind)
        if function is not None:
            steps = list(
                perception_weighted_ladder(steps, function, SeverityModel())
            )
        self.policy.add_ladder("*", steps)
        self.manager = RecoveryManager(kernel)
        self.manager.register_handler("local_reset", self._local_reset)
        self.manager.register_handler("component_restart", self._component_restart)
        self.manager.register_handler("rebind", self._rebind)
        self.loop = AwarenessLoop(
            kernel,
            self.policy,
            self.manager,
            settle_time=settle_time,
            name=f"{member.suo_id}.recovery-loop",
        )
        self.loop.attach(self.monitor.controller)
        #: Open fault episodes, oldest first.  A queue, not a slot — a
        #: member hit by a second wave before finishing the first
        #: carries BOTH faults, and each rebind repairs (and accounts)
        #: the oldest one.
        self._episodes: List[FaultEpisode] = []
        #: Completed episodes: (wave index, time-to-recover).
        self.completed: List[Tuple[int, float]] = []

    # ------------------------------------------------------------------
    def arm(
        self,
        wave: int,
        repair: Callable[[], None],
        component: Optional[str] = None,
        fault: Optional[str] = None,
    ) -> None:
        """A fault phase just afflicted this member: open an episode.

        ``repair`` is the fault's clear action — what the ``rebind``
        rung executes when escalation reaches it; ``component`` is the
        fault's true location (ground truth for localization
        telemetry, and what decides whether a targeted rebind of the
        SFL suspect actually repairs); ``fault`` is the injected
        fault's name (span labeling only).  A fresh (no episode in
        flight) arm walks the ladder from the bottom; stacking onto an
        in-flight episode keeps the current escalation, since the
        member is already mid-recovery.
        """
        if not self._episodes:
            self.policy.reset()
        self._episodes.append(
            FaultEpisode(wave, self.kernel.now, repair, component)
        )
        self._span(
            {"ev": "inject", "wave": wave, "fault": fault,
             "component": component}
        )

    @property
    def armed(self) -> bool:
        return bool(self._episodes)

    @property
    def _wave(self) -> Optional[int]:
        """The oldest open episode's wave (rung events are labeled with
        the episode currently being worked)."""
        return self._episodes[0].wave if self._episodes else None

    # ------------------------------------------------------------------
    # ladder rungs (RecoveryManager handlers; each returns its downtime)
    # ------------------------------------------------------------------
    def _local_reset(self, action: RecoveryAction) -> float:
        """Rung 1: clear comparator deviation state only.  Invisible to
        the user; a persistent fault re-accumulates a streak and
        escalates."""
        self.monitor.comparator.reset()
        self._publish({"action": "local_reset", "wave": self._wave})
        self._span(
            {"ev": "rung", "action": "local_reset", "wave": self._wave,
             "downtime": DOWNTIME["local_reset"]}
        )
        return DOWNTIME["local_reset"]

    def _component_restart(self, action: RecoveryAction) -> float:
        """Rung 2: bounce the awareness monitor.  The restart handshake
        re-seeds the model from the SUO's observable state, so a
        *transient* wedge is cured; an injected fault diverges again on
        the next faulty interaction and escalates further."""
        downtime = DOWNTIME["component_restart"]
        self.monitor.stop()
        self.kernel.schedule(
            downtime, self.monitor.start,
            name=f"recovery:restart:{self.member.suo_id}",
        )
        self._publish({"action": "component_restart", "wave": self._wave})
        self._span(
            {"ev": "rung", "action": "component_restart",
             "wave": self._wave, "downtime": downtime}
        )
        return downtime

    def _rebind(self, action: RecoveryAction) -> float:
        """Rung 3: replace the faulty component and restart around the
        new binding — the rung that actually removes an injected fault.

        The SFL ranking decides *which* component to replace.  With a
        confident top suspect the rebind is **targeted**: only that
        component is swapped (smaller downtime), which repairs the fault
        exactly when the suspect is the truly faulty component.  A miss
        leaves the fault standing — the episode stays open, the next
        detection returns here, and the harness rebinds fully.  A weak
        or tied ranking skips straight to the full rebind.  Completing a
        repair closes the oldest episode and records its time-to-recover;
        any stacked episode stays open, and its fault drives the next
        detection, which walks the ladder again from the bottom."""
        episode = self._episodes[0] if self._episodes else None
        suspect: Optional[str] = None
        confidence = 0.0
        true_rank: Optional[int] = None
        if self.spectra is not None:
            ranking = self.spectra.ranking()
            if ranking:
                suspect = ranking[0].component
                confidence = self.spectra.confidence(ranking)
            if episode is not None and episode.component is not None:
                true_rank = next(
                    (
                        entry.rank
                        for entry in ranking
                        if entry.component == episode.component
                    ),
                    None,
                )
        targeted = (
            episode is not None
            # No ground-truth component (a fault outside
            # FAULT_COMPONENTS) means the simulation cannot decide
            # whether a component swap would land — a targeted attempt
            # could never hit, so it would only burn downtime and log a
            # bogus miss.  Go straight to the full rebind instead.
            and episode.component is not None
            and suspect is not None
            and confidence >= self.confidence_threshold
            and episode.targeted_attempts == 0
        )
        closed: Optional[FaultEpisode] = None
        hit: Optional[bool] = None
        if targeted:
            mode = "targeted"
            downtime = DOWNTIME["targeted_rebind"]
            hit = episode.component is not None and suspect == episode.component
            if hit:
                closed = self._episodes.pop(0)
                closed.repair()
            else:
                episode.targeted_attempts += 1
        else:
            mode = "full"
            downtime = DOWNTIME["rebind"]
            if episode is not None:
                closed = self._episodes.pop(0)
                closed.repair()
        episode_wave = episode.wave if episode is not None else None
        if self.spectra is not None:
            self._span(
                {"ev": "sfl-rank", "wave": episode_wave, "suspect": suspect,
                 "confidence": round(confidence, 6), "true_rank": true_rank}
            )
        self._span(
            {"ev": "rung", "action": "rebind", "mode": mode,
             "wave": episode_wave, "downtime": downtime, "hit": hit}
        )
        self.monitor.stop()

        def back_up() -> None:
            self.monitor.start()
            event = {
                "action": "rebind",
                "mode": mode,
                "suspect": suspect,
                "confidence": round(confidence, 6),
                "true_component": episode.component if episode else None,
                "true_rank": true_rank,
                "hit": hit,
            }
            if closed is not None:
                ttr = self.kernel.now - closed.armed_at
                self.completed.append((closed.wave, ttr))
                event["wave"] = closed.wave
                event["ttr"] = round(ttr, 9)
            else:
                event["wave"] = self._wave
            self._publish(event)
            if closed is not None:
                self._span(
                    {"ev": "repair", "wave": closed.wave,
                     "ttr": event["ttr"], "mode": mode}
                )
            if closed is not None and self._episodes:
                # another fault is still standing: restart the ladder
                # for it (its TTR clock has been running since its arm)
                self.policy.reset()

        self.kernel.schedule(
            downtime, back_up, name=f"recovery:rebind:{self.member.suo_id}"
        )
        return downtime
