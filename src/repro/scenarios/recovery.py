"""Scenario-driven recovery: the Fig. 1 ladder wired to fleet members.

A :class:`FaultPhase` with ``recovery=True`` schedules *no* repair.
Instead every monitored target gets a :class:`MemberRecovery` harness —
the paper's outer loop assembled from the real parts:

* the member's :class:`~repro.awareness.controller.Controller` is the
  error source (``IErrorNotify``);
* a :class:`~repro.core.policy.RecoveryPolicy` holds the escalation
  ladder — **local reset** (clear comparator state; invisible to the
  user), **component restart** (bounce the awareness monitor, re-sync
  via ``Machine.reseed``), **rebind** (replace the faulty component and
  restart; the only rung that removes a permanent fault);
* a :class:`~repro.recovery.RecoveryManager` executes the rungs;
* an :class:`~repro.core.loop.AwarenessLoop` ties them together and
  verifies each action by watching for recurrence.

The first two rungs deliberately cannot remove an injected fault: a
local reset only clears detection state, and a restarted monitor
re-adopts the SUO's (still faulty) behaviour as baseline until the next
interaction diverges again.  Repeated detection therefore walks the
ladder to ``rebind``, which invokes the phase's repair action — so the
drill exercises detection → escalation → repair → verification end to
end, and the elapsed time from fault injection to the rebind completing
is the episode's **time-to-recover**.

Every executed rung publishes on ``suo.<suo_id>.recovery``; completed
episodes carry their TTR and wave index, which
:class:`~repro.runtime.telemetry.FleetTelemetry` folds into the
shard-invariant recovery block (merged by ``merge_summaries``).

Determinism: everything here is member-local — errors come from the
member's own monitor, rungs are scheduled on the shared kernel, and no
fleet-level randomness is consulted — so a member recovers identically
whichever shard it lands on.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.contract import RecoveryAction
from ..core.loop import AwarenessLoop
from ..core.policy import LadderStep, RecoveryPolicy, perception_weighted_ladder
from ..perception.severity import FunctionProfile, SeverityModel
from ..recovery.recoverymgr import RecoveryManager
from ..runtime.bus import EventBus
from ..runtime.fleet import FleetMember
from ..sim.kernel import Kernel

#: The escalation ladder, least user impact first (Sect. 3: corrections
#: are chosen by expected impact on the user).
LADDER_KINDS = ("local_reset", "component_restart", "rebind")

#: Downtime each rung inflicts on the member's observation pipeline.
DOWNTIME = {"local_reset": 0.0, "component_restart": 0.5, "rebind": 2.0}

#: Relative user impact per rung (scales the policy's ordering).
USER_IMPACT = {"local_reset": 0.2, "component_restart": 1.0, "rebind": 2.5}

#: How users perceive a failure of the function each SUO kind serves
#: (Sect. 4.6 DTI factors).  :func:`perception_weighted_ladder` scales
#: the rung impacts by the population-level severity weight, so a
#: recovery that disrupts a function users notice and blame the product
#: for (live TV viewing) is costed higher than one users often
#: attribute externally (playback hiccups).
KIND_FUNCTIONS = {
    "tv": FunctionProfile(
        "viewing", stated_importance=0.9, usage=1.0,
        failure_visibility=0.9, external_attribution_prior=0.2,
    ),
    "player": FunctionProfile(
        "playback", stated_importance=0.8, usage=0.8,
        failure_visibility=0.8, external_attribution_prior=0.5,
    ),
    "printer": FunctionProfile(
        "printing", stated_importance=0.7, usage=0.6,
        failure_visibility=0.9, external_attribution_prior=0.3,
    ),
}


class MemberRecovery:
    """One member's recovery ladder: policy + manager + loop, armed per
    fault episode by the scenario compiler."""

    def __init__(
        self,
        member: FleetMember,
        kernel: Kernel,
        bus: EventBus,
        settle_time: float = 15.0,
        quiet_period: float = 30.0,
    ) -> None:
        if member.monitor is None:
            raise ValueError(f"member {member.suo_id!r} has no monitor to recover")
        self.member = member
        self.kernel = kernel
        self.monitor = member.monitor
        self._publish = bus.publisher(f"suo.{member.suo_id}.recovery")
        self.policy = RecoveryPolicy(quiet_period=quiet_period)
        steps = [
            LadderStep(kind, member.suo_id, USER_IMPACT[kind])
            for kind in LADDER_KINDS
        ]
        function = KIND_FUNCTIONS.get(member.kind)
        if function is not None:
            steps = list(
                perception_weighted_ladder(steps, function, SeverityModel())
            )
        self.policy.add_ladder("*", steps)
        self.manager = RecoveryManager(kernel)
        self.manager.register_handler("local_reset", self._local_reset)
        self.manager.register_handler("component_restart", self._component_restart)
        self.manager.register_handler("rebind", self._rebind)
        self.loop = AwarenessLoop(
            kernel,
            self.policy,
            self.manager,
            settle_time=settle_time,
            name=f"{member.suo_id}.recovery-loop",
        )
        self.loop.attach(self.monitor.controller)
        #: Open fault episodes, oldest first: (wave, armed_at, repair).
        #: A queue, not a slot — a member hit by a second wave before
        #: finishing the first carries BOTH faults, and each rebind
        #: repairs (and accounts) the oldest one.
        self._episodes: List[Tuple[int, float, Callable[[], None]]] = []
        #: Completed episodes: (wave index, time-to-recover).
        self.completed: List[Tuple[int, float]] = []

    # ------------------------------------------------------------------
    def arm(self, wave: int, repair: Callable[[], None]) -> None:
        """A fault phase just afflicted this member: open an episode.

        ``repair`` is the fault's clear action — what the ``rebind``
        rung executes when escalation reaches it.  A fresh (no episode
        in flight) arm walks the ladder from the bottom; stacking onto
        an in-flight episode keeps the current escalation, since the
        member is already mid-recovery.
        """
        if not self._episodes:
            self.policy.reset()
        self._episodes.append((wave, self.kernel.now, repair))

    @property
    def armed(self) -> bool:
        return bool(self._episodes)

    @property
    def _wave(self) -> Optional[int]:
        """The oldest open episode's wave (rung events are labeled with
        the episode currently being worked)."""
        return self._episodes[0][0] if self._episodes else None

    # ------------------------------------------------------------------
    # ladder rungs (RecoveryManager handlers; each returns its downtime)
    # ------------------------------------------------------------------
    def _local_reset(self, action: RecoveryAction) -> float:
        """Rung 1: clear comparator deviation state only.  Invisible to
        the user; a persistent fault re-accumulates a streak and
        escalates."""
        self.monitor.comparator.reset()
        self._publish({"action": "local_reset", "wave": self._wave})
        return DOWNTIME["local_reset"]

    def _component_restart(self, action: RecoveryAction) -> float:
        """Rung 2: bounce the awareness monitor.  The restart handshake
        re-seeds the model from the SUO's observable state, so a
        *transient* wedge is cured; an injected fault diverges again on
        the next faulty interaction and escalates further."""
        downtime = DOWNTIME["component_restart"]
        self.monitor.stop()
        self.kernel.schedule(
            downtime, self.monitor.start,
            name=f"recovery:restart:{self.member.suo_id}",
        )
        self._publish({"action": "component_restart", "wave": self._wave})
        return downtime

    def _rebind(self, action: RecoveryAction) -> float:
        """Rung 3: replace the faulty component (the oldest episode's
        repair) and restart around the new binding — the rung that
        actually removes an injected fault.  Completing it closes that
        episode and records its time-to-recover; any stacked episode
        stays open, and its fault drives the next detection, which walks
        the ladder again from the bottom."""
        downtime = DOWNTIME["rebind"]
        episode = self._episodes.pop(0) if self._episodes else None
        if episode is not None:
            _wave, _armed_at, repair = episode
            repair()
        self.monitor.stop()

        def back_up() -> None:
            self.monitor.start()
            if episode is not None:
                wave, armed_at, _repair = episode
                ttr = self.kernel.now - armed_at
                self.completed.append((wave, ttr))
                self._publish(
                    {"action": "rebind", "wave": wave, "ttr": round(ttr, 9)}
                )
            else:
                self._publish({"action": "rebind", "wave": None})
            if self._episodes:
                # another fault is still standing: restart the ladder
                # for it (its TTR clock has been running since its arm)
                self.policy.reset()

        self.kernel.schedule(
            downtime, back_up, name=f"recovery:rebind:{self.member.suo_id}"
        )
        return downtime
