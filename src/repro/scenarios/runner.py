"""ScenarioRunner: sweep scenario × seed grids, one report per cell.

The runner is the campaign-level API the ROADMAP's "many-scenario
campaigns" item asks for: give it scenario names (or specs) and seeds,
get back one :class:`ScenarioReport` per grid cell, each carrying the
fleet outcome *and* the bounded-memory telemetry summary whose digest is
the reproducibility witness at scales where retaining the merged trace
would be prohibitive.
"""

from __future__ import annotations

import time as wallclock
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence, Union

from ..runtime.fleet import FleetReport
from .compile import CompiledScenario
from .library import get_scenario
from .spec import ScenarioSpec

ScenarioLike = Union[str, ScenarioSpec]


@dataclass
class ScenarioReport:
    """Outcome of one (scenario, seed) grid cell."""

    scenario: str
    seed: int
    fleet: FleetReport
    profile_mix: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    # convenience passthroughs ----------------------------------------
    @property
    def detection_rate(self) -> float:
        return self.fleet.detection_rate

    @property
    def false_alarm_rate(self) -> float:
        return self.fleet.false_alarm_rate

    @property
    def telemetry(self) -> Dict[str, Any]:
        return self.fleet.telemetry_summary

    @property
    def telemetry_digest(self) -> str:
        return self.fleet.telemetry_digest

    def row(self) -> List[Any]:
        """One summary-table row (see :func:`format_table`)."""
        summary = self.fleet.telemetry_summary
        return [
            self.scenario,
            self.seed,
            self.fleet.members,
            f"{self.fleet.duration:.0f}",
            self.fleet.dispatched,
            summary.get("events_total", 0),
            summary.get("errors_total", 0),
            len(self.fleet.faulty),
            len(self.fleet.detected),
            len(self.fleet.false_alarms),
            self.telemetry_digest[:12],
        ]


#: Header matching :meth:`ScenarioReport.row`.
TABLE_HEADER = [
    "scenario", "seed", "suos", "sim s", "dispatched", "suo events",
    "errors", "faulty", "detected", "false alarms", "telemetry digest",
]


def format_table(reports: Sequence[ScenarioReport]) -> str:
    """Render sweep results as an aligned text table."""
    rows = [TABLE_HEADER] + [report.row() for report in reports]
    widths = [max(len(str(row[i])) for row in rows) for i in range(len(TABLE_HEADER))]
    lines = [
        "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


class ScenarioRunner:
    """Run named scenarios and sweep scenario × seed grids."""

    def __init__(self, scale: float = 1.0) -> None:
        #: Device-mix multiplier applied to every scenario (lets one
        #: sweep definition serve both smoke tests and load campaigns).
        self.scale = scale

    def _resolve(self, scenario: ScenarioLike) -> ScenarioSpec:
        spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
        if self.scale != 1.0:
            spec = spec.scaled(self.scale)
        return spec

    def compile(self, scenario: ScenarioLike, seed: int = 0) -> CompiledScenario:
        """Lower a scenario onto a fresh fleet without running it."""
        return CompiledScenario(self._resolve(scenario), seed=seed)

    def run(self, scenario: ScenarioLike, seed: int = 0) -> ScenarioReport:
        """Run one (scenario, seed) cell to completion."""
        spec = self._resolve(scenario)
        compiled = CompiledScenario(spec, seed=seed)
        start = wallclock.perf_counter()
        fleet_report = compiled.run()
        wall = wallclock.perf_counter() - start
        return ScenarioReport(
            scenario=spec.name,
            seed=seed,
            fleet=fleet_report,
            profile_mix={
                name: len(group)
                for name, group in compiled.profile_groups.items()
            },
            wall_seconds=wall,
        )

    def sweep(
        self,
        scenarios: Iterable[ScenarioLike],
        seeds: Iterable[int] = (0,),
    ) -> List[ScenarioReport]:
        """The full scenario × seed grid, row-major (scenario outer)."""
        seeds = list(seeds)
        return [
            self.run(scenario, seed)
            for scenario in scenarios
            for seed in seeds
        ]
