"""ScenarioRunner: deprecated shim over :class:`repro.campaign.Campaign`.

PR 2's runner was the campaign-level API; PR 3 unified that surface in
:mod:`repro.campaign` (one ``Campaign`` plan, pluggable serial/sharded
execution backends).  ``ScenarioRunner`` survives for callers that hold
:class:`ScenarioReport` cells with live fleet objects attached — every
``run`` now routes through the campaign serial backend, so legacy sweeps
and new campaigns execute the exact same code path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..runtime.fleet import FleetReport, warn_deprecated_once
from .compile import CompiledScenario
from .library import get_scenario
from .spec import ScenarioSpec

ScenarioLike = Union[str, ScenarioSpec]

@dataclass
class ScenarioReport:
    """Outcome of one (scenario, seed) grid cell."""

    scenario: str
    seed: int
    fleet: FleetReport
    profile_mix: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    # convenience passthroughs ----------------------------------------
    @property
    def detection_rate(self) -> float:
        return self.fleet.detection_rate

    @property
    def false_alarm_rate(self) -> float:
        return self.fleet.false_alarm_rate

    @property
    def telemetry(self) -> Dict[str, Any]:
        return self.fleet.telemetry_summary

    @property
    def telemetry_digest(self) -> str:
        return self.fleet.telemetry_digest

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible dict: the full cell outcome, machine-readable."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "members": self.fleet.members,
            "duration": self.fleet.duration,
            "dispatched": self.fleet.dispatched,
            "wall_seconds": self.wall_seconds,
            "events_per_sec": self.fleet.events_per_sec,
            "faulty": list(self.fleet.faulty),
            "detected": list(self.fleet.detected),
            "false_alarms": list(self.fleet.false_alarms),
            "detection_rate": self.detection_rate,
            "false_alarm_rate": self.false_alarm_rate,
            "errors_by_suo": dict(self.fleet.errors_by_suo),
            "profile_mix": dict(self.profile_mix),
            "trace_digest": self.fleet.trace_digest,
            "trace_records": self.fleet.trace_records,
            "telemetry": self.fleet.telemetry_summary,
            "telemetry_digest": self.telemetry_digest,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The cell outcome as a JSON document."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def row(self) -> List[Any]:
        """One summary-table row (see :func:`format_table`)."""
        summary = self.fleet.telemetry_summary
        return [
            self.scenario,
            self.seed,
            self.fleet.members,
            f"{self.fleet.duration:.0f}",
            self.fleet.dispatched,
            summary.get("events_total", 0),
            summary.get("errors_total", 0),
            len(self.fleet.faulty),
            len(self.fleet.detected),
            len(self.fleet.false_alarms),
            self.telemetry_digest[:12],
        ]


#: Header matching :meth:`ScenarioReport.row`.
TABLE_HEADER = [
    "scenario", "seed", "suos", "sim s", "dispatched", "suo events",
    "errors", "faulty", "detected", "false alarms", "telemetry digest",
]


def format_table(reports: Sequence[ScenarioReport]) -> str:
    """Render sweep results as an aligned text table."""
    rows = [TABLE_HEADER] + [report.row() for report in reports]
    widths = [max(len(str(row[i])) for row in rows) for i in range(len(TABLE_HEADER))]
    lines = [
        "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


class ScenarioRunner:
    """Deprecated: run named scenarios and sweep scenario × seed grids.

    .. deprecated:: PR 3
        Use :class:`repro.campaign.Campaign` — the same grid semantics
        plus pluggable execution backends (serial today, sharded
        multiprocess for big fleets).  This shim forwards to the
        campaign serial backend and re-wraps its results in the legacy
        :class:`ScenarioReport` shape.
    """

    def __init__(self, scale: float = 1.0) -> None:
        warn_deprecated_once(
            "ScenarioRunner",
            "ScenarioRunner is deprecated: use repro.campaign.Campaign "
            "(same scenario x seed grids, pluggable execution backends)."
        )
        #: Device-mix multiplier applied to every scenario (lets one
        #: sweep definition serve both smoke tests and load campaigns).
        self.scale = scale

    def _resolve(self, scenario: ScenarioLike) -> ScenarioSpec:
        spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
        if self.scale != 1.0:
            spec = spec.scaled(self.scale)
        return spec

    def compile(self, scenario: ScenarioLike, seed: int = 0) -> CompiledScenario:
        """Lower a scenario onto a fresh fleet without running it."""
        return CompiledScenario(self._resolve(scenario), seed=seed)

    def run(self, scenario: ScenarioLike, seed: int = 0) -> ScenarioReport:
        """Run one (scenario, seed) cell to completion."""
        from ..campaign.core import run_cell_detailed

        spec = self._resolve(scenario)
        cell = run_cell_detailed(spec, seed)
        return ScenarioReport(
            scenario=spec.name,
            seed=seed,
            fleet=cell.fleet_report,
            profile_mix=cell.report.profile_mix,
            wall_seconds=cell.report.wall_seconds,
        )

    def sweep(
        self,
        scenarios: Iterable[ScenarioLike],
        seeds: Iterable[int] = (0,),
    ) -> List[ScenarioReport]:
        """The full scenario × seed grid, row-major (scenario outer)."""
        seeds = list(seeds)
        return [
            self.run(scenario, seed)
            for scenario in scenarios
            for seed in seeds
        ]
