"""Scenario compiler: lower a :class:`ScenarioSpec` onto a MonitorFleet.

:class:`CompiledScenario` is the bridge between the declarative layer and
the runtime engine: it builds the device mix, assigns user profiles from
a seeded stream, schedules every fault phase (applications, pulses, and
repairs) on the kernel, and drives the whole campaign through
:func:`~repro.runtime.fleet.build_fleet_report` so declarative and
hand-coded campaigns report through the same schema.

Determinism contract: every stochastic choice — profile assignment,
phase targeting, seek positions, print-job sizes — draws from a stream
named after its role.  Pre-run decisions come from a
:class:`~repro.scenarios.plan.ScenarioPlan` keyed to the campaign seed;
in-run per-member streams key to ``(campaign seed, suo_id)``.  The same
``(spec, seed)`` pair therefore reproduces the identical event stream,
trace digest, and telemetry summary — *and* each member's stream is
placement-invariant, which is what lets
:class:`~repro.campaign.ProcessShardBackend` partition a scenario across
worker processes without perturbing any member's behaviour.
"""

from __future__ import annotations

import time as wallclock
from typing import Callable, Dict, List, Optional, Tuple

from ..diagnosis.components import FAULT_COMPONENTS
from ..runtime.fleet import FleetMember, FleetReport, MonitorFleet, build_fleet_report
from ..sim.random import RandomStreams
from ..tv.remote import KeySequence
from .plan import ScenarioPlan, build_plan, derive_shard_seed
from .recovery import MemberRecovery
from .spec import FaultPhase, ScenarioSpec, TV_FLAG_FAULTS

Action = Callable[[FleetMember], None]


def _tv_flag(name: str) -> Tuple[Action, Action]:
    def apply(member: FleetMember) -> None:
        member.suo.control.fault_flags[name] = True

    def clear(member: FleetMember) -> None:
        member.suo.control.fault_flags[name] = False

    return apply, clear


def _set_attr(attr: str, on_value, off_value) -> Tuple[Action, Action]:
    def apply(member: FleetMember) -> None:
        setattr(member.suo, attr, on_value)

    def clear(member: FleetMember) -> None:
        setattr(member.suo, attr, off_value)

    return apply, clear


def _monitor_stop(member: FleetMember) -> None:
    if member.monitor is not None:
        member.monitor.stop()


def _monitor_start(member: FleetMember) -> None:
    if member.monitor is not None:
        member.monitor.start()


#: (kind, fault) -> (apply, clear-or-None).  Load faults (alert floods,
#: job bursts) have no clear action; they are impulses, not states.
FAULT_ACTIONS: Dict[Tuple[str, str], Tuple[Action, Optional[Action]]] = {
    ("tv", "drop_ttx_notify"): (
        lambda m: m.suo.teletext.inject_sync_loss(),
        lambda m: m.suo.teletext.repair_sync(),
    ),
    ("tv", "ttx_stale_render"): (
        lambda m: m.suo.teletext.inject_stale_render(),
        lambda m: m.suo.teletext.repair_stale_render(),
    ),
    ("tv", "alert_broadcast"): (lambda m: m.suo.broadcast_alert(), None),
    ("tv", "monitor_churn"): (_monitor_stop, _monitor_start),
    ("player", "stall_on_corrupt"): _set_attr("stall_on_corrupt", True, False),
    ("player", "decode_slowdown"): _set_attr("decode_slowdown", 3.0, 1.0),
    ("printer", "silent_jam"): (
        lambda m: m.suo.inject_silent_jam(),
        lambda m: m.suo.clear_jam(),
    ),
    ("printer", "cold_fuser"): (
        lambda m: m.suo.inject_cold_fuser(),
        lambda m: m.suo.repair_fuser(),
    ),
    ("printer", "lost_staples"): (
        lambda m: m.suo.inject_lost_staples(),
        lambda m: m.suo.refill_staples(),
    ),
    # A burst is an impulse, not a state: four jobs of fixed sizes land
    # at once (deterministic by construction, so no stream needed).
    ("printer", "job_burst"): (
        lambda m: [m.suo.submit(pages=pages) for pages in (2, 4, 3, 2)],
        None,
    ),
}
for _flag in TV_FLAG_FAULTS:
    FAULT_ACTIONS[("tv", _flag)] = _tv_flag(_flag)


def _player_pipeline_restart(member: FleetMember) -> None:
    """The wedged-decoder repair: a stalled decode process cannot be
    revived in place (the stall loop never exits), so the rebind rung
    clears the fault AND rebuilds the pipeline at the current position."""
    member.suo.stall_on_corrupt = False
    member.suo.restart_pipeline()


#: Repairs a *recovery ladder* executes at the rebind rung when the
#: phase's scheduled ``clear`` action alone would not undo the failure
#: mode (clearing ``stall_on_corrupt`` does not un-wedge an already
#: stalled decoder).  Faults not listed here repair with their ``clear``.
RECOVERY_REPAIRS: Dict[Tuple[str, str], Action] = {
    ("player", "stall_on_corrupt"): _player_pipeline_restart,
}


class CompiledScenario:
    """One :class:`ScenarioSpec` lowered onto a fresh MonitorFleet.

    ``run()`` may be called repeatedly; like
    :class:`~repro.runtime.fleet.ExperimentRunner`, setup happens once
    and later calls extend the campaign by another ``spec.duration``.

    Every pre-run decision comes from a :class:`ScenarioPlan` (built
    here when not supplied), so a shard worker can compile its slice of
    a partitioned plan and each member behaves exactly as it would in
    the serial run: member identity, profile, stagger slot, and phase
    membership are global facts, keyed to the campaign seed.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        seed: int = 0,
        plan: Optional[ScenarioPlan] = None,
    ) -> None:
        if plan is None:
            plan = build_plan(spec, seed)
        self.plan = plan
        self.spec = plan.spec
        self.seed = plan.seed
        spec = self.spec
        self.fleet = MonitorFleet(
            seed=plan.seed,
            retain_trace=spec.resolve_retain_trace(),
            telemetry_window=spec.telemetry_window,
            telemetry_reservoir=spec.telemetry_reservoir,
            # Shard-local streams (telemetry reservoir sampling) key to
            # (seed, shard_id); member streams stay on the campaign seed.
            stream_seed=(
                derive_shard_seed(plan.seed, plan.shard_id)
                if plan.is_shard else None
            ),
        )
        corrupt = list(spec.corrupt_player_packets)
        self._planned: Dict[str, "PlannedMember"] = {}
        for planned in plan.members:
            if planned.kind == "tv":
                self.fleet.add_tv(suo_id=planned.suo_id)
            elif planned.kind == "player":
                self.fleet.add_player(
                    suo_id=planned.suo_id,
                    packet_count=spec.player_packets,
                    corrupt_indices=corrupt,
                )
            else:
                self.fleet.add_printer(suo_id=planned.suo_id)
            self._planned[planned.suo_id] = planned
        #: Causal span recorder (opt-in via ``spec.record_spans``).
        #: Seeded to the campaign seed so its reservoir sample is as
        #: reproducible as everything else; attaching after admission
        #: subscribes every member's exact error topic in one pass.
        self.span_recorder = None
        if spec.record_spans:
            from ..obs.spans import SpanRecorder  # deferred: opt-in layer

            kernel = self.fleet.kernel
            self.span_recorder = SpanRecorder(
                self.fleet.bus, clock=lambda: kernel.now, seed=plan.seed
            )
            self.fleet.attach_span_recorder(self.span_recorder)
        #: Members fault-injected by a marking phase (unique, in order).
        self.faulty: List[FleetMember] = []
        #: Recovery harnesses by suo_id (created lazily when a
        #: ``recovery=True`` phase afflicts a monitored member).
        self.recoveries: Dict[str, MemberRecovery] = {}
        #: profile name -> members assigned to it.
        self.profile_groups: Dict[str, List[FleetMember]] = {
            profile.name: [] for profile in spec.profiles
        }
        for planned in plan.members:
            if planned.profile is not None:
                self.profile_groups[planned.profile].append(
                    self.fleet.members[planned.suo_id]
                )
        self._started = False
        self._elapsed = 0.0
        self._dispatched = 0
        self._wall = 0.0

    # ------------------------------------------------------------------
    # deterministic assignment
    # ------------------------------------------------------------------
    def _members_of(self, kind: str) -> List[FleetMember]:
        return [m for m in self.fleet.members.values() if m.kind == kind]

    def _kind_index(self, member: FleetMember) -> int:
        """The member's stagger slot among its kind, campaign-global."""
        return self._planned[member.suo_id].kind_index

    def _member_stream(self, member: FleetMember, name: str):
        """A per-member scenario stream, keyed to (campaign seed,
        suo_id) — placement-invariant, so shards reproduce it."""
        return RandomStreams(member.seed).stream(name)

    def _phase_targets(self, index: int, phase: FaultPhase) -> List[FleetMember]:
        targets = [
            self.fleet.members[suo_id]
            for suo_id in self.plan.phase_targets[index]
        ]
        if phase.marks_faulty:
            for member in targets:
                # Only monitored members enter detection-rate accounting:
                # a fault on an unmonitored SUO (a monitor=False
                # admission) is still applied, but counting it as
                # "injected" would pin the scenario's detection rate at
                # a structural zero no monitor improvement could move.
                if member.monitor is not None and not member.faulty:
                    member.faulty = True
                    self.faulty.append(member)
        return targets

    # ------------------------------------------------------------------
    # drivers
    # ------------------------------------------------------------------
    def _scripted_suo_ids(self) -> set:
        """Members driven by a scripted profile (the script owns their
        whole session, including the power key)."""
        scripted = set()
        for profile in self.spec.profiles:
            if profile.script is not None:
                scripted.update(
                    member.suo_id
                    for member in self.profile_groups[profile.name]
                )
        return scripted

    def _power_on_tvs(self) -> None:
        """Stagger power-on by the *campaign-global* kind index, so a
        shard's TVs power up at the same simulated instants as in the
        serial run (matches ``MonitorFleet.power_on_tvs`` for full
        plans, where slot order equals admission order).  Scripted
        members are skipped: their key script controls power itself."""
        scripted = self._scripted_suo_ids()
        for member in self._members_of("tv"):
            if member.suo_id in scripted:
                continue
            member.suo.remote.schedule_press(
                self._kind_index(member) * self.spec.stagger, "power"
            )

    def _start_users(self) -> None:
        for profile in self.spec.profiles:
            group = self.profile_groups[profile.name]
            if not group:
                continue
            if profile.script is not None:
                # Deterministic scripted sessions: one press every
                # mean_gap, offset by the campaign-global stagger slot —
                # placement-invariant, so shards replay them exactly.
                for member in group:
                    KeySequence(
                        member.suo.remote,
                        profile.script,
                        interval=profile.mean_gap,
                        start=1.0 + self._kind_index(member) * self.spec.stagger,
                    ).schedule()
                continue
            self.fleet.start_random_users(
                mean_gap=profile.mean_gap,
                keys=list(profile.keys) if profile.keys else None,
                members=group,
            )

    def _start_players(self) -> None:
        # Each loop closure is built by a factory so its recursive
        # self-reference is its own cell — a bare inner `def` in the for
        # loop would late-bind the name to the LAST member's closure and
        # funnel every reschedule onto one device.
        kernel = self.fleet.kernel
        seek_every = self.spec.player_seek_every

        def make_seek_loop(player, rng, horizon):
            def seek_loop() -> None:
                if player.state != "stopped":
                    player.command(
                        "seek", position=rng.uniform(0.0, horizon * 0.9)
                    )
                kernel.schedule(
                    seek_every, seek_loop, name="scenario:seek", transient=True
                )

            return seek_loop

        for member in self._members_of("player"):
            player = member.suo
            index = self._kind_index(member)
            kernel.schedule(
                index * self.spec.stagger,
                lambda p=player: p.command("play"),
                name=f"scenario:play:{member.suo_id}",
            )
            if seek_every is None:
                continue
            rng = self._member_stream(member, "scenario.seek")
            horizon = player.source.packet_count * player.source.packet_interval
            kernel.schedule(
                seek_every + index * self.spec.stagger,
                make_seek_loop(player, rng, horizon),
            )

    def _start_printers(self) -> None:
        gap = self.spec.printer_job_gap
        if gap is None:
            return
        kernel = self.fleet.kernel
        low, high = self.spec.printer_pages

        def make_submit_loop(printer, rng):
            def submit_loop() -> None:
                printer.submit(
                    pages=rng.randint(low, high), staple=rng.random() < 0.3
                )
                kernel.schedule(
                    rng.expovariate(1.0 / gap), submit_loop,
                    name="scenario:job", transient=True,
                )

            return submit_loop

        for member in self._members_of("printer"):
            rng = self._member_stream(member, "scenario.jobs")
            kernel.schedule(
                rng.expovariate(1.0 / gap), make_submit_loop(member.suo, rng)
            )

    # ------------------------------------------------------------------
    # fault schedule
    # ------------------------------------------------------------------
    def _recovery_harness(self, member: FleetMember) -> Optional[MemberRecovery]:
        """The member's (lazily created) recovery ladder; None when the
        member carries no monitor — nothing could detect, so nothing can
        drive a recovery."""
        if member.monitor is None:
            return None
        harness = self.recoveries.get(member.suo_id)
        if harness is None:
            harness = MemberRecovery(
                member, self.fleet.kernel, self.fleet.bus
            )
            self.recoveries[member.suo_id] = harness
        return harness

    def _schedule_phases(self) -> None:
        kernel = self.fleet.kernel
        for index, phase in enumerate(self.spec.phases):
            apply, clear = FAULT_ACTIONS[(phase.kind, phase.fault)]
            targets = self._phase_targets(index, phase)
            if not targets:
                continue

            if phase.recovery:
                repair = RECOVERY_REPAIRS.get((phase.kind, phase.fault), clear)
                if repair is None:
                    raise ValueError(
                        f"fault {phase.fault!r} has no repair action, so a "
                        "recovery ladder could never clear it"
                    )
                component = FAULT_COMPONENTS.get((phase.kind, phase.fault))

                def fire_recovery(
                    targets=targets, apply=apply, repair=repair,
                    index=index, component=component, fault=phase.fault,
                ) -> None:
                    for member in targets:
                        apply(member)
                        harness = self._recovery_harness(member)
                        if harness is not None:
                            harness.arm(
                                index,
                                lambda member=member, repair=repair: repair(member),
                                component=component,
                                fault=fault,
                            )

                kernel.schedule_at(
                    phase.at, fire_recovery, name=f"scenario:{phase.fault}"
                )
                continue

            def fire(targets=targets, apply=apply) -> None:
                for member in targets:
                    apply(member)

            kernel.schedule_at(phase.at, fire, name=f"scenario:{phase.fault}")
            if phase.pulse_every is not None and phase.duration is not None:
                pulse_at = phase.at + phase.pulse_every
                while pulse_at < phase.at + phase.duration:
                    kernel.schedule_at(
                        pulse_at, fire, name=f"scenario:{phase.fault}:pulse"
                    )
                    pulse_at += phase.pulse_every
            if phase.duration is not None and clear is not None:

                def repair(targets=targets, clear=clear) -> None:
                    for member in targets:
                        clear(member)

                kernel.schedule_at(
                    phase.at + phase.duration,
                    repair,
                    name=f"scenario:{phase.fault}:clear",
                )

    # ------------------------------------------------------------------
    def run(self) -> FleetReport:
        """Drive the campaign for one ``spec.duration`` segment.

        The report covers the campaign from its start — duration,
        dispatched, and wall time accumulate across segments, matching
        the cumulative error counts and telemetry it carries.
        """
        return self.run_segmented(1)

    def run_segmented(
        self,
        segments: int,
        on_segment: Optional[
            Callable[["CompiledScenario", int, float], None]
        ] = None,
    ) -> FleetReport:
        """Drive one ``spec.duration`` campaign in ``segments`` slices.

        Semantically identical to :meth:`run` — the kernel documents
        that interleaved ``run(until=...)`` calls dispatch the same
        events in the same order as one call, and the final boundary is
        the exact float an unsegmented run stops at — so the trace and
        telemetry digests are byte-identical for any segment count.
        ``on_segment(compiled, index, now)`` fires after each boundary
        with telemetry flushed: the live-snapshot seam the campaign
        service streams :class:`~repro.runtime.telemetry.FleetTelemetry`
        state through while a shard runs.  A callback that raises aborts
        the run (cooperative cancellation); the kernel clock stays at
        the completed boundary.
        """
        if segments < 1:
            raise ValueError("segments must be >= 1")
        if not self._started:
            self._started = True
            self._power_on_tvs()
            self._start_users()
            self._start_players()
            self._start_printers()
            self._schedule_phases()
        kernel = self.fleet.kernel
        origin = kernel.now
        start = wallclock.perf_counter()
        dispatched = 0
        for index in range(segments):
            # (index + 1) / segments is exactly 1.0 on the last slice,
            # so the final boundary equals origin + duration — the same
            # float run() targets — whatever the intermediate cuts were.
            boundary = origin + self.spec.duration * ((index + 1) / segments)
            dispatched += kernel.run(until=boundary)
            self.fleet.telemetry.flush()
            if on_segment is not None:
                on_segment(self, index, kernel.now)
        self._wall += wallclock.perf_counter() - start
        self._elapsed += self.spec.duration
        self._dispatched += dispatched
        return build_fleet_report(
            self.fleet, self._elapsed, self._dispatched, self._wall, self.faulty
        )
