"""AwarenessMonitor: the complete Fig. 2 assembly.

Builds and wires every framework component — channels across the process
boundary, Input/Output Observers, Model Executor, Comparator, Controller,
Configuration — exactly along the figure's interfaces:

* SUO  →(IInputEvent)→  Input Observer  →(IEventInfo)→  Model Executor
* SUO  →(IOutputEvent)→ Output Observer →(IOutputEvent)→ Comparator
* Model Executor →(IModelExecutor)→ Comparator
* Model Executor →(IConfigInfo)→ Configuration
* Comparator →(IErrorNotify)→ Controller (→ the outer Fig. 1 loop)

:func:`make_tv_monitor` and :func:`make_player_monitor` add the "SUO
modifications": the small adaptation that makes a system send its input
and output events to the observers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..core.contract import Observation
from ..sim.kernel import Kernel
from ..sim.random import RandomStreams
from ..statemachine.machine import Machine
from ..tv.control_model import (
    build_tv_model,
    expected_screen,
    expected_sound,
    key_to_event_name,
)
from ..tv.mediaplayer import (
    MediaPlayer,
    build_player_model,
    expected_player_pace,
    expected_player_position,
    expected_player_progressing,
    expected_player_state,
)
from ..tv.tvset import TVSet
from .channel import MessageChannel
from .comparator import Comparator
from .config import AwarenessConfig
from .controller import Controller
from .executor import EventTranslator, ExpectedProvider, ModelExecutor
from .input_observer import InputObserver
from .output_observer import OutputObserver


class AwarenessMonitor:
    """One awareness monitor attached to one SUO."""

    def __init__(
        self,
        kernel: Kernel,
        machine: Machine,
        translator: EventTranslator,
        providers: Dict[str, ExpectedProvider],
        config: Optional[AwarenessConfig] = None,
        channel_delay: float = 0.05,
        channel_jitter: float = 0.02,
        streams: Optional[RandomStreams] = None,
        name: str = "awareness",
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.config = config or AwarenessConfig()
        streams = streams or RandomStreams(0)

        self.input_channel = MessageChannel(
            kernel, f"{name}.in", delay=channel_delay, jitter=channel_jitter, streams=streams
        )
        self.output_channel = MessageChannel(
            kernel, f"{name}.out", delay=channel_delay, jitter=channel_jitter, streams=streams
        )

        self.input_observer = InputObserver(f"{name}.input-observer")
        self.output_observer = OutputObserver(f"{name}.output-observer")
        self.executor = ModelExecutor(
            machine, translator, providers, self.config, name=f"{name}.executor"
        )
        self.comparator = Comparator(
            kernel, self.config, self.executor, self.output_observer,
            name=f"{name}.comparator",
        )
        self.controller = Controller(f"{name}.controller")

        # wiring along Fig. 2 interfaces --------------------------------
        self.input_observer.connect_channel(self.input_channel)
        self.output_observer.connect_channel(self.output_channel)
        self.input_observer.subscribe(self.executor.on_input)
        self.executor.subscribe_steps(self.comparator.on_model_step)
        self.output_observer.subscribe(self.comparator.on_output_event)
        self.comparator.subscribe_errors(self.controller.on_error)
        for component in (
            self.input_observer,
            self.output_observer,
            self.executor,
            self.comparator,
        ):
            self.controller.manage(component)

        #: Re-sync handshake run on every restart (see
        #: :meth:`attach_resync`); ``resyncs`` counts invocations.
        self._resync: Optional[Callable[[], None]] = None
        self._was_stopped = False
        self.resyncs = 0

    # ------------------------------------------------------------------
    def attach_resync(self, handshake: Callable[[], None]) -> None:
        """Install the restart re-sync handshake.

        A monitor stopped mid-session misses inputs, so on restart its
        model executor would replay expectations from a stale state and
        false-alarm on every divergence it "missed" (the monitor-churn
        scenario made this visible).  The handshake re-seeds the model —
        and the output observer's last-seen values — from the SUO's
        *current* observable state before components restart.
        """
        self._resync = handshake

    def start(self) -> None:
        if self.controller.running:
            return
        if self._was_stopped and self._resync is not None:
            # Drop datagrams still in flight from before the stop: the
            # snapshot below already reflects them, and replaying them
            # would double-apply inputs to the re-seeded model.
            self.input_channel.flush_pending()
            self.output_channel.flush_pending()
            self._resync()
            self.resyncs += 1
        self.controller.start()

    def stop(self) -> None:
        if self.controller.running:
            self._was_stopped = True
        self.controller.stop()

    @property
    def errors(self):
        return self.controller.errors

    # -- SUO-side send helpers (used by the adapters) --------------------
    def send_input(self, name: str, value: Any, time: float) -> None:
        self.input_channel.send("input", {"name": name, "value": value, "time": time})

    def send_output(self, name: str, value: Any, time: float) -> None:
        self.output_channel.send("output", {"name": name, "value": value, "time": time})


# ----------------------------------------------------------------------
# restart re-sync handshakes
# ----------------------------------------------------------------------
_OVERLAY_TO_MODEL_STATE = {
    "none": "viewing",
    "volume_bar": "volbar",
    "info_banner": "banner",
    "menu": "menu",
    "epg": "epg",
    "alert": "alert",
}


def resync_tv_monitor(monitor: "AwarenessMonitor", tv: TVSet) -> None:
    """Re-seed a TV monitor's model from the TV's current observable
    state (the restart handshake; ROADMAP "monitor re-sync" item).

    The model adopts the SUO's *actual* state as its new baseline: the
    active overlay maps to the model leaf (with transient-overlay timers
    re-armed at the TV's true expiry instants), control variables copy
    the component state the user could observe, and the output
    observer's last-seen values refresh to the current screen/sound so
    timed comparisons do not run against pre-stop observations.  An
    active fault is *not* masked for long — the adopted baseline matches
    reality right now, and the next interaction that exercises the
    faulty behaviour diverges again and is re-detected.
    """
    now = tv.kernel.now
    if not tv.powered:
        leaf = "standby"
    else:
        overlay = tv.osd.op_osd_current_overlay()
        if overlay == "ttx":
            rendered = tv.teletext.op_ttx_rendered_page()
            leaf = "ttx_shown" if rendered.get("status") == "shown" else "ttx_searching"
        else:
            leaf = _OVERLAY_TO_MODEL_STATE.get(overlay, "viewing")
    deadlines = {}
    for kind, state_name in (("volume_bar", "volbar"), ("info_banner", "banner")):
        pending = tv._transient_events.get(kind)
        if pending is not None and leaf == state_name:
            deadlines[state_name] = pending.time
    monitor.executor.machine.reseed(
        leaf,
        now,
        vars={
            "channel": tv.channel,
            "channel_count": tv.tuner.channel_count,
            "volume": tv.audio.op_audio_get_volume(),
            "mute": tv.audio.mode == "mute",
            "dual": tv.dual.active,
            "pip": tv.dual.pip_channel if tv.dual.active else 0,
            "lock_enabled": tv.features.mode == "locked",
            "locked": frozenset(tv.features.locked_channels),
            "sleep": tv.features.op_features_get_sleep(),
        },
        timer_deadlines=deadlines,
    )
    for name, value in (
        ("screen", tv.screen_descriptor()),
        ("sound", tv.sound_level()),
    ):
        monitor.output_observer.latest[name] = Observation(
            time=now, source="suo", name=name, value=value
        )
    monitor.comparator.reset()


def resync_player_monitor(monitor: "AwarenessMonitor", player) -> None:
    """Re-seed a player monitor from the player's current state.

    A stalled player has no model counterpart (the stall *is* the
    fault); the model adopts ``playing`` — what an unfaulty pipeline
    would be doing — so the persistent divergence is re-detected
    immediately after restart instead of being masked.  The depth
    observables re-seed too: position adopts the player's reported
    position, and the progress/pace expectations re-arm at the restart
    instant so the stale pre-stop frame history cannot false-alarm.
    """
    now = player.kernel.now
    state = player.state if player.state in ("stopped", "playing", "paused") else "playing"
    monitor.executor.machine.reseed(
        state,
        now,
        vars={
            "position": player.position,
            "last_progress": now,
            "last_gap": 0.0,
            "pending_since": None,
        },
    )
    for name, value in (
        ("state", player.state),
        ("position", round(player.position, 3)),
        ("buffer", player.buffer_level()),
        ("progressing", True),
        ("pace", True),
    ):
        monitor.output_observer.latest[name] = Observation(
            time=now, source="suo", name=name, value=value
        )
    monitor.comparator.reset()


# ----------------------------------------------------------------------
# default configurations and SUO adapters
# ----------------------------------------------------------------------
def default_tv_config(
    max_consecutive: int = 3,
    screen_threshold: float = 0.0,
    sound_threshold: float = 0.0,
    period: float = 0.5,
) -> AwarenessConfig:
    """The TV comparison policy used across examples and benchmarks."""
    config = AwarenessConfig()
    config.observable(
        "screen",
        threshold=screen_threshold,
        max_consecutive=max_consecutive,
        trigger="both",
        period=period,
        severity=2.0,
    )
    config.observable(
        "sound",
        threshold=sound_threshold,
        max_consecutive=max_consecutive,
        trigger="both",
        period=period,
        severity=1.0,
    )
    return config


def _tv_translator(observation: Observation) -> Optional[Tuple[str, Dict[str, Any]]]:
    """Map observed TV inputs to spec-model events."""
    if observation.name == "key":
        return key_to_event_name(observation.value)
    if observation.name == "stimulus":
        return observation.value, {}
    return None


def make_tv_monitor(
    tv: TVSet,
    machine: Optional[Machine] = None,
    config: Optional[AwarenessConfig] = None,
    channel_delay: float = 0.05,
    channel_jitter: float = 0.02,
    start: bool = True,
    name: Optional[str] = None,
) -> AwarenessMonitor:
    """Attach a fully wired awareness monitor to a TV (SUO modifications
    included): key presses and broadcast stimuli feed the input channel,
    screen/sound output events feed the output channel.

    Attachment is topic-based: the monitor subscribes to the TV's
    ``suo.<suo_id>.*`` topics on the shared runtime bus rather than
    patching the TV's hook lists, so any number of monitors (or fleet
    recorders) can observe the same SUO without touching it.
    """
    machine = machine or build_tv_model(channel_count=tv.tuner.channel_count)
    monitor = AwarenessMonitor(
        tv.kernel,
        machine,
        _tv_translator,
        providers={"screen": expected_screen, "sound": expected_sound},
        config=config or default_tv_config(),
        channel_delay=channel_delay,
        channel_jitter=channel_jitter,
        streams=tv.streams,
        name=name or "tv-awareness",
    )
    bus = tv.kernel.bus
    bus.subscribe(
        f"suo.{tv.suo_id}.input",
        lambda _topic, press: monitor.send_input("key", press.key, press.time),
    )
    bus.subscribe(
        f"suo.{tv.suo_id}.stimulus",
        lambda _topic, stimulus: monitor.send_input(
            "stimulus", stimulus, tv.kernel.now
        ),
    )
    bus.subscribe(
        f"suo.{tv.suo_id}.output",
        lambda _topic, event: monitor.send_output(
            event.name, event.value, event.time
        ),
    )
    monitor.attach_resync(lambda: resync_tv_monitor(monitor, tv))
    if start:
        monitor.start()
    return monitor


def _player_translator(observation: Observation) -> Optional[Tuple[str, Dict[str, Any]]]:
    if observation.name == "command":
        command, params = observation.value
        if command == "seek":
            return "seek", {"position": params.get("position", 0.0)}
        return command, {}
    if observation.name == "progress":
        return "progress", {"position": observation.value}
    return None


def default_player_config() -> AwarenessConfig:
    """The player comparison policy (PR 4 detection depth).

    * ``state``       — control-state lockstep (the PR 1 observable);
    * ``position``    — reported position must track the model's last
      confirmed position (consistency; generous threshold rides out
      seek transients crossing the channel);
    * ``progressing`` — belief/verdict stall detector (catches
      ``stall_on_corrupt``);
    * ``pace``        — belief/verdict throughput detector (catches
      ``decode_slowdown``);
    * ``buffer``      — range invariant: the demux buffer level must
      stay inside [0, capacity].
    """
    config = AwarenessConfig()
    config.observable("state", max_consecutive=2, trigger="both", period=0.5)
    # Time-sampled on purpose: around a seek, the model step, the stale
    # in-flight frame, and the progress-input-vs-output race each
    # produce one same-streak comparison instant (the Sect. 4.3 "small
    # delays" effect); sampling once per period keeps the transient to
    # a single deviation while a genuinely diverged position still
    # accumulates a streak within a few seconds.
    config.observable(
        "position", threshold=2.0, max_consecutive=3, trigger="time",
        period=1.0, severity=1.5,
    )
    config.observable(
        "progressing", max_consecutive=2, trigger="time", period=1.0,
        severity=2.0,
    )
    config.observable(
        "pace", max_consecutive=3, trigger="time", period=1.0, severity=1.5,
    )
    config.observable(
        "buffer", threshold=MediaPlayer.BUFFER_CAPACITY / 2.0,
        max_consecutive=2, trigger="event", period=1.0,
    )
    return config


def make_player_monitor(
    player,
    config: Optional[AwarenessConfig] = None,
    channel_delay: float = 0.05,
    channel_jitter: float = 0.02,
    start: bool = True,
    name: Optional[str] = None,
) -> AwarenessMonitor:
    """Awareness monitor for the media player SUO (Sect. 5 validation).

    The player publishes its commands and observables on the runtime bus
    (``suo.<suo_id>.input`` / ``.output``), so no method wrapping is
    needed — the monitor simply subscribes.  Rendered frames double as
    model inputs (``progress`` events drive the position/pace vars) and
    as the SUO's standing belief that it is progressing at nominal pace.
    """
    source = player.source
    machine = build_player_model(
        media_duration=source.packet_count * source.packet_interval
    )
    half_buffer = player.BUFFER_CAPACITY / 2.0
    monitor = AwarenessMonitor(
        player.kernel,
        machine,
        _player_translator,
        providers={
            "state": expected_player_state,
            "position": expected_player_position,
            "progressing": expected_player_progressing,
            "pace": expected_player_pace,
            # Range invariant: level within [0, capacity] ⇔ deviation
            # from the midpoint stays within the half-capacity threshold.
            "buffer": lambda m: half_buffer,
        },
        config=config or default_player_config(),
        channel_delay=channel_delay,
        channel_jitter=channel_jitter,
        name=name or "player-awareness",
    )
    bus = player.kernel.bus
    bus.subscribe(
        f"suo.{player.suo_id}.input",
        lambda _topic, command: monitor.send_input(
            "command", command, player.kernel.now
        ),
    )

    def forward_output(_topic: str, output) -> None:
        output_name, value = output
        now = player.kernel.now
        if output_name == "frame":
            # a rendered frame is a model input (progress event) and the
            # SUO's belief that playback is healthy — deliberately NOT
            # derived from `position`, which also moves on seek echoes
            # that prove nothing about the pipeline
            monitor.send_input("progress", value, now)
            monitor.send_output("progressing", True, now)
            monitor.send_output("pace", True, now)
            return
        monitor.send_output(output_name, value, now)

    bus.subscribe(f"suo.{player.suo_id}.output", forward_output)
    monitor.attach_resync(lambda: resync_player_monitor(monitor, player))
    if start:
        monitor.start()
    return monitor
