"""Model Executor (Fig. 2).

Runs the executable specification model on the input events the Input
Observer reports.  The paper generates C code from Stateflow and runs it
in this component; we execute the :class:`~repro.statemachine.machine.
Machine` directly — same observable semantics, swap-friendly ("allowing
quick experiments with different models").

The executor also *controls the Configuration component* (per Fig. 2's
IConfigInfo arrow): models can mark unstable phases during which
comparison is disabled, via an ``unstable_when`` predicate.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.contract import Observation
from ..statemachine.machine import Machine
from .config import AwarenessConfig

#: Maps an observed input event to a model event: (name, params).
EventTranslator = Callable[[Observation], Optional[Tuple[str, Dict[str, Any]]]]
#: Computes one expected observable from the model.
ExpectedProvider = Callable[[Machine], Any]


class ModelExecutor:
    """Keeps the specification model in lock-step with observed inputs."""

    def __init__(
        self,
        machine: Machine,
        translator: EventTranslator,
        providers: Dict[str, ExpectedProvider],
        config: AwarenessConfig,
        unstable_when: Optional[Callable[[Machine], bool]] = None,
        name: str = "model-executor",
    ) -> None:
        self.machine = machine
        self.translator = translator
        self.providers = dict(providers)
        self.config = config
        self.unstable_when = unstable_when
        self.name = name
        self.steps = 0
        self.ignored_events = 0
        self.step_listeners: List[Callable[[Observation], None]] = []
        self.running = False

    # -- IControl ------------------------------------------------------
    def start(self) -> None:
        self.running = True

    def stop(self) -> None:
        self.running = False

    # -- wiring ----------------------------------------------------------
    def subscribe_steps(self, listener: Callable[[Observation], None]) -> None:
        """IModelExecutor: notify after each executed model step."""
        self.step_listeners.append(listener)

    # -- IEventInfo callback ------------------------------------------------
    def on_input(self, observation: Observation) -> None:
        """An observed input event: advance and step the model."""
        if not self.running:
            return
        translated = self.translator(observation)
        if translated is None:
            self.ignored_events += 1
            return
        event_name, params = translated
        if observation.time > self.machine.time:
            self.machine.advance(observation.time)
        self.machine.inject(event_name, **params)
        self.steps += 1
        self._update_stability()
        for listener in self.step_listeners:
            listener(observation)

    # -- time sync (for time-based comparison) ------------------------------
    def sync_time(self, now: float) -> None:
        """Advance model time so timeouts fire before a timed comparison."""
        if now > self.machine.time:
            self.machine.advance(now)
            self._update_stability()

    # -- ISpecInfo ----------------------------------------------------------
    def expected(self, observable: str) -> Any:
        provider = self.providers.get(observable)
        if provider is None:
            raise KeyError(f"no expected-value provider for {observable!r}")
        return provider(self.machine)

    def expected_all(self) -> Dict[str, Any]:
        return {name: provider(self.machine) for name, provider in self.providers.items()}

    # -- IConfigInfo ----------------------------------------------------------
    def _update_stability(self) -> None:
        if self.unstable_when is None:
            return
        self.config.enable_compare(not self.unstable_when(self.machine))
