"""The run-time awareness framework of Fig. 2."""

from .channel import Message, MessageChannel
from .comparator import Comparator, ComparatorStats, deviation_magnitude
from .config import EVENT_BASED, TIME_BASED, AwarenessConfig, ObservableSpec
from .controller import Controller
from .executor import ModelExecutor
from .input_observer import InputObserver
from .modes import (
    ModeConsistencyChecker,
    ModeRule,
    modes_equal_rule,
    ttx_sync_rule,
)
from .monitor import (
    AwarenessMonitor,
    default_player_config,
    default_tv_config,
    make_player_monitor,
    make_tv_monitor,
    resync_player_monitor,
    resync_tv_monitor,
)
from .output_observer import OutputObserver

__all__ = [
    "AwarenessConfig",
    "AwarenessMonitor",
    "Comparator",
    "ComparatorStats",
    "Controller",
    "EVENT_BASED",
    "InputObserver",
    "Message",
    "MessageChannel",
    "ModeConsistencyChecker",
    "ModeRule",
    "ModelExecutor",
    "ObservableSpec",
    "OutputObserver",
    "TIME_BASED",
    "default_player_config",
    "default_tv_config",
    "deviation_magnitude",
    "make_player_monitor",
    "make_tv_monitor",
    "resync_player_monitor",
    "resync_tv_monitor",
    "modes_equal_rule",
    "ttx_sync_rule",
]
