"""Output Observer (Fig. 2).

Receives output-event messages from the adapted SUO (screen descriptor
changes, sound level changes, internal states exposed as outputs), keeps
the latest value per observable, and notifies the Comparator through the
IOutputEvent interface.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..core.contract import Observation
from .channel import Message, MessageChannel


class OutputObserver:
    """Tracks the most recent observed value of every SUO observable."""

    def __init__(self, name: str = "output-observer") -> None:
        self.name = name
        self.events: List[Observation] = []
        self.latest: Dict[str, Observation] = {}
        self.listeners: List[Callable[[Observation], None]] = []
        self.running = False

    # -- IControl ------------------------------------------------------
    def start(self) -> None:
        self.running = True

    def stop(self) -> None:
        self.running = False

    # -- wiring ----------------------------------------------------------
    def connect_channel(self, channel: MessageChannel) -> None:
        channel.connect(self._on_message)

    def subscribe(self, listener: Callable[[Observation], None]) -> None:
        """IOutputEvent: notify on every observed output event."""
        self.listeners.append(listener)

    # -- queries -----------------------------------------------------------
    def value(self, name: str) -> Optional[Any]:
        observation = self.latest.get(name)
        if observation is None:
            return None
        return observation.value

    def observed_at(self, name: str) -> Optional[float]:
        observation = self.latest.get(name)
        if observation is None:
            return None
        return observation.time

    # -- message handling --------------------------------------------------
    def _on_message(self, message: Message) -> None:
        if not self.running:
            return
        if message.kind != "output":
            return
        payload: Dict[str, Any] = message.payload
        observation = Observation(
            time=payload.get("time", message.sent_at),
            source="suo",
            name=payload["name"],
            value=payload.get("value"),
        )
        self.events.append(observation)
        self.latest[observation.name] = observation
        for listener in self.listeners:
            listener(observation)
