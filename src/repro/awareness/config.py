"""The Configuration component of Fig. 2.

"Information about relevant input and output events is stored in the
Configuration component."  It holds, per observable:

* how to compare (``threshold`` for numeric deviation magnitude);
* how tolerant to be (``max_consecutive`` deviations before an error is
  reported — the paper's two explicit knobs from Sect. 4.3);
* whether comparison is *event-based*, *time-based*, or both, and the
  sampling ``period`` for time-based comparison;
* comparison enable/disable state, driven by the Model Executor (the
  model can declare unstable phases during which comparison is paused).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: Comparison triggers.
EVENT_BASED = "event"
TIME_BASED = "time"


@dataclass
class ObservableSpec:
    """Comparison policy for one observable."""

    name: str
    #: Allowed deviation magnitude before a sample counts as deviating.
    threshold: float = 0.0
    #: Deviating samples tolerated in a row before reporting an error.
    max_consecutive: int = 2
    #: "event", "time", or "both".
    trigger: str = EVENT_BASED
    #: Sampling period for time-based comparison.
    period: float = 1.0
    #: Relative severity weight used by the recovery policy.
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.max_consecutive < 1:
            raise ValueError("max_consecutive must be at least 1")
        if self.trigger not in (EVENT_BASED, TIME_BASED, "both"):
            raise ValueError(f"bad trigger {self.trigger!r}")

    @property
    def event_based(self) -> bool:
        return self.trigger in (EVENT_BASED, "both")

    @property
    def time_based(self) -> bool:
        return self.trigger in (TIME_BASED, "both")


class AwarenessConfig:
    """Registry of observable specs plus the comparison-enable switch."""

    def __init__(self) -> None:
        self.observables: Dict[str, ObservableSpec] = {}
        self._compare_enabled = True
        self._disabled_observables: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    def register(self, spec: ObservableSpec) -> ObservableSpec:
        self.observables[spec.name] = spec
        return spec

    def observable(
        self,
        name: str,
        threshold: float = 0.0,
        max_consecutive: int = 2,
        trigger: str = EVENT_BASED,
        period: float = 1.0,
        severity: float = 1.0,
    ) -> ObservableSpec:
        """Shorthand for register(ObservableSpec(...))."""
        return self.register(
            ObservableSpec(
                name=name,
                threshold=threshold,
                max_consecutive=max_consecutive,
                trigger=trigger,
                period=period,
                severity=severity,
            )
        )

    def spec(self, name: str) -> Optional[ObservableSpec]:
        return self.observables.get(name)

    def names(self) -> List[str]:
        return sorted(self.observables)

    # ------------------------------------------------------------------
    # comparison enabling (IEnableCompare) — controlled by Model Executor
    # ------------------------------------------------------------------
    def enable_compare(self, enabled: bool) -> None:
        self._compare_enabled = enabled

    def set_observable_enabled(self, name: str, enabled: bool) -> None:
        self._disabled_observables[name] = not enabled

    def compare_enabled(self, name: Optional[str] = None) -> bool:
        if not self._compare_enabled:
            return False
        if name is not None and self._disabled_observables.get(name, False):
            return False
        return True
