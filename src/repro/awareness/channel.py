"""Process-boundary message channels.

Fig. 2 places a *process boundary* between the SUO and the awareness
monitor, crossed via Unix domain sockets.  That boundary is not a detail:
Sect. 4.3 reports that "small delays in system-internal communication
might easily lead to differences during a short time interval", which is
the whole reason the Comparator grew thresholds and consecutive-deviation
counters.  :class:`MessageChannel` reproduces it — every message is
delivered after ``delay`` plus seeded jitter, preserving order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..sim.kernel import Kernel
from ..sim.random import RandomStreams


@dataclass(frozen=True, slots=True)
class Message:
    """One datagram crossing the process boundary."""

    sent_at: float
    kind: str
    payload: Any


class MessageChannel:
    """Ordered, delayed delivery of messages to a receiver callback."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        delay: float = 0.05,
        jitter: float = 0.02,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        if delay < 0 or jitter < 0:
            raise ValueError("delay and jitter must be non-negative")
        self.kernel = kernel
        self.name = name
        self.delay = delay
        self.jitter = jitter
        self._rng = (streams or RandomStreams(0)).stream(f"channel:{name}")
        self.receivers: List[Callable[[Message], None]] = []
        self.sent = 0
        self.delivered = 0
        self.flushed = 0
        self._last_delivery_time = 0.0
        #: Delivery events still scheduled on the kernel (socket buffer).
        #: Only *undelivered* events live here (the front entry is popped
        #: at delivery before any receiver runs), so the retained handles
        #: are always still-pending and safe to cancel — which is what
        #: makes ``transient=True`` delivery events sound.
        self._in_flight: List[Any] = []
        self._event_name = f"chan:{name}"

    def connect(self, receiver: Callable[[Message], None]) -> None:
        self.receivers.append(receiver)

    def send(self, kind: str, payload: Any) -> Message:
        """Queue a message; it arrives after delay + jitter, in order."""
        now = self.kernel.now
        message = Message(now, kind, payload)
        self.sent += 1
        latency = self.delay + (self._rng.random() * self.jitter)
        # Preserve FIFO even under jitter: never deliver before the
        # previously queued message (sockets are ordered streams).
        deliver_at = max(now + latency, self._last_delivery_time)
        self._last_delivery_time = deliver_at
        event = self.kernel.schedule_at(
            deliver_at, lambda: self._deliver(message),
            name=self._event_name, transient=True,
        )
        self._in_flight.append(event)
        return message

    def pending(self) -> int:
        """Messages sent but not yet delivered (nor flushed)."""
        return len(self._in_flight)

    def flush_pending(self) -> int:
        """Drop every in-flight message; returns how many were dropped.

        Models closing and reopening the socket: a restarting monitor
        must not receive datagrams from before its re-sync snapshot, or
        it would apply them to a model that already reflects them.
        """
        dropped = 0
        for event in self._in_flight:
            if not event.cancelled:
                event.cancel()
                dropped += 1
        self._in_flight.clear()
        self.flushed += dropped
        return dropped

    def _deliver(self, message: Message) -> None:
        self.delivered += 1
        # Deliveries happen in send order (FIFO clamp above) and flushed
        # events never reach here, so the front entry is always ours.
        if self._in_flight:
            self._in_flight.pop(0)
        for receiver in self.receivers:
            receiver(message)
