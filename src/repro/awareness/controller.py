"""Controller (Fig. 2).

"The Controller initiates and controls all components, except for the
Configuration component which is controlled by the Model Executor."

The controller owns component lifecycle (IControl fan-out), aggregates
error notifications, and is the awareness monitor's interface to the
outer loop (core/diagnosis/recovery).
"""

from __future__ import annotations

from typing import Callable, List, Protocol

from ..core.contract import ErrorReport


class Controllable(Protocol):
    """Anything exposing the IControl start/stop pair."""

    def start(self) -> None: ...

    def stop(self) -> None: ...


class Controller:
    """Lifecycle + error aggregation for one awareness monitor."""

    def __init__(self, name: str = "controller") -> None:
        self.name = name
        self.components: List[Controllable] = []
        self.errors: List[ErrorReport] = []
        self.error_handlers: List[Callable[[ErrorReport], None]] = []
        self.running = False

    def manage(self, component: Controllable) -> None:
        self.components.append(component)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        for component in self.components:
            component.start()

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        for component in reversed(self.components):
            component.stop()

    # ------------------------------------------------------------------
    def on_error(self, report: ErrorReport) -> None:
        """IErrorNotify sink: record and forward."""
        self.errors.append(report)
        for handler in self.error_handlers:
            handler(report)

    def subscribe_errors(self, handler: Callable[[ErrorReport], None]) -> None:
        self.error_handlers.append(handler)

    def error_count(self) -> int:
        return len(self.errors)
