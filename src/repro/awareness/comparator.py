"""Comparator (Fig. 2): model output vs system output.

Implements exactly the tolerance mechanism Sect. 4.3 describes.  For each
observable the user specifies "(1) a threshold for the allowed maximal
deviation between specification model and system, and (2) a maximum for
the number of consecutive deviations that are allowed before an error
will be reported", and comparison is triggered *event-based*,
*time-based* (with a configurable frequency), or both.

The deviation magnitude is type-directed:

* numbers   → absolute difference;
* mappings  → number of keys whose values differ (symmetric);
* elsewhere → 0 when equal, 1 when different.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..core.contract import ErrorReport, Observation
from ..sim.kernel import Kernel
from .config import AwarenessConfig, ObservableSpec
from .executor import ModelExecutor
from .output_observer import OutputObserver


def deviation_magnitude(expected: Any, actual: Any) -> float:
    """Type-directed distance between expected and observed values."""
    if expected == actual:
        # Every branch below maps equality to 0.0; the common in-tolerance
        # case (dict == dict, int == int) resolves in one C-level compare.
        return 0.0
    if expected is None and actual is None:
        return 0.0
    if isinstance(expected, bool) or isinstance(actual, bool):
        return 0.0 if expected == actual else 1.0
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        return abs(float(expected) - float(actual))
    if isinstance(expected, dict) and isinstance(actual, dict):
        keys = set(expected) | set(actual)
        return float(
            sum(1 for key in keys if expected.get(key) != actual.get(key))
        )
    return 0.0 if expected == actual else 1.0


@dataclass(slots=True)
class _Streak:
    """Consecutive-deviation bookkeeping for one observable.

    One record lives per observable and is reset *in place* when the
    observable returns to tolerance — the in-tolerance comparison is the
    overwhelmingly common case at fleet scale and must not allocate.
    """

    count: int = 0
    started_at: Optional[float] = None
    #: Simulated instant of the latest deviation: several comparisons at
    #: one instant (a batch of same-timestamp model steps racing an
    #: output across the other channel) count as ONE deviation, or a
    #: burst would burn through ``max_consecutive`` inside a snapshot
    #: that is inherently transient.
    last_at: Optional[float] = None
    reported: bool = False

    def clear(self) -> None:
        self.count = 0
        self.started_at = None
        self.last_at = None
        self.reported = False


@dataclass(slots=True)
class ComparatorStats:
    """Counters the tuning experiments (E2) read."""

    comparisons: int = 0
    deviations: int = 0
    errors_reported: int = 0
    suppressed_transients: int = 0


class Comparator:
    """Compares expected and observed values under the configured policy."""

    def __init__(
        self,
        kernel: Kernel,
        config: AwarenessConfig,
        executor: ModelExecutor,
        outputs: OutputObserver,
        name: str = "comparator",
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.executor = executor
        self.outputs = outputs
        self.name = name
        self.stats = ComparatorStats()
        self.error_listeners: List[Callable[[ErrorReport], None]] = []
        self.reports: List[ErrorReport] = []
        self._streaks: Dict[str, _Streak] = {}
        self.running = False
        #: Bumped on every start: a pending timed sample from a previous
        #: start generation dies instead of rescheduling, so stop+start
        #: in quick succession (a recovery restart) cannot leave two
        #: sampling chains running per observable.
        self._epoch = 0

    # -- IControl ------------------------------------------------------
    def start(self) -> None:
        """Begin comparing; arms the time-based sampling loops."""
        if self.running:
            return
        self.running = True
        self._epoch += 1
        for spec in self.config.observables.values():
            if spec.time_based:
                self._schedule_timed(spec, self._epoch)

    def stop(self) -> None:
        self.running = False

    # -- IErrorNotify ------------------------------------------------------
    def subscribe_errors(self, listener: Callable[[ErrorReport], None]) -> None:
        self.error_listeners.append(listener)

    # -- event-based triggers ------------------------------------------------
    def on_output_event(self, observation: Observation) -> None:
        """IOutputEvent: system produced an output — compare it."""
        if not self.running:
            return
        spec = self.config.spec(observation.name)
        if spec is None or not spec.event_based:
            return
        self.executor.sync_time(self.kernel.now)
        self._compare_one(spec)

    def on_model_step(self, observation: Observation) -> None:
        """IModelExecutor: the model stepped — re-check event observables."""
        if not self.running:
            return
        for spec in self.config.observables.values():
            if spec.event_based:
                self._compare_one(spec)

    # -- time-based sampling ---------------------------------------------------
    def _schedule_timed(self, spec: ObservableSpec, epoch: int) -> None:
        # One closure per chain per epoch (it reschedules *itself*), not
        # one per tick; the tick events are transient so the kernel can
        # recycle them — nothing retains the handles, the epoch guard is
        # what kills a stale chain.
        kernel = self.kernel
        schedule = kernel.schedule
        period = spec.period
        name = f"compare:{spec.name}"

        def sample() -> None:
            if not self.running or epoch != self._epoch:
                return
            self.executor.sync_time(kernel.now)
            self._compare_one(spec)
            schedule(period, sample, name=name, transient=True)

        schedule(period, sample, name=name, transient=True)

    # -- core comparison ------------------------------------------------------
    def _compare_one(self, spec: ObservableSpec) -> None:
        name = spec.name
        if not self.config.compare_enabled(name):
            return
        if name not in self.executor.providers:
            return
        observation = self.outputs.latest.get(name)
        if observation is None:
            return  # nothing observed yet
        actual = observation.value
        expected = self.executor.expected(name)
        magnitude = deviation_magnitude(expected, actual)
        self.stats.comparisons += 1
        streak = self._streaks.get(name)
        if streak is None:
            streak = self._streaks[name] = _Streak()
        if magnitude <= spec.threshold:
            if streak.count:
                if not streak.reported:
                    self.stats.suppressed_transients += 1
                streak.clear()
            return
        now = self.kernel.now
        self.stats.deviations += 1
        if streak.last_at != now or streak.count == 0:
            streak.count += 1
        streak.last_at = now
        if streak.started_at is None:
            streak.started_at = now
        if streak.count > spec.max_consecutive and not streak.reported:
            streak.reported = True
            self._report(spec, expected, actual, streak)

    def _report(
        self, spec: ObservableSpec, expected: Any, actual: Any, streak: _Streak
    ) -> None:
        report = ErrorReport(
            time=self.kernel.now,
            detector=self.name,
            observable=spec.name,
            expected=expected,
            actual=actual,
            consecutive=streak.count,
            severity=spec.severity,
            context={"first_deviation_at": streak.started_at},
        )
        self.reports.append(report)
        self.stats.errors_reported += 1
        for listener in self.error_listeners:
            listener(report)

    # -- status queries ------------------------------------------------------
    def deviating_observables(self) -> List[str]:
        """Observables currently in a deviation streak (reported or not).

        The online diagnoser uses this to flag spectra steps: an error is
        *reported* once per streak, but the erroneous state persists until
        repaired, and every step spent in it is failing evidence.
        """
        return sorted(
            name for name, streak in self._streaks.items() if streak.count > 0
        )

    # -- recovery interface ------------------------------------------------------
    def reset(self, observable: Optional[str] = None) -> None:
        """Clear deviation streaks (after a recovery action repaired state)."""
        if observable is None:
            self._streaks.clear()
            return
        self._streaks.pop(observable, None)
