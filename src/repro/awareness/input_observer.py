"""Input Observer (Fig. 2).

Receives input-event messages (key presses and other stimuli) that the
adapted SUO sends across the process boundary, and forwards them — in
arrival order, with their observation timestamps — to the Model Executor
via the IEventInfo notification interface.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..core.contract import Observation
from .channel import Message, MessageChannel


class InputObserver:
    """Collects observed SUO input events."""

    def __init__(self, name: str = "input-observer") -> None:
        self.name = name
        self.events: List[Observation] = []
        self.listeners: List[Callable[[Observation], None]] = []
        self.running = False

    # -- IControl ------------------------------------------------------
    def start(self) -> None:
        self.running = True

    def stop(self) -> None:
        self.running = False

    # -- wiring ----------------------------------------------------------
    def connect_channel(self, channel: MessageChannel) -> None:
        channel.connect(self._on_message)

    def subscribe(self, listener: Callable[[Observation], None]) -> None:
        """IEventInfo: notify on every observed input event."""
        self.listeners.append(listener)

    # -- message handling --------------------------------------------------
    def _on_message(self, message: Message) -> None:
        if not self.running:
            return
        if message.kind != "input":
            return
        payload: Dict[str, Any] = message.payload
        observation = Observation(
            time=payload.get("time", message.sent_at),
            source="suo",
            name=payload["name"],
            value=payload.get("value"),
        )
        self.events.append(observation)
        for listener in self.listeners:
            listener(observation)
