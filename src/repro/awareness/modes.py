"""Mode-consistency checking (Sect. 4.3, [17]).

"An approach which checks the consistency of internal modes of components
turned out to be successful to detect teletext problems due to a loss of
synchronization between components."

A :class:`ModeRule` is a predicate over the current component-mode map;
the :class:`ModeConsistencyChecker` samples the map periodically and
reports an error when a rule is violated for more than a configurable
number of consecutive samples (modes legitimately disagree for short
windows during transitions — same transient problem, same cure as the
Comparator's).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.contract import ErrorReport
from ..sim.kernel import Kernel

#: A rule returns None when consistent, or a human-readable violation.
RuleFn = Callable[[Dict[str, str]], Optional[str]]


@dataclass
class ModeRule:
    """One named consistency rule over component modes."""

    name: str
    check: RuleFn
    max_consecutive: int = 2
    severity: float = 1.0


def ttx_sync_rule(
    acquirer: str, renderer: str, max_consecutive: int = 2
) -> ModeRule:
    """The teletext rule: renderer and acquirer must agree on the channel.

    Renderer mode ``visible:chN`` requires acquirer mode ``acquiring:chN``.
    """

    def check(modes: Dict[str, str]) -> Optional[str]:
        renderer_mode = modes.get(renderer, "")
        if not renderer_mode.startswith("visible:"):
            return None
        wanted = "acquiring:" + renderer_mode.split(":", 1)[1]
        acquirer_mode = modes.get(acquirer, "")
        if acquirer_mode != wanted:
            return (
                f"{renderer}={renderer_mode} but {acquirer}={acquirer_mode} "
                f"(expected {wanted})"
            )
        return None

    return ModeRule(
        name=f"ttx-sync({acquirer},{renderer})",
        check=check,
        max_consecutive=max_consecutive,
    )


def modes_equal_rule(
    name: str, component_a: str, component_b: str, max_consecutive: int = 2
) -> ModeRule:
    """Generic rule: two components must always report the same mode."""

    def check(modes: Dict[str, str]) -> Optional[str]:
        mode_a = modes.get(component_a)
        mode_b = modes.get(component_b)
        if mode_a != mode_b:
            return f"{component_a}={mode_a} != {component_b}={mode_b}"
        return None

    return ModeRule(name=name, check=check, max_consecutive=max_consecutive)


class ModeConsistencyChecker:
    """Samples a mode map periodically and enforces the rules."""

    def __init__(
        self,
        kernel: Kernel,
        mode_source: Callable[[], Dict[str, str]],
        interval: float = 1.0,
        name: str = "mode-checker",
    ) -> None:
        self.kernel = kernel
        self.mode_source = mode_source
        self.interval = interval
        self.name = name
        self.rules: List[ModeRule] = []
        self.reports: List[ErrorReport] = []
        self.error_listeners: List[Callable[[ErrorReport], None]] = []
        self._violation_streaks: Dict[str, int] = {}
        self._reported: Dict[str, bool] = {}
        self.samples = 0
        self.running = False

    def add_rule(self, rule: ModeRule) -> None:
        self.rules.append(rule)

    def subscribe_errors(self, listener: Callable[[ErrorReport], None]) -> None:
        self.error_listeners.append(listener)

    # -- IControl ------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._schedule()

    def stop(self) -> None:
        self.running = False

    # ------------------------------------------------------------------
    def _schedule(self) -> None:
        self.kernel.schedule(
            self.interval, self._sample, name=self.name, transient=True
        )

    def _sample(self) -> None:
        if not self.running:
            return
        self.samples += 1
        modes = self.mode_source()
        for rule in self.rules:
            violation = rule.check(modes)
            if violation is None:
                self._violation_streaks[rule.name] = 0
                self._reported[rule.name] = False
                continue
            streak = self._violation_streaks.get(rule.name, 0) + 1
            self._violation_streaks[rule.name] = streak
            if streak > rule.max_consecutive and not self._reported.get(rule.name):
                self._reported[rule.name] = True
                report = ErrorReport(
                    time=self.kernel.now,
                    detector=self.name,
                    observable=rule.name,
                    expected="consistent modes",
                    actual=violation,
                    consecutive=streak,
                    severity=rule.severity,
                    context={"modes": dict(modes)},
                )
                self.reports.append(report)
                for listener in self.error_listeners:
                    listener(report)
        self._schedule()

    def reset(self, rule_name: Optional[str] = None) -> None:
        """Clear violation streaks after recovery."""
        if rule_name is None:
            self._violation_streaks.clear()
            self._reported.clear()
            return
        self._violation_streaks.pop(rule_name, None)
        self._reported.pop(rule_name, None)
