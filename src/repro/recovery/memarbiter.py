"""Adaptive run-time memory arbitration (Sect. 4.5, NXP Research).

"NXP Research investigates the possibility to make memory arbitration
more flexible such that it can be adapted at run-time to deal with
problems concerning memory access."

The :class:`AdaptiveArbiterController` closes a small control loop around
the :class:`~repro.platform.memory.MemoryArbiter`: it periodically reads
per-client latency counters, and when a *protected* client's recent mean
latency exceeds its bound, switches the arbiter to weighted mode and
raises that client's share (multiplicative increase); when all clients
are comfortably within bounds, weights decay back toward fairness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..platform.memory import MemoryArbiter
from ..sim.kernel import Kernel


@dataclass
class AdaptationEvent:
    """One controller intervention."""

    time: float
    client: str
    observed_latency: float
    bound: float
    new_weight: float


class AdaptiveArbiterController:
    """Latency-bound enforcement by run-time re-weighting."""

    def __init__(
        self,
        kernel: Kernel,
        arbiter: MemoryArbiter,
        latency_bounds: Dict[str, float],
        interval: float = 5.0,
        boost_factor: float = 1.5,
        decay_factor: float = 0.9,
        max_weight: float = 16.0,
    ) -> None:
        self.kernel = kernel
        self.arbiter = arbiter
        self.latency_bounds = dict(latency_bounds)
        self.interval = interval
        self.boost_factor = boost_factor
        self.decay_factor = decay_factor
        self.max_weight = max_weight
        self.events: List[AdaptationEvent] = []
        self._last_counts: Dict[str, tuple] = {}
        self.running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        for client in self.latency_bounds:
            self.arbiter.set_weight(client, self.arbiter.weights.get(client, 1.0))
        self._schedule()

    def stop(self) -> None:
        self.running = False

    def _schedule(self) -> None:
        self.kernel.schedule(self.interval, self._adapt, name="adaptive-arbiter")

    # ------------------------------------------------------------------
    def _recent_mean_latency(self, client: str) -> Optional[float]:
        stats = self.arbiter.stats.get(client)
        if stats is None:
            return None
        previous = self._last_counts.get(client, (0, 0.0))
        delta_requests = stats.requests - previous[0]
        delta_latency = stats.total_latency - previous[1]
        self._last_counts[client] = (stats.requests, stats.total_latency)
        if delta_requests == 0:
            return None
        return delta_latency / delta_requests

    def _adapt(self) -> None:
        if not self.running:
            return
        any_violation = False
        for client, bound in self.latency_bounds.items():
            mean = self._recent_mean_latency(client)
            if mean is None:
                continue
            if mean > bound:
                any_violation = True
                current = self.arbiter.weights.get(client, 1.0)
                new_weight = min(self.max_weight, current * self.boost_factor)
                self.arbiter.set_policy("weighted")
                self.arbiter.set_weight(client, new_weight)
                self.events.append(
                    AdaptationEvent(
                        time=self.kernel.now,
                        client=client,
                        observed_latency=mean,
                        bound=bound,
                        new_weight=new_weight,
                    )
                )
        if not any_violation:
            self._decay_weights()
        self._schedule()

    def _decay_weights(self) -> None:
        for client, weight in list(self.arbiter.weights.items()):
            if weight > 1.0:
                self.arbiter.set_weight(
                    client, max(1.0, weight * self.decay_factor)
                )
