"""Communication manager: message routing around recovering units.

Sect. 4.5: "The framework includes a communication manager, which controls
the communication between recoverable units".  Its job during recovery is
what makes *independent* recovery possible: while unit B restarts,
messages from A to B are buffered, not lost, and A never blocks — so A
needs no knowledge of B's recovery at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from ..sim.kernel import Kernel
from .units import RUNNING, RecoverableUnit


@dataclass
class RoutedMessage:
    """One inter-unit message."""

    time: float
    source: str
    destination: str
    payload: Any


class CommunicationManager:
    """Routes messages between registered units; buffers during recovery."""

    def __init__(self, kernel: Kernel, buffer_limit: int = 1000) -> None:
        self.kernel = kernel
        self.buffer_limit = buffer_limit
        self.units: Dict[str, RecoverableUnit] = {}
        self.handlers: Dict[str, Callable[[RoutedMessage], None]] = {}
        self._buffers: Dict[str, List[RoutedMessage]] = {}
        self.delivered = 0
        self.buffered = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def register(
        self,
        unit: RecoverableUnit,
        handler: Callable[[RoutedMessage], None],
    ) -> None:
        """Register a unit and its message handler."""
        self.units[unit.name] = unit
        self.handlers[unit.name] = handler
        self._buffers.setdefault(unit.name, [])
        unit.watch_status(
            lambda old, new, name=unit.name: self._on_status(name, old, new)
        )

    # ------------------------------------------------------------------
    def send(self, source: str, destination: str, payload: Any) -> bool:
        """Deliver now, buffer if the destination is recovering.

        Returns True when delivered or buffered; False when dropped
        (unknown destination or buffer overflow).
        """
        if destination not in self.handlers:
            self.dropped += 1
            return False
        message = RoutedMessage(self.kernel.now, source, destination, payload)
        unit = self.units[destination]
        if unit.status == RUNNING:
            self.handlers[destination](message)
            self.delivered += 1
            return True
        buffer = self._buffers[destination]
        if len(buffer) >= self.buffer_limit:
            self.dropped += 1
            return False
        buffer.append(message)
        self.buffered += 1
        return True

    def pending_for(self, destination: str) -> int:
        return len(self._buffers.get(destination, []))

    # ------------------------------------------------------------------
    def _on_status(self, name: str, old: str, new: str) -> None:
        if new == RUNNING:
            self._flush(name)

    def _flush(self, name: str) -> None:
        buffer = self._buffers.get(name, [])
        handler = self.handlers[name]
        while buffer:
            message = buffer.pop(0)
            handler(message)
            self.delivered += 1
