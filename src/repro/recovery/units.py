"""Recoverable units: independently restartable parts of the system.

Sect. 4.5 (Twente University): "a framework for partial recovery has been
developed which allows independent recovery of parts of the system, the
so-called recoverable units."

A :class:`RecoverableUnit` wraps one restartable activity: a process
factory (so the unit can be re-spawned), optional checkpointable state,
and domain repair hooks.  Killing and restarting *one* unit must not
require restarting the others — the communication manager buffers traffic
to a unit while it is down (see :mod:`repro.recovery.commmgr`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..sim.kernel import Kernel
from ..sim.process import Process

#: Unit lifecycle states.
RUNNING = "running"
STOPPED = "stopped"
FAILED = "failed"
RESTARTING = "restarting"


@dataclass
class RestartRecord:
    """One kill/restart cycle of a unit."""

    time: float
    reason: str
    downtime: float


class RecoverableUnit:
    """One independently restartable unit.

    ``factory`` builds the unit's process body; ``restart_time`` is the
    simulated cost of re-initializing the unit (state reload, driver
    re-init) — the quantity the partial-recovery experiment compares
    against a whole-system restart.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        factory: Optional[Callable[[], Generator[Any, Any, None]]] = None,
        restart_time: float = 1.0,
        on_repair: Optional[Callable[[], None]] = None,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.factory = factory
        self.restart_time = restart_time
        self.on_repair = on_repair
        self.status = STOPPED
        self.process: Optional[Process] = None
        self.restarts: List[RestartRecord] = []
        self.checkpoint: Dict[str, Any] = {}
        self._status_listeners: List[Callable[[str, str], None]] = []

    # ------------------------------------------------------------------
    def watch_status(self, listener: Callable[[str, str], None]) -> None:
        """Subscribe to (old_status, new_status) changes."""
        self._status_listeners.append(listener)

    def _set_status(self, status: str) -> None:
        old = self.status
        if status == old:
            return
        self.status = status
        for listener in self._status_listeners:
            listener(old, status)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.status == RUNNING:
            return
        if self.factory is not None:
            self.process = Process(
                self.kernel, self.factory(), name=f"unit:{self.name}",
                on_exit=self._on_process_exit,
            )
        self._set_status(RUNNING)

    def _on_process_exit(self, process: Process) -> None:
        if self.status != RUNNING:
            return
        if process.exception is not None:
            self._set_status(FAILED)
        else:
            self._set_status(STOPPED)

    def kill(self, reason: str = "recovery") -> None:
        """Terminate the unit immediately."""
        if self.process is not None and self.process.alive:
            # Flip status first so the exit callback does not mark FAILED.
            self._set_status(STOPPED)
            self.process.kill(reason)
        else:
            self._set_status(STOPPED)
        self.process = None

    def restart(self, reason: str = "recovery") -> float:
        """Kill and re-spawn the unit; returns the downtime incurred.

        The restart takes :attr:`restart_time` simulated time: the unit is
        marked RESTARTING, the repair hook runs, and the new process is
        scheduled after the delay.
        """
        kill_time = self.kernel.now
        self.kill(reason)
        self._set_status(RESTARTING)

        def complete() -> None:
            if self.on_repair is not None:
                self.on_repair()
            self.start()

        self.kernel.schedule(self.restart_time, complete, name=f"restart:{self.name}")
        self.restarts.append(
            RestartRecord(time=kill_time, reason=reason, downtime=self.restart_time)
        )
        return self.restart_time

    # ------------------------------------------------------------------
    def save_checkpoint(self, state: Dict[str, Any]) -> None:
        """Store a recovery checkpoint (ftlib uses this)."""
        self.checkpoint = dict(state)

    def load_checkpoint(self) -> Dict[str, Any]:
        return dict(self.checkpoint)

    def total_downtime(self) -> float:
        return sum(record.downtime for record in self.restarts)

    @property
    def alive(self) -> bool:
        return self.status == RUNNING
