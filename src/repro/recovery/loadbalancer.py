"""Run-time load balancing by task migration (Sect. 4.5, IMEC).

"Project partner IMEC has demonstrated the possibility to migrate an
image processing task from one processor to another, which leads to
improved image quality in case of overload situations (e.g., due to
intensive error correction on a bad input signal)."

The :class:`LoadBalancer` polls task deadline-miss rates; when a task on
an overloaded core misses too often, it migrates the configured *movable*
task to the least-loaded core.  A cooldown prevents ping-ponging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..platform.scheduler import Scheduler
from ..sim.kernel import Kernel


@dataclass
class BalanceDecision:
    """One migration decision for the experiment logs."""

    time: float
    task: str
    source: str
    target: str
    miss_rate: float


class LoadBalancer:
    """Miss-rate-driven task migration."""

    def __init__(
        self,
        kernel: Kernel,
        scheduler: Scheduler,
        movable_tasks: Sequence[str],
        miss_rate_threshold: float = 0.2,
        window: int = 10,
        interval: float = 5.0,
        cooldown: float = 20.0,
    ) -> None:
        self.kernel = kernel
        self.scheduler = scheduler
        self.movable_tasks = list(movable_tasks)
        self.miss_rate_threshold = miss_rate_threshold
        self.window = window
        self.interval = interval
        self.cooldown = cooldown
        self.decisions: List[BalanceDecision] = []
        self._last_migration = -float("inf")
        self.running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._schedule()

    def stop(self) -> None:
        self.running = False

    def _schedule(self) -> None:
        self.kernel.schedule(self.interval, self._evaluate, name="load-balancer")

    # ------------------------------------------------------------------
    def _evaluate(self) -> None:
        if not self.running:
            return
        try:
            self._maybe_migrate()
        finally:
            self._schedule()

    def _maybe_migrate(self) -> None:
        if self.kernel.now - self._last_migration < self.cooldown:
            return
        overloaded = self._most_missing_task()
        if overloaded is None:
            return
        task, miss_rate = overloaded
        source = task.processor
        target = self.scheduler.pool.least_loaded(exclude=source)
        if target is source:
            return
        # Only migrate if the target actually has headroom.
        if self._nominal_load(target.name) + task.nominal_utilization() > 1.0:
            return
        self.scheduler.migrate(task.name, target.name)
        self._last_migration = self.kernel.now
        self.decisions.append(
            BalanceDecision(
                time=self.kernel.now,
                task=task.name,
                source=source.name,
                target=target.name,
                miss_rate=miss_rate,
            )
        )

    def _most_missing_task(self) -> Optional[tuple]:
        worst: Optional[tuple] = None
        for name in self.movable_tasks:
            task = self.scheduler.tasks.get(name)
            if task is None:
                continue
            miss_rate = task.recent_miss_rate(self.window)
            if miss_rate < self.miss_rate_threshold:
                continue
            if worst is None or miss_rate > worst[1]:
                worst = (task, miss_rate)
        return worst

    def _nominal_load(self, processor: str) -> float:
        return self.scheduler.processor_utilization().get(processor, 0.0)
