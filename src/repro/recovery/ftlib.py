"""Reusable fault-tolerance library (Sect. 4.5).

"To realize these concepts, a reusable fault tolerance library has been
implemented."  The pieces a unit author composes:

* :class:`CheckpointStore` — versioned state snapshots with rollback;
* :class:`Watchdog`        — must be kicked within a deadline, else it
  fires a timeout callback (the classic liveness guard);
* :class:`Heartbeat`       — periodic emitter a monitor can watch;
* :func:`with_retries`     — bounded retry of a fallible callable.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar

from ..sim.kernel import Event, Kernel

T = TypeVar("T")


class CheckpointStore:
    """Versioned deep-copied snapshots of a state dict."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._versions: List[Tuple[float, Dict[str, Any]]] = []

    def save(self, time: float, state: Dict[str, Any]) -> int:
        """Store a snapshot; returns its version index."""
        self._versions.append((time, copy.deepcopy(state)))
        while len(self._versions) > self.capacity:
            self._versions.pop(0)
        return len(self._versions) - 1

    def latest(self) -> Optional[Dict[str, Any]]:
        if not self._versions:
            return None
        return copy.deepcopy(self._versions[-1][1])

    def at_or_before(self, time: float) -> Optional[Dict[str, Any]]:
        """Most recent snapshot taken at or before ``time`` (rollback)."""
        candidates = [(t, s) for t, s in self._versions if t <= time]
        if not candidates:
            return None
        return copy.deepcopy(candidates[-1][1])

    def __len__(self) -> int:
        return len(self._versions)


class Watchdog:
    """Fires ``on_timeout`` when not kicked within ``deadline``."""

    def __init__(
        self,
        kernel: Kernel,
        deadline: float,
        on_timeout: Callable[[], None],
        name: str = "watchdog",
    ) -> None:
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.kernel = kernel
        self.deadline = deadline
        self.on_timeout = on_timeout
        self.name = name
        self.fired = 0
        self.kicks = 0
        self._event: Optional[Event] = None
        self.enabled = False

    def start(self) -> None:
        self.enabled = True
        self._arm()

    def stop(self) -> None:
        self.enabled = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def kick(self) -> None:
        """The guarded activity signals liveness."""
        if not self.enabled:
            return
        self.kicks += 1
        self._arm()

    def _arm(self) -> None:
        if self._event is not None:
            self._event.cancel()
        self._event = self.kernel.schedule(
            self.deadline, self._fire, name=f"wdg:{self.name}"
        )

    def _fire(self) -> None:
        if not self.enabled:
            return
        self.fired += 1
        self.on_timeout()
        self._arm()  # keep watching; recovery may take a while


class Heartbeat:
    """Periodic liveness emitter, typically wired to a Watchdog.kick."""

    def __init__(
        self,
        kernel: Kernel,
        period: float,
        emit: Callable[[], None],
        name: str = "heartbeat",
    ) -> None:
        self.kernel = kernel
        self.period = period
        self.emit = emit
        self.name = name
        self.beats = 0
        self.running = False

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._schedule()

    def stop(self) -> None:
        self.running = False

    def _schedule(self) -> None:
        self.kernel.schedule(
            self.period, self._beat, name=f"hb:{self.name}", transient=True
        )

    def _beat(self) -> None:
        if not self.running:
            return
        self.beats += 1
        self.emit()
        self._schedule()


def with_retries(
    operation: Callable[[], T],
    attempts: int = 3,
    on_retry: Optional[Callable[[int, Exception], None]] = None,
) -> T:
    """Run ``operation``, retrying up to ``attempts`` times on exception."""
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    last_error: Optional[Exception] = None
    for attempt in range(attempts):
        try:
            return operation()
        except Exception as exc:  # noqa: BLE001 - ftlib catches by design
            last_error = exc
            if on_retry is not None:
                on_retry(attempt + 1, exc)
    assert last_error is not None
    raise last_error
