"""Recovery mechanisms (Sect. 4.5)."""

from .commmgr import CommunicationManager, RoutedMessage
from .ftlib import CheckpointStore, Heartbeat, Watchdog, with_retries
from .loadbalancer import BalanceDecision, LoadBalancer
from .memarbiter import AdaptationEvent, AdaptiveArbiterController
from .recoverymgr import ExecutedAction, RecoveryManager
from .units import (
    FAILED,
    RESTARTING,
    RUNNING,
    STOPPED,
    RecoverableUnit,
    RestartRecord,
)

__all__ = [
    "AdaptationEvent",
    "AdaptiveArbiterController",
    "BalanceDecision",
    "CheckpointStore",
    "CommunicationManager",
    "ExecutedAction",
    "FAILED",
    "Heartbeat",
    "LoadBalancer",
    "RESTARTING",
    "RUNNING",
    "RecoverableUnit",
    "RecoveryManager",
    "RestartRecord",
    "RoutedMessage",
    "STOPPED",
    "Watchdog",
    "with_retries",
]
