"""Recovery manager: executes recovery actions.

Sect. 4.5: "a recovery manager, which executes the recovery actions such
as killing and restarting units."

Built-in action kinds (extensible through :meth:`register_handler`):

* ``restart_unit``   — partial recovery of one recoverable unit;
* ``restart_all``    — whole-system restart (the costly baseline the
  paper's partial recovery avoids);
* ``migrate_task``   — hand a task to the load balancer / scheduler;
* ``repair``         — invoke a domain repair callable (e.g. teletext
  re-sync) without killing anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..core.contract import RecoveryAction
from ..sim.kernel import Kernel
from .units import RecoverableUnit


@dataclass
class ExecutedAction:
    """Log entry: an action and the downtime it caused."""

    action: RecoveryAction
    started: float
    downtime: float


class RecoveryManager:
    """Executes :class:`~repro.core.contract.RecoveryAction` objects."""

    #: Extra cost of a whole-system restart beyond the sum of units
    #: (boot, global re-init) — why partial recovery wins.
    FULL_RESTART_OVERHEAD = 5.0

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.units: Dict[str, RecoverableUnit] = {}
        self.handlers: Dict[str, Callable[[RecoveryAction], float]] = {}
        self.log: List[ExecutedAction] = []
        self.register_handler("restart_unit", self._restart_unit)
        self.register_handler("restart_all", self._restart_all)
        self.register_handler("repair", self._repair)
        self._repairs: Dict[str, Callable[[], None]] = {}

    # ------------------------------------------------------------------
    def manage(self, unit: RecoverableUnit) -> None:
        self.units[unit.name] = unit

    def register_handler(
        self, kind: str, handler: Callable[[RecoveryAction], float]
    ) -> None:
        """Add an action kind; handler returns the downtime incurred."""
        self.handlers[kind] = handler

    def register_repair(self, name: str, repair: Callable[[], None]) -> None:
        """Register a named in-place repair callable."""
        self._repairs[name] = repair

    # ------------------------------------------------------------------
    def execute(self, action: RecoveryAction) -> float:
        """Run one action; returns the downtime it caused."""
        handler = self.handlers.get(action.kind)
        if handler is None:
            raise ValueError(f"no handler for recovery action kind {action.kind!r}")
        started = self.kernel.now
        downtime = handler(action)
        self.log.append(
            ExecutedAction(action=action, started=started, downtime=downtime)
        )
        return downtime

    # ------------------------------------------------------------------
    # built-in handlers
    # ------------------------------------------------------------------
    def _restart_unit(self, action: RecoveryAction) -> float:
        unit = self.units.get(action.target)
        if unit is None:
            raise KeyError(f"unknown recoverable unit {action.target!r}")
        return unit.restart(reason=action.params.get("reason", "recovery"))

    def _restart_all(self, action: RecoveryAction) -> float:
        """Whole-system restart: every unit down simultaneously + overhead."""
        if not self.units:
            return self.FULL_RESTART_OVERHEAD
        downtime = self.FULL_RESTART_OVERHEAD
        downtime += max(unit.restart_time for unit in self.units.values())
        for unit in self.units.values():
            unit.restart(reason="full-restart")
        return downtime

    def _repair(self, action: RecoveryAction) -> float:
        repair = self._repairs.get(action.target)
        if repair is None:
            raise KeyError(f"unknown repair {action.target!r}")
        repair()
        return 0.0

    # ------------------------------------------------------------------
    def total_downtime(self) -> float:
        return sum(entry.downtime for entry in self.log)
