"""Bindings and configurations (Koala 'compositions').

A :class:`Configuration` is a named set of components plus the bindings
between their requires and provides ports.  It validates interface-type
compatibility at bind time — Koala's compile-time wiring check — and can
render the composition as a graph for the architecture-level reliability
analysis in :mod:`repro.devtools.fmea`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import networkx as nx

from .component import Component, ComponentError
from .interface import Port


class Configuration:
    """A component composition with validated bindings."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.components: Dict[str, Component] = {}
        self.bindings: List[Tuple[Port, Port]] = []

    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        if component.name in self.components:
            raise ComponentError(f"duplicate component name {component.name!r}")
        self.components[component.name] = component
        return component

    def get(self, name: str) -> Component:
        return self.components[name]

    def __iter__(self) -> Iterator[Component]:
        return iter(self.components.values())

    def bind(
        self,
        consumer: str,
        requires_port: str,
        producer: str,
        provides_port: str,
    ) -> None:
        """Bind ``consumer.requires_port`` to ``producer.provides_port``."""
        consumer_component = self.components[consumer]
        producer_component = self.components[producer]
        req = consumer_component.requires.get(requires_port)
        if req is None:
            raise ComponentError(f"{consumer} has no requires port {requires_port!r}")
        prov = producer_component.provides.get(provides_port)
        if prov is None:
            raise ComponentError(f"{producer} has no provides port {provides_port!r}")
        if req.itype is not prov.itype and req.itype.name != prov.itype.name:
            raise ComponentError(
                f"interface mismatch binding {req.full_name()} "
                f"({req.itype.name}) to {prov.full_name()} ({prov.itype.name})"
            )
        if req.peer is not None:
            raise ComponentError(f"{req.full_name()} already bound")
        req.peer = prov
        self.bindings.append((req, prov))

    def unbind(self, consumer: str, requires_port: str) -> None:
        """Detach a binding (used by the communication manager in recovery)."""
        req = self.components[consumer].requires[requires_port]
        self.bindings = [(r, p) for (r, p) in self.bindings if r is not req]
        req.peer = None

    # ------------------------------------------------------------------
    def validate(self) -> List[str]:
        """Return wiring problems (unbound requires ports)."""
        problems = []
        for component in self:
            for port in component.requires.values():
                if port.peer is None:
                    problems.append(f"unbound requires port {port.full_name()}")
        return problems

    def start_all(self) -> None:
        for component in self:
            component.start()

    def stop_all(self) -> None:
        for component in self:
            component.stop()

    # ------------------------------------------------------------------
    def dependency_graph(self) -> "nx.DiGraph":
        """Directed graph: edge A→B when A requires something B provides.

        This is the input to the architecture-level FMEA (Sect. 4.7): error
        propagation follows these edges.
        """
        graph = nx.DiGraph()
        for component in self:
            graph.add_node(component.name)
        for req, prov in self.bindings:
            graph.add_edge(req.component.name, prov.component.name, interface=req.itype.name)
        return graph

    def dependents_of(self, name: str) -> List[str]:
        """Components that (transitively) depend on ``name``."""
        graph = self.dependency_graph()
        reversed_graph = graph.reverse()
        return sorted(nx.descendants(reversed_graph, name))
