"""Components: typed, port-connected units of the simulated TV software.

A :class:`Component` subclass declares ports in ``configure`` and
implements provided operations as ``op_<interface>_<operation>`` methods.
Calls arriving on a provides port are dispatched through
:meth:`Component.handle`, which is also where the reflection layer
(:mod:`repro.koala.reflection`) intercepts join points — the AspectKoala
attachment mechanism of Sect. 4.1.

Components have an explicit lifecycle (``INIT → STARTED → STOPPED``) and a
``mode`` attribute.  Modes are first-class because the Trader
mode-consistency error detector (Sect. 4.3) works by comparing the modes of
cooperating components.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from .interface import InterfaceType, Port


class ComponentError(Exception):
    """Raised for wiring/lifecycle misuse."""


class Component:
    """Base class for all Koala-style components."""

    INIT = "INIT"
    STARTED = "STARTED"
    STOPPED = "STOPPED"
    FAILED = "FAILED"

    def __init__(self, name: str) -> None:
        self.name = name
        self.lifecycle = self.INIT
        #: Functional mode, visible to the mode-consistency checker.
        self.mode: str = "idle"
        self.provides: Dict[str, Port] = {}
        self.requires: Dict[str, Port] = {}
        self._interceptors: List[Callable[..., Any]] = []
        self._mode_listeners: List[Callable[["Component", str, str], None]] = []
        self.call_count = 0
        self.configure()

    # ------------------------------------------------------------------
    # declaration API (used by subclasses in configure())
    # ------------------------------------------------------------------
    def configure(self) -> None:
        """Declare ports.  Subclasses override."""

    def provide(self, port_name: str, itype: InterfaceType) -> Port:
        if port_name in self.provides or port_name in self.requires:
            raise ComponentError(f"duplicate port {port_name!r} on {self.name}")
        port = Port(self, port_name, itype, Port.PROVIDES)
        self.provides[port_name] = port
        return port

    def require(self, port_name: str, itype: InterfaceType) -> Port:
        if port_name in self.provides or port_name in self.requires:
            raise ComponentError(f"duplicate port {port_name!r} on {self.name}")
        port = Port(self, port_name, itype, Port.REQUIRES)
        self.requires[port_name] = port
        return port

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.lifecycle == self.STARTED:
            return
        self.lifecycle = self.STARTED
        self.on_start()

    def stop(self) -> None:
        if self.lifecycle == self.STOPPED:
            return
        self.lifecycle = self.STOPPED
        self.on_stop()

    def fail(self, reason: str = "") -> None:
        """Mark the component failed (observable by monitors)."""
        self.lifecycle = self.FAILED
        self.on_fail(reason)

    def on_start(self) -> None:
        """Hook for subclasses."""

    def on_stop(self) -> None:
        """Hook for subclasses."""

    def on_fail(self, reason: str) -> None:
        """Hook for subclasses."""

    # ------------------------------------------------------------------
    # modes
    # ------------------------------------------------------------------
    def set_mode(self, mode: str) -> None:
        """Change functional mode, notifying mode listeners."""
        old = self.mode
        if mode == old:
            return
        self.mode = mode
        for listener in self._mode_listeners:
            listener(self, old, mode)

    def watch_mode(self, listener: Callable[["Component", str, str], None]) -> None:
        """Subscribe to mode changes (used by the mode observers)."""
        self._mode_listeners.append(listener)

    # ------------------------------------------------------------------
    # call dispatch
    # ------------------------------------------------------------------
    def call(self, port_name: str, operation: str, **kwargs: Any) -> Any:
        """Invoke an operation through one of our *requires* ports."""
        port = self.requires.get(port_name)
        if port is None:
            raise ComponentError(f"{self.name} has no requires port {port_name!r}")
        if port.peer is None:
            raise ComponentError(f"port {port.full_name()} is unbound")
        if not port.itype.has_operation(operation):
            raise ComponentError(
                f"interface {port.itype.name} has no operation {operation!r}"
            )
        provider: Component = port.peer.component
        return provider.handle(port.peer.name, operation, **kwargs)

    def handle(self, port_name: str, operation: str, **kwargs: Any) -> Any:
        """Dispatch an inbound call on a provides port to its method.

        Interceptors registered by the reflection layer wrap the actual
        method call; each receives a continuation so aspects can run advice
        before/after/around without the component knowing.
        """
        port = self.provides.get(port_name)
        if port is None:
            raise ComponentError(f"{self.name} has no provides port {port_name!r}")
        method_name = f"op_{port_name}_{operation}"
        method = getattr(self, method_name, None)
        if method is None:
            raise ComponentError(
                f"{self.name} does not implement {method_name} "
                f"for {port.itype.name}.{operation}"
            )
        self.call_count += 1

        def invoke() -> Any:
            return method(**kwargs)

        continuation = invoke
        for interceptor in reversed(self._interceptors):
            continuation = _wrap(interceptor, self, port_name, operation, kwargs, continuation)
        return continuation()

    def add_interceptor(self, interceptor: Callable[..., Any]) -> None:
        """Attach an interceptor: ``f(component, port, op, kwargs, proceed)``."""
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Callable[..., Any]) -> None:
        if interceptor in self._interceptors:
            self._interceptors.remove(interceptor)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} [{self.lifecycle}] mode={self.mode}>"


def _wrap(
    interceptor: Callable[..., Any],
    component: Component,
    port_name: str,
    operation: str,
    kwargs: Dict[str, Any],
    proceed: Callable[[], Any],
) -> Callable[[], Any]:
    def wrapped() -> Any:
        return interceptor(component, port_name, operation, kwargs, proceed)

    return wrapped
