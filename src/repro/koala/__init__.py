"""Koala-style component model: interfaces, components, bindings, reflection."""

from .binding import Configuration
from .component import Component, ComponentError
from .interface import InterfaceType, Operation, Port
from .reflection import Aspect, CallContext, JoinPoint, Weaver

__all__ = [
    "Aspect",
    "CallContext",
    "Component",
    "ComponentError",
    "Configuration",
    "InterfaceType",
    "JoinPoint",
    "Operation",
    "Port",
    "Weaver",
]
