"""Interface definitions for the Koala-style component model.

Koala (NXP's component model, the substrate AspectKoala instruments) wires
components through explicitly declared *provides* and *requires*
interfaces.  An :class:`InterfaceType` declares a set of named operations
with optional argument contracts; a :class:`Port` is one side of a
connection on a component instance.

Declared contracts matter here: the hardware-assisted *range checking* of
Sect. 4.1 checks observed argument/result values against exactly these
declarations, so an interface is also a machine-checkable specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class Operation:
    """One operation on an interface.

    ``ranges`` maps argument names to inclusive ``(low, high)`` bounds;
    ``result_range`` bounds the return value.  Bounds are optional — only
    numeric observables get them, matching how on-chip range checkers are
    configured for selected signals.
    """

    name: str
    ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    result_range: Optional[Tuple[float, float]] = None

    def check_args(self, kwargs: Dict[str, Any]) -> Optional[str]:
        """Return a violation description, or None if all bounds hold."""
        for arg, (low, high) in self.ranges.items():
            if arg not in kwargs:
                continue
            value = kwargs[arg]
            if not isinstance(value, (int, float)):
                return f"{self.name}.{arg}: non-numeric value {value!r}"
            if not low <= value <= high:
                return f"{self.name}.{arg}={value} outside [{low}, {high}]"
        return None

    def check_result(self, value: Any) -> Optional[str]:
        """Return a violation description for the result, or None."""
        if self.result_range is None:
            return None
        low, high = self.result_range
        if not isinstance(value, (int, float)):
            return f"{self.name}: non-numeric result {value!r}"
        if not low <= value <= high:
            return f"{self.name} result {value} outside [{low}, {high}]"
        return None


class InterfaceType:
    """A named set of operations (the Koala 'interface definition')."""

    def __init__(self, name: str, operations: Optional[Dict[str, Operation]] = None) -> None:
        self.name = name
        self.operations: Dict[str, Operation] = dict(operations or {})

    def operation(self, name: str, **kwargs: Any) -> "InterfaceType":
        """Fluently add an operation; returns self for chaining."""
        self.operations[name] = Operation(name, **kwargs)
        return self

    def has_operation(self, name: str) -> bool:
        return name in self.operations

    def __repr__(self) -> str:
        return f"InterfaceType({self.name!r}, ops={sorted(self.operations)})"


class Port:
    """One interface endpoint on a component instance.

    ``direction`` is ``'provides'`` or ``'requires'``.  A *requires* port
    delegates calls to the *provides* port it is bound to; binding is done
    by :mod:`repro.koala.binding`.
    """

    PROVIDES = "provides"
    REQUIRES = "requires"

    def __init__(self, component: Any, name: str, itype: InterfaceType, direction: str) -> None:
        if direction not in (self.PROVIDES, self.REQUIRES):
            raise ValueError(f"bad port direction {direction!r}")
        self.component = component
        self.name = name
        self.itype = itype
        self.direction = direction
        self.peer: Optional["Port"] = None

    @property
    def bound(self) -> bool:
        return self.peer is not None

    def full_name(self) -> str:
        return f"{self.component.name}.{self.name}"

    def __repr__(self) -> str:
        return f"Port({self.full_name()}, {self.itype.name}, {self.direction})"
