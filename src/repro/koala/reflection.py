"""Join points and aspect weaving over the component model.

This is the reproduction's **AspectKoala** (Sect. 4.1, [19]): user-
controlled reflection on join points.  A :class:`JoinPoint` names a set of
operations (by component/port/operation patterns, ``*`` wildcards); an
:class:`Aspect` carries before/after/around advice; a :class:`Weaver`
installs the advice as component interceptors — no edits to component code,
which is the property the paper needs for third-party and legacy software.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .binding import Configuration
from .component import Component


@dataclass(frozen=True)
class JoinPoint:
    """A pattern over (component, port, operation) call sites."""

    component: str = "*"
    port: str = "*"
    operation: str = "*"

    def matches(self, component: str, port: str, operation: str) -> bool:
        return (
            fnmatch.fnmatchcase(component, self.component)
            and fnmatch.fnmatchcase(port, self.port)
            and fnmatch.fnmatchcase(operation, self.operation)
        )


@dataclass
class CallContext:
    """What advice sees about an intercepted call."""

    component: Component
    port: str
    operation: str
    kwargs: Dict[str, Any]
    result: Any = None
    error: Optional[BaseException] = None


Advice = Callable[[CallContext], None]
AroundAdvice = Callable[[CallContext, Callable[[], Any]], Any]


class Aspect:
    """Named advice bundle attached to a join point."""

    def __init__(
        self,
        name: str,
        joinpoint: JoinPoint,
        before: Optional[Advice] = None,
        after: Optional[Advice] = None,
        around: Optional[AroundAdvice] = None,
    ) -> None:
        self.name = name
        self.joinpoint = joinpoint
        self.before = before
        self.after = after
        self.around = around
        self.activations = 0

    def __repr__(self) -> str:
        return f"Aspect({self.name!r}, {self.joinpoint})"


class Weaver:
    """Installs aspects into a configuration via component interceptors."""

    def __init__(self, configuration: Configuration) -> None:
        self.configuration = configuration
        self.aspects: List[Aspect] = []
        self._installed: Dict[str, Callable[..., Any]] = {}

    def weave(self, aspect: Aspect) -> None:
        """Attach an aspect to every matching component."""
        self.aspects.append(aspect)
        for component in self.configuration:
            if not self._component_may_match(aspect, component):
                continue
            interceptor = self._make_interceptor(aspect)
            component.add_interceptor(interceptor)
            self._installed[f"{aspect.name}@{component.name}"] = (component, interceptor)

    def unweave(self, aspect_name: str) -> int:
        """Remove a previously woven aspect everywhere; returns removals."""
        removed = 0
        for key in list(self._installed):
            name, _, _component_name = key.partition("@")
            if name != aspect_name:
                continue
            component, interceptor = self._installed.pop(key)
            component.remove_interceptor(interceptor)
            removed += 1
        self.aspects = [a for a in self.aspects if a.name != aspect_name]
        return removed

    # ------------------------------------------------------------------
    def _component_may_match(self, aspect: Aspect, component: Component) -> bool:
        return fnmatch.fnmatchcase(component.name, aspect.joinpoint.component)

    def _make_interceptor(self, aspect: Aspect) -> Callable[..., Any]:
        def interceptor(
            component: Component,
            port: str,
            operation: str,
            kwargs: Dict[str, Any],
            proceed: Callable[[], Any],
        ) -> Any:
            if not aspect.joinpoint.matches(component.name, port, operation):
                return proceed()
            aspect.activations += 1
            context = CallContext(component, port, operation, kwargs)
            if aspect.before is not None:
                aspect.before(context)
            try:
                if aspect.around is not None:
                    context.result = aspect.around(context, proceed)
                else:
                    context.result = proceed()
            except BaseException as exc:
                context.error = exc
                if aspect.after is not None:
                    aspect.after(context)
                raise
            if aspect.after is not None:
                aspect.after(context)
            return context.result

        return interceptor
