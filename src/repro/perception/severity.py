"""User-perceived failure severity (Sect. 4.6, DTI).

"The aim is to capture user-perceived failure severity, to get an
indication of the level of user-irritation caused by a product failure.
By means of controlled experiments with TV users, the impact of
characteristics such as product usage, user group, and function
importance is investigated."

The irritation model combines the factors the paper names:

* **function importance** — how much the user says the function matters;
* **product usage**       — how often the user exercises the function;
* **failure visibility**  — how prominent the failure is when it occurs;
* **attribution**         — whether the user blames the product or an
  external cause (see :mod:`repro.perception.attribution`); externally
  attributed failures are heavily discounted, the paper's headline
  finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class FunctionProfile:
    """A product function as the severity model sees it."""

    name: str
    #: Stated importance in [0, 1] (from user questionnaires).
    stated_importance: float
    #: Usage frequency in [0, 1] (fraction of sessions touching it).
    usage: float
    #: How visible a failure of this function is, in [0, 1].
    failure_visibility: float
    #: Prior probability users attribute a failure externally, in [0, 1].
    external_attribution_prior: float

    def __post_init__(self) -> None:
        for attr in (
            "stated_importance",
            "usage",
            "failure_visibility",
            "external_attribution_prior",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class UserProfile:
    """One (simulated) user in a controlled experiment."""

    name: str
    #: Baseline tolerance in [0, 1]: 1 = saintly patience.
    tolerance: float
    #: Technical savvy in [0, 1]; savvy users attribute more accurately.
    savvy: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.tolerance <= 1.0:
            raise ValueError("tolerance must be in [0, 1]")
        if not 0.0 <= self.savvy <= 1.0:
            raise ValueError("savvy must be in [0, 1]")


class SeverityModel:
    """Computes irritation for (user, function, attribution) triples.

    Irritation = visibility × usage-weighted importance × (1 − tolerance
    damping), then discounted by ``external_discount`` when the user
    attributes the failure externally.  All outputs are in [0, 1].
    """

    def __init__(self, external_discount: float = 0.8, usage_weight: float = 0.5) -> None:
        if not 0.0 <= external_discount <= 1.0:
            raise ValueError("external_discount must be in [0, 1]")
        if not 0.0 <= usage_weight <= 1.0:
            raise ValueError("usage_weight must be in [0, 1]")
        self.external_discount = external_discount
        self.usage_weight = usage_weight

    def base_irritation(self, user: UserProfile, function: FunctionProfile) -> float:
        """Irritation before attribution effects."""
        importance = (
            (1.0 - self.usage_weight) * function.stated_importance
            + self.usage_weight * function.usage
        )
        raw = function.failure_visibility * importance
        return raw * (1.0 - 0.5 * user.tolerance)

    def irritation(
        self,
        user: UserProfile,
        function: FunctionProfile,
        attributed_externally: bool,
    ) -> float:
        """Final irritation given the user's attribution of the failure."""
        value = self.base_irritation(user, function)
        if attributed_externally:
            value *= 1.0 - self.external_discount
        return max(0.0, min(1.0, value))

    def severity_weight(self, function: FunctionProfile) -> float:
        """Population-level severity weight for the recovery policy.

        Expected irritation over attribution: functions whose failures are
        usually blamed on the product carry more weight — this is the
        bridge from user studies to the run-time recovery policy.
        """
        internal_share = 1.0 - function.external_attribution_prior
        importance = (
            (1.0 - self.usage_weight) * function.stated_importance
            + self.usage_weight * function.usage
        )
        expected = function.failure_visibility * importance * (
            internal_share
            + (1.0 - internal_share) * (1.0 - self.external_discount)
        )
        return max(0.0, min(1.0, expected))


#: The two functions of the paper's anecdote: image quality vs the
#: motorized swivel.  Both rank as important when users are *asked*; under
#: observation image-quality failures are blamed on external sources while
#: a broken swivel is unambiguously the product's fault.
PAPER_FUNCTIONS: Dict[str, FunctionProfile] = {
    "image_quality": FunctionProfile(
        name="image_quality",
        stated_importance=0.9,
        usage=1.0,
        failure_visibility=0.9,
        external_attribution_prior=0.8,
    ),
    "swivel": FunctionProfile(
        name="swivel",
        stated_importance=0.85,
        usage=0.3,
        failure_visibility=0.8,
        external_attribution_prior=0.05,
    ),
    "teletext": FunctionProfile(
        name="teletext",
        stated_importance=0.5,
        usage=0.4,
        failure_visibility=0.7,
        external_attribution_prior=0.3,
    ),
    "sound": FunctionProfile(
        name="sound",
        stated_importance=0.95,
        usage=1.0,
        failure_visibility=1.0,
        external_attribution_prior=0.2,
    ),
}
