"""Controlled-experiment simulator over user populations (Sect. 4.6).

Reproduces the *shape* of DTI's findings: generate a user population,
expose every user to failures of selected functions, collect (a) stated
importance rankings (questionnaire) and (b) observed irritation
(behaviour), and show that attribution drives the gap between them —
image quality ranks high when asked but irritates little when failing,
while the swivel irritates a lot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .attribution import AttributionModel, FailureContext
from .severity import FunctionProfile, SeverityModel, UserProfile


@dataclass
class FunctionOutcome:
    """Aggregated study result for one function."""

    function: str
    stated_importance_mean: float
    observed_irritation_mean: float
    external_attribution_rate: float
    samples: int


@dataclass
class StudyResult:
    """Everything the study produced."""

    outcomes: Dict[str, FunctionOutcome]
    population_size: int

    def importance_ranking(self) -> List[str]:
        """Functions by stated importance (questionnaire view)."""
        return sorted(
            self.outcomes,
            key=lambda name: -self.outcomes[name].stated_importance_mean,
        )

    def irritation_ranking(self) -> List[str]:
        """Functions by observed irritation (behavioural view)."""
        return sorted(
            self.outcomes,
            key=lambda name: -self.outcomes[name].observed_irritation_mean,
        )


def generate_population(
    size: int, seed: int = 0
) -> List[UserProfile]:
    """A seeded synthetic user population with varied tolerance/savvy."""
    rng = random.Random(seed)
    users = []
    for index in range(size):
        users.append(
            UserProfile(
                name=f"user{index}",
                tolerance=min(1.0, max(0.0, rng.gauss(0.5, 0.2))),
                savvy=min(1.0, max(0.0, rng.gauss(0.4, 0.25))),
            )
        )
    return users


class ControlledStudy:
    """Expose a population to failures and measure irritation."""

    def __init__(
        self,
        functions: Dict[str, FunctionProfile],
        severity: Optional[SeverityModel] = None,
        seed: int = 0,
        exposures_per_user: int = 5,
    ) -> None:
        self.functions = dict(functions)
        self.severity = severity or SeverityModel()
        self.seed = seed
        self.exposures_per_user = exposures_per_user

    def run(
        self,
        population: Sequence[UserProfile],
        contexts: Optional[Dict[str, FailureContext]] = None,
    ) -> StudyResult:
        """Run the full study; ``contexts`` gives per-function ground truth.

        Default contexts match the paper's anecdote: image-quality failures
        are truly external (bad antenna/broadcast) with strong cues; the
        swivel failure is a pure product defect.
        """
        contexts = contexts or self.default_contexts()
        attribution = AttributionModel(random.Random(self.seed))
        outcomes: Dict[str, FunctionOutcome] = {}
        for name, function in self.functions.items():
            context = contexts.get(name, FailureContext())
            irritations: List[float] = []
            stated: List[float] = []
            external_count = 0
            samples = 0
            for user in population:
                stated.append(function.stated_importance)
                for _ in range(self.exposures_per_user):
                    external = attribution.attribute(user, function, context)
                    if external:
                        external_count += 1
                    irritations.append(
                        self.severity.irritation(user, function, external)
                    )
                    samples += 1
            outcomes[name] = FunctionOutcome(
                function=name,
                stated_importance_mean=sum(stated) / len(stated),
                observed_irritation_mean=sum(irritations) / len(irritations),
                external_attribution_rate=external_count / samples,
                samples=samples,
            )
        return StudyResult(outcomes=outcomes, population_size=len(population))

    @staticmethod
    def default_contexts() -> Dict[str, FailureContext]:
        return {
            "image_quality": FailureContext(truly_external=True, external_cue=0.8),
            "swivel": FailureContext(truly_external=False, external_cue=0.0),
            "teletext": FailureContext(truly_external=False, external_cue=0.2),
            "sound": FailureContext(truly_external=False, external_cue=0.1),
        }
