"""User perception of reliability (Sect. 4.6)."""

from .attribution import AttributionModel, FailureContext
from .severity import (
    PAPER_FUNCTIONS,
    FunctionProfile,
    SeverityModel,
    UserProfile,
)
from .study import (
    ControlledStudy,
    FunctionOutcome,
    StudyResult,
    generate_population,
)

__all__ = [
    "AttributionModel",
    "ControlledStudy",
    "FailureContext",
    "FunctionOutcome",
    "FunctionProfile",
    "PAPER_FUNCTIONS",
    "SeverityModel",
    "StudyResult",
    "UserProfile",
    "generate_population",
]
