"""Failure attribution: who does the user blame?

Sect. 4.6: "it turned out that also failure attribution has a significant
impact.  [...] users often turn out to be very tolerant concerning bad
image quality (which is attributed to external sources), but get
irritated if the swivel does not work correctly."

:class:`AttributionModel` samples, per observed failure, whether a user
attributes it externally.  The probability starts from the function's
attribution prior and is modulated by user savvy (savvy users attribute
*more accurately*, i.e. toward the true cause) and by context (a storm,
a known-bad antenna) that legitimizes external blame.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .severity import FunctionProfile, UserProfile


@dataclass(frozen=True)
class FailureContext:
    """Circumstances of one failure occurrence."""

    #: Ground truth: is the cause actually external (bad broadcast)?
    truly_external: bool = False
    #: Environmental hint strength toward external blame, in [0, 1].
    external_cue: float = 0.0


class AttributionModel:
    """Samples attribution decisions for (user, function, context)."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng or random.Random(0)

    def external_probability(
        self,
        user: UserProfile,
        function: FunctionProfile,
        context: FailureContext,
    ) -> float:
        """Probability this user blames this failure on an external cause."""
        prior = function.external_attribution_prior
        # Environmental cues push toward external blame.
        cued = prior + (1.0 - prior) * context.external_cue * 0.5
        # Savvy users converge on the truth.
        truth = 1.0 if context.truly_external else 0.0
        probability = (1.0 - user.savvy) * cued + user.savvy * truth
        return max(0.0, min(1.0, probability))

    def attribute(
        self,
        user: UserProfile,
        function: FunctionProfile,
        context: FailureContext,
    ) -> bool:
        """Sample one attribution decision; True = blamed externally."""
        return self.rng.random() < self.external_probability(user, function, context)
