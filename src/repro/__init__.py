"""repro — reproduction of "Dependability for high-tech systems: an
industry-as-laboratory approach" (Brinksma & Hooman, DATE 2008).

The package implements the Trader project's model-based run-time
awareness stack on a fully simulated substrate:

* :mod:`repro.core`         — the Fig. 1 closed loop (detect → diagnose →
  recover) and recovery policies;
* :mod:`repro.awareness`    — the Fig. 2 framework (observers, model
  executor, comparator, controller, mode-consistency checking);
* :mod:`repro.statemachine` — executable timed state machines (the
  Stateflow analogue), model checking, test generation;
* :mod:`repro.tv`           — the simulated high-end TV (the SUO), its
  specification model, software block map, and fault injection;
* :mod:`repro.diagnosis`    — spectrum-based fault localization;
* :mod:`repro.recovery`     — recoverable units, communication/recovery
  managers, load balancing, adaptive memory arbitration;
* :mod:`repro.perception`   — user-perceived failure severity;
* :mod:`repro.devtools`     — stress testing, warning prioritization,
  architecture-level FMEA;
* :mod:`repro.platform` / :mod:`repro.koala` / :mod:`repro.sim` — the
  SoC, component-model, and discrete-event simulation substrates;
* :mod:`repro.runtime`     — the typed event bus every layer publishes
  on, the MonitorFleet/ExperimentRunner engine that multiplexes
  hundreds of monitored SUOs on one kernel, and the streaming
  telemetry aggregators that keep thousand-SUO campaigns in bounded
  memory;
* :mod:`repro.scenarios`   — declarative workload scenarios
  (ScenarioSpec → MonitorFleet compiler, a ≥10-entry named library,
  deterministic placement plans for sharded execution);
* :mod:`repro.campaign`    — the unified campaign API: Campaign
  (scenario × seed plans) executed through pluggable backends —
  SerialBackend (one kernel) or ProcessShardBackend (one kernel per
  shard in worker processes, merged telemetry, backend-invariant
  telemetry digests).
"""

__version__ = "1.0.0"

from .core import (
    AwarenessLoop,
    Diagnosis,
    ErrorReport,
    LadderStep,
    MonitorHierarchy,
    Observation,
    RecoveryAction,
    RecoveryPolicy,
)

__all__ = [
    "AwarenessLoop",
    "Diagnosis",
    "ErrorReport",
    "LadderStep",
    "MonitorHierarchy",
    "Observation",
    "RecoveryAction",
    "RecoveryPolicy",
    "__version__",
]
