"""Hardware-style deadlock detection (Sect. 4.3's 'hardware-based deadlock
detection').

Real deadlock units watch bus/memory handshakes for lack of progress; the
simulation analogue watches registered resources and buffers: if at least
one process is *waiting* and no progress counter has moved for
``stall_intervals`` consecutive samples, the detector raises a deadlock
alarm.  This progress-watchdog formulation detects true deadlocks and
livelock-like stalls alike — both are user-visible hangs, which is what
matters for perceived dependability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..sim.kernel import Kernel
from ..sim.resources import Resource, Store


@dataclass(frozen=True)
class DeadlockAlarm:
    """Raised when the watched set made no progress while work was pending."""

    time: float
    waiting: int
    stalled_for: float


class DeadlockDetector:
    """Progress watchdog over resources and stores."""

    def __init__(
        self,
        kernel: Kernel,
        interval: float = 2.0,
        stall_intervals: int = 3,
    ) -> None:
        self.kernel = kernel
        self.interval = interval
        self.stall_intervals = stall_intervals
        self.resources: List[Resource] = []
        self.stores: List[Store] = []
        self.alarms: List[DeadlockAlarm] = []
        self.on_alarm: List[Callable[[DeadlockAlarm], None]] = []
        self._running = False
        self._last_progress = 0
        self._stall_count = 0

    def watch_resource(self, resource: Resource) -> None:
        self.resources.append(resource)

    def watch_store(self, store: Store) -> None:
        self.stores.append(store)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._last_progress = self._progress_counter()
        self._stall_count = 0
        self._schedule()

    def stop(self) -> None:
        self._running = False

    def _schedule(self) -> None:
        self.kernel.schedule(
            self.interval, self._sample, name="deadlock-watch", transient=True
        )

    def _progress_counter(self) -> int:
        total = 0
        for resource in self.resources:
            total += resource.stats.acquisitions
        for store in self.stores:
            total += store.put_count
        return total

    def _waiting(self) -> int:
        waiting = sum(r.queue_length() for r in self.resources)
        waiting += sum(len(s._getters) for s in self.stores)
        return waiting

    def _sample(self) -> None:
        if not self._running:
            return
        progress = self._progress_counter()
        waiting = self._waiting()
        if waiting > 0 and progress == self._last_progress:
            self._stall_count += 1
            if self._stall_count >= self.stall_intervals:
                alarm = DeadlockAlarm(
                    time=self.kernel.now,
                    waiting=waiting,
                    stalled_for=self._stall_count * self.interval,
                )
                self.alarms.append(alarm)
                for listener in self.on_alarm:
                    listener(alarm)
                self._stall_count = 0
        else:
            self._stall_count = 0
        self._last_progress = progress
        self._schedule()
