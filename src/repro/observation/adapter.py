"""Adapters: hardware monitors as Fig. 1 error sources.

The loop (:class:`repro.core.loop.AwarenessLoop`) consumes anything with
``subscribe_errors``; the model-based comparator and the mode checker
already speak that interface.  This module lifts the *hardware-assisted*
monitors of Sect. 4.1/4.3 — range checkers, memory-latency watches,
deadlock watchdogs — to the same interface, so one loop integrates every
detection technique (the Sect. 5 integration goal).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.contract import ErrorReport
from ..runtime.bus import EventBus
from .deadlock import DeadlockAlarm, DeadlockDetector
from .hardware import MemoryAlarm, MemoryArbiterWatch, RangeChecker


class _ErrorSource:
    """Shared subscribe/emit plumbing.

    ``connect_bus`` additionally mirrors every report onto a runtime-bus
    topic (``errors.<detector>`` by convention), so fleet-level consumers
    can aggregate error traffic from many detectors without holding
    references to them.
    """

    def __init__(self) -> None:
        self.reports: List[ErrorReport] = []
        self._listeners: List[Callable[[ErrorReport], None]] = []
        self._bus: Optional[EventBus] = None
        self._bus_topic: str = ""

    def subscribe_errors(self, listener: Callable[[ErrorReport], None]) -> None:
        self._listeners.append(listener)

    def connect_bus(self, bus: EventBus, topic: str) -> None:
        self._bus = bus
        self._bus_topic = topic

    def _emit(self, report: ErrorReport) -> None:
        self.reports.append(report)
        for listener in self._listeners:
            listener(report)
        if self._bus is not None:
            self._bus.publish(self._bus_topic, report)


class RangeCheckerSource(_ErrorSource):
    """Polls a :class:`RangeChecker` and reports new violations.

    The checker itself is a passive recorder (like a debug unit's
    violation FIFO); this adapter drains it on a polling interval and
    turns each violation into an :class:`ErrorReport`.
    """

    def __init__(
        self,
        kernel,
        checker: RangeChecker,
        interval: float = 1.0,
        severity: float = 1.5,
    ) -> None:
        super().__init__()
        self.kernel = kernel
        self.checker = checker
        self.interval = interval
        self.severity = severity
        self._drained = 0
        self.running = False

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._schedule()

    def stop(self) -> None:
        self.running = False

    def _schedule(self) -> None:
        self.kernel.schedule(
            self.interval, self._poll, name="range-source", transient=True
        )

    def _poll(self) -> None:
        if not self.running:
            return
        new = self.checker.violations[self._drained:]
        self._drained = len(self.checker.violations)
        for violation in new:
            self._emit(
                ErrorReport(
                    time=violation.time,
                    detector="range-checker",
                    observable=f"range:{violation.component}.{violation.operation}",
                    expected="value within declared interface range",
                    actual=violation.detail,
                    consecutive=1,
                    severity=self.severity,
                )
            )
        self._schedule()


class DeadlockSource(_ErrorSource):
    """Forwards :class:`DeadlockDetector` alarms as error reports."""

    def __init__(self, detector: DeadlockDetector, severity: float = 3.0) -> None:
        super().__init__()
        self.detector = detector
        self.severity = severity
        detector.on_alarm.append(self._on_alarm)

    def _on_alarm(self, alarm: DeadlockAlarm) -> None:
        self._emit(
            ErrorReport(
                time=alarm.time,
                detector="deadlock-watchdog",
                observable="progress",
                expected="forward progress while work is pending",
                actual=f"{alarm.waiting} waiters stalled for {alarm.stalled_for}",
                consecutive=1,
                severity=self.severity,
            )
        )


class MemoryWatchSource(_ErrorSource):
    """Forwards :class:`MemoryArbiterWatch` latency alarms."""

    def __init__(self, watch: MemoryArbiterWatch, severity: float = 1.0) -> None:
        super().__init__()
        self.watch = watch
        self.severity = severity
        watch.on_alarm.append(self._on_alarm)

    def _on_alarm(self, alarm: MemoryAlarm) -> None:
        self._emit(
            ErrorReport(
                time=alarm.time,
                detector="memory-watch",
                observable=f"mem-latency:{alarm.client}",
                expected=f"mean latency <= {alarm.bound}",
                actual=alarm.mean_latency,
                consecutive=1,
                severity=self.severity,
            )
        )
