"""Aspect-oriented software observation (the AspectKoala use of Sect. 4.1).

"The observation of software behaviour is mainly done by code
instrumentation using aspect-oriented techniques."  This module packages
the common monitoring aspects as ready-to-weave factories over the
reflection layer of :mod:`repro.koala.reflection`:

* :func:`call_logger`      — every intercepted call into the trace;
* :func:`call_counter`     — per-operation invocation counts;
* :func:`latency_recorder` — wall-time of each call (simulated clocks are
  free, so this records *call nesting depth* as the cost proxy);
* :func:`value_tap`        — mirrors a chosen argument/result to a callback
  (feeding the awareness input/output observers).
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..koala.reflection import Aspect, CallContext, JoinPoint
from ..sim.trace import Trace


def call_logger(trace: Trace, joinpoint: JoinPoint, name: str = "call-logger") -> Aspect:
    """Log every matching call (component, operation, args, result)."""

    def after(context: CallContext) -> None:
        trace.emit(
            name,
            "call",
            {
                "component": context.component.name,
                "port": context.port,
                "operation": context.operation,
                "kwargs": dict(context.kwargs),
                "result": context.result,
                "error": repr(context.error) if context.error else None,
            },
        )

    return Aspect(name, joinpoint, after=after)


def call_counter(joinpoint: JoinPoint, name: str = "call-counter") -> Aspect:
    """Count matching calls; counts live on the aspect as ``.counts``."""
    counts: Dict[str, int] = {}

    def before(context: CallContext) -> None:
        key = f"{context.component.name}.{context.operation}"
        counts[key] = counts.get(key, 0) + 1

    aspect = Aspect(name, joinpoint, before=before)
    aspect.counts = counts  # type: ignore[attr-defined]
    return aspect


def latency_recorder(
    clock: Callable[[], float], joinpoint: JoinPoint, name: str = "latency"
) -> Aspect:
    """Record simulated-time cost of matching calls on ``.samples``."""
    samples: Dict[str, list] = {}

    def around(context: CallContext, proceed: Callable[[], Any]) -> Any:
        start = clock()
        result = proceed()
        elapsed = clock() - start
        key = f"{context.component.name}.{context.operation}"
        samples.setdefault(key, []).append(elapsed)
        return result

    aspect = Aspect(name, joinpoint, around=around)
    aspect.samples = samples  # type: ignore[attr-defined]
    return aspect


def value_tap(
    joinpoint: JoinPoint,
    callback: Callable[[CallContext], None],
    name: str = "value-tap",
) -> Aspect:
    """Invoke ``callback`` with the full context after each matching call."""
    return Aspect(name, joinpoint, after=callback)
