"""Hardware-assisted monitors: range checking, call stacks, memory watch.

Sect. 4.1: hardware-related observation "aims at exploiting mechanisms
already available in hardware, such as the on-chip debug and trace
infrastructure, to monitor values for range checking, call stacks
(functions, parameters, and result values), and memory arbiters."

These monitors are zero-intrusion from the SUO's point of view: the range
checker derives its configuration from the declared interface contracts
(the 'programmed comparators' of a debug unit), the call-stack monitor is
a shadow stack fed by the same interception fabric, and the memory watch
reads arbiter performance counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from ..koala.binding import Configuration
from ..koala.reflection import Aspect, CallContext, JoinPoint, Weaver
from ..platform.memory import MemoryArbiter
from ..sim.kernel import Kernel


@dataclass(frozen=True)
class RangeViolation:
    """A value escaped its declared interface bounds."""

    time: float
    component: str
    operation: str
    detail: str


class RangeChecker:
    """Checks every observed call against declared interface ranges."""

    def __init__(self, configuration: Configuration, clock: Callable[[], float]) -> None:
        self.configuration = configuration
        self.clock = clock
        self.violations: List[RangeViolation] = []
        self.checked_calls = 0
        self._weaver = Weaver(configuration)

    def install(self) -> None:
        aspect = Aspect("range-checker", JoinPoint(), after=self._check)
        self._weaver.weave(aspect)

    def uninstall(self) -> None:
        self._weaver.unweave("range-checker")

    def _check(self, context: CallContext) -> None:
        self.checked_calls += 1
        port = context.component.provides.get(context.port)
        if port is None:
            return
        operation = port.itype.operations.get(context.operation)
        if operation is None:
            return
        problem = operation.check_args(context.kwargs)
        if problem is None and context.error is None:
            problem = operation.check_result(context.result)
        if problem is not None:
            self.violations.append(
                RangeViolation(
                    time=self.clock(),
                    component=context.component.name,
                    operation=context.operation,
                    detail=problem,
                )
            )


@dataclass
class StackFrame:
    """One entry of the shadow call stack."""

    component: str
    operation: str
    kwargs: Dict[str, Any]


class CallStackMonitor:
    """Shadow call stack with depth watermark and overflow alarm."""

    def __init__(self, configuration: Configuration, max_depth: int = 64) -> None:
        self.configuration = configuration
        self.max_depth = max_depth
        self.stack: List[StackFrame] = []
        self.max_observed_depth = 0
        self.overflows = 0
        self.call_log_size = 0
        self._weaver = Weaver(configuration)

    def install(self) -> None:
        aspect = Aspect("call-stack", JoinPoint(), around=self._track)
        self._weaver.weave(aspect)

    def uninstall(self) -> None:
        self._weaver.unweave("call-stack")

    def _track(self, context: CallContext, proceed: Callable[[], Any]) -> Any:
        frame = StackFrame(context.component.name, context.operation, dict(context.kwargs))
        self.stack.append(frame)
        self.call_log_size += 1
        self.max_observed_depth = max(self.max_observed_depth, len(self.stack))
        if len(self.stack) > self.max_depth:
            self.overflows += 1
        try:
            return proceed()
        finally:
            self.stack.pop()

    def current_depth(self) -> int:
        return len(self.stack)


@dataclass(frozen=True)
class MemoryAlarm:
    """Arbiter latency exceeded its configured bound for a client."""

    time: float
    client: str
    mean_latency: float
    bound: float


class MemoryArbiterWatch:
    """Periodically reads arbiter counters and raises latency alarms."""

    def __init__(
        self,
        kernel: Kernel,
        arbiter: MemoryArbiter,
        latency_bound: float,
        interval: float = 5.0,
    ) -> None:
        self.kernel = kernel
        self.arbiter = arbiter
        self.latency_bound = latency_bound
        self.interval = interval
        self.alarms: List[MemoryAlarm] = []
        self.on_alarm: List[Callable[[MemoryAlarm], None]] = []
        self._running = False
        self._last_totals: Dict[str, tuple] = {}

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        self._running = False

    def _schedule(self) -> None:
        self.kernel.schedule(
            self.interval, self._sample, name="mem-watch", transient=True
        )

    def _sample(self) -> None:
        if not self._running:
            return
        for client, stats in self.arbiter.stats.items():
            previous = self._last_totals.get(client, (0, 0.0))
            delta_requests = stats.requests - previous[0]
            delta_latency = stats.total_latency - previous[1]
            self._last_totals[client] = (stats.requests, stats.total_latency)
            if delta_requests == 0:
                continue
            mean = delta_latency / delta_requests
            if mean > self.latency_bound:
                alarm = MemoryAlarm(
                    time=self.kernel.now,
                    client=client,
                    mean_latency=mean,
                    bound=self.latency_bound,
                )
                self.alarms.append(alarm)
                for listener in self.on_alarm:
                    listener(alarm)
        self._schedule()
