"""Observation layer: probes, monitoring aspects, HW-assisted monitors."""

from .aspect import call_counter, call_logger, latency_recorder, value_tap
from .deadlock import DeadlockAlarm, DeadlockDetector
from .hardware import (
    CallStackMonitor,
    MemoryAlarm,
    MemoryArbiterWatch,
    RangeChecker,
    RangeViolation,
    StackFrame,
)
from .observer import BufferProbe, InputProbe, LoadProbe, ModeProbe, OutputProbe

__all__ = [
    "BufferProbe",
    "CallStackMonitor",
    "DeadlockAlarm",
    "DeadlockDetector",
    "InputProbe",
    "LoadProbe",
    "MemoryAlarm",
    "MemoryArbiterWatch",
    "ModeProbe",
    "OutputProbe",
    "RangeChecker",
    "RangeViolation",
    "StackFrame",
    "call_counter",
    "call_logger",
    "latency_recorder",
    "value_tap",
]

from .adapter import DeadlockSource, MemoryWatchSource, RangeCheckerSource

__all__ += ["DeadlockSource", "MemoryWatchSource", "RangeCheckerSource"]
