"""Probes: the low-level observation mechanisms of Sect. 4.1.

The paper lists what a TV monitor wants to see: "key presses from the
remote control, internal modes of components, load of processors and
busses, buffers, function calls to audio/video output, sound level".
Each probe here captures one of those and writes time-stamped records
into a shared :class:`~repro.sim.trace.Trace` — the simulation analogue
of the on-chip debug/trace infrastructure.

Probes are *attachment only*: none of them changes SUO behaviour (beyond
negligible overhead accounting), the property that makes the approach
viable for third-party and legacy components.

Input and output probes attach two ways: directly to one SUO's hook list
(``attach``), or to the runtime bus (``attach_bus``) — the latter watches
a ``suo.<suo_id>.*`` topic namespace without holding a reference to the
SUO at all, which is how probes observe fleet members.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..koala.binding import Configuration
from ..koala.component import Component
from ..runtime.bus import EventBus, Subscription
from ..sim.kernel import Kernel
from ..sim.trace import Trace


class InputProbe:
    """Mirrors remote-control key presses into the trace."""

    def __init__(self, trace: Trace, name: str = "input") -> None:
        self.trace = trace
        self.name = name
        self.count = 0

    def attach(self, remote) -> None:
        remote.input_hooks.append(self._on_press)

    def attach_bus(self, bus: EventBus, suo_id: str = "tv") -> Subscription:
        """Observe one SUO's key presses via the runtime bus."""
        return bus.subscribe(
            f"suo.{suo_id}.input", lambda _topic, press: self._on_press(press)
        )

    def _on_press(self, press) -> None:
        self.count += 1
        self.trace.emit(self.name, "key", {"key": press.key, "index": press.index})


class OutputProbe:
    """Mirrors user-visible outputs (screen/sound events) into the trace."""

    def __init__(self, trace: Trace, name: str = "output") -> None:
        self.trace = trace
        self.name = name
        self.count = 0

    def attach(self, tv) -> None:
        tv.output_hooks.append(self._on_output)

    def attach_bus(self, bus: EventBus, suo_id: str = "tv") -> Subscription:
        """Observe one SUO's output events via the runtime bus."""
        return bus.subscribe(
            f"suo.{suo_id}.output", lambda _topic, event: self._on_output(event)
        )

    def _on_output(self, event) -> None:
        self.count += 1
        self.trace.emit(self.name, f"out:{event.name}", event.value)


class ModeProbe:
    """Watches component mode changes across a configuration."""

    def __init__(self, trace: Trace, name: str = "modes") -> None:
        self.trace = trace
        self.name = name
        self.current: Dict[str, str] = {}

    def attach(self, configuration: Configuration) -> None:
        for component in configuration:
            self.current[component.name] = component.mode
            component.watch_mode(self._on_mode)
            self._attach_nested(component)

    def _attach_nested(self, component: Component) -> None:
        # Facade components (teletext) hold nested sub-components whose
        # modes matter to the consistency checker.
        for attr in ("acquirer", "renderer"):
            nested = getattr(component, attr, None)
            if isinstance(nested, Component):
                self.current[nested.name] = nested.mode
                nested.watch_mode(self._on_mode)

    def _on_mode(self, component: Component, old: str, new: str) -> None:
        self.current[component.name] = new
        self.trace.emit(
            self.name, "mode", {"component": component.name, "from": old, "to": new}
        )


class LoadProbe:
    """Periodically samples processor/bus/memory load from the SoC."""

    def __init__(
        self,
        trace: Trace,
        kernel: Kernel,
        soc,
        interval: float = 1.0,
        name: str = "load",
    ) -> None:
        self.trace = trace
        self.kernel = kernel
        self.soc = soc
        self.interval = interval
        self.name = name
        self.samples = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        self._running = False

    def _schedule(self) -> None:
        self.kernel.schedule(
            self.interval, self._sample, name="load-probe", transient=True
        )

    def _sample(self) -> None:
        if not self._running:
            return
        self.samples += 1
        self.trace.emit(self.name, "load", self.soc.snapshot())
        self._schedule()


class BufferProbe:
    """Watches the fill level and drop counts of pipeline stores."""

    def __init__(self, trace: Trace, kernel: Kernel, interval: float = 1.0) -> None:
        self.trace = trace
        self.kernel = kernel
        self.interval = interval
        self.stores: List[Any] = []
        self._gauges: List[Any] = []
        self._running = False

    def watch(self, store) -> None:
        self.stores.append(store)

    def watch_gauge(self, name: str, level: Callable[[], int]) -> None:
        """Watch a level *provider* instead of a store reference.

        Some pipelines (the media player) tear their stores down and
        rebuild them across seeks and restarts; a held store reference
        would silently sample a dead buffer.  A gauge callable — e.g.
        ``player.buffer_level`` — survives the rebuild.
        """
        self._gauges.append((name, level))

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        self._running = False

    def _schedule(self) -> None:
        self.kernel.schedule(
            self.interval, self._sample, name="buffer-probe", transient=True
        )

    def _sample(self) -> None:
        if not self._running:
            return
        for store in self.stores:
            self.trace.emit(
                "buffers",
                "buffer",
                {
                    "name": store.name,
                    "fill": len(store),
                    "drops": store.drop_count,
                },
            )
        for name, level in self._gauges:
            self.trace.emit("buffers", "buffer", {"name": name, "fill": level()})
        self._schedule()
