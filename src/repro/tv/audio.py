"""Audio component: volume, mute, and the audible output level.

The effective sound level is one of the two primary user observables
(Sect. 4.2: output is "images on the screen and sound"); the awareness
output observer samples :meth:`op_audio_effective_level`.
"""

from __future__ import annotations

from typing import Callable, List

from ..koala.component import Component
from .interfaces import IAudio


class Audio(Component):
    """Volume control with clamping and mute."""

    VOLUME_STEP = 5

    def __init__(self, name: str = "audio") -> None:
        self._volume = 30
        self._muted = False
        self._powered = True
        self.on_level_change: List[Callable[[int], None]] = []
        super().__init__(name)

    def configure(self) -> None:
        self.provide("audio", IAudio)
        self.set_mode("unmute")

    # ------------------------------------------------------------------
    def op_audio_set_volume(self, level: int) -> int:
        """Set absolute volume; clamped to [0, 100]."""
        clamped = max(0, min(100, int(level)))
        self._volume = clamped
        self._notify()
        return clamped

    def op_audio_get_volume(self) -> int:
        return self._volume

    def op_audio_set_mute(self, muted: bool) -> None:
        self._muted = bool(muted)
        self.set_mode("mute" if self._muted else "unmute")
        self._notify()

    def op_audio_effective_level(self) -> int:
        """What actually reaches the speakers."""
        if self._muted or not self._powered:
            return 0
        return self._volume

    # ------------------------------------------------------------------
    def set_power(self, powered: bool) -> None:
        self._powered = powered
        self._notify()

    def _notify(self) -> None:
        level = self.op_audio_effective_level()
        for listener in self.on_level_change:
            listener(level)
