"""The complete simulated TV: composition, control logic, observables.

:class:`TVSet` is the reproduction's System Under Observation.  It wires
the Koala components (tuner, audio, video, teletext, OSD, dual screen,
features) into a :class:`~repro.koala.binding.Configuration`, runs the
real-time pipeline on a simulated SoC, and exposes the two user-level
observables of Sect. 4.2 — the **screen** descriptor and the **sound**
level — as output events that the awareness framework's observers attach
to.

The control logic implements the feature-interaction rules that the
specification model (:mod:`repro.tv.control_model`) describes from the
user's viewpoint; faults (:mod:`repro.tv.faults`) perturb exactly these
handlers so spec and system diverge in user-visible ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..koala.binding import Configuration
from ..koala.component import Component
from ..platform.soc import SoC, make_tv_soc
from ..sim.kernel import Kernel
from ..sim.random import RandomStreams
from .audio import Audio
from .dualscreen import DualScreen
from .features import Features
from .interfaces import IKeyInput
from .osd import Osd
from .remote import RemoteControl
from .teletext import Teletext
from .tuner import Tuner
from .video import VideoPipeline

#: Overlays dismissed by a channel change.
_CHANNEL_CLEARS = ("ttx", "epg", "volume_bar", "info_banner")
VOLUME_BAR_TIMEOUT = 2.0
INFO_BANNER_TIMEOUT = 2.0


@dataclass(frozen=True)
class OutputEvent:
    """One observable output: at ``time`` the observable ``name`` became ``value``."""

    time: float
    name: str
    value: Any


class ControlLogic(Component):
    """Key dispatch and feature-interaction rules.

    Each handler reports the *branch tags* it executed through
    ``on_handler`` — the hook the block instrumentation of
    :mod:`repro.tv.software` uses to build program spectra without
    touching handler code (our stand-in for C-code instrumentation).
    """

    def __init__(self, tv: "TVSet", name: str = "control") -> None:
        self.tv = tv
        self.on_handler: List[Callable[[str, List[str]], None]] = []
        #: Named fault hooks the injector toggles; see repro.tv.faults.
        self.fault_flags: Dict[str, bool] = {}
        super().__init__(name)

    def configure(self) -> None:
        self.provide("keys", IKeyInput)
        # Declared dependencies: the control logic drives every other
        # component through these Koala bindings, which is what makes the
        # architecture analyzable (FMEA) and weavable (AspectKoala).
        from .interfaces import IAudio, IFeatures, ITeletext, ITuner, IVideo

        self.require("tuner", ITuner)
        self.require("audio", IAudio)
        self.require("video", IVideo)
        self.require("ttx", ITeletext)
        self.require("features", IFeatures)
        self.set_mode("standby")

    # ------------------------------------------------------------------
    def _report(self, handler: str, tags: List[str]) -> None:
        for hook in self.on_handler:
            hook(handler, tags)

    def _fault(self, flag: str) -> bool:
        return self.fault_flags.get(flag, False)

    # ------------------------------------------------------------------
    def op_keys_press(self, key: str) -> None:
        """Entry point for every remote key."""
        tv = self.tv
        if not tv.powered and key != "power":
            self._report("ignore_standby", ["standby"])
            return
        handler = getattr(self, f"_key_{key}", None)
        if handler is None and key.startswith("digit"):
            handler = lambda: self._key_digit(int(key[5:]))  # noqa: E731
        if handler is None:
            self._report("unknown_key", [key])
            return
        handler()
        tv.publish_outputs()

    # ------------------------------------------------------------------
    # power
    # ------------------------------------------------------------------
    def _key_power(self) -> None:
        tv = self.tv
        if tv.powered:
            tags = ["power_off"]
            tv.powered = False
            self.call("video", "blank")
            tv.audio.set_power(False)
            if tv.osd.op_osd_current_overlay() == "ttx":
                self.call("ttx", "hide")
            tv.osd._set("none")
            tv.dual.exit()
            self.set_mode("standby")
        else:
            tags = ["power_on"]
            tv.powered = True
            self.call("video", "unblank")
            self.call("video", "set_source", channel=tv.channel)
            tv.audio.set_power(True)
            self.set_mode("active")
        self._report("power", tags)

    # ------------------------------------------------------------------
    # channel selection
    # ------------------------------------------------------------------
    def _change_channel(self, target: int, tags: List[str]) -> None:
        tv = self.tv
        if tv.osd.op_osd_current_overlay() == "menu":
            tags.append("blocked_by_menu")
            self._report("channel", tags)
            return
        if self.call("features", "is_locked_channel", channel=target):
            tags.append("child_locked")
            tv.show_transient("info_banner")
            self._report("channel", tags)
            return
        tv.channel = target
        self.call("tuner", "tune", channel=target)
        self.call("video", "set_source", channel=target)
        # The sync-loss fault drops this notification inside the acquirer,
        # not here: control logic and renderer stay consistent with each
        # other while the acquirer silently goes stale (Sect. 4.3, [17]).
        tv.teletext.notify_channel(target)
        overlay = tv.osd.op_osd_current_overlay()
        if overlay in _CHANNEL_CLEARS:
            if overlay == "ttx":
                self.call("ttx", "hide")
                tags.append("ttx_closed")
            tv.osd._set("none")
        self._report("channel", tags)

    def _key_ch_up(self) -> None:
        tv = self.tv
        target = tv.channel + 1
        if target > tv.tuner.channel_count:
            target = 1
        self._change_channel(target, ["ch_up"])

    def _key_ch_down(self) -> None:
        tv = self.tv
        target = tv.channel - 1
        if target < 1:
            target = tv.tuner.channel_count
        self._change_channel(target, ["ch_down"])

    def _key_digit(self, digit: int) -> None:
        target = digit if digit >= 1 else 10
        self._change_channel(target, [f"digit{digit}"])

    # ------------------------------------------------------------------
    # volume
    # ------------------------------------------------------------------
    def _adjust_volume(self, delta: int, tags: List[str]) -> None:
        tv = self.tv
        if tv.osd.op_osd_current_overlay() == "menu":
            tags.append("blocked_by_menu")
            self._report("volume", tags)
            return
        current = self.call("audio", "get_volume")
        if self._fault("volume_overshoot"):
            # Programming fault: writes the raw hardware register with the
            # step unscaled, slamming the volume to an extreme.
            new_level = 100 if delta > 0 else 0
            tags.append("FAULT_volume_overshoot")
        else:
            new_level = current + delta
        self.call("audio", "set_volume", level=new_level)
        overlay = tv.osd.op_osd_current_overlay()
        if overlay in ("none", "volume_bar", "info_banner"):
            tv.show_transient("volume_bar")
            tags.append("volume_bar")
        self._report("volume", tags)

    def volume_self_check(self) -> None:
        """Periodic volume register refresh (the PR 5 timed self-check).

        Re-writes the cached volume level through the same register path
        a key press uses — a silent no-op on a healthy set (same level,
        no overlay, no output event), but under ``volume_overshoot`` the
        unscaled write slams the register to the extreme *farther* from
        the cached level.  Sparse sessions (overnight sleepers with 90s
        press gaps) therefore still exercise a latent volume fault
        between presses, and the monitor's timed sound sampling catches
        the divergence without a single user interaction."""
        tv = self.tv
        if not tv.powered:
            return
        current = self.call("audio", "get_volume")
        if self._fault("volume_overshoot"):
            new_level = 100 if current < 50 else 0
            tags = ["FAULT_volume_overshoot"]
        else:
            new_level = current
            tags = ["refresh"]
        self.call("audio", "set_volume", level=new_level)
        self._report("volume_check", tags)

    def _key_vol_up(self) -> None:
        self._adjust_volume(Audio.VOLUME_STEP, ["vol_up"])

    def _key_vol_down(self) -> None:
        self._adjust_volume(-Audio.VOLUME_STEP, ["vol_down"])

    def _key_mute(self) -> None:
        tv = self.tv
        if self._fault("mute_noop"):
            self._report("mute", ["FAULT_mute_noop"])
            return
        muted = tv.audio.mode == "mute"
        self.call("audio", "set_mute", muted=not muted)
        self._report("mute", ["mute_on" if not muted else "mute_off"])

    # ------------------------------------------------------------------
    # overlays and teletext
    # ------------------------------------------------------------------
    def _key_ttx(self) -> None:
        tv = self.tv
        overlay = tv.osd.op_osd_current_overlay()
        tags = ["ttx"]
        if overlay == "alert":
            tags.append("blocked_by_alert")
            self._report("ttx", tags)
            return
        if overlay == "ttx":
            self.call("ttx", "hide")
            tv.osd._set("none")
            tags.append("ttx_off")
        else:
            if tv.dual.active:
                # Feature interaction: teletext forces single screen.
                tv.dual.exit()
                self.call("video", "set_pip", channel=0)
                tags.append("forced_single")
            self.call("ttx", "show", page=100)
            tv.osd._set("ttx")
            tags.append("ttx_on")
        self._report("ttx", tags)

    def _key_menu(self) -> None:
        tv = self.tv
        overlay = tv.osd.op_osd_current_overlay()
        tags = ["menu"]
        if overlay == "alert":
            tags.append("blocked_by_alert")
            self._report("menu", tags)
            return
        if overlay == "menu":
            tv.osd._set("none")
            tags.append("menu_off")
        else:
            if overlay == "ttx":
                self.call("ttx", "hide")
                tags.append("ttx_suppressed")
            if self._fault("menu_opens_epg"):
                tv.osd._set("epg")
                tags.append("FAULT_menu_opens_epg")
            else:
                tv.osd._set("menu")
                tags.append("menu_on")
        self._report("menu", tags)

    def _key_epg(self) -> None:
        tv = self.tv
        overlay = tv.osd.op_osd_current_overlay()
        tags = ["epg"]
        if overlay in ("alert", "menu"):
            tags.append("suppressed")
        elif overlay == "epg":
            tv.osd._set("none")
            tags.append("epg_off")
        else:
            if overlay == "ttx":
                self.call("ttx", "hide")
                tags.append("ttx_suppressed")
            tv.osd._set("epg")
            tags.append("epg_on")
        self._report("epg", tags)

    def _key_back(self) -> None:
        tv = self.tv
        overlay = tv.osd.op_osd_current_overlay()
        tags = ["back"]
        if overlay == "alert":
            tags.append("blocked_by_alert")
        elif overlay == "ttx":
            self.call("ttx", "hide")
            tv.osd._set("none")
            tags.append("closed_ttx")
        elif overlay != "none":
            tv.osd._set("none")
            tags.append(f"closed_{overlay}")
        self._report("back", tags)

    # ------------------------------------------------------------------
    # dual screen
    # ------------------------------------------------------------------
    def _key_dual(self) -> None:
        tv = self.tv
        overlay = tv.osd.op_osd_current_overlay()
        tags = ["dual"]
        if overlay in ("menu", "ttx", "alert", "epg"):
            tags.append("blocked_by_overlay")
            self._report("dual", tags)
            return
        if tv.dual.active:
            tv.dual.exit()
            self.call("video", "set_pip", channel=0)
            tags.append("dual_off")
        else:
            pip = tv.channel + 1
            if pip > tv.tuner.channel_count:
                pip = 1
            tv.dual.enter(pip)
            self.call("video", "set_pip", channel=pip)
            tags.append("dual_on")
        self._report("dual", tags)

    def _key_swap(self) -> None:
        tv = self.tv
        tags = ["swap"]
        if not tv.dual.active:
            tags.append("not_dual")
            self._report("swap", tags)
            return
        new_main = tv.dual.swap(tv.channel)
        tv.channel = new_main
        self.call("tuner", "tune", channel=new_main)
        self.call("video", "set_source", channel=new_main)
        self.call("video", "set_pip", channel=tv.dual.pip_channel)
        tv.teletext.notify_channel(new_main)
        self._report("swap", tags)

    # ------------------------------------------------------------------
    # features
    # ------------------------------------------------------------------
    def _key_sleep(self) -> None:
        tv = self.tv
        minutes = tv.features.cycle_sleep()
        tv.show_transient("info_banner")
        self._report("sleep", [f"sleep_{minutes}"])

    def _key_lock(self) -> None:
        tv = self.tv
        enabled = self.call("features", "toggle_lock")
        tv.show_transient("info_banner")
        self._report("lock", ["lock_on" if enabled else "lock_off"])

    def _key_ok(self) -> None:
        tv = self.tv
        tags = ["ok"]
        if tv.osd.op_osd_current_overlay() == "alert":
            self.call("features", "clear_alert")
            tv.osd._set("none")
            tags.append("alert_cleared")
        self._report("ok", tags)


class TVSet:
    """Everything assembled: SoC, components, wiring, observables."""

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        seed: int = 0,
        soc: Optional[SoC] = None,
        suo_id: str = "tv",
    ) -> None:
        self.kernel = kernel or Kernel()
        self.streams = RandomStreams(seed)
        self.soc = soc or make_tv_soc(self.kernel, seed=seed)
        if self.soc.kernel is not self.kernel:
            raise ValueError("SoC must share the TV's kernel")

        #: Identity on the shared runtime bus.  Observables go out on
        #: ``suo.<suo_id>.input`` / ``.stimulus`` / ``.output``, which is
        #: what lets a MonitorFleet multiplex many TVs on one kernel.
        self.suo_id = suo_id
        self.bus = self.kernel.bus
        self._publish_output = self.bus.publisher(f"suo.{suo_id}.output")
        self._publish_stimulus = self.bus.publisher(f"suo.{suo_id}.stimulus")

        self.powered = False
        self.channel = 1

        # components ----------------------------------------------------
        self.tuner = Tuner(streams=self.streams)
        self.audio = Audio()
        self.audio.set_power(False)  # the set boots into standby
        self.video = VideoPipeline(self.soc, self._signal_quality)
        self.teletext = Teletext(self.kernel)
        self.osd = Osd()
        self.dual = DualScreen()
        self.features = Features(self.kernel)
        self.control = ControlLogic(self)

        self.configuration = Configuration("tv")
        for component in (
            self.tuner,
            self.audio,
            self.video,
            self.teletext,
            self.osd,
            self.dual,
            self.features,
            self.control,
        ):
            self.configuration.add(component)
        # Koala wiring: the control logic's declared dependencies.
        self.configuration.bind("control", "tuner", "tuner", "tuner")
        self.configuration.bind("control", "audio", "audio", "audio")
        self.configuration.bind("control", "video", "video", "video")
        self.configuration.bind("control", "ttx", "teletext", "ttx")
        self.configuration.bind("control", "features", "features", "features")
        self.configuration.start_all()

        self.remote = RemoteControl(
            self.kernel, self._on_key, topic=f"suo.{suo_id}.input"
        )

        # observables ---------------------------------------------------
        self.output_events: List[OutputEvent] = []
        self.output_hooks: List[Callable[[OutputEvent], None]] = []
        #: Non-key stimuli (broadcast alerts) mirrored to observers.
        self.stimulus_hooks: List[Callable[[str], None]] = []
        self._last_published: Dict[str, Any] = {}
        self._transient_events: Dict[str, Any] = {}

        self.features.on_sleep_expire.append(self._sleep_expired)

        # The render loop: periodically re-publish observables so changes
        # that happen *between* key presses (teletext page acquisition,
        # frame-quality shifts) become visible to the output observer.
        self.refresh_interval = 0.5
        self._schedule_refresh()

        # Timed volume self-check: the register refresh that keeps a
        # latent volume fault detectable on sets whose users rarely
        # press anything (see ControlLogic.volume_self_check).
        self.volume_check_interval = 45.0
        self._schedule_volume_check()

    # ------------------------------------------------------------------
    # wiring helpers
    # ------------------------------------------------------------------
    def _on_key(self, key: str) -> None:
        self.control.handle("keys", "press", key=key)

    def _signal_quality(self) -> float:
        return self.tuner.op_tuner_signal_quality()

    def _sleep_expired(self) -> None:
        if self.powered:
            self.control._key_power()
            self.publish_outputs()

    # ------------------------------------------------------------------
    # transient overlays (volume bar, info banner)
    # ------------------------------------------------------------------
    def show_transient(self, kind: str) -> None:
        """Show a self-dismissing overlay and (re)arm its timeout."""
        timeout = VOLUME_BAR_TIMEOUT if kind == "volume_bar" else INFO_BANNER_TIMEOUT
        shown = self.osd.op_osd_show_overlay(kind=kind)
        if not shown:
            return
        pending = self._transient_events.get(kind)
        if pending is not None:
            pending.cancel()
        self._transient_events[kind] = self.kernel.schedule(
            timeout, lambda: self._hide_transient(kind), name=f"osd:{kind}"
        )

    def _hide_transient(self, kind: str) -> None:
        self._transient_events.pop(kind, None)
        if self.osd.op_osd_current_overlay() == kind:
            self.osd._set("none")
            self.publish_outputs()

    # ------------------------------------------------------------------
    # alerts (broadcast-side input)
    # ------------------------------------------------------------------
    def _schedule_refresh(self) -> None:
        # Render ticks dominate a fleet campaign's non-wake events; they
        # are fire-and-forget, so let the kernel recycle them.
        self.kernel.schedule(
            self.refresh_interval, self._refresh, name="render", transient=True
        )

    def _refresh(self) -> None:
        if self.powered:
            self.publish_outputs()
        self._schedule_refresh()

    def _schedule_volume_check(self) -> None:
        self.kernel.schedule(
            self.volume_check_interval, self._volume_check,
            name="selfcheck:volume", transient=True,
        )

    def _volume_check(self) -> None:
        if self.powered:
            self.control.volume_self_check()
            self.publish_outputs()
        self._schedule_volume_check()

    def broadcast_alert(self) -> None:
        """An emergency alert arrives from the broadcaster."""
        if not self.powered:
            return
        for hook in self.stimulus_hooks:
            hook("alert_broadcast")
        self._publish_stimulus("alert_broadcast")
        self.features.handle("features", "raise_alert")
        if self.osd.op_osd_current_overlay() == "ttx":
            self.teletext.handle("ttx", "hide")
        self.osd._set("alert")
        self.publish_outputs()

    # ------------------------------------------------------------------
    # observables
    # ------------------------------------------------------------------
    def screen_descriptor(self) -> Dict[str, Any]:
        """What the user currently sees."""
        if not self.powered:
            return {"power": False, "content": "dark", "overlay": "none"}
        overlay = self.osd.op_osd_current_overlay()
        descriptor: Dict[str, Any] = {
            "power": True,
            "content": "dual" if self.dual.active else "video",
            "overlay": overlay,
            "channel": self.channel,
        }
        if self.dual.active:
            descriptor["pip_channel"] = self.dual.pip_channel
        if overlay == "ttx":
            rendered = self.teletext.handle("ttx", "rendered_page")
            descriptor["ttx_status"] = rendered.get("status")
            descriptor["ttx_page"] = rendered.get("page")
        return descriptor

    def sound_level(self) -> int:
        return self.audio.op_audio_effective_level()

    def publish_outputs(self) -> None:
        """Emit output events for observables that changed."""
        self._publish("screen", self.screen_descriptor())
        self._publish("sound", self.sound_level())

    def _publish(self, name: str, value: Any) -> None:
        if self._last_published.get(name) == value:
            return
        self._last_published[name] = value
        event = OutputEvent(self.kernel.now, name, value)
        self.output_events.append(event)
        for hook in self.output_hooks:
            hook(event)
        self._publish_output(event)

    # ------------------------------------------------------------------
    # convenience driving API
    # ------------------------------------------------------------------
    def press(self, key: str) -> None:
        """Press a key immediately (runs pending events first)."""
        self.remote.press(key)

    def run(self, duration: float) -> None:
        """Advance the simulation."""
        self.kernel.run(until=self.kernel.now + duration)
