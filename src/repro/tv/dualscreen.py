"""Dual screen (picture-in-picture) state.

Dual screen is one corner of the paper's feature-interaction triangle
(dual screen × teletext × OSD, Sect. 4.2).  The component only manages
PiP state; the interaction *rules* (e.g. opening teletext forces single
screen) live in the control logic, mirroring how responsibility was split
in the original TV software — which is exactly why those interactions were
easy to get wrong.
"""

from __future__ import annotations

from ..koala.component import Component


class DualScreen(Component):
    """Picture-in-picture bookkeeping."""

    def __init__(self, name: str = "dual") -> None:
        self._active = False
        self._pip_channel = 0
        super().__init__(name)

    def configure(self) -> None:
        self.set_mode("single")

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    @property
    def pip_channel(self) -> int:
        return self._pip_channel

    def enter(self, pip_channel: int) -> None:
        self._active = True
        self._pip_channel = pip_channel
        self.set_mode("dual")

    def exit(self) -> None:
        self._active = False
        self._pip_channel = 0
        self.set_mode("single")

    def swap(self, main_channel: int) -> int:
        """Exchange main and PiP channels; returns the new main channel."""
        if not self._active:
            return main_channel
        new_main = self._pip_channel
        self._pip_channel = main_channel
        return new_main
