"""Fault injection for the simulated TV.

The paper's terminology ([1], Sect. 2): a **fault** (programming mistake,
unexpected input) causes an **error** (bad state) which may lead to a
**failure** (user-visible wrong behaviour).  Each :class:`FaultSpec` here
is a fault in that sense: a latent defect that activates under a trigger
condition and corrupts behaviour at a specific code location (its block
set in :class:`~repro.tv.software.SoftwareBuild` is the diagnosis ground
truth).

Catalogue (all user-visible through the screen/sound observables):

* ``drop_ttx_notify``   — channel-change notification to the teletext
  acquirer is lost (the Sect. 4.3 synchronization fault);
* ``ttx_stale_render``  — teletext renderer serves pages from a stale
  cache entry (the Sect. 4.4 injected teletext error);
* ``volume_overshoot``  — volume handler writes an unscaled register
  value, slamming volume to an extreme;
* ``mute_noop``         — mute key handler silently does nothing;
* ``menu_opens_epg``    — menu handler dispatches to the wrong overlay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .tvset import TVSet


@dataclass
class FaultSpec:
    """One injectable fault."""

    name: str
    description: str
    #: Key-press count after which the fault becomes active (latency of a
    #: field defect: it ships dormant, then conditions activate it).
    activate_after_presses: int = 0
    active: bool = field(default=False, init=False)


class FaultInjector:
    """Activates faults in a :class:`TVSet` at the right moments."""

    def __init__(self, tv: TVSet) -> None:
        self.tv = tv
        self.plan: Dict[str, FaultSpec] = {}
        self._press_count = 0
        tv.remote.input_hooks.append(self._on_press)

    # ------------------------------------------------------------------
    def inject(self, name: str, activate_after_presses: int = 0) -> FaultSpec:
        """Register a fault from the catalogue."""
        maker = getattr(self, f"_apply_{name}", None)
        if maker is None:
            raise ValueError(f"unknown fault {name!r}")
        spec = FaultSpec(
            name=name,
            description=maker.__doc__ or name,
            activate_after_presses=activate_after_presses,
        )
        self.plan[name] = spec
        if activate_after_presses == 0:
            self._activate(spec)
        return spec

    def clear(self, name: str) -> None:
        """Deactivate a fault (models a hot fix / recovery repair)."""
        spec = self.plan.get(name)
        if spec is None or not spec.active:
            return
        remover = getattr(self, f"_remove_{name}", None)
        if remover is not None:
            remover()
        spec.active = False

    def active_faults(self) -> List[str]:
        return [name for name, spec in self.plan.items() if spec.active]

    # ------------------------------------------------------------------
    def _on_press(self, press) -> None:
        self._press_count += 1
        for spec in self.plan.values():
            if (
                not spec.active
                and spec.activate_after_presses > 0
                and self._press_count >= spec.activate_after_presses
            ):
                self._activate(spec)

    def _activate(self, spec: FaultSpec) -> None:
        getattr(self, f"_apply_{spec.name}")()
        spec.active = True

    # ------------------------------------------------------------------
    # fault implementations
    # ------------------------------------------------------------------
    def _apply_drop_ttx_notify(self) -> None:
        """Lose channel-change notifications to the teletext acquirer."""
        self.tv.teletext.inject_sync_loss()

    def _remove_drop_ttx_notify(self) -> None:
        self.tv.teletext.repair_sync()

    def _apply_ttx_stale_render(self) -> None:
        """Teletext renderer pins a stale cache generation."""
        self.tv.teletext.inject_stale_render()

    def _remove_ttx_stale_render(self) -> None:
        self.tv.teletext.repair_stale_render()

    def _apply_volume_overshoot(self) -> None:
        """Volume handler writes an unscaled hardware register value."""
        self.tv.control.fault_flags["volume_overshoot"] = True

    def _remove_volume_overshoot(self) -> None:
        self.tv.control.fault_flags["volume_overshoot"] = False

    def _apply_mute_noop(self) -> None:
        """Mute key handler does nothing."""
        self.tv.control.fault_flags["mute_noop"] = True

    def _remove_mute_noop(self) -> None:
        self.tv.control.fault_flags["mute_noop"] = False

    def _apply_menu_opens_epg(self) -> None:
        """Menu handler dispatches to the EPG overlay instead."""
        self.tv.control.fault_flags["menu_opens_epg"] = True

    def _remove_menu_opens_epg(self) -> None:
        self.tv.control.fault_flags["menu_opens_epg"] = False
