"""The TV 'software build': code blocks for spectrum-based diagnosis.

Sect. 4.4 describes instrumenting the TV's C code into ~60 000 blocks and
recording, per key press, which blocks executed.  Our TV is simulated, so
this module supplies the block population: a realistic module map whose
blocks are *deterministically* activated by the behaviour the simulation
actually performs (key handlers, teletext rendering, background drivers).

Determinism matters: the same tag (handler branch) always touches the same
base block set, with a small per-step data-dependent variation — the same
structure real program spectra have, and the property spectrum-based fault
localization exploits.

The module map (sizes chosen so a 27-press scenario executes ≈13 800 of
60 000 blocks, the figures reported in the paper):

* ``kernel_core``     8 000 blocks, executed every step (OS, event loop);
* ``drivers_var``    10 000 blocks, ~3% activated per step (interrupt and
  data-dependent driver paths);
* one module per key handler plus per-subsystem logic modules;
* one tiny module per *injectable fault branch* (the ground truth);
* ``cold_features``   the remainder — code never exercised by the scenario
  (other input sources, service menus, factory modes).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .remote import KEYS


@dataclass(frozen=True)
class Module:
    """A contiguous block range [start, start + size)."""

    name: str
    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, block: int) -> bool:
        return self.start <= block < self.end


def _stable_sample(token: str, size: int, fraction: float) -> List[int]:
    """Deterministic pseudo-random subset of ``range(size)``.

    Seeded from a hash of ``token`` so results are stable across Python
    processes (``hash()`` is salted; ``sha256`` is not).  Sampling a fixed
    ``fraction * size`` count keeps the activation model cheap enough to
    run *online* (the run-time diagnosis of Fig. 1), unlike a per-block
    hash test.
    """
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))
    count = int(size * fraction)
    if count <= 0:
        return []
    return rng.sample(range(size), min(count, size))


class SoftwareBuild:
    """The block map of one TV software release."""

    HANDLER_MODULE_SIZE = 120
    LOGIC_MODULES: Tuple[Tuple[str, int], ...] = (
        ("channel_logic", 400),
        ("volume_logic", 200),
        ("ttx_logic", 600),
        ("ttx_render", 350),
        ("osd_logic", 250),
        ("dual_logic", 180),
        ("features_logic", 300),
        ("alert_logic", 120),
        ("standby_logic", 80),
    )
    FAULT_MODULE_SIZE = 4
    KNOWN_FAULTS: Tuple[str, ...] = (
        "drop_ttx_notify",
        "ttx_stale_render",
        "volume_overshoot",
        "mute_noop",
        "menu_opens_epg",
    )

    def __init__(self, seed: int = 0, total_blocks: int = 60000) -> None:
        self.seed = seed
        self.total_blocks = total_blocks
        self.modules: Dict[str, Module] = {}
        cursor = 0
        cursor = self._add("kernel_core", 7500, cursor)
        cursor = self._add("drivers_var", 10000, cursor)
        for key in KEYS:
            cursor = self._add(f"handler_{key}", self.HANDLER_MODULE_SIZE, cursor)
        for name, size in self.LOGIC_MODULES:
            cursor = self._add(name, size, cursor)
        for fault in self.KNOWN_FAULTS:
            cursor = self._add(f"fault_{fault}", self.FAULT_MODULE_SIZE, cursor)
        if cursor > total_blocks:
            raise ValueError(
                f"module map ({cursor}) exceeds total blocks ({total_blocks})"
            )
        self._add("cold_features", total_blocks - cursor, cursor)

    def _add(self, name: str, size: int, cursor: int) -> int:
        self.modules[name] = Module(name, cursor, size)
        return cursor + size

    # ------------------------------------------------------------------
    def module(self, name: str) -> Module:
        return self.modules[name]

    def module_of_block(self, block: int) -> Optional[Module]:
        for module in self.modules.values():
            if module.contains(block):
                return module
        return None

    def fault_blocks(self, fault: str) -> FrozenSet[int]:
        """Ground-truth block set for an injected fault."""
        module = self.modules[f"fault_{fault}"]
        return frozenset(range(module.start, module.end))

    # ------------------------------------------------------------------
    # activation model
    # ------------------------------------------------------------------
    def background_blocks(self, step: int) -> Set[int]:
        """Blocks the platform executes during any step."""
        blocks: Set[int] = set()
        core = self.modules["kernel_core"]
        blocks.update(range(core.start, core.end))
        drivers = self.modules["drivers_var"]
        token = f"{self.seed}:drivers:{step}"
        for offset in _stable_sample(token, drivers.size, 0.02):
            blocks.add(drivers.start + offset)
        return blocks

    def tag_blocks(self, module_name: str, tag: str, step: int) -> Set[int]:
        """Blocks a handler branch touches in one step.

        60% of the module is the branch's stable base (seeded by the tag);
        a further 10% varies with the step (data-dependent paths).
        """
        module = self.modules.get(module_name)
        if module is None:
            return set()
        blocks: Set[int] = set()
        base_token = f"{self.seed}:{module_name}:{tag}"
        step_token = f"{base_token}:{step}"
        for offset in _stable_sample(base_token, module.size, 0.6):
            blocks.add(module.start + offset)
        for offset in _stable_sample(step_token, module.size, 0.1):
            blocks.add(module.start + offset)
        return blocks

    # ------------------------------------------------------------------
    #: handler-name → logic modules it exercises (besides handler_<key>).
    HANDLER_LOGIC = {
        "power": ("standby_logic",),
        "channel": ("channel_logic",),
        "volume": ("volume_logic", "osd_logic"),
        "mute": ("volume_logic",),
        "ttx": ("ttx_logic", "osd_logic"),
        "menu": ("osd_logic",),
        "epg": ("osd_logic",),
        "back": ("osd_logic",),
        "dual": ("dual_logic",),
        "swap": ("dual_logic", "channel_logic"),
        "sleep": ("features_logic", "osd_logic"),
        "lock": ("features_logic", "osd_logic"),
        "ok": ("alert_logic",),
        "ignore_standby": ("standby_logic",),
        "ttx_render": ("ttx_render",),
    }

    def blocks_for_handler(
        self, handler: str, tags: List[str], key: Optional[str], step: int
    ) -> Set[int]:
        """All blocks one reported handler invocation executed."""
        blocks: Set[int] = set()
        if key is not None and f"handler_{key}" in self.modules:
            blocks.update(self.tag_blocks(f"handler_{key}", handler, step))
        plain_tags = [t for t in tags if not t.startswith("FAULT_")]
        for module_name in self.HANDLER_LOGIC.get(handler, ()):
            for tag in plain_tags or [handler]:
                blocks.update(self.tag_blocks(module_name, tag, step))
        for tag in tags:
            if tag.startswith("FAULT_"):
                fault = tag[len("FAULT_"):]
                module_name = f"fault_{fault}"
                module = self.modules.get(module_name)
                if module is not None:
                    blocks.update(range(module.start, module.end))
        return blocks
