"""A media player SUO: the reproduction's MPlayer analogue.

Sect. 5: "the framework is used for awareness experiments with the open
source media player MPlayer, investigating both correctness and
performance issues."  This module provides an equivalent second System
Under Observation: a demux → decode → render pipeline driven by player
commands, with injectable correctness faults (a stall after a corrupt
packet) and performance faults (decoder slowdown), plus a small
specification model of the player's control behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from ..sim.kernel import Kernel
from ..sim.process import Delay, Interrupted, Process
from ..sim.resources import Store
from ..statemachine.builder import MachineBuilder
from ..statemachine.machine import Machine


@dataclass(frozen=True)
class Packet:
    """One demuxed media packet."""

    index: int
    pts: float
    corrupt: bool = False


class MediaSource:
    """A synthetic media file: packets at a fixed rate, some corrupt."""

    def __init__(
        self,
        packet_count: int = 500,
        packet_interval: float = 0.4,
        corrupt_indices: Optional[List[int]] = None,
    ) -> None:
        self.packet_count = packet_count
        self.packet_interval = packet_interval
        self.corrupt_indices = set(corrupt_indices or [])

    def packet(self, index: int) -> Packet:
        return Packet(
            index=index,
            pts=index * self.packet_interval,
            corrupt=index in self.corrupt_indices,
        )


class MediaPlayer:
    """The player: command API, pipeline processes, observables.

    Observables published on ``suo.<suo_id>.output`` (PR 4 deepened the
    set — state alone was too coarse for the awareness monitor to see a
    wedged pipeline):

    * ``state``    — control state after every command;
    * ``position`` — presented position: every rendered frame, plus
      seek/stop jumps (so the observable never goes stale while the
      renderer is legitimately quiet);
    * ``frame``    — rendered frames only (progress evidence — a seek
      echo moves ``position`` but is not proof the pipeline works);
    * ``buffer``   — demuxed-packet buffer fill level on every change.
    """

    DECODE_TIME = 0.25
    RENDER_TIME = 0.05
    BUFFER_CAPACITY = 8

    def __init__(
        self, kernel: Kernel, source: MediaSource, suo_id: str = "player"
    ) -> None:
        self.kernel = kernel
        self.source = source
        self.suo_id = suo_id
        self._publish_output = kernel.bus.publisher(f"suo.{suo_id}.output")
        self._publish_command = kernel.bus.publisher(f"suo.{suo_id}.input")
        self.state = "stopped"
        self.position = 0.0
        self.frames_rendered = 0
        self.decode_slowdown = 1.0
        #: Correctness fault: when True, a corrupt packet wedges the
        #: decoder (it neither produces output nor skips the packet).
        self.stall_on_corrupt = False
        self.stalled = False
        self.output_hooks: List[Callable[[str, Any], None]] = []
        self._demux_index = 0
        self._packets: Optional[Store] = None
        self._frames: Optional[Store] = None
        self._processes: List[Process] = []
        self._last_buffer_level = 0
        #: Discontinuity sequence number: bumped on every seek so stages
        #: can discard in-flight data from before the jump (a real
        #: demuxer tags packets the same way; without it one stale frame
        #: rendered after a seek publishes a pre-seek position).
        self._generation = 0

    # ------------------------------------------------------------------
    # command API (the player's input events)
    # ------------------------------------------------------------------
    def command(self, name: str, **params: Any) -> None:
        handler = getattr(self, f"_cmd_{name}", None)
        if handler is None:
            raise ValueError(f"unknown player command {name!r}")
        self._publish_command((name, params))
        handler(**params)
        self._publish("state", self.state)

    def _cmd_play(self) -> None:
        if self.state == "playing":
            return
        if self.state == "stopped":
            self._demux_index = int(self.position / self.source.packet_interval)
            self._start_pipeline()
        self.state = "playing"

    def _cmd_pause(self) -> None:
        if self.state == "playing":
            self.state = "paused"

    def _cmd_stop(self) -> None:
        self.state = "stopped"
        self.position = 0.0
        self._stop_pipeline()
        # Position changes are observable whatever causes them: without
        # this, a monitor's last-seen position goes stale exactly when
        # no frames render, and a healthy stop reads as a divergence.
        self._publish("position", 0.0)

    def _cmd_seek(self, position: float = 0.0) -> None:
        self.position = max(0.0, position)
        self._demux_index = int(self.position / self.source.packet_interval)
        if self._packets is not None:
            self._packets.clear()
        if self._frames is not None:
            self._frames.clear()
        self.stalled = False
        self._generation += 1
        # A demuxer that ran off the end of the source has exited; a
        # seek back into the media must revive it or the pipeline
        # starves forever (found by the position observable, PR 4).
        if self._packets is not None and self._demux_index < self.source.packet_count:
            demux = next(
                (p for p in self._processes if p.name == "mp.demux"), None
            )
            if demux is None or not demux.alive:
                self._processes = [p for p in self._processes if p.alive]
                self._processes.append(
                    Process(self.kernel, self._demux(), name="mp.demux")
                )
        self._publish_buffer()
        # The seek target is the new presented position — report it even
        # while paused/stopped, when no frame will render to carry it.
        self._publish("position", round(self.position, 3))

    # ------------------------------------------------------------------
    # pipeline
    # ------------------------------------------------------------------
    def _start_pipeline(self) -> None:
        self._packets = Store(self.kernel, self.BUFFER_CAPACITY, "packets")
        self._frames = Store(self.kernel, self.BUFFER_CAPACITY, "frames")
        self._processes = [
            Process(self.kernel, self._demux(), name="mp.demux"),
            Process(self.kernel, self._decode(), name="mp.decode"),
            Process(self.kernel, self._render(), name="mp.render"),
        ]

    def _stop_pipeline(self) -> None:
        for process in self._processes:
            if process.alive:
                process.kill("player stop")
        self._processes = []
        self._packets = None
        self._frames = None
        self.stalled = False
        self._publish_buffer()

    def _demux(self) -> Generator[Any, Any, None]:
        try:
            while self._demux_index < self.source.packet_count:
                if self.state != "playing":
                    yield Delay(0.1)
                    continue
                packet = self.source.packet(self._demux_index)
                assert self._packets is not None
                if self._packets.put((self._generation, packet)):
                    self._demux_index += 1
                    self._publish_buffer()
                    yield Delay(self.source.packet_interval * 0.5)
                else:
                    yield Delay(0.05)  # buffer full, retry
        except Interrupted:
            return

    def _decode(self) -> Generator[Any, Any, None]:
        try:
            while True:
                assert self._packets is not None
                generation, packet = yield self._packets.get()
                self._publish_buffer()
                if generation != self._generation:
                    continue  # pre-seek packet: discard at the discontinuity
                if packet.corrupt:
                    if self.stall_on_corrupt:
                        # The injected wedge: decoder spins forever.
                        self.stalled = True
                        while True:
                            yield Delay(1.0)
                    # Nominal behaviour: conceal the error and continue.
                    continue
                yield Delay(self.DECODE_TIME * self.decode_slowdown)
                assert self._frames is not None
                self._frames.put((generation, packet))
        except Interrupted:
            return

    def _render(self) -> Generator[Any, Any, None]:
        try:
            while True:
                assert self._frames is not None
                generation, frame = yield self._frames.get()
                if generation != self._generation:
                    continue  # decoded before a seek: never present it
                if self.state != "playing":
                    yield Delay(0.1)
                    continue
                yield Delay(self.RENDER_TIME)
                if generation != self._generation:
                    continue  # the seek landed while this frame was on the glass
                self.frames_rendered += 1
                self.position = frame.pts
                self._publish("position", round(self.position, 3))
                # Rendered frames are *progress evidence*; position
                # changes alone (a seek echo) are not — a monitor must
                # be able to tell "the pipeline produced a frame" from
                # "the target moved".
                self._publish("frame", round(self.position, 3))
        except Interrupted:
            return

    # ------------------------------------------------------------------
    # recovery surface
    # ------------------------------------------------------------------
    def restart_pipeline(self) -> None:
        """Targeted recovery: tear down and rebuild the demux → decode →
        render pipeline at the current position.

        A decoder wedged by ``stall_on_corrupt`` cannot be revived in
        place (the stall loop never exits), so the rebind rung replaces
        the pipeline processes outright; the control state and presented
        position survive the swap.  A no-op while stopped — there is no
        pipeline to rebuild."""
        if self.state == "stopped":
            return
        self._stop_pipeline()
        self._demux_index = min(
            int(self.position / self.source.packet_interval),
            self.source.packet_count,
        )
        self._generation += 1
        self._start_pipeline()

    # ------------------------------------------------------------------
    def _publish(self, name: str, value: Any) -> None:
        for hook in self.output_hooks:
            hook(name, value)
        self._publish_output((name, value))

    def buffer_level(self) -> int:
        """Demuxed packets buffered and awaiting decode (0 when the
        pipeline is down)."""
        return len(self._packets) if self._packets is not None else 0

    def _publish_buffer(self) -> None:
        level = self.buffer_level()
        if level != self._last_buffer_level:
            self._last_buffer_level = level
            self._publish("buffer", level)

    def throughput(self, window: float = 10.0) -> float:
        """Frames per time unit over the whole run (coarse)."""
        if self.kernel.now <= 0:
            return 0.0
        return self.frames_rendered / self.kernel.now


#: Spec constants for the depth observables (PR 4).  The model predicts
#: *nominal pipeline pace*: while playing, a rendered frame lands at most
#: every NOMINAL_FRAME_TIME (plus concealment), and playback position
#: keeps advancing.  A wedged decoder (stall_on_corrupt) violates the
#: progress expectation; a slowed decoder (decode_slowdown) violates the
#: pace expectation — both invisible to the coarse ``state`` observable.
NOMINAL_FRAME_TIME = MediaPlayer.DECODE_TIME
#: Longest frame-to-frame gap the spec tolerates (concealment of a short
#: corrupt run, seek pipeline restart) before pace counts as degraded.
PACE_LIMIT = NOMINAL_FRAME_TIME * 2.4
#: While playing, a frame must land within this window or progress has
#: stalled (covers seek restarts and post-resume buffer refill).
PROGRESS_SLACK = 4.0


def _player_mark_progress(machine: Machine, event) -> None:
    last = machine.get("last_progress")
    if last is not None:
        machine.set("last_gap", event.time - last)
    machine.set("last_progress", event.time)
    machine.set("pending_since", None)
    machine.set("position", float(event.param("position", machine.get("position"))))


def _player_reset_progress(machine: Machine, event) -> None:
    """A (re)start of playback re-arms the pace expectation and arms the
    progress deadline — but never *extends* an unmet one: a pipeline
    that was already asked to produce a frame and hasn't must not have
    its deadline pushed out by further seeks, or a wedged decoder under
    seek-stress (one restart per seek, each inside the slack window)
    would never be caught."""
    machine.set("last_progress", event.time)
    machine.set("last_gap", 0.0)
    if machine.get("pending_since") is None:
        machine.set("pending_since", event.time)


def _player_on_seek(machine: Machine, event) -> None:
    machine.set("position", max(0.0, float(event.param("position", 0.0))))
    _player_reset_progress(machine, event)


def _player_on_stop(machine: Machine, event) -> None:
    machine.set("position", 0.0)
    machine.set("last_progress", event.time)
    machine.set("last_gap", 0.0)
    machine.set("pending_since", None)


def build_player_model(media_duration: Optional[float] = None) -> Machine:
    """Specification model of the player's control behaviour *and* its
    nominal pipeline performance (position / progress / pace vars).

    ``media_duration`` bounds the progress expectation: once playback
    reaches the end of the media, the pipeline legitimately goes quiet
    even though the control state still reads ``playing``.
    """
    b = MachineBuilder("player_spec")
    b.var("position", 0.0)
    b.var("last_progress", None)
    b.var("last_gap", 0.0)
    b.var("pending_since", None)
    b.var("media_duration", media_duration)
    b.state("stopped")
    b.state("playing")
    b.state("paused")
    b.initial("stopped")
    b.transition("stopped", "playing", event="play", action=_player_reset_progress)
    b.transition("playing", "paused", event="pause")
    b.transition("paused", "playing", event="play", action=_player_reset_progress)
    b.transition("playing", "stopped", event="stop", action=_player_on_stop)
    b.transition("paused", "stopped", event="stop", action=_player_on_stop)
    b.transition("playing", None, event="seek", internal=True, action=_player_on_seek)
    b.transition("paused", None, event="seek", internal=True, action=_player_on_seek)
    b.transition("stopped", None, event="seek", internal=True, action=_player_on_seek)
    b.transition(
        "playing", None, event="progress", internal=True, action=_player_mark_progress
    )
    return b.build()


def expected_player_state(machine: Machine) -> str:
    """The control state the model predicts."""
    return machine.configuration().split(".")[-1]


def expected_player_position(machine: Machine) -> float:
    """The playback position the model last confirmed (a consistency
    observable: the SUO's reported position must track it)."""
    return machine.get("position")


def expected_player_progressing(machine: Machine) -> bool:
    """While playing, a frame must render within PROGRESS_SLACK.

    The SUO-side belief is constantly ``True`` (the player *thinks* it is
    playing); a wedged decoder stops satisfying the progress deadline so
    this verdict flips to ``False`` and the divergence is the detected
    error — the stall class of fault that the bare ``state`` observable
    never sees.  The deadline is the *oldest unmet* restart
    (``pending_since``), so seeks during a stall cannot keep pushing it
    out; between frames in steady playback it falls back to the last
    rendered frame.
    """
    if expected_player_state(machine) != "playing":
        return True
    duration = machine.get("media_duration")
    if duration is not None and machine.get("position") >= duration - 1.0:
        return True  # end of media: the quiet pipeline is nominal
    pending = machine.get("pending_since")
    if pending is not None:
        return machine.time - pending <= PROGRESS_SLACK
    last = machine.get("last_progress")
    if last is None:
        return True
    return machine.time - last <= PROGRESS_SLACK


def expected_player_pace(machine: Machine) -> bool:
    """Frame-to-frame gaps must stay within the nominal pipeline pace.

    A slowed decoder stretches every gap past PACE_LIMIT while progress
    continues — degraded throughput that ``progressing`` alone cannot
    distinguish from health.
    """
    if expected_player_state(machine) != "playing":
        return True
    return machine.get("last_gap") <= PACE_LIMIT
